//! Weighted one-dimensional DBSCAN over segment values.
//!
//! Input: distinct values with occurrence counts (weights). A value
//! is a *core point* if the total weight within its ε-neighborhood
//! (closed interval `[v − ε, v + ε]`) reaches `min_weight`. Clusters
//! are the standard DBSCAN density-connected components; in one
//! dimension these are exactly maximal chains of core points with
//! consecutive gaps ≤ ε, together with any border points within ε of
//! a chain end. Noise is everything else.
//!
//! This realizes §4.3 step (b): "we run on D_k the popular DBSCAN
//! data clustering algorithm, parametrized to find highly dense
//! ranges of values. In this step, we use the minimum and maximum
//! values of the discovered clusters as ranges added to V_k."

/// A discovered dense range of values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster1D {
    /// Smallest member value (range low bound).
    pub min: u128,
    /// Largest member value (range high bound).
    pub max: u128,
    /// Total occurrence weight of the members.
    pub weight: u64,
    /// Number of distinct member values.
    pub distinct: usize,
}

/// Parameters for the weighted 1-D DBSCAN.
#[derive(Clone, Copy, Debug)]
pub struct Dbscan1D {
    /// Neighborhood radius in value units (closed interval).
    pub eps: u128,
    /// Minimum total weight inside a neighborhood for a core point
    /// (DBSCAN's `minPts`, generalized to weights).
    pub min_weight: u64,
}

impl Dbscan1D {
    /// Creates a parameter set.
    pub fn new(eps: u128, min_weight: u64) -> Self {
        Dbscan1D { eps, min_weight }
    }

    /// Clusters `(value, weight)` pairs. The input need not be
    /// sorted; duplicates should already be merged (weights summed)
    /// — `eip_stats::Histogram`-style entries satisfy both.
    ///
    /// Returns clusters ordered by their minimum value.
    pub fn run(&self, points: &[(u128, u64)]) -> Vec<Cluster1D> {
        if points.is_empty() {
            return Vec::new();
        }
        let mut pts: Vec<(u128, u64)> = points.to_vec();
        pts.sort_unstable();

        // Prefix sums of weights for O(1) window weight queries.
        let mut prefix: Vec<u64> = Vec::with_capacity(pts.len() + 1);
        prefix.push(0);
        for &(_, w) in &pts {
            prefix.push(prefix.last().unwrap() + w);
        }
        let window_weight = |lo: usize, hi: usize| prefix[hi + 1] - prefix[lo]; // inclusive

        // Core-point test via two-pointer ε-windows.
        let n = pts.len();
        let mut core = vec![false; n];
        let mut lo = 0usize;
        let mut hi = 0usize;
        for i in 0..n {
            let v = pts[i].0;
            while pts[lo].0 < v.saturating_sub(self.eps) {
                lo += 1;
            }
            if hi < i {
                hi = i;
            }
            while hi + 1 < n && pts[hi + 1].0 <= v.saturating_add(self.eps) {
                hi += 1;
            }
            core[i] = window_weight(lo, hi) >= self.min_weight;
        }

        // Chain core points with gap <= eps; attach border points.
        let mut clusters: Vec<Cluster1D> = Vec::new();
        let mut claimed = 0usize; // points below this index belong to earlier clusters
        let mut i = 0usize;
        while i < n {
            if !core[i] {
                i += 1;
                continue;
            }
            // Start a chain at core point i; optionally pull in a
            // preceding border point within eps — unless an earlier
            // cluster already claimed it (border points join the
            // first cluster that reaches them, per DBSCAN).
            let mut start = i;
            if i > claimed && !core[i - 1] && pts[i].0 - pts[i - 1].0 <= self.eps {
                start = i - 1;
            }
            let mut end = i;
            let mut last_core = i;
            let mut j = i + 1;
            while j < n {
                let gap = pts[j].0 - pts[last_core].0;
                if core[j] {
                    if gap <= self.eps {
                        last_core = j;
                        end = j;
                        j += 1;
                    } else {
                        break;
                    }
                } else if gap <= self.eps {
                    // Border point: include, but do not extend reach.
                    end = j;
                    j += 1;
                } else {
                    break;
                }
            }
            let weight = window_weight(start, end);
            clusters.push(Cluster1D {
                min: pts[start].0,
                max: pts[end].0,
                weight,
                distinct: end - start + 1,
            });
            claimed = end + 1;
            i = j.max(end + 1);
        }
        clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(points: &[u128]) -> Vec<(u128, u64)> {
        points.iter().map(|&v| (v, 1)).collect()
    }

    #[test]
    fn empty_input() {
        assert!(Dbscan1D::new(1, 2).run(&[]).is_empty());
    }

    #[test]
    fn single_dense_run_is_one_cluster() {
        let c = Dbscan1D::new(1, 3).run(&unit(&[10, 11, 12, 13, 14]));
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].min, c[0].max), (10, 14));
        assert_eq!(c[0].weight, 5);
        assert_eq!(c[0].distinct, 5);
    }

    #[test]
    fn gap_splits_clusters() {
        let c = Dbscan1D::new(1, 3).run(&unit(&[1, 2, 3, 4, 100, 101, 102, 103]));
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].min, c[0].max), (1, 4));
        assert_eq!((c[1].min, c[1].max), (100, 103));
    }

    #[test]
    fn sparse_points_are_noise() {
        let c = Dbscan1D::new(1, 3).run(&unit(&[10, 50, 90]));
        assert!(c.is_empty());
    }

    #[test]
    fn weights_make_isolated_value_core() {
        // A single value with weight 10 is core on its own.
        let c = Dbscan1D::new(1, 10).run(&[(42, 10), (100, 1)]);
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].min, c[0].max), (42, 42));
        assert_eq!(c[0].weight, 10);
    }

    #[test]
    fn border_points_join_but_do_not_extend() {
        // 1,2,3 are dense (min_weight 3, eps 1); 4 is a border point
        // (only 2 neighbors within eps: 3 and itself + ...) attach to
        // the cluster; 6 is too far from the last core point (3)?
        // With eps 1: neighbors of 4 = {3,4}; weight 2 < 3 -> border.
        // 4 attaches (gap 4-3=1 <= eps) but the chain cannot extend
        // through it to 5.. (none here).
        let c = Dbscan1D::new(1, 3).run(&unit(&[1, 2, 3, 4, 6]));
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].min, c[0].max), (1, 4));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let c = Dbscan1D::new(1, 3).run(&unit(&[14, 10, 12, 13, 11]));
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].min, c[0].max), (10, 14));
    }

    #[test]
    fn adjacent_chains_with_small_gap_merge() {
        // eps 2 bridges the gap between 5 and 7.
        let c = Dbscan1D::new(2, 3).run(&unit(&[1, 2, 3, 4, 5, 7, 8, 9]));
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].min, c[0].max), (1, 9));
    }

    #[test]
    fn extreme_values_no_overflow() {
        let pts = [(0u128, 5u64), (u128::MAX, 5u64)];
        let c = Dbscan1D::new(10, 3).run(&pts);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn uniform_random_like_segment_is_one_big_range() {
        // Values spread over 0..1000 every 3 units with eps 4:
        // everything chains into one cluster — how the paper's G14
        // "whole-IID pseudo-random" ranges come about.
        let vals: Vec<u128> = (0..300u128).map(|i| i * 3).collect();
        let c = Dbscan1D::new(4, 3).run(&unit(&vals));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].min, 0);
        assert_eq!(c[0].max, 897);
    }
}
