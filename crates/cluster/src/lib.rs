//! DBSCAN clustering for Entropy/IP segment mining (§4.3).
//!
//! The paper runs the DBSCAN algorithm of Ester, Kriegel, Sander & Xu
//! (KDD 1996) twice per segment:
//!
//! * step (b): on the segment's **values** themselves, "parametrized
//!   to find highly dense ranges of values" — our [`Dbscan1D`], a
//!   weighted one-dimensional DBSCAN where each distinct value
//!   carries its occurrence count as weight;
//! * step (c): on the segment's **histogram** ("a vector of values
//!   vs. their counts"), "tuned … to find ranges of values that are
//!   both uniformly distributed and relatively continuous" — our
//!   [`Dbscan2D`] over normalized (value, count) points.
//!
//! Both exploit the natural ordering of the value axis: points are
//! sorted and ε-neighborhoods are windows, so clustering is
//! `O(n · w)` with `w` the neighborhood width instead of the naive
//! `O(n²)` — important because a pseudo-random 11-nybble segment from
//! a 100K-address set has ~100K distinct values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod one_d;
pub mod two_d;

pub use one_d::{Cluster1D, Dbscan1D};
pub use two_d::{Dbscan2D, Label};
