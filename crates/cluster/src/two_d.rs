//! Two-dimensional DBSCAN over histogram points.
//!
//! §4.3 step (c): "we run the DBSCAN algorithm again, but on a
//! histogram of D_k, that is, on a vector of values vs. their counts.
//! We tune the algorithm to find ranges of values that are both
//! uniformly distributed and relatively continuous."
//!
//! Each point is a `(value, count)` histogram entry. Both axes are
//! normalized to `[0, 1]` before distance computation (value by the
//! observed span, count by the maximum count), so ε is scale-free:
//! a cluster is a run of values that are *close together* (continuity
//! on the x-axis) *with similar frequencies* (uniformity on the
//! y-axis) — exactly the C6 box of the paper's Fig. 4.

/// Point classification produced by [`Dbscan2D::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with the given 0-based id.
    Cluster(usize),
}

impl Label {
    /// The cluster id, if any.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Label::Noise => None,
            Label::Cluster(id) => Some(id),
        }
    }
}

/// Parameters for the normalized 2-D DBSCAN.
#[derive(Clone, Copy, Debug)]
pub struct Dbscan2D {
    /// Neighborhood radius in the normalized space (both axes in
    /// `[0, 1]`).
    pub eps: f64,
    /// Minimum number of points (including the point itself) inside
    /// a neighborhood for a core point.
    pub min_pts: usize,
}

impl Dbscan2D {
    /// Creates a parameter set.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Dbscan2D { eps, min_pts }
    }

    /// Clusters histogram entries `(value, count)`. Returns one
    /// [`Label`] per input point, in input order, plus the number of
    /// clusters found.
    ///
    /// Classic DBSCAN with a sorted-by-x sweep for neighborhood
    /// queries: candidates are limited to the ε-window on the value
    /// axis, then filtered by Euclidean distance.
    pub fn run(&self, points: &[(u128, u64)]) -> (Vec<Label>, usize) {
        let n = points.len();
        if n == 0 {
            return (Vec::new(), 0);
        }

        // Normalize. Degenerate spans collapse to 0.
        let xmin = points.iter().map(|&(v, _)| v).min().unwrap();
        let xmax = points.iter().map(|&(v, _)| v).max().unwrap();
        let ymax = points.iter().map(|&(_, c)| c).max().unwrap().max(1);
        let span = xmax - xmin;
        let norm: Vec<(f64, f64)> = points
            .iter()
            .map(|&(v, c)| {
                let x = if span == 0 {
                    0.0
                } else {
                    // Split before converting so u128 precision loss
                    // stays bounded by f64 rounding, not magnitude.
                    (v - xmin) as f64 / span as f64
                };
                let y = c as f64 / ymax as f64;
                (x, y)
            })
            .collect();

        // Sort indices by x for windowed neighborhood queries.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| norm[a].0.total_cmp(&norm[b].0));
        let xs: Vec<f64> = order.iter().map(|&i| norm[i].0).collect();

        let neighbors = |rank: usize| -> Vec<usize> {
            let x = xs[rank];
            let (px, py) = norm[order[rank]];
            debug_assert_eq!(px, x);
            let mut out = Vec::new();
            // Walk left and right within the eps x-window.
            let mut l = rank;
            while l > 0 && x - xs[l - 1] <= self.eps {
                l -= 1;
            }
            let mut r = rank;
            while r + 1 < xs.len() && xs[r + 1] - x <= self.eps {
                r += 1;
            }
            for k in l..=r {
                let (qx, qy) = norm[order[k]];
                let d2 = (qx - px) * (qx - px) + (qy - py) * (qy - py);
                if d2 <= self.eps * self.eps {
                    out.push(k);
                }
            }
            out
        };

        // Standard DBSCAN over ranks.
        const UNVISITED: usize = usize::MAX;
        const NOISE: usize = usize::MAX - 1;
        let mut label = vec![UNVISITED; n]; // by rank
        let mut clusters = 0usize;
        for rank in 0..n {
            if label[rank] != UNVISITED {
                continue;
            }
            let nb = neighbors(rank);
            if nb.len() < self.min_pts {
                label[rank] = NOISE;
                continue;
            }
            let cid = clusters;
            clusters += 1;
            label[rank] = cid;
            let mut queue: Vec<usize> = nb;
            while let Some(q) = queue.pop() {
                if label[q] == NOISE {
                    label[q] = cid; // border point
                }
                if label[q] != UNVISITED {
                    continue;
                }
                label[q] = cid;
                let qn = neighbors(q);
                if qn.len() >= self.min_pts {
                    queue.extend(qn);
                }
            }
        }

        // Map rank labels back to input order.
        let mut out = vec![Label::Noise; n];
        for (rank, &idx) in order.iter().enumerate() {
            out[idx] = match label[rank] {
                NOISE | UNVISITED => Label::Noise,
                cid => Label::Cluster(cid),
            };
        }
        (out, clusters)
    }

    /// Convenience: returns the value ranges `(min, max, members)` of
    /// each cluster, ordered by minimum value.
    pub fn ranges(&self, points: &[(u128, u64)]) -> Vec<(u128, u128, usize)> {
        let (labels, k) = self.run(points);
        let mut ranges: Vec<Option<(u128, u128, usize)>> = vec![None; k];
        for (i, lab) in labels.iter().enumerate() {
            if let Some(cid) = lab.cluster() {
                let v = points[i].0;
                let e = ranges[cid].get_or_insert((v, v, 0));
                e.0 = e.0.min(v);
                e.1 = e.1.max(v);
                e.2 += 1;
            }
        }
        let mut out: Vec<(u128, u128, usize)> = ranges.into_iter().flatten().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let (labels, k) = Dbscan2D::new(0.1, 3).run(&[]);
        assert!(labels.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn uniform_continuous_run_is_one_cluster() {
        // 50 consecutive values all with count 10: the paper's "C6"
        // shape.
        let pts: Vec<(u128, u64)> = (0..50u128).map(|v| (v, 10)).collect();
        let (labels, k) = Dbscan2D::new(0.08, 4).run(&pts);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|l| l.cluster() == Some(0)));
    }

    #[test]
    fn outlier_count_is_noise() {
        // Same run, but one value is 100x more frequent: it sits far
        // away on the normalized count axis -> noise.
        let mut pts: Vec<(u128, u64)> = (0..50u128).map(|v| (v, 10)).collect();
        pts.push((25, 1000)); // a duplicate value won't occur in a
                              // histogram; use a separate value
        pts[25] = (25, 1000);
        pts.pop();
        let (labels, k) = Dbscan2D::new(0.08, 4).run(&pts);
        assert!(k >= 1);
        assert_eq!(labels[25], Label::Noise);
    }

    #[test]
    fn two_separated_runs_two_clusters() {
        let mut pts: Vec<(u128, u64)> = (0..30u128).map(|v| (v, 5)).collect();
        pts.extend((1000..1030u128).map(|v| (v, 5)));
        let (_, k) = Dbscan2D::new(0.02, 4).run(&pts);
        assert_eq!(k, 2);
        let ranges = Dbscan2D::new(0.02, 4).ranges(&pts);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], (0, 29, 30));
        assert_eq!(ranges[1], (1000, 1029, 30));
    }

    #[test]
    fn sparse_points_all_noise() {
        let pts: Vec<(u128, u64)> = (0..10u128).map(|v| (v * 1000, 1)).collect();
        let (labels, k) = Dbscan2D::new(0.01, 3).run(&pts);
        assert_eq!(k, 0);
        assert!(labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn degenerate_single_point() {
        let (labels, k) = Dbscan2D::new(0.1, 1).run(&[(7, 3)]);
        assert_eq!(k, 1);
        assert_eq!(labels[0], Label::Cluster(0));
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let pts: Vec<(u128, u64)> = (0..5u128).map(|v| (v * 100, 1)).collect();
        let (labels, k) = Dbscan2D::new(0.01, 1).run(&pts);
        assert_eq!(k, 5);
        assert!(labels.iter().all(|l| l.cluster().is_some()));
    }

    #[test]
    fn huge_values_normalize_without_overflow() {
        let pts = vec![(0u128, 2u64), (u128::MAX / 2, 2), (u128::MAX, 2)];
        let (_, k) = Dbscan2D::new(0.6, 2).run(&pts);
        assert!(k >= 1);
    }
}
