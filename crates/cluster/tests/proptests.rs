//! Property-based tests for the DBSCAN implementations.

use eip_cluster::{Dbscan1D, Dbscan2D};
use proptest::prelude::*;

proptest! {
    /// 1-D clusters never overlap and are ordered by min value.
    #[test]
    fn clusters_disjoint_and_ordered(
        vals in prop::collection::btree_map(0u128..10_000, 1u64..20, 0..200),
        eps in 1u128..50, minw in 1u64..10,
    ) {
        let pts: Vec<(u128, u64)> = vals.into_iter().collect();
        let clusters = Dbscan1D::new(eps, minw).run(&pts);
        for c in &clusters {
            prop_assert!(c.min <= c.max);
            prop_assert!(c.weight >= 1);
            prop_assert!(c.distinct >= 1);
        }
        for w in clusters.windows(2) {
            prop_assert!(w[0].max < w[1].min, "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    /// Every 1-D cluster's weight is the sum of member weights, and
    /// total clustered weight never exceeds the input weight.
    #[test]
    fn cluster_weight_conserved(
        vals in prop::collection::btree_map(0u128..1_000, 1u64..20, 0..100),
        eps in 1u128..20, minw in 1u64..10,
    ) {
        let pts: Vec<(u128, u64)> = vals.into_iter().collect();
        let total: u64 = pts.iter().map(|&(_, w)| w).sum();
        let clusters = Dbscan1D::new(eps, minw).run(&pts);
        let clustered: u64 = clusters.iter().map(|c| c.weight).sum();
        prop_assert!(clustered <= total);
        for c in &clusters {
            let expect: u64 = pts
                .iter()
                .filter(|&&(v, _)| (c.min..=c.max).contains(&v))
                .map(|&(_, w)| w)
                .sum();
            prop_assert_eq!(c.weight, expect);
        }
    }

    /// With min_weight 1 every point lands in some cluster and all
    /// weight is clustered.
    #[test]
    fn min_weight_one_covers_everything(
        vals in prop::collection::btree_map(0u128..10_000, 1u64..10, 1..100),
        eps in 0u128..100,
    ) {
        let pts: Vec<(u128, u64)> = vals.into_iter().collect();
        let total: u64 = pts.iter().map(|&(_, w)| w).sum();
        let clusters = Dbscan1D::new(eps, 1).run(&pts);
        let clustered: u64 = clusters.iter().map(|c| c.weight).sum();
        prop_assert_eq!(clustered, total);
    }

    /// 1-D clustering is insensitive to input order.
    #[test]
    fn order_invariant(
        vals in prop::collection::btree_map(0u128..1_000, 1u64..10, 0..60),
        eps in 1u128..20, minw in 1u64..6, seed in any::<u64>(),
    ) {
        let pts: Vec<(u128, u64)> = vals.into_iter().collect();
        let a = Dbscan1D::new(eps, minw).run(&pts);
        // Pseudo-shuffle deterministically.
        let mut shuffled = pts.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let b = Dbscan1D::new(eps, minw).run(&shuffled);
        prop_assert_eq!(a, b);
    }

    /// 2-D labels: the number of distinct cluster ids equals the
    /// reported count, and ids are 0..k.
    #[test]
    fn two_d_label_consistency(
        vals in prop::collection::btree_map(0u128..500, 1u64..30, 0..80),
        eps in 0.01f64..0.5, min_pts in 1usize..6,
    ) {
        let pts: Vec<(u128, u64)> = vals.into_iter().collect();
        let (labels, k) = Dbscan2D::new(eps, min_pts).run(&pts);
        prop_assert_eq!(labels.len(), pts.len());
        let ids: std::collections::HashSet<usize> =
            labels.iter().filter_map(|l| l.cluster()).collect();
        prop_assert_eq!(ids.len(), k);
        for id in ids {
            prop_assert!(id < k);
        }
    }

    /// 2-D: with min_pts = 1 no point is noise.
    #[test]
    fn two_d_min_pts_one_no_noise(
        vals in prop::collection::btree_map(0u128..500, 1u64..30, 1..60),
        eps in 0.01f64..0.5,
    ) {
        let pts: Vec<(u128, u64)> = vals.into_iter().collect();
        let (labels, _) = Dbscan2D::new(eps, 1).run(&pts);
        prop_assert!(labels.iter().all(|l| l.cluster().is_some()));
    }
}
