//! The 32-nybble expansion of an IPv6 address.
//!
//! Entropy/IP's unit of analysis is the hex character: the paper
//! computes the entropy of the value at each of the 32 positions
//! across an address set (§4.1). [`Nybbles`] is that expansion,
//! with helpers to slice out the paper's *segments* (contiguous
//! nybble runs).

use std::fmt;

use crate::ip6::Ip6;

/// An IPv6 address expanded to its 32 hexadecimal characters.
///
/// Index 0 of the inner array is nybble position 1 in the paper's
/// 1-based numbering; use [`Nybbles::get`] for 1-based access.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nybbles(pub [u8; 32]);

impl Nybbles {
    /// Expands an address into nybbles.
    pub fn from_ip(ip: Ip6) -> Self {
        let mut out = [0u8; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = ((ip.0 >> ((31 - i) * 4)) & 0xf) as u8;
        }
        Nybbles(out)
    }

    /// Recombines the nybbles into an address.
    pub fn to_ip(self) -> Ip6 {
        let mut v: u128 = 0;
        for n in self.0 {
            v = (v << 4) | u128::from(n & 0xf);
        }
        Ip6(v)
    }

    /// Returns the nybble at 1-based position `pos` (1..=32).
    ///
    /// # Panics
    /// Panics if `pos` is outside `1..=32`.
    #[inline]
    pub fn get(&self, pos: usize) -> u8 {
        assert!((1..=32).contains(&pos), "nybble position must be 1..=32");
        self.0[pos - 1]
    }

    /// Sets the nybble at 1-based position `pos` to `val` (< 16).
    ///
    /// # Panics
    /// Panics if `pos` is outside `1..=32` or `val >= 16`.
    #[inline]
    pub fn set(&mut self, pos: usize, val: u8) {
        assert!((1..=32).contains(&pos), "nybble position must be 1..=32");
        assert!(val < 16, "nybble value must be < 16");
        self.0[pos - 1] = val;
    }

    /// Extracts the value of the segment spanning 1-based nybble
    /// positions `start..=end` (inclusive on both sides, as the paper
    /// labels segments), packed into a `u128` right-aligned.
    ///
    /// A segment is at most 32 nybbles so the value always fits.
    ///
    /// # Panics
    /// Panics unless `1 <= start <= end <= 32`.
    pub fn segment_value(&self, start: usize, end: usize) -> u128 {
        assert!(
            1 <= start && start <= end && end <= 32,
            "bad segment bounds"
        );
        let mut v: u128 = 0;
        for pos in start..=end {
            v = (v << 4) | u128::from(self.get(pos));
        }
        v
    }

    /// Writes `value` into the segment spanning 1-based positions
    /// `start..=end`, most significant nybble first.
    ///
    /// # Panics
    /// Panics unless `1 <= start <= end <= 32`, or if `value` does not
    /// fit in the segment width.
    pub fn set_segment_value(&mut self, start: usize, end: usize, value: u128) {
        assert!(
            1 <= start && start <= end && end <= 32,
            "bad segment bounds"
        );
        let width = end - start + 1;
        if width < 32 {
            assert!(value < (1u128 << (4 * width)), "value too wide for segment");
        }
        for (k, pos) in (start..=end).enumerate() {
            let shift = 4 * (width - 1 - k);
            self.set(pos, ((value >> shift) & 0xf) as u8);
        }
    }
}

impl fmt::Display for Nybbles {
    /// Fixed-width hex, exactly the paper's Fig. 3 presentation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in self.0 {
            write!(f, "{:x}", n & 0xf)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Nybbles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ip: Ip6 = "2001:db8:4001:1111::111c".parse().unwrap();
        let ny = Nybbles::from_ip(ip);
        assert_eq!(ny.to_ip(), ip);
        assert_eq!(ny.to_string(), ip.to_hex32());
    }

    #[test]
    fn one_based_get_matches_ip6() {
        let ip: Ip6 = "2001:db8:4001:1111::111c".parse().unwrap();
        let ny = ip.nybbles();
        for pos in 1..=32 {
            assert_eq!(ny.get(pos), ip.nybble(pos), "pos {pos}");
        }
    }

    #[test]
    fn segment_value_extracts_inclusive_run() {
        // Fig. 3 example: hex chars 12-16 of the first sample address
        // are "11111".
        let ip = Ip6::from_hex32("20010db840011111000000000000111c").unwrap();
        let ny = ip.nybbles();
        assert_eq!(ny.segment_value(12, 16), 0x11111);
        assert_eq!(ny.segment_value(1, 8), 0x20010db8);
        assert_eq!(ny.segment_value(32, 32), 0xc);
    }

    #[test]
    fn set_segment_value_round_trips() {
        let mut ny = Nybbles::from_ip(Ip6(0));
        ny.set_segment_value(12, 16, 0x31c13);
        assert_eq!(ny.segment_value(12, 16), 0x31c13);
        assert_eq!(ny.to_string(), "0000000000031c130000000000000000");
    }

    #[test]
    #[should_panic(expected = "value too wide")]
    fn set_segment_rejects_wide_values() {
        let mut ny = Nybbles::from_ip(Ip6(0));
        ny.set_segment_value(1, 1, 0x10);
    }

    #[test]
    fn full_width_segment() {
        let ip = Ip6(u128::MAX);
        let ny = ip.nybbles();
        assert_eq!(ny.segment_value(1, 32), u128::MAX);
        let mut z = Nybbles::from_ip(Ip6(0));
        z.set_segment_value(1, 32, u128::MAX);
        assert_eq!(z.to_ip(), ip);
    }
}
