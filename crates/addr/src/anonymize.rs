//! The paper's address anonymization scheme (§3).
//!
//! > "We changed the first 32 bits in IPv6 addresses to the
//! > documentation prefix (2001:db8::/32), incrementing the first
//! > nybble when necessary. To anonymize IPv4 addresses embedded
//! > within IPv6 addresses, we changed the first byte to the
//! > 127.0.0.0/8 prefix."
//!
//! "Incrementing the first nybble" is how the paper keeps *distinct*
//! real /32s distinct after anonymization: the first observed /32
//! becomes `2001:db8::/32`, the second `3001:db8::/32`, and so on
//! (visible in its Fig. 7(b), where dataset S1's two /32s appear as
//! `20010db8` and `30010db8`).

use std::collections::HashMap;

use crate::ip6::Ip6;
use crate::set::AddressSet;

/// Documentation prefix network number (`2001:db8::`), the base of
/// the anonymized space.
const DOC32: u128 = 0x2001_0db8u128 << 96;

/// Rewrites the top 32 bits of `ip` according to the paper's scheme,
/// given the 0-based index of its real /32 in observation order.
///
/// Index 0 maps to `2001:db8::/32`, index 1 to `3001:db8::/32`, …,
/// wrapping the first nybble modulo 16 (the paper never needed more
/// than a handful per figure).
pub fn anonymize_addr(ip: Ip6, slash32_index: usize) -> Ip6 {
    let first_nybble = (0x2 + slash32_index as u128) % 16;
    let top = (DOC32 & !(0xfu128 << 124)) | (first_nybble << 124);
    Ip6(top | (ip.value() & (!0u128 >> 32)))
}

/// Anonymizes a whole set, assigning first-nybble indices by order of
/// first appearance of each real /32. Returns the anonymized set and
/// the mapping from real /32 network to index.
pub fn anonymize_set(set: &AddressSet) -> (AddressSet, HashMap<Ip6, usize>) {
    let mut index: HashMap<Ip6, usize> = HashMap::new();
    let mut out = Vec::with_capacity(set.len());
    for ip in set.iter() {
        let net = ip.network(32);
        let next = index.len();
        let idx = *index.entry(net).or_insert(next);
        out.push(anonymize_addr(ip, idx));
    }
    (AddressSet::from_iter(out), index)
}

/// Anonymizes an IPv4 address embedded in the low 32 bits of an IID:
/// forces its first octet to 127 (the `127.0.0.0/8` prefix), leaving
/// the other three octets intact.
pub fn anonymize_embedded_v4(v4: u32) -> u32 {
    (127u32 << 24) | (v4 & 0x00ff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_slash32_maps_to_doc_prefix() {
        let ip: Ip6 = "2400:beef:221:ffff::122a".parse().unwrap();
        let anon = anonymize_addr(ip, 0);
        assert_eq!(anon.to_string(), "2001:db8:221:ffff::122a");
    }

    #[test]
    fn second_slash32_increments_first_nybble() {
        let ip: Ip6 = "2400:beef::1".parse().unwrap();
        let anon = anonymize_addr(ip, 1);
        assert_eq!(anon.to_string(), "3001:db8::1");
    }

    #[test]
    fn set_assigns_indices_in_first_appearance_order() {
        let set = AddressSet::from_iter(
            ["2400:a::1", "2400:a::2", "2600:b::1"]
                .iter()
                .map(|s| s.parse::<Ip6>().unwrap()),
        );
        let (anon, map) = anonymize_set(&set);
        assert_eq!(map.len(), 2);
        assert_eq!(anon.count_prefixes(32), 2);
        // 2400:a::/32 sorts first, so it becomes 2001:db8::/32.
        assert!(anon.contains("2001:db8::1".parse().unwrap()));
        assert!(anon.contains("3001:db8::1".parse().unwrap()));
    }

    #[test]
    fn anonymization_preserves_low_96_bits() {
        let ip: Ip6 = "2400:beef:aaaa:bbbb:cccc:dddd:eeee:ffff".parse().unwrap();
        let anon = anonymize_addr(ip, 0);
        assert_eq!(anon.value() & (!0u128 >> 32), ip.value() & (!0u128 >> 32));
    }

    #[test]
    fn embedded_v4_first_octet_becomes_127() {
        let v4 = u32::from_be_bytes([203, 0, 113, 9]);
        assert_eq!(anonymize_embedded_v4(v4).to_be_bytes(), [127, 0, 113, 9]);
    }
}
