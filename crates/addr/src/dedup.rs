//! A fast open-addressing dedup set for [`Ip6`] keys.
//!
//! The generation hot paths (a million candidate draws per `repro
//! --full` run) spend a surprising share of their time in
//! `HashSet<Ip6>`: SipHash is keyed and DoS-resistant, which none of
//! our deterministic, in-process dedup loops need. [`DedupSet`] is
//! the minimal replacement: linear-probing open addressing over a
//! power-of-two table, a multiply–xor–shift hash over the two 64-bit
//! halves of the address, a separate occupancy bitmap (so `::` needs
//! no sentinel), and nothing but `insert`. Membership falls out of
//! `insert`'s return value, exactly like `HashSet::insert`.
//!
//! ```
//! use eip_addr::{DedupSet, Ip6};
//!
//! let mut set = DedupSet::with_capacity(4);
//! assert!(set.insert(Ip6(0)));       // `::` is a valid key
//! assert!(!set.insert(Ip6(0)));
//! assert!(set.insert(Ip6(7)));
//! assert_eq!(set.len(), 2);
//! ```

use crate::ip6::Ip6;

/// An insert-only hash set of IPv6 addresses with a fast
/// deterministic hash. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct DedupSet {
    /// Key slots; meaningful only where the occupancy bit is set.
    keys: Vec<u128>,
    /// One bit per slot.
    occupied: Vec<u64>,
    /// `keys.len() - 1`; the table length is a power of two.
    mask: usize,
    /// Number of inserted keys.
    len: usize,
}

impl DedupSet {
    /// A set sized for roughly `n` keys without growing (the table
    /// starts at twice the next power of two, keeping the load factor
    /// at most ½).
    pub fn with_capacity(n: usize) -> Self {
        let slots = (n.max(4) * 2).next_power_of_two();
        DedupSet {
            keys: vec![0u128; slots],
            occupied: vec![0u64; slots.div_ceil(64)],
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of distinct keys inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fibonacci-style multiply–xor–shift over both halves; the high
    /// bits feed the table index, so the constant's avalanche matters
    /// more than its provenance (SplitMix64's increment).
    #[inline]
    fn slot_of(&self, v: u128) -> usize {
        let mixed =
            ((v >> 64) as u64 ^ (v as u64).rotate_left(32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let h = mixed ^ (mixed >> 29);
        (h as usize) & self.mask
    }

    #[inline]
    fn is_occupied(&self, slot: usize) -> bool {
        self.occupied[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    #[inline]
    fn mark_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
    }

    /// Membership test. `&self`, so a populated set can screen
    /// candidates from many shards at once.
    pub fn contains(&self, ip: Ip6) -> bool {
        let v = ip.value();
        let mut slot = self.slot_of(v);
        while self.is_occupied(slot) {
            if self.keys[slot] == v {
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
        false
    }

    /// Inserts a key; returns `true` if it was not present before
    /// (the `HashSet::insert` contract). Amortized O(1); the table
    /// doubles when the load factor would pass ½.
    pub fn insert(&mut self, ip: Ip6) -> bool {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let v = ip.value();
        let mut slot = self.slot_of(v);
        while self.is_occupied(slot) {
            if self.keys[slot] == v {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
        self.keys[slot] = v;
        self.mark_occupied(slot);
        self.len += 1;
        true
    }

    /// Doubles the table and rehashes every key.
    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_occ = std::mem::take(&mut self.occupied);
        let slots = (old_keys.len() * 2).max(8);
        self.keys = vec![0u128; slots];
        self.occupied = vec![0u64; slots.div_ceil(64)];
        self.mask = slots - 1;
        for (slot, &v) in old_keys.iter().enumerate() {
            if old_occ[slot >> 6] & (1u64 << (slot & 63)) != 0 {
                let mut s = self.slot_of(v);
                while self.is_occupied(s) {
                    s = (s + 1) & self.mask;
                }
                self.keys[s] = v;
                self.mark_occupied(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_contract_matches_hashset() {
        let mut fast = DedupSet::with_capacity(8);
        let mut reference: HashSet<Ip6> = HashSet::new();
        // A duplicate-heavy pseudo-random stream, including 0.
        let mut x = 0u128;
        for i in 0..50_000u128 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 20_000;
            let ip = Ip6(x);
            assert_eq!(fast.contains(ip), reference.contains(&ip), "key {x}");
            assert_eq!(fast.insert(ip), reference.insert(ip), "key {x}");
            assert!(fast.contains(ip));
        }
        assert_eq!(fast.len(), reference.len());
        assert!(!fast.is_empty());
    }

    #[test]
    fn zero_and_max_are_ordinary_keys() {
        let mut s = DedupSet::with_capacity(2);
        assert!(s.insert(Ip6(0)));
        assert!(s.insert(Ip6(u128::MAX)));
        assert!(!s.insert(Ip6(0)));
        assert!(!s.insert(Ip6(u128::MAX)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = DedupSet::with_capacity(1);
        for i in 0..10_000u128 {
            assert!(s.insert(Ip6(i << 64)), "key {i}");
        }
        assert_eq!(s.len(), 10_000);
        for i in 0..10_000u128 {
            assert!(!s.insert(Ip6(i << 64)));
        }
    }
}
