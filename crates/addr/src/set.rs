//! Deduplicated address collections and the sampling operations used
//! by the paper's evaluation.
//!
//! The evaluation (§5.5) trains on a *random sample of 1K addresses*
//! and tests on the remainder; the aggregate analyses (§5.1) use
//! *stratified sampling*, randomly selecting 1K addresses per /32
//! prefix so no operator dominates. [`AddressSet`] provides exactly
//! those operations, with a small self-contained deterministic RNG
//! ([`SplitMix64`]) so the substrate stays dependency-free and every
//! experiment is reproducible from a seed.

use std::collections::HashSet;

use crate::error::EipError;
use crate::ip6::Ip6;
use crate::prefix::Prefix;

/// A sorted, deduplicated set of IPv6 addresses.
///
/// Internally a sorted `Vec<Ip6>`; membership tests are a binary
/// search, iteration is in increasing numeric order, and all the
/// counting operations (distinct prefixes at a given length, distinct
/// /64s) are simple scans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddressSet {
    addrs: Vec<Ip6>,
}

impl AddressSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AddressSet { addrs: Vec::new() }
    }

    /// Builds a set from any address iterator, sorting and removing
    /// duplicates. (Also available through the `FromIterator` trait;
    /// the inherent method reads better at call sites.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        let mut addrs: Vec<Ip6> = iter.into_iter().collect();
        addrs.sort_unstable();
        addrs.dedup();
        AddressSet { addrs }
    }

    /// Builds a set from a vector that is **already sorted and
    /// deduplicated** — the streaming-ingestion and set-algebra hot
    /// paths produce exactly that shape, and re-sorting a 100M-entry
    /// sorted vector just to prove it is sorted would double the cost
    /// of the merge that produced it. Debug builds verify the
    /// invariant; release builds trust the caller.
    pub fn from_sorted(addrs: Vec<Ip6>) -> Self {
        debug_assert!(
            addrs.windows(2).all(|w| w[0] < w[1]),
            "from_sorted input must be strictly increasing"
        );
        AddressSet { addrs }
    }

    /// Parses one address per line, ignoring blank lines and lines
    /// starting with `#`. Accepts both colon and fixed-width hex
    /// formats. Reports the first offending line as
    /// [`EipError::Parse`].
    pub fn parse_lines(text: &str) -> Result<Self, EipError> {
        let mut v = Vec::new();
        for (no, line) in text.lines().enumerate() {
            if let Some(ip) = parse_address_line(no + 1, line)? {
                v.push(ip);
            }
        }
        Ok(Self::from_iter(v))
    }

    /// Number of unique addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, ip: Ip6) -> bool {
        self.addrs.binary_search(&ip).is_ok()
    }

    /// Iterates addresses in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Ip6> + '_ {
        self.addrs.iter().copied()
    }

    /// Borrow the sorted backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Ip6] {
        &self.addrs
    }

    /// Inserts one address, keeping order; returns `false` if it was
    /// already present. O(n) worst case — bulk construction should use
    /// [`AddressSet::from_iter`].
    pub fn insert(&mut self, ip: Ip6) -> bool {
        match self.addrs.binary_search(&ip) {
            Ok(_) => false,
            Err(pos) => {
                self.addrs.insert(pos, ip);
                true
            }
        }
    }

    /// Set union. Both operands are already sorted, so this is one
    /// linear two-pointer merge ([`merge_sorted_dedup`]) — not the
    /// collect-and-re-sort the original implementation paid.
    pub fn union(&self, other: &AddressSet) -> AddressSet {
        AddressSet {
            addrs: merge_sorted_dedup(&self.addrs, &other.addrs),
        }
    }

    /// Addresses of `self` not present in `other`: a linear merge
    /// walk over the two sorted vectors (the old implementation ran
    /// one binary search per element of `self`).
    pub fn difference(&self, other: &AddressSet) -> AddressSet {
        let mut out = Vec::new();
        let mut j = 0usize;
        for &ip in &self.addrs {
            while j < other.addrs.len() && other.addrs[j] < ip {
                j += 1;
            }
            if other.addrs.get(j) != Some(&ip) {
                out.push(ip);
            }
        }
        AddressSet { addrs: out }
    }

    /// Keeps only addresses inside `prefix`.
    pub fn restrict(&self, prefix: Prefix) -> AddressSet {
        // The backing vector is sorted, so the members of a prefix
        // form one contiguous run.
        let lo = self.addrs.partition_point(|&a| a < prefix.first());
        let hi = self.addrs.partition_point(|&a| a <= prefix.last());
        AddressSet {
            addrs: self.addrs[lo..hi].to_vec(),
        }
    }

    /// Distinct `len`-bit prefixes covering the set, in order.
    pub fn distinct_prefixes(&self, len: u8) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = Vec::new();
        for &ip in &self.addrs {
            let p = Prefix::new(ip, len);
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Number of distinct `len`-bit prefixes (aggregates) in the set.
    /// This is the `A(b)` count underlying the ACR metric.
    pub fn count_prefixes(&self, len: u8) -> usize {
        let mut count = 0usize;
        let mut last: Option<Ip6> = None;
        for &ip in &self.addrs {
            let net = ip.network(len);
            if last != Some(net) {
                count += 1;
                last = Some(net);
            }
        }
        count
    }

    /// The distinct /64 networks of the set — the paper's "subnets".
    pub fn slash64s(&self) -> Vec<Ip6> {
        let mut out: Vec<Ip6> = Vec::new();
        for &ip in &self.addrs {
            let net = ip.slash64();
            if out.last() != Some(&net) {
                out.push(net);
            }
        }
        out
    }

    /// Splits the set into a uniform random sample of `k` addresses
    /// (the training set) and the remainder (the test set), matching
    /// §5.5's "randomly selected 1K IPs as the training set, and used
    /// the remaining part as the testing set".
    ///
    /// If `k >= len()` the whole set is returned as the sample and the
    /// remainder is empty.
    pub fn split_sample(&self, k: usize, rng: &mut SplitMix64) -> (AddressSet, AddressSet) {
        if k >= self.len() {
            return (self.clone(), AddressSet::new());
        }
        // Floyd's algorithm for a uniform k-subset of indices.
        let n = self.len();
        let mut chosen: HashSet<usize> = HashSet::with_capacity(k);
        for j in (n - k)..n {
            let t = (rng.next_u64() as usize) % (j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut sample = Vec::with_capacity(k);
        let mut rest = Vec::with_capacity(n - k);
        for (i, &ip) in self.addrs.iter().enumerate() {
            if chosen.contains(&i) {
                sample.push(ip);
            } else {
                rest.push(ip);
            }
        }
        (AddressSet { addrs: sample }, AddressSet { addrs: rest })
    }

    /// Stratified sample: at most `k` random addresses from each /32
    /// prefix, as §3 does to keep large operators from dominating the
    /// aggregate datasets.
    pub fn stratified_sample(&self, per_slash32: usize, rng: &mut SplitMix64) -> AddressSet {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.addrs.len() {
            let net = self.addrs[start].network(32);
            let end = self.addrs.partition_point(|&a| a.network(32) <= net);
            let stratum = AddressSet {
                addrs: self.addrs[start..end].to_vec(),
            };
            let (sample, _) = stratum.split_sample(per_slash32, rng);
            out.extend(sample.iter());
            start = end;
        }
        Self::from_iter(out)
    }
}

impl FromIterator<Ip6> for AddressSet {
    fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        AddressSet::from_iter(iter)
    }
}

/// Merges two sorted, deduplicated [`Ip6`] slices into one sorted,
/// deduplicated vector — the linear two-pointer merge behind
/// [`AddressSet::union`] and the streaming-ingestion run accumulator
/// in `entropy_ip::ingest`. Equal elements appear once.
pub fn merge_sorted_dedup(a: &[Ip6], b: &[Ip6]) -> Vec<Ip6> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Marker error of [`parse_address_slice`]: the line is neither
/// blank, a comment, nor a valid address. Carries nothing — the
/// caller owns the line bytes and the line number, so it renders the
/// message (allocation happens only on the failure path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLine;

/// Classifies one raw input line without allocating: `Ok(None)` for
/// blank lines and `#` comments, `Ok(Some(ip))` for an address in
/// colon or fixed-width hex format, [`InvalidLine`] otherwise.
///
/// This is the single definition of the line format — the chunked
/// streaming parser calls it directly on byte slices of the input
/// buffer, and [`parse_address_bytes`]/[`parse_address_line`] wrap it
/// with the canonical error message, so the accepted formats cannot
/// diverge between the batch and streaming ingestion paths. A
/// trailing `\r` (CRLF input) is trimmed along with other ASCII
/// whitespace; bytes that are not valid UTF-8 are an [`InvalidLine`].
pub fn parse_address_slice(line: &[u8]) -> Result<Option<Ip6>, InvalidLine> {
    let line = line.trim_ascii();
    if line.is_empty() || line[0] == b'#' {
        return Ok(None);
    }
    std::str::from_utf8(line)
        .ok()
        .and_then(|s| s.parse::<Ip6>().ok())
        .map(Some)
        .ok_or(InvalidLine)
}

/// [`parse_address_slice`] plus the canonical error: a failed line is
/// reported as [`EipError::Parse`] naming the 1-based line number.
/// The `format!` runs only on failure — the success path allocates
/// nothing.
pub fn parse_address_bytes(no: usize, line: &[u8]) -> Result<Option<Ip6>, EipError> {
    parse_address_slice(line).map_err(|InvalidLine| invalid_line_error(no, line))
}

/// Renders the canonical bad-line error for a 1-based line number and
/// the raw line bytes (shown trimmed, lossily decoded). Shared by the
/// serial reader and the chunked streaming parser so both report a
/// byte-identical message for the same input.
pub fn invalid_line_error(no: usize, line: &[u8]) -> EipError {
    let shown = String::from_utf8_lossy(line.trim_ascii()).into_owned();
    EipError::Parse(format!("line {no}: invalid address: {shown}"))
}

/// Parses one line of an address list: `Ok(None)` for blank lines and
/// `#` comments, `Ok(Some(ip))` for an address in colon or
/// fixed-width hex format, and [`EipError::Parse`] naming the 1-based
/// line number otherwise. (A thin `&str` front for
/// [`parse_address_bytes`].)
pub fn parse_address_line(no: usize, line: &str) -> Result<Option<Ip6>, EipError> {
    parse_address_bytes(no, line.as_bytes())
}

/// Incremental [`AddressSet`] construction for streaming ingestion.
///
/// Addresses are buffered and periodically compacted (sort + dedup),
/// so memory stays proportional to the number of *distinct* addresses
/// seen, not the raw stream length — feeding a line reader with heavy
/// duplication (e.g. repeated flow records) does not balloon the
/// buffer. `finish` yields the same set `AddressSet::from_iter` would.
///
/// ```
/// use eip_addr::{AddressSetBuilder, Ip6};
///
/// let mut b = AddressSetBuilder::new();
/// for i in 0..100u128 {
///     b.push(Ip6(i % 10)); // 90% duplicates
/// }
/// assert_eq!(b.finish().len(), 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AddressSetBuilder {
    addrs: Vec<Ip6>,
    /// Length of the sorted, deduplicated prefix of `addrs`.
    compacted: usize,
}

impl AddressSetBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        AddressSetBuilder::default()
    }

    /// Adds one address.
    #[inline]
    pub fn push(&mut self, ip: Ip6) {
        self.addrs.push(ip);
        // Compact when the unsorted tail outgrows the distinct
        // prefix: amortized O(n log n) overall, and the buffer never
        // exceeds ~2x the distinct count (plus a small constant).
        if self.addrs.len() - self.compacted > self.compacted.max(1024) {
            self.compact();
        }
    }

    /// Adds every address of an iterator.
    pub fn extend<I: IntoIterator<Item = Ip6>>(&mut self, ips: I) {
        for ip in ips {
            self.push(ip);
        }
    }

    /// Number of distinct addresses ingested so far (compacts first).
    pub fn len(&mut self) -> usize {
        self.compact();
        self.addrs.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    fn compact(&mut self) {
        if self.addrs.len() > self.compacted {
            self.addrs.sort_unstable();
            self.addrs.dedup();
            self.compacted = self.addrs.len();
        }
    }

    /// Finalizes the set.
    pub fn finish(mut self) -> AddressSet {
        self.compact();
        AddressSet { addrs: self.addrs }
    }
}

impl FromIterator<Ip6> for AddressSetBuilder {
    fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        let mut b = AddressSetBuilder::new();
        b.extend(iter);
        b
    }
}

impl<'a> IntoIterator for &'a AddressSet {
    type Item = Ip6;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Ip6>>;

    fn into_iter(self) -> Self::IntoIter {
        self.addrs.iter().copied()
    }
}

/// A tiny deterministic PRNG (SplitMix64, Steele et al. 2014).
///
/// Kept here so the address substrate has no external dependencies
/// while every sampling operation stays reproducible from a seed.
/// Statistical quality is more than adequate for sampling; the
/// model-facing crates use `rand` for generation proper.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`), by rejection-free
    /// multiply-shift (adequate bias for sampling purposes when
    /// `bound` is far below 2^64, which holds for all our uses).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips(strs: &[&str]) -> AddressSet {
        AddressSet::from_iter(strs.iter().map(|s| s.parse::<Ip6>().unwrap()))
    }

    #[test]
    fn dedups_and_sorts() {
        let s = ips(&["2001:db8::2", "2001:db8::1", "2001:db8::2"]);
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert!(v[0] < v[1]);
    }

    #[test]
    fn parse_lines_skips_comments() {
        let s = AddressSet::parse_lines("# hdr\n2001:db8::1\n\n20010db8000000000000000000000002\n")
            .unwrap();
        assert_eq!(s.len(), 2);
        match AddressSet::parse_lines("2001:db8::1\nbogus\n") {
            Err(EipError::Parse(msg)) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("expected typed parse error, got {other:?}"),
        }
    }

    #[test]
    fn membership_and_restrict() {
        let s = ips(&["2001:db8::1", "2001:db8:1::1", "2001:db9::1"]);
        assert!(s.contains("2001:db8::1".parse().unwrap()));
        assert!(!s.contains("2001:db8::2".parse().unwrap()));
        let r = s.restrict("2001:db8::/32".parse().unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn prefix_counting() {
        let s = ips(&[
            "2001:db8::1",
            "2001:db8::2",
            "2001:db8:0:1::1",
            "2001:db9::1",
        ]);
        assert_eq!(s.count_prefixes(32), 2);
        assert_eq!(s.count_prefixes(64), 3);
        assert_eq!(s.count_prefixes(128), 4);
        assert_eq!(s.count_prefixes(0), 1);
        assert_eq!(s.slash64s().len(), 3);
    }

    #[test]
    fn split_sample_partitions() {
        let all: AddressSet = (0..1000u128).map(|i| Ip6(0x2001_0db8 << 96 | i)).collect();
        let mut rng = SplitMix64::new(7);
        let (train, test) = all.split_sample(100, &mut rng);
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 900);
        assert_eq!(train.union(&test), all);
        assert!(train.difference(&all).is_empty());
    }

    #[test]
    fn split_sample_uniformity_rough() {
        // Each element should appear in a 10% sample roughly 10% of
        // the time across repetitions.
        let all: AddressSet = (0..100u128).map(Ip6).collect();
        let mut rng = SplitMix64::new(42);
        let mut hits = vec![0u32; 100];
        for _ in 0..200 {
            let (train, _) = all.split_sample(10, &mut rng);
            for ip in train.iter() {
                hits[ip.value() as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > 2 && h < 60,
                "element {i} sampled {h} times of ~20 expected"
            );
        }
    }

    #[test]
    fn stratified_caps_each_slash32() {
        let mut v = Vec::new();
        for i in 0..500u128 {
            v.push(Ip6((0x2001_0db8u128 << 96) | i)); // /32 A: 500 addrs
        }
        for i in 0..5u128 {
            v.push(Ip6((0x2001_0db9u128 << 96) | i)); // /32 B: 5 addrs
        }
        let s = AddressSet::from_iter(v);
        let mut rng = SplitMix64::new(1);
        let sample = s.stratified_sample(50, &mut rng);
        let a = sample.restrict("2001:db8::/32".parse().unwrap());
        let b = sample.restrict("2001:db9::/32".parse().unwrap());
        assert_eq!(a.len(), 50);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn builder_matches_from_iter() {
        // A duplicate-heavy, unsorted stream in several shapes.
        let stream: Vec<Ip6> = (0..10_000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i * 7919) % 512)))
            .collect();
        let mut b = AddressSetBuilder::new();
        for &ip in &stream {
            b.push(ip);
        }
        let built = b.finish();
        assert_eq!(built, AddressSet::from_iter(stream.iter().copied()));
        assert_eq!(built.len(), 512);
        // extend + FromIterator agree; len() reports distinct count.
        let mut b2: AddressSetBuilder = stream.iter().copied().collect();
        assert_eq!(b2.len(), 512);
        assert!(!b2.is_empty());
        assert_eq!(b2.finish(), built);
        assert!(AddressSetBuilder::new().finish().is_empty());
    }

    #[test]
    fn builder_memory_stays_near_distinct_count() {
        // 100K pushes of 256 distinct values: the internal buffer must
        // stay bounded by ~2x distinct + compaction slack, not 100K.
        let mut b = AddressSetBuilder::new();
        for i in 0..100_000u128 {
            b.push(Ip6(i % 256));
        }
        assert!(
            b.addrs.capacity() < 8_192,
            "buffer grew to {}",
            b.addrs.capacity()
        );
        assert_eq!(b.finish().len(), 256);
    }

    #[test]
    fn union_difference_match_rebuild_reference() {
        // The linear merge/subtract must equal the old
        // collect-and-re-sort implementations on overlapping,
        // disjoint, nested, and empty operand shapes.
        let shapes: [(Vec<u128>, Vec<u128>); 5] = [
            (vec![1, 3, 5, 7], vec![2, 3, 6, 7, 9]),
            (vec![1, 2, 3], vec![10, 11]),
            (vec![5, 6, 7], vec![5, 6, 7]),
            (vec![], vec![4, 8]),
            (vec![0, u128::MAX], vec![]),
        ];
        for (a, b) in shapes {
            let sa: AddressSet = a.iter().copied().map(Ip6).collect();
            let sb: AddressSet = b.iter().copied().map(Ip6).collect();
            let union_ref = AddressSet::from_iter(sa.iter().chain(sb.iter()));
            let diff_ref = AddressSet::from_iter(sa.iter().filter(|&ip| !sb.contains(ip)));
            assert_eq!(sa.union(&sb), union_ref, "union {sa:?} {sb:?}");
            assert_eq!(sb.union(&sa), union_ref, "union commutes");
            assert_eq!(sa.difference(&sb), diff_ref, "difference {sa:?} {sb:?}");
        }
    }

    #[test]
    fn merge_sorted_dedup_merges_and_dedups() {
        let a: Vec<Ip6> = [1u128, 3, 5].into_iter().map(Ip6).collect();
        let b: Vec<Ip6> = [2u128, 3, 4, 5, 9].into_iter().map(Ip6).collect();
        let m = merge_sorted_dedup(&a, &b);
        assert_eq!(m, [1u128, 2, 3, 4, 5, 9].map(Ip6).to_vec());
        assert_eq!(merge_sorted_dedup(&a, &[]), a);
        assert_eq!(merge_sorted_dedup(&[], &b), b);
        assert!(merge_sorted_dedup(&[], &[]).is_empty());
    }

    #[test]
    fn from_sorted_trusts_sorted_input() {
        let v: Vec<Ip6> = [1u128, 2, 9].into_iter().map(Ip6).collect();
        let s = AddressSet::from_sorted(v.clone());
        assert_eq!(s, AddressSet::from_iter(v));
    }

    #[test]
    fn parse_address_slice_matches_str_parser() {
        // The no-alloc slice classifier and the &str wrapper agree on
        // every line shape, including CRLF and padding.
        let cases: [(&str, Option<&str>); 8] = [
            ("2001:db8::1", Some("2001:db8::1")),
            ("  2001:db8::2  ", Some("2001:db8::2")),
            ("2001:db8::3\r", Some("2001:db8::3")),
            ("20010db8000000000000000000000002", Some("::")), // placeholder, checked below
            ("# comment", None),
            ("", None),
            ("   ", None),
            ("\r", None),
        ];
        for (line, expect_some) in cases {
            let got = parse_address_slice(line.as_bytes()).unwrap();
            assert_eq!(got.is_some(), expect_some.is_some(), "{line:?}");
            let via_str = parse_address_line(1, line).unwrap();
            assert_eq!(got, via_str, "{line:?}");
        }
        assert_eq!(
            parse_address_slice(b"20010db8000000000000000000000002").unwrap(),
            Some(Ip6(0x2001_0db8u128 << 96 | 2))
        );
        assert_eq!(parse_address_slice(b"bogus"), Err(InvalidLine));
        assert_eq!(parse_address_slice(b"\xff\xfe"), Err(InvalidLine));
        // The formatted error is byte-identical between the bytes and
        // str fronts.
        assert_eq!(
            parse_address_bytes(7, b"  bogus \r").unwrap_err(),
            EipError::Parse("line 7: invalid address: bogus".into())
        );
        assert_eq!(
            parse_address_bytes(7, b"bogus").unwrap_err(),
            parse_address_line(7, "bogus").unwrap_err()
        );
    }

    #[test]
    fn splitmix_below_is_in_range() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
