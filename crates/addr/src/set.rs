//! Deduplicated address collections and the sampling operations used
//! by the paper's evaluation.
//!
//! The evaluation (§5.5) trains on a *random sample of 1K addresses*
//! and tests on the remainder; the aggregate analyses (§5.1) use
//! *stratified sampling*, randomly selecting 1K addresses per /32
//! prefix so no operator dominates. [`AddressSet`] provides exactly
//! those operations, with a small self-contained deterministic RNG
//! ([`SplitMix64`]) so the substrate stays dependency-free and every
//! experiment is reproducible from a seed.

use std::collections::HashSet;

use crate::error::EipError;
use crate::ip6::Ip6;
use crate::prefix::Prefix;

/// A sorted, deduplicated set of IPv6 addresses.
///
/// Internally a sorted `Vec<Ip6>`; membership tests are a binary
/// search, iteration is in increasing numeric order, and all the
/// counting operations (distinct prefixes at a given length, distinct
/// /64s) are simple scans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddressSet {
    addrs: Vec<Ip6>,
}

impl AddressSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AddressSet { addrs: Vec::new() }
    }

    /// Builds a set from any address iterator, sorting and removing
    /// duplicates. (Also available through the `FromIterator` trait;
    /// the inherent method reads better at call sites.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        let mut addrs: Vec<Ip6> = iter.into_iter().collect();
        addrs.sort_unstable();
        addrs.dedup();
        AddressSet { addrs }
    }

    /// Parses one address per line, ignoring blank lines and lines
    /// starting with `#`. Accepts both colon and fixed-width hex
    /// formats. Reports the first offending line as
    /// [`EipError::Parse`].
    pub fn parse_lines(text: &str) -> Result<Self, EipError> {
        let mut v = Vec::new();
        for (no, line) in text.lines().enumerate() {
            if let Some(ip) = parse_address_line(no + 1, line)? {
                v.push(ip);
            }
        }
        Ok(Self::from_iter(v))
    }

    /// Number of unique addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, ip: Ip6) -> bool {
        self.addrs.binary_search(&ip).is_ok()
    }

    /// Iterates addresses in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Ip6> + '_ {
        self.addrs.iter().copied()
    }

    /// Borrow the sorted backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Ip6] {
        &self.addrs
    }

    /// Inserts one address, keeping order; returns `false` if it was
    /// already present. O(n) worst case — bulk construction should use
    /// [`AddressSet::from_iter`].
    pub fn insert(&mut self, ip: Ip6) -> bool {
        match self.addrs.binary_search(&ip) {
            Ok(_) => false,
            Err(pos) => {
                self.addrs.insert(pos, ip);
                true
            }
        }
    }

    /// Set union.
    pub fn union(&self, other: &AddressSet) -> AddressSet {
        Self::from_iter(self.iter().chain(other.iter()))
    }

    /// Addresses of `self` not present in `other`.
    pub fn difference(&self, other: &AddressSet) -> AddressSet {
        Self::from_iter(self.iter().filter(|&ip| !other.contains(ip)))
    }

    /// Keeps only addresses inside `prefix`.
    pub fn restrict(&self, prefix: Prefix) -> AddressSet {
        // The backing vector is sorted, so the members of a prefix
        // form one contiguous run.
        let lo = self.addrs.partition_point(|&a| a < prefix.first());
        let hi = self.addrs.partition_point(|&a| a <= prefix.last());
        AddressSet {
            addrs: self.addrs[lo..hi].to_vec(),
        }
    }

    /// Distinct `len`-bit prefixes covering the set, in order.
    pub fn distinct_prefixes(&self, len: u8) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = Vec::new();
        for &ip in &self.addrs {
            let p = Prefix::new(ip, len);
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Number of distinct `len`-bit prefixes (aggregates) in the set.
    /// This is the `A(b)` count underlying the ACR metric.
    pub fn count_prefixes(&self, len: u8) -> usize {
        let mut count = 0usize;
        let mut last: Option<Ip6> = None;
        for &ip in &self.addrs {
            let net = ip.network(len);
            if last != Some(net) {
                count += 1;
                last = Some(net);
            }
        }
        count
    }

    /// The distinct /64 networks of the set — the paper's "subnets".
    pub fn slash64s(&self) -> Vec<Ip6> {
        let mut out: Vec<Ip6> = Vec::new();
        for &ip in &self.addrs {
            let net = ip.slash64();
            if out.last() != Some(&net) {
                out.push(net);
            }
        }
        out
    }

    /// Splits the set into a uniform random sample of `k` addresses
    /// (the training set) and the remainder (the test set), matching
    /// §5.5's "randomly selected 1K IPs as the training set, and used
    /// the remaining part as the testing set".
    ///
    /// If `k >= len()` the whole set is returned as the sample and the
    /// remainder is empty.
    pub fn split_sample(&self, k: usize, rng: &mut SplitMix64) -> (AddressSet, AddressSet) {
        if k >= self.len() {
            return (self.clone(), AddressSet::new());
        }
        // Floyd's algorithm for a uniform k-subset of indices.
        let n = self.len();
        let mut chosen: HashSet<usize> = HashSet::with_capacity(k);
        for j in (n - k)..n {
            let t = (rng.next_u64() as usize) % (j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut sample = Vec::with_capacity(k);
        let mut rest = Vec::with_capacity(n - k);
        for (i, &ip) in self.addrs.iter().enumerate() {
            if chosen.contains(&i) {
                sample.push(ip);
            } else {
                rest.push(ip);
            }
        }
        (AddressSet { addrs: sample }, AddressSet { addrs: rest })
    }

    /// Stratified sample: at most `k` random addresses from each /32
    /// prefix, as §3 does to keep large operators from dominating the
    /// aggregate datasets.
    pub fn stratified_sample(&self, per_slash32: usize, rng: &mut SplitMix64) -> AddressSet {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.addrs.len() {
            let net = self.addrs[start].network(32);
            let end = self.addrs.partition_point(|&a| a.network(32) <= net);
            let stratum = AddressSet {
                addrs: self.addrs[start..end].to_vec(),
            };
            let (sample, _) = stratum.split_sample(per_slash32, rng);
            out.extend(sample.iter());
            start = end;
        }
        Self::from_iter(out)
    }
}

impl FromIterator<Ip6> for AddressSet {
    fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        AddressSet::from_iter(iter)
    }
}

/// Parses one line of an address list: `Ok(None)` for blank lines and
/// `#` comments, `Ok(Some(ip))` for an address in colon or
/// fixed-width hex format, and [`EipError::Parse`] naming the 1-based
/// line number otherwise.
///
/// This is the single definition of the line format — shared by
/// [`AddressSet::parse_lines`] and `entropy_ip`'s streaming
/// `Pipeline::profile_lines`, so the accepted formats and the error
/// wording cannot diverge between the batch and streaming ingestion
/// paths.
pub fn parse_address_line(no: usize, line: &str) -> Result<Option<Ip6>, EipError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    line.parse::<Ip6>()
        .map(Some)
        .map_err(|_| EipError::Parse(format!("line {no}: invalid address: {line}")))
}

/// Incremental [`AddressSet`] construction for streaming ingestion.
///
/// Addresses are buffered and periodically compacted (sort + dedup),
/// so memory stays proportional to the number of *distinct* addresses
/// seen, not the raw stream length — feeding a line reader with heavy
/// duplication (e.g. repeated flow records) does not balloon the
/// buffer. `finish` yields the same set `AddressSet::from_iter` would.
///
/// ```
/// use eip_addr::{AddressSetBuilder, Ip6};
///
/// let mut b = AddressSetBuilder::new();
/// for i in 0..100u128 {
///     b.push(Ip6(i % 10)); // 90% duplicates
/// }
/// assert_eq!(b.finish().len(), 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AddressSetBuilder {
    addrs: Vec<Ip6>,
    /// Length of the sorted, deduplicated prefix of `addrs`.
    compacted: usize,
}

impl AddressSetBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        AddressSetBuilder::default()
    }

    /// Adds one address.
    #[inline]
    pub fn push(&mut self, ip: Ip6) {
        self.addrs.push(ip);
        // Compact when the unsorted tail outgrows the distinct
        // prefix: amortized O(n log n) overall, and the buffer never
        // exceeds ~2x the distinct count (plus a small constant).
        if self.addrs.len() - self.compacted > self.compacted.max(1024) {
            self.compact();
        }
    }

    /// Adds every address of an iterator.
    pub fn extend<I: IntoIterator<Item = Ip6>>(&mut self, ips: I) {
        for ip in ips {
            self.push(ip);
        }
    }

    /// Number of distinct addresses ingested so far (compacts first).
    pub fn len(&mut self) -> usize {
        self.compact();
        self.addrs.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    fn compact(&mut self) {
        if self.addrs.len() > self.compacted {
            self.addrs.sort_unstable();
            self.addrs.dedup();
            self.compacted = self.addrs.len();
        }
    }

    /// Finalizes the set.
    pub fn finish(mut self) -> AddressSet {
        self.compact();
        AddressSet { addrs: self.addrs }
    }
}

impl FromIterator<Ip6> for AddressSetBuilder {
    fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        let mut b = AddressSetBuilder::new();
        b.extend(iter);
        b
    }
}

impl<'a> IntoIterator for &'a AddressSet {
    type Item = Ip6;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Ip6>>;

    fn into_iter(self) -> Self::IntoIter {
        self.addrs.iter().copied()
    }
}

/// A tiny deterministic PRNG (SplitMix64, Steele et al. 2014).
///
/// Kept here so the address substrate has no external dependencies
/// while every sampling operation stays reproducible from a seed.
/// Statistical quality is more than adequate for sampling; the
/// model-facing crates use `rand` for generation proper.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`), by rejection-free
    /// multiply-shift (adequate bias for sampling purposes when
    /// `bound` is far below 2^64, which holds for all our uses).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips(strs: &[&str]) -> AddressSet {
        AddressSet::from_iter(strs.iter().map(|s| s.parse::<Ip6>().unwrap()))
    }

    #[test]
    fn dedups_and_sorts() {
        let s = ips(&["2001:db8::2", "2001:db8::1", "2001:db8::2"]);
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert!(v[0] < v[1]);
    }

    #[test]
    fn parse_lines_skips_comments() {
        let s = AddressSet::parse_lines("# hdr\n2001:db8::1\n\n20010db8000000000000000000000002\n")
            .unwrap();
        assert_eq!(s.len(), 2);
        match AddressSet::parse_lines("2001:db8::1\nbogus\n") {
            Err(EipError::Parse(msg)) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("expected typed parse error, got {other:?}"),
        }
    }

    #[test]
    fn membership_and_restrict() {
        let s = ips(&["2001:db8::1", "2001:db8:1::1", "2001:db9::1"]);
        assert!(s.contains("2001:db8::1".parse().unwrap()));
        assert!(!s.contains("2001:db8::2".parse().unwrap()));
        let r = s.restrict("2001:db8::/32".parse().unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn prefix_counting() {
        let s = ips(&[
            "2001:db8::1",
            "2001:db8::2",
            "2001:db8:0:1::1",
            "2001:db9::1",
        ]);
        assert_eq!(s.count_prefixes(32), 2);
        assert_eq!(s.count_prefixes(64), 3);
        assert_eq!(s.count_prefixes(128), 4);
        assert_eq!(s.count_prefixes(0), 1);
        assert_eq!(s.slash64s().len(), 3);
    }

    #[test]
    fn split_sample_partitions() {
        let all: AddressSet = (0..1000u128).map(|i| Ip6(0x2001_0db8 << 96 | i)).collect();
        let mut rng = SplitMix64::new(7);
        let (train, test) = all.split_sample(100, &mut rng);
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 900);
        assert_eq!(train.union(&test), all);
        assert!(train.difference(&all).is_empty());
    }

    #[test]
    fn split_sample_uniformity_rough() {
        // Each element should appear in a 10% sample roughly 10% of
        // the time across repetitions.
        let all: AddressSet = (0..100u128).map(Ip6).collect();
        let mut rng = SplitMix64::new(42);
        let mut hits = vec![0u32; 100];
        for _ in 0..200 {
            let (train, _) = all.split_sample(10, &mut rng);
            for ip in train.iter() {
                hits[ip.value() as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > 2 && h < 60,
                "element {i} sampled {h} times of ~20 expected"
            );
        }
    }

    #[test]
    fn stratified_caps_each_slash32() {
        let mut v = Vec::new();
        for i in 0..500u128 {
            v.push(Ip6((0x2001_0db8u128 << 96) | i)); // /32 A: 500 addrs
        }
        for i in 0..5u128 {
            v.push(Ip6((0x2001_0db9u128 << 96) | i)); // /32 B: 5 addrs
        }
        let s = AddressSet::from_iter(v);
        let mut rng = SplitMix64::new(1);
        let sample = s.stratified_sample(50, &mut rng);
        let a = sample.restrict("2001:db8::/32".parse().unwrap());
        let b = sample.restrict("2001:db9::/32".parse().unwrap());
        assert_eq!(a.len(), 50);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn builder_matches_from_iter() {
        // A duplicate-heavy, unsorted stream in several shapes.
        let stream: Vec<Ip6> = (0..10_000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i * 7919) % 512)))
            .collect();
        let mut b = AddressSetBuilder::new();
        for &ip in &stream {
            b.push(ip);
        }
        let built = b.finish();
        assert_eq!(built, AddressSet::from_iter(stream.iter().copied()));
        assert_eq!(built.len(), 512);
        // extend + FromIterator agree; len() reports distinct count.
        let mut b2: AddressSetBuilder = stream.iter().copied().collect();
        assert_eq!(b2.len(), 512);
        assert!(!b2.is_empty());
        assert_eq!(b2.finish(), built);
        assert!(AddressSetBuilder::new().finish().is_empty());
    }

    #[test]
    fn builder_memory_stays_near_distinct_count() {
        // 100K pushes of 256 distinct values: the internal buffer must
        // stay bounded by ~2x distinct + compaction slack, not 100K.
        let mut b = AddressSetBuilder::new();
        for i in 0..100_000u128 {
            b.push(Ip6(i % 256));
        }
        assert!(
            b.addrs.capacity() < 8_192,
            "buffer grew to {}",
            b.addrs.capacity()
        );
        assert_eq!(b.finish().len(), 256);
    }

    #[test]
    fn splitmix_below_is_in_range() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
