//! CIDR prefixes over [`Ip6`].
//!
//! The paper reasons about address structure in terms of prefixes:
//! RIRs allocate /32s to operators (§4.2's hard segment boundary),
//! /64 separates network from interface identifier, and evaluation
//! counts "new /64s" discovered by scanning (Table 4).

use std::fmt;
use std::str::FromStr;

use crate::ip6::Ip6;

/// An IPv6 CIDR prefix: a network number and a length in bits.
///
/// The network number is always stored in canonical form (host bits
/// zeroed), so two `Prefix` values compare equal iff they denote the
/// same address block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    net: Ip6,
    len: u8,
}

impl Prefix {
    /// Creates the prefix `addr/len`, truncating `addr` to its top
    /// `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn new(addr: Ip6, len: u8) -> Self {
        assert!(len <= 128, "prefix length must be <= 128");
        Prefix {
            net: addr.network(len),
            len,
        }
    }

    /// The canonical network address (host bits zero).
    #[inline]
    pub fn network(self) -> Ip6 {
        self.net
    }

    /// The prefix length in bits.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True only for the zero-length prefix `::/0` (which contains
    /// everything); provided to satisfy the `len`/`is_empty` idiom.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(self, ip: Ip6) -> bool {
        ip.network(self.len) == self.net
    }

    /// Whether `other` is fully contained in (or equal to) `self`.
    #[inline]
    pub fn covers(self, other: Prefix) -> bool {
        other.len >= self.len && self.contains(other.net)
    }

    /// The first address of the block.
    #[inline]
    pub fn first(self) -> Ip6 {
        self.net
    }

    /// The last address of the block.
    #[inline]
    pub fn last(self) -> Ip6 {
        if self.len == 0 {
            Ip6(u128::MAX)
        } else if self.len == 128 {
            self.net
        } else {
            Ip6(self.net.0 | (!0u128 >> self.len))
        }
    }

    /// Number of addresses in the block, saturating at `u128::MAX`
    /// for `::/0`.
    pub fn size(self) -> u128 {
        if self.len == 0 {
            u128::MAX
        } else {
            1u128 << (128 - self.len)
        }
    }

    /// Returns the `i`-th sub-prefix of length `sub_len`.
    ///
    /// For example, `"2001:db8::/32"` with `sub_len = 40` has 256
    /// /40 children, child 0 being `2001:db8::/40` and child 255
    /// being `2001:db8:ff00::/40`.
    ///
    /// # Panics
    /// Panics if `sub_len` is not in `self.len()..=128` or `i` is out
    /// of range.
    pub fn child(self, sub_len: u8, i: u128) -> Prefix {
        assert!(sub_len >= self.len && sub_len <= 128, "bad child length");
        let extra = sub_len - self.len;
        if extra < 128 {
            assert!(i < (1u128 << extra), "child index out of range");
        }
        let addr = Ip6(self.net.0 | (i << (128 - sub_len)));
        Prefix::new(addr, sub_len)
    }

    /// The enclosing prefix of length `sup_len <= self.len()`.
    ///
    /// # Panics
    /// Panics if `sup_len > self.len()`.
    pub fn parent(self, sup_len: u8) -> Prefix {
        assert!(sup_len <= self.len, "parent must be shorter");
        Prefix::new(self.net, sup_len)
    }
}

/// Error returned when parsing a [`Prefix`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsePrefixError;

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid IPv6 prefix (expected addr/len)")
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError)?;
        let addr: Ip6 = addr.parse().map_err(|_| ParsePrefixError)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError)?;
        if len > 128 {
            return Err(ParsePrefixError);
        }
        Ok(Prefix::new(addr, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.net, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(p.to_string(), "2001:db8::/32");
        assert_eq!(p.len(), 32);
    }

    #[test]
    fn canonicalizes_host_bits() {
        let a: Prefix = "2001:db8::1/32".parse().unwrap();
        let b: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn containment() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        assert!(p.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!p.contains("2001:db9::1".parse().unwrap()));
        let q: Prefix = "2001:db8:10::/48".parse().unwrap();
        assert!(p.covers(q));
        assert!(!q.covers(p));
        assert!(p.covers(p));
    }

    #[test]
    fn first_last_size() {
        let p: Prefix = "2001:db8::/126".parse().unwrap();
        assert_eq!(p.size(), 4);
        assert_eq!(p.first().to_string(), "2001:db8::");
        assert_eq!(p.last().to_string(), "2001:db8::3");
        let all: Prefix = "::/0".parse().unwrap();
        assert_eq!(all.size(), u128::MAX);
        assert_eq!(all.last(), Ip6(u128::MAX));
    }

    #[test]
    fn children_and_parents() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        let c = p.child(40, 0x10);
        assert_eq!(c.to_string(), "2001:db8:1000::/40");
        assert_eq!(c.parent(32), p);
    }

    #[test]
    #[should_panic(expected = "child index")]
    fn child_index_bounds() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        p.child(40, 256);
    }

    #[test]
    fn rejects_bad_prefixes() {
        assert!("2001:db8::".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("nope/32".parse::<Prefix>().is_err());
    }
}
