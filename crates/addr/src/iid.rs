//! Interface-identifier (IID) construction helpers.
//!
//! The paper's datasets exhibit several well-known IID families whose
//! signatures Entropy/IP must *discover* rather than be told about
//! (§1): Modified EUI-64 from MAC addresses (the `ff:fe` word at bits
//! 88–104 and the flipped "u" bit at bit 70, per RFC 4291), IPv4
//! addresses embedded in hex, IPv4 addresses written as decimal
//! octets in 16-bit words (observed for dataset R4, §5.3), low-byte
//! static assignments, and pseudo-random privacy IIDs (RFC 4941).
//! The simulated address plans in `eip-netsim` use these builders.

use crate::ip6::Ip6;

/// Builds a Modified EUI-64 interface identifier from a 48-bit MAC
/// address, per RFC 4291 Appendix A: the MAC is split in half,
/// `ff:fe` is inserted in the middle, and the universal/local bit
/// (bit 7 of the first octet, transmitted as bit 70 of the address)
/// is inverted.
pub fn eui64_from_mac(mac: [u8; 6]) -> u64 {
    let b = [
        mac[0] ^ 0x02, // flip the u/l bit
        mac[1],
        mac[2],
        0xff,
        0xfe,
        mac[3],
        mac[4],
        mac[5],
    ];
    u64::from_be_bytes(b)
}

/// Combines a /64 network with a 64-bit interface identifier.
pub fn with_iid(net64: Ip6, iid: u64) -> Ip6 {
    Ip6((net64.value() & (!0u128 << 64)) | u128::from(iid))
}

/// Returns the 64-bit interface identifier (low half) of `ip`.
pub fn iid_of(ip: Ip6) -> u64 {
    (ip.value() & u128::from(u64::MAX)) as u64
}

/// Whether the IID carries the Modified EUI-64 signature: `ff:fe` in
/// octets 3–4 (address bits 88–104).
pub fn looks_like_eui64(iid: u64) -> bool {
    (iid >> 24) & 0xffff == 0xfffe
}

/// Embeds an IPv4 address in the low 32 bits of the IID in *hex*
/// form, e.g. `192.0.2.1` → IID `::c000:0201`. Observed for a subset
/// of dataset S1 (§5.2: "67% of IPv6 addresses encode literal IPv4
/// addresses in segments G-J").
pub fn iid_embed_v4_hex(v4: u32) -> u64 {
    u64::from(v4)
}

/// Embeds an IPv4 address as *decimal octets in 16-bit aligned words*
/// — each octet written in base 10 in its own colon group, as the
/// paper observed for router dataset R4 (§5.3). `192.0.2.54` becomes
/// the IID `0192:0000:0002:0054` where each group reads as the
/// decimal octet value *in hex digits*, i.e. group value = decimal
/// digits interpreted per-nybble.
///
/// Concretely octet 192 is rendered as the hex word `0x0192`.
pub fn iid_embed_v4_decimal_words(v4: u32) -> u64 {
    let o = v4.to_be_bytes();
    let mut out: u64 = 0;
    for oct in o {
        out = (out << 16) | u64::from(decimal_as_hex_word(oct));
    }
    out
}

/// Renders a byte's decimal digits as a hex word: 192 → 0x0192.
fn decimal_as_hex_word(b: u8) -> u16 {
    let hundreds = u16::from(b / 100);
    let tens = u16::from((b / 10) % 10);
    let ones = u16::from(b % 10);
    (hundreds << 8) | (tens << 4) | ones
}

/// Parses a dotted-quad IPv4 string into a `u32`; helper for tests
/// and examples. Returns `None` on malformed input.
pub fn parse_v4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut out: u32 = 0;
    for _ in 0..4 {
        let p: u32 = parts.next()?.parse().ok()?;
        if p > 255 {
            return None;
        }
        out = (out << 8) | p;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eui64_inserts_fffe_and_flips_ubit() {
        // Example from RFC 4291 App. A: MAC 34-56-78-9A-BC-DE
        // -> IID 3656:78ff:fe9a:bcde.
        let iid = eui64_from_mac([0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde]);
        assert_eq!(iid, 0x3656_78ff_fe9a_bcde);
        assert!(looks_like_eui64(iid));
    }

    #[test]
    fn with_iid_replaces_low_half() {
        let net: Ip6 = "2001:db8:1:2::".parse().unwrap();
        let ip = with_iid(net, 0x1234_5678_9abc_def0);
        assert_eq!(ip.to_string(), "2001:db8:1:2:1234:5678:9abc:def0");
        assert_eq!(iid_of(ip), 0x1234_5678_9abc_def0);
    }

    #[test]
    fn v4_hex_embedding() {
        let v4 = parse_v4("192.0.2.1").unwrap();
        assert_eq!(iid_embed_v4_hex(v4), 0xc000_0201);
    }

    #[test]
    fn v4_decimal_word_embedding_matches_r4_pattern() {
        // 127.0.113.54 -> groups 0127:0000:0113:0054 (paper Fig. 8
        // R4's decimal-octet IIDs; cf. Table 3 codes like
        // "0127016000630" which read as decimal octets).
        let v4 = parse_v4("127.0.113.54").unwrap();
        assert_eq!(iid_embed_v4_decimal_words(v4), 0x0127_0000_0113_0054);
    }

    #[test]
    fn decimal_word_digits_stay_below_ten() {
        for b in 0..=255u8 {
            let w = decimal_as_hex_word(b);
            assert!(w >> 8 <= 2, "hundreds digit of {b}");
            assert!((w >> 4) & 0xf <= 9, "tens digit of {b}");
            assert!(w & 0xf <= 9, "ones digit of {b}");
        }
    }

    #[test]
    fn parse_v4_rejects_garbage() {
        assert!(parse_v4("300.0.0.1").is_none());
        assert!(parse_v4("1.2.3").is_none());
        assert!(parse_v4("1.2.3.4.5").is_none());
        assert_eq!(parse_v4("255.255.255.255"), Some(u32::MAX));
    }

    #[test]
    fn non_eui64_not_flagged() {
        assert!(!looks_like_eui64(0x1234_5678_9abc_def0));
    }
}
