//! The [`Ip6`] address value type.
//!
//! Entropy/IP treats an IPv6 address as both a 128-bit integer (for
//! prefix math and ordering) and a string of 32 hex characters (for
//! entropy analysis). `Ip6` supports both views losslessly.

use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

use crate::nybbles::Nybbles;

/// A 128-bit IPv6 address.
///
/// Stored as a plain `u128` in network (big-endian) bit order: the
/// most significant bit of the integer is bit 1 of the address, so
/// nybble 1 (the paper numbers hex character positions 1..=32 left to
/// right) is the top 4 bits.
///
/// `Ip6` is `Copy`, hashes and orders by numeric value, and converts
/// freely to and from [`std::net::Ipv6Addr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip6(pub u128);

impl Ip6 {
    /// The unspecified address `::`.
    pub const UNSPECIFIED: Ip6 = Ip6(0);

    /// Builds an address from eight 16-bit groups, mirroring
    /// [`Ipv6Addr::new`].
    pub fn new(g: [u16; 8]) -> Self {
        let mut v: u128 = 0;
        for x in g {
            v = (v << 16) | u128::from(x);
        }
        Ip6(v)
    }

    /// Returns the raw 128-bit value.
    #[inline]
    pub fn value(self) -> u128 {
        self.0
    }

    /// Returns the hex character (nybble) at 1-based position
    /// `pos` (1..=32), as a value in `0..16`.
    ///
    /// Position 1 is the leftmost character of the fixed-width
    /// representation, exactly as in the paper's Fig. 3.
    ///
    /// # Panics
    /// Panics if `pos` is outside `1..=32`.
    #[inline]
    pub fn nybble(self, pos: usize) -> u8 {
        assert!((1..=32).contains(&pos), "nybble position must be 1..=32");
        ((self.0 >> ((32 - pos) * 4)) & 0xf) as u8
    }

    /// Returns a copy of this address with the nybble at 1-based
    /// position `pos` replaced by `val` (which must be `< 16`).
    ///
    /// # Panics
    /// Panics if `pos` is outside `1..=32` or `val >= 16`.
    #[inline]
    pub fn with_nybble(self, pos: usize, val: u8) -> Ip6 {
        assert!((1..=32).contains(&pos), "nybble position must be 1..=32");
        assert!(val < 16, "nybble value must be < 16");
        let shift = (32 - pos) * 4;
        Ip6((self.0 & !(0xfu128 << shift)) | (u128::from(val) << shift))
    }

    /// Extracts the bits of the closed-open bit range
    /// `[start_bit, end_bit)` (0-based from the most significant bit)
    /// as an integer right-aligned in the result.
    ///
    /// For example `bits(0, 32)` is the /32 network number and
    /// `bits(64, 128)` the interface identifier.
    ///
    /// # Panics
    /// Panics unless `start_bit < end_bit <= 128`.
    #[inline]
    pub fn bits(self, start_bit: usize, end_bit: usize) -> u128 {
        assert!(start_bit < end_bit && end_bit <= 128, "bad bit range");
        let width = end_bit - start_bit;
        if width == 128 {
            return self.0;
        }
        (self.0 >> (128 - end_bit)) & ((1u128 << width) - 1)
    }

    /// Returns the address truncated to its top `len` bits (the rest
    /// zeroed), i.e. the network number of the enclosing `/len`.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    #[inline]
    pub fn network(self, len: u8) -> Ip6 {
        assert!(len <= 128, "prefix length must be <= 128");
        if len == 0 {
            Ip6(0)
        } else if len == 128 {
            self
        } else {
            Ip6(self.0 & (!0u128 << (128 - len)))
        }
    }

    /// The /64 network of this address — the paper's unit of "subnet"
    /// accounting ("New /64s" in its Table 4).
    #[inline]
    pub fn slash64(self) -> Ip6 {
        self.network(64)
    }

    /// Formats the address as the fixed-width, colon-free 32-character
    /// lowercase hex string used throughout the paper (Fig. 3).
    pub fn to_hex32(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a fixed-width 32-character hex string (no colons), the
    /// inverse of [`Ip6::to_hex32`].
    pub fn from_hex32(s: &str) -> Result<Ip6, ParseIp6Error> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseIp6Error);
        }
        u128::from_str_radix(s, 16)
            .map(Ip6)
            .map_err(|_| ParseIp6Error)
    }

    /// Extracts the value of the segment spanning 1-based nybble
    /// positions `start..=end` (inclusive on both sides, as the paper
    /// labels segments), right-aligned — identical to
    /// [`Nybbles::segment_value`] without the 32-byte expansion: one
    /// shift and one mask on the raw `u128` instead of a per-nybble
    /// walk. `Nybbles::segment_value` stays as the scalar oracle
    /// (equivalence asserted in both crates' tests); this is the form
    /// the mining/encoding hot loops use.
    ///
    /// # Panics
    /// Panics unless `1 <= start <= end <= 32`.
    #[inline]
    pub fn segment(self, start: usize, end: usize) -> u128 {
        assert!(
            1 <= start && start <= end && end <= 32,
            "bad segment bounds"
        );
        let width = end - start + 1;
        let v = self.0 >> ((32 - end) * 4);
        if width == 32 {
            v
        } else {
            v & ((1u128 << (width * 4)) - 1)
        }
    }

    /// Expands the address into its 32 nybble values.
    pub fn nybbles(self) -> Nybbles {
        Nybbles::from_ip(self)
    }
}

impl From<Ipv6Addr> for Ip6 {
    fn from(a: Ipv6Addr) -> Self {
        Ip6(u128::from(a))
    }
}

impl From<Ip6> for Ipv6Addr {
    fn from(a: Ip6) -> Self {
        Ipv6Addr::from(a.0)
    }
}

impl From<u128> for Ip6 {
    fn from(v: u128) -> Self {
        Ip6(v)
    }
}

/// Error returned when parsing an [`Ip6`] from text fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseIp6Error;

impl fmt::Display for ParseIp6Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid IPv6 address")
    }
}

impl std::error::Error for ParseIp6Error {}

impl FromStr for Ip6 {
    type Err = ParseIp6Error;

    /// Accepts either the standard colon notation (delegated to
    /// [`Ipv6Addr`]) or the paper's fixed-width 32-hex-char form.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            Ipv6Addr::from_str(s)
                .map(Ip6::from)
                .map_err(|_| ParseIp6Error)
        } else {
            Ip6::from_hex32(s)
        }
    }
}

impl fmt::Display for Ip6 {
    /// Displays in canonical colon notation (via [`Ipv6Addr`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Ipv6Addr::from(*self).fmt(f)
    }
}

impl fmt::Debug for Ip6 {
    /// Debug output forwards to `Display`; addresses read better in
    /// test failures as `2001:db8::1` than as a tuple struct.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_colon_and_hex32_agree() {
        let a: Ip6 = "2001:db8:221:ffff:ffff:ffff:ffc0:122a".parse().unwrap();
        let b = Ip6::from_hex32("20010db80221ffffffffffffffc0122a").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_hex32(), "20010db80221ffffffffffffffc0122a");
    }

    #[test]
    fn nybble_positions_are_one_based_msb_first() {
        let a = Ip6::from_hex32("20010db840011111000000000000111c").unwrap();
        assert_eq!(a.nybble(1), 0x2);
        assert_eq!(a.nybble(2), 0x0);
        assert_eq!(a.nybble(4), 0x1);
        assert_eq!(a.nybble(32), 0xc);
    }

    #[test]
    #[should_panic(expected = "nybble position")]
    fn nybble_zero_panics() {
        Ip6(0).nybble(0);
    }

    #[test]
    fn with_nybble_round_trips() {
        let a = Ip6(0);
        let b = a.with_nybble(1, 0xf).with_nybble(32, 0x3);
        assert_eq!(b.to_hex32(), "f0000000000000000000000000000003");
        assert_eq!(b.nybble(1), 0xf);
        assert_eq!(b.nybble(32), 0x3);
    }

    #[test]
    fn bits_extracts_ranges() {
        let a: Ip6 = "2001:db8::1".parse().unwrap();
        assert_eq!(a.bits(0, 32), 0x20010db8);
        assert_eq!(a.bits(64, 128), 1);
        assert_eq!(a.bits(0, 128), a.value());
    }

    #[test]
    fn network_truncates() {
        let a: Ip6 = "2001:db8:1:2:3:4:5:6".parse().unwrap();
        assert_eq!(a.network(32).to_string(), "2001:db8::");
        assert_eq!(a.slash64().to_string(), "2001:db8:1:2::");
        assert_eq!(a.network(0), Ip6(0));
        assert_eq!(a.network(128), a);
    }

    #[test]
    fn segment_matches_nybble_walk_oracle() {
        // Direct shift+mask ≡ the per-nybble Nybbles::segment_value
        // walk, across every (start, end) pair on structured and
        // extreme addresses.
        let cases = [
            Ip6::from_hex32("20010db840011111000000000000111c").unwrap(),
            Ip6(0),
            Ip6(u128::MAX),
            Ip6(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210),
        ];
        for ip in cases {
            let ny = ip.nybbles();
            for start in 1..=32 {
                for end in start..=32 {
                    assert_eq!(
                        ip.segment(start, end),
                        ny.segment_value(start, end),
                        "{ip:?} [{start}, {end}]"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad segment bounds")]
    fn segment_rejects_reversed_bounds() {
        Ip6(0).segment(5, 4);
    }

    #[test]
    fn display_is_canonical() {
        let a = Ip6::from_hex32("20010db8000000000000000000000001").unwrap();
        assert_eq!(a.to_string(), "2001:db8::1");
    }

    #[test]
    fn rejects_bad_input() {
        assert!("2001:db8::zz".parse::<Ip6>().is_err());
        assert!(Ip6::from_hex32("20010db8").is_err());
        assert!(Ip6::from_hex32("20010db80221ffffffffffffffc0122g").is_err());
    }

    #[test]
    fn ordering_is_numeric() {
        let lo: Ip6 = "2001:db8::1".parse().unwrap();
        let hi: Ip6 = "2001:db8::2".parse().unwrap();
        assert!(lo < hi);
    }
}
