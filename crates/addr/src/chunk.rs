//! Newline-aligned chunked reading for streaming ingestion.
//!
//! The streaming ingestion engine (`entropy_ip::ingest`) wants the
//! input as a sequence of *independent* byte chunks it can parse on
//! worker threads: each chunk must contain only whole lines, so a
//! worker never sees half an address. [`ChunkReader`] produces
//! exactly that — fixed-size reads split at the last newline, with
//! the partial trailing line carried into the next chunk.
//!
//! Memory stays bounded by the chunk size (plus one line of carry):
//! the reader never holds more of the input than one chunk, no matter
//! how large the file is. The one exception is a single line longer
//! than the chunk size, which grows that chunk until its newline
//! arrives — correctness over a strict bound.
//!
//! ```
//! use eip_addr::chunk::ChunkReader;
//!
//! let text = b"2001:db8::1\n2001:db8::2\n2001:db8::3\n";
//! let mut r = ChunkReader::new(&text[..], 16);
//! let mut chunks = Vec::new();
//! while let Some(c) = r.next_chunk().unwrap() {
//!     assert!(c.ends_with(b"\n"), "chunks end at line boundaries");
//!     chunks.push(c);
//! }
//! assert_eq!(chunks.concat(), text, "chunks reassemble the input");
//! ```

use std::io::Read;

/// Minimum chunk size accepted by [`ChunkReader::new`]. Tiny chunks
/// are allowed (the equivalence tests run them down to this floor to
/// torture line-boundary handling); zero would make no progress.
pub const MIN_CHUNK_BYTES: usize = 1;

/// Default cap on the grow-until-newline buffer: a single line longer
/// than this aborts the read with [`std::io::ErrorKind::InvalidData`]
/// instead of growing memory without bound. 64 MiB is ~3 orders of
/// magnitude past any legitimate address line; a stream that reaches
/// it is malformed or hostile. The cap only bites through the grow
/// path, so the effective line limit is `max(chunk_bytes,
/// max_line_bytes)` — a chunk that already contains a newline is
/// never scanned against it.
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 << 20;

/// First occurrence of `needle` in `hay` — a SWAR (SIMD-within-a-
/// register) scan, eight bytes per step with the classic
/// zero-byte-detect trick, so the chunk parser's line splitting runs
/// at word speed instead of byte speed. Semantically identical to
/// `hay.iter().position(|&b| b == needle)`.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let spread = u64::from(needle).wrapping_mul(LO);
    let mut chunks = hay.chunks_exact(8);
    let mut i = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")) ^ spread;
        // A byte of `word` is zero exactly where `hay` matched.
        if word.wrapping_sub(LO) & !word & HI != 0 {
            let at = chunk
                .iter()
                .position(|&b| b == needle)
                .expect("detected match in word");
            return Some(i + at);
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|p| i + p)
}

/// Reads an input stream as newline-aligned byte chunks of roughly
/// `chunk_bytes` each. See the [module docs](self).
#[derive(Debug)]
pub struct ChunkReader<R> {
    inner: R,
    chunk_bytes: usize,
    max_line_bytes: usize,
    /// Partial trailing line of the previous chunk.
    carry: Vec<u8>,
    eof: bool,
    bytes_read: u64,
    chunks: u64,
}

impl<R: Read> ChunkReader<R> {
    /// Wraps a reader. `chunk_bytes` is clamped to at least
    /// [`MIN_CHUNK_BYTES`]. No [`std::io::BufReader`] is needed —
    /// this reader *is* the buffer, and it reads in `chunk_bytes`
    /// slabs. Oversized lines are capped at
    /// [`DEFAULT_MAX_LINE_BYTES`]; see [`ChunkReader::with_max_line`].
    pub fn new(inner: R, chunk_bytes: usize) -> Self {
        Self::with_max_line(inner, chunk_bytes, DEFAULT_MAX_LINE_BYTES)
    }

    /// Like [`ChunkReader::new`], but with an explicit cap on the
    /// grow-until-newline buffer: a single line that exceeds
    /// `max_line_bytes` (clamped to ≥ `chunk_bytes`) fails the read
    /// with a clear [`std::io::ErrorKind::InvalidData`] error instead
    /// of buffering the line until memory runs out.
    pub fn with_max_line(inner: R, chunk_bytes: usize, max_line_bytes: usize) -> Self {
        let chunk_bytes = chunk_bytes.max(MIN_CHUNK_BYTES);
        ChunkReader {
            inner,
            chunk_bytes,
            max_line_bytes: max_line_bytes.max(chunk_bytes),
            carry: Vec::new(),
            eof: false,
            bytes_read: 0,
            chunks: 0,
        }
    }

    /// Total bytes consumed from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Number of chunks produced so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Returns the next chunk, or `None` at end of input.
    ///
    /// Every chunk but the last ends with `\n`; the last ends with
    /// the stream's final bytes whether or not a trailing newline is
    /// present. Concatenating all chunks reproduces the input
    /// exactly. Each call hands out a fresh `Vec` so the caller can
    /// move chunks onto worker threads.
    pub fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.eof && self.carry.is_empty() {
            return Ok(None);
        }
        let mut buf = std::mem::take(&mut self.carry);
        loop {
            if self.eof {
                break;
            }
            // Top the buffer up to the chunk size (or beyond it, one
            // slab at a time, while an over-long line keeps the
            // newline out of reach).
            let want = self.chunk_bytes.max(buf.len() + 1);
            let old_len = buf.len();
            buf.resize(want, 0);
            let mut filled = old_len;
            while filled < want {
                match self.inner.read(&mut buf[filled..want]) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            self.bytes_read += (filled - old_len) as u64;
            buf.truncate(filled);
            if self.eof {
                break;
            }
            if let Some(pos) = buf.iter().rposition(|&b| b == b'\n') {
                self.carry = buf.split_off(pos + 1);
                break;
            }
            // No newline yet: a line longer than the chunk size.
            // Keep reading until one arrives (or EOF) — but never past
            // the line cap: the whole buffer is one line's prefix
            // here, so a pathological (or hostile) stream would
            // otherwise grow this allocation without bound.
            if buf.len() >= self.max_line_bytes {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "input line exceeds the maximum line length of {} bytes \
                         (after {} bytes read)",
                        self.max_line_bytes, self.bytes_read
                    ),
                ));
            }
        }
        if buf.is_empty() {
            Ok(None)
        } else {
            self.chunks += 1;
            Ok(Some(buf))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(text: &[u8], chunk_bytes: usize) -> Vec<Vec<u8>> {
        let mut r = ChunkReader::new(text, chunk_bytes);
        let mut out = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            out.push(c);
        }
        assert_eq!(r.bytes_read(), text.len() as u64);
        assert_eq!(r.chunks(), out.len() as u64);
        assert!(r.next_chunk().unwrap().is_none(), "None is sticky");
        out
    }

    #[test]
    fn chunks_reassemble_and_split_at_newlines() {
        let text = b"alpha\nbeta\ngamma\ndelta\n";
        for chunk in 1..=text.len() + 2 {
            let chunks = collect(text, chunk);
            let whole: Vec<u8> = chunks.concat();
            assert_eq!(whole, text, "chunk={chunk}");
            for c in &chunks {
                assert_eq!(*c.last().unwrap(), b'\n', "chunk={chunk}");
            }
        }
    }

    #[test]
    fn missing_trailing_newline_reaches_last_chunk() {
        let text = b"one\ntwo\nthree";
        for chunk in 1..=16 {
            let chunks = collect(text, chunk);
            assert_eq!(chunks.concat(), text);
            assert!(chunks.last().unwrap().ends_with(b"three"));
        }
    }

    #[test]
    fn oversized_line_grows_one_chunk() {
        let long = vec![b'x'; 100];
        let mut text = long.clone();
        text.push(b'\n');
        text.extend_from_slice(b"y\n");
        let chunks = collect(&text, 8);
        assert_eq!(chunks[0].len(), 101, "long line kept whole");
        assert_eq!(chunks.concat(), text);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(collect(b"", 8).is_empty());
    }

    #[test]
    fn oversized_line_hits_the_cap_with_a_clear_error() {
        // A 100-byte line under an 8-byte chunk / 32-byte cap: the
        // grow loop must abort instead of buffering the whole line.
        let mut text = vec![b'x'; 100];
        text.push(b'\n');
        let mut r = ChunkReader::with_max_line(&text[..], 8, 32);
        let err = r.next_chunk().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("maximum line length"), "{msg}");
        assert!(msg.contains("32 bytes"), "{msg}");
    }

    #[test]
    fn cap_clamps_to_chunk_size_and_spares_legal_lines() {
        // Lines at or below the cap stream through untouched, even
        // when they exceed the chunk size.
        let mut text = vec![b'y'; 30];
        text.push(b'\n');
        text.extend_from_slice(b"z\n");
        let mut r = ChunkReader::with_max_line(&text[..], 4, 31);
        let mut out = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            out.extend_from_slice(&c);
        }
        assert_eq!(out, text);
        // A cap below the chunk size clamps up to it: a chunk-sized
        // line still parses.
        let mut r = ChunkReader::with_max_line(&b"abcdefg\n"[..], 16, 1);
        assert_eq!(r.next_chunk().unwrap().unwrap(), b"abcdefg\n");
    }

    #[test]
    fn crlf_passes_through_untouched() {
        let text = b"a\r\nb\r\n";
        let chunks = collect(text, 4);
        assert_eq!(chunks.concat(), text);
    }

    #[test]
    fn chunk_size_clamps_to_minimum() {
        let chunks = collect(b"a\nb\n", 0);
        assert_eq!(chunks.concat(), b"a\nb\n");
    }

    /// The SWAR scan agrees with the naive scan at every offset and
    /// length around word boundaries, including needle bytes that
    /// also appear spread across other positions.
    #[test]
    fn find_byte_matches_naive_position() {
        let mut hay = Vec::new();
        for i in 0..64u8 {
            hay.push(i.wrapping_mul(37));
        }
        for len in 0..hay.len() {
            for needle in [0u8, b'\n', 37, 255] {
                let slice = &hay[..len];
                assert_eq!(
                    find_byte(slice, needle),
                    slice.iter().position(|&b| b == needle),
                    "len={len} needle={needle}"
                );
            }
        }
        // Matches at every position of an 17-byte window.
        for at in 0..17 {
            let mut s = vec![b'x'; 17];
            s[at] = b'\n';
            assert_eq!(find_byte(&s, b'\n'), Some(at));
        }
    }
}
