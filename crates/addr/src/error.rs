//! The workspace-wide error type.
//!
//! Every fallible Entropy/IP operation — address-file ingestion,
//! pipeline stages, profile import, baseline fitting, and the `eip`
//! CLI — reports an [`EipError`], so callers handle one type instead
//! of a mix of `String`s, panics, and ad-hoc `exit(2)`s. It lives in
//! `eip_addr` (the substrate crate every other crate depends on) and
//! is re-exported as `entropy_ip::EipError`, which is the name most
//! callers use. The variants partition by *who* is at fault, which is
//! what the CLI maps to exit codes ([`EipError::exit_code`]: usage
//! errors exit 2, runtime errors exit 1, matching common Unix
//! convention).
//!
//! The type stays `Clone + PartialEq + Eq` (I/O failures store the
//! rendered message, not the live `std::io::Error`) so tests can
//! match variants directly:
//!
//! ```
//! use eip_addr::{AddressSet, EipError};
//!
//! let err = AddressSet::parse_lines("2001:db8::1\nbogus\n").unwrap_err();
//! assert_eq!(err, EipError::Parse("line 2: invalid address: bogus".into()));
//! ```

use std::fmt;

/// Unified error for the Entropy/IP pipeline, profile I/O, and CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EipError {
    /// The training set was empty (or every address fell outside the
    /// mined dictionaries).
    EmptySet,
    /// An input line or address failed to parse.
    Parse(String),
    /// A saved model profile was malformed.
    Profile(String),
    /// A filesystem operation failed; the path and the rendered OS
    /// error.
    Io {
        /// Path of the file involved.
        path: String,
        /// Rendered `std::io::Error` message.
        msg: String,
    },
    /// The command line was invalid (unknown flag, missing operand).
    Usage(String),
    /// A model could not be fit from the data given (e.g. fitting a
    /// Markov baseline on an empty encoded dataset).
    InsufficientData(String),
    /// The requested configuration is outside the implementation's
    /// supported envelope (e.g. a mined dictionary larger than the
    /// 256 values per segment the byte-columnar BN trainer stores).
    Unsupported(String),
}

impl EipError {
    /// Wraps a filesystem error with the path it concerns.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> Self {
        EipError::Io {
            path: path.into(),
            msg: err.to_string(),
        }
    }

    /// Process exit code for CLI front-ends: 2 for usage errors, 1
    /// for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            EipError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for EipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EipError::EmptySet => f.write_str("cannot analyze an empty address set"),
            EipError::Parse(msg) => write!(f, "parse error: {msg}"),
            EipError::Profile(msg) => write!(f, "invalid profile: {msg}"),
            EipError::Io { path, msg } => write!(f, "{path}: {msg}"),
            EipError::Usage(msg) => write!(f, "usage error: {msg}"),
            EipError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            EipError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for EipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        assert_eq!(EipError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(EipError::EmptySet.exit_code(), 1);
        assert_eq!(EipError::Parse("x".into()).exit_code(), 1);
        assert_eq!(
            EipError::io("f.txt", std::io::Error::other("boom")).exit_code(),
            1
        );
    }

    #[test]
    fn display_is_informative() {
        let e = EipError::io("ips.txt", std::io::Error::other("no such file"));
        let s = e.to_string();
        assert!(s.contains("ips.txt") && s.contains("no such file"));
        assert!(EipError::EmptySet.to_string().contains("empty"));
        assert!(EipError::Profile("bad header".into())
            .to_string()
            .contains("bad header"));
        assert!(EipError::Unsupported("300 values".into())
            .to_string()
            .contains("unsupported: 300 values"));
    }
}
