//! IPv6 address substrate for the Entropy/IP reproduction.
//!
//! Entropy/IP (Foremski, Plonka & Berger, IMC 2016) analyzes IPv6
//! addresses as strings of 32 hexadecimal characters ("nybbles").
//! This crate provides the address representation and manipulation
//! primitives every other crate in the workspace builds on:
//!
//! * [`Ip6`] — a thin, `Copy`, totally-ordered wrapper over the 128-bit
//!   address value with conversions to and from [`std::net::Ipv6Addr`],
//!   nybble access, and the fixed-width 32-character hex format used
//!   throughout the paper (its Fig. 3).
//! * [`Nybbles`] — the address expanded to `[u8; 32]` of 4-bit values,
//!   the unit of entropy analysis.
//! * [`Prefix`] — a CIDR prefix with containment and iteration helpers
//!   (the paper reasons about /32 allocations and /64 subnets).
//! * [`AddressSet`] — a deduplicated, sorted address collection with
//!   the sampling operations used by the evaluation (random training
//!   splits, stratified sampling by /32, /64 extraction), plus
//!   [`AddressSetBuilder`] for streaming construction from any
//!   address iterator with bounded memory.
//! * [`ChunkReader`] — newline-aligned chunked reading: the input as
//!   fixed-size byte chunks of whole lines, the unit the parallel
//!   streaming ingestion engine fans out to worker threads (paired
//!   with the allocation-free line classifier
//!   [`set::parse_address_slice`]).
//! * [`EipError`] — the workspace-wide error type (re-exported as
//!   `entropy_ip::EipError`); it lives here, in the crate everything
//!   depends on, so even substrate operations like
//!   [`AddressSet::parse_lines`] report typed errors.
//! * [`anonymize`] — the paper's anonymization scheme (first 32 bits
//!   rewritten to `2001:db8::/32`; embedded IPv4 first octet to 127).
//! * [`iid`] — interface-identifier construction helpers (Modified
//!   EUI-64 from a MAC address, embedded IPv4 in both hex and decimal
//!   presentation), which the simulated address plans need.
//!
//! The design follows the smoltcp idiom: no `unsafe`, no clever type
//! tricks, exhaustive documentation, and data structures that are
//! plain enough to audit at a glance.
//!
//! # Quick example
//!
//! ```
//! use eip_addr::{Ip6, Prefix};
//!
//! let ip: Ip6 = "2001:db8:221:ffff:ffff:ffff:ffc0:122a".parse().unwrap();
//! assert_eq!(ip.to_hex32(), "20010db80221ffffffffffffffc0122a");
//! let pfx: Prefix = "2001:db8::/32".parse().unwrap();
//! assert!(pfx.contains(ip));
//! assert_eq!(ip.nybble(1), 0x2); // positions are 1-based as in the paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymize;
pub mod chunk;
pub mod dedup;
pub mod error;
pub mod iid;
pub mod ip6;
pub mod nybbles;
pub mod prefix;
pub mod set;

pub use anonymize::{anonymize_addr, anonymize_set};
pub use chunk::ChunkReader;
pub use dedup::DedupSet;
pub use error::EipError;
pub use ip6::{Ip6, ParseIp6Error};
pub use nybbles::Nybbles;
pub use prefix::{ParsePrefixError, Prefix};
pub use set::{AddressSet, AddressSetBuilder};
