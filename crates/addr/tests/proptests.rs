//! Property-based tests for the address substrate invariants.

use eip_addr::set::SplitMix64;
use eip_addr::{anonymize_addr, AddressSet, Ip6, Nybbles, Prefix};
use proptest::prelude::*;

proptest! {
    /// hex32 formatting and parsing are exact inverses.
    #[test]
    fn hex32_round_trip(v in any::<u128>()) {
        let ip = Ip6(v);
        prop_assert_eq!(Ip6::from_hex32(&ip.to_hex32()).unwrap(), ip);
    }

    /// Colon-notation display re-parses to the same address.
    #[test]
    fn display_round_trip(v in any::<u128>()) {
        let ip = Ip6(v);
        prop_assert_eq!(ip.to_string().parse::<Ip6>().unwrap(), ip);
    }

    /// Nybble expansion round-trips and agrees with direct access.
    #[test]
    fn nybbles_round_trip(v in any::<u128>()) {
        let ip = Ip6(v);
        let ny = Nybbles::from_ip(ip);
        prop_assert_eq!(ny.to_ip(), ip);
        for pos in 1..=32usize {
            prop_assert_eq!(ny.get(pos), ip.nybble(pos));
        }
    }

    /// segment_value/set_segment_value round-trip on random bounds.
    #[test]
    fn segment_round_trip(v in any::<u128>(), a in 1usize..=32, b in 1usize..=32) {
        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let ny = Nybbles::from_ip(Ip6(v));
        let seg = ny.segment_value(start, end);
        let mut out = Nybbles::from_ip(Ip6(0));
        out.set_segment_value(start, end, seg);
        prop_assert_eq!(out.segment_value(start, end), seg);
    }

    /// A prefix contains exactly the addresses between first and last.
    #[test]
    fn prefix_bounds(v in any::<u128>(), len in 0u8..=128) {
        let p = Prefix::new(Ip6(v), len);
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
        prop_assert!(p.contains(Ip6(v)));
        if p.first().value() > 0 {
            prop_assert!(!p.contains(Ip6(p.first().value() - 1)));
        }
        if p.last().value() < u128::MAX {
            prop_assert!(!p.contains(Ip6(p.last().value() + 1)));
        }
    }

    /// network() is idempotent and monotone in prefix length.
    #[test]
    fn network_idempotent(v in any::<u128>(), len in 0u8..=128) {
        let ip = Ip6(v);
        prop_assert_eq!(ip.network(len).network(len), ip.network(len));
        if len >= 32 {
            prop_assert_eq!(ip.network(len).network(32), ip.network(32));
        }
    }

    /// Set construction dedups: length equals that of a HashSet.
    #[test]
    fn set_len_matches_hashset(vs in prop::collection::vec(any::<u128>(), 0..200)) {
        let uniq: std::collections::HashSet<u128> = vs.iter().copied().collect();
        let set = AddressSet::from_iter(vs.iter().map(|&v| Ip6(v)));
        prop_assert_eq!(set.len(), uniq.len());
        for &v in &vs {
            prop_assert!(set.contains(Ip6(v)));
        }
    }

    /// split_sample partitions the set exactly.
    #[test]
    fn split_sample_partitions(vs in prop::collection::vec(any::<u128>(), 1..200),
                               k in 0usize..250, seed in any::<u64>()) {
        let set = AddressSet::from_iter(vs.iter().map(|&v| Ip6(v)));
        let mut rng = SplitMix64::new(seed);
        let (train, test) = set.split_sample(k, &mut rng);
        prop_assert_eq!(train.len() + test.len(), set.len());
        prop_assert_eq!(train.union(&test), set.clone());
        prop_assert!(train.len() == k.min(set.len()));
        for ip in train.iter() {
            prop_assert!(!test.contains(ip));
        }
    }

    /// count_prefixes is monotone non-decreasing in prefix length.
    #[test]
    fn count_prefixes_monotone(vs in prop::collection::vec(any::<u128>(), 1..200)) {
        let set = AddressSet::from_iter(vs.iter().map(|&v| Ip6(v)));
        let mut prev = 0usize;
        for len in 0..=32u8 {
            let c = set.count_prefixes(len * 4);
            prop_assert!(c >= prev, "A({}) = {} < {}", len * 4, c, prev);
            prev = c;
        }
        prop_assert_eq!(set.count_prefixes(128), set.len());
    }

    /// Anonymization keeps the low 96 bits and the /32 index mapping.
    #[test]
    fn anonymize_preserves_low_bits(v in any::<u128>(), idx in 0usize..16) {
        let ip = Ip6(v);
        let anon = anonymize_addr(ip, idx);
        prop_assert_eq!(anon.value() & (!0u128 >> 32), ip.value() & (!0u128 >> 32));
        prop_assert_eq!(anon.bits(4, 32), 0x001_0db8);
    }
}
