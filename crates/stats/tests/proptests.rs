//! Property-based tests for the statistical primitives.

use eip_addr::{AddressSet, Ip6};
use eip_stats::acr::aggregate_counts;
use eip_stats::histogram::{outlier_threshold, quartiles, Histogram};
use eip_stats::window::window_entropy;
use eip_stats::{
    acr4, entropy_bits, normalized_entropy, nybble_entropy, total_entropy, NybbleCounts,
};
use proptest::prelude::*;

proptest! {
    /// Entropy is non-negative and bounded by log2 of the support.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(1u64..1000, 1..64)) {
        let h = entropy_bits(counts.iter().copied());
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9);
    }

    /// Entropy is invariant under permutation of the counts.
    #[test]
    fn entropy_permutation_invariant(mut counts in prop::collection::vec(0u64..1000, 2..32)) {
        let h1 = entropy_bits(counts.iter().copied());
        counts.reverse();
        let h2 = entropy_bits(counts.iter().copied());
        prop_assert!((h1 - h2).abs() < 1e-9);
    }

    /// Normalized entropy stays in [0, 1].
    #[test]
    fn normalized_in_unit_interval(counts in prop::collection::vec(0u64..100, 1..16)) {
        let k = counts.len().max(1);
        let h = normalized_entropy(counts.iter().copied(), k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&h));
    }

    /// Duplicating every address leaves the entropy profile unchanged
    /// (entropy depends on frequencies, not raw counts).
    #[test]
    fn entropy_scale_invariant(vs in prop::collection::vec(any::<u128>(), 1..50)) {
        let a: Vec<Ip6> = vs.iter().map(|&v| Ip6(v)).collect();
        let doubled: Vec<Ip6> = a.iter().chain(a.iter()).copied().collect();
        let h1 = nybble_entropy(&a);
        let h2 = nybble_entropy(&doubled);
        for i in 0..32 {
            prop_assert!((h1[i] - h2[i]).abs() < 1e-9, "pos {}", i + 1);
        }
    }

    /// Total entropy is within [0, 32].
    #[test]
    fn total_entropy_bounds(vs in prop::collection::vec(any::<u128>(), 0..100)) {
        let a: Vec<Ip6> = vs.iter().map(|&v| Ip6(v)).collect();
        let t = total_entropy(&a);
        prop_assert!((0.0..=32.0 + 1e-9).contains(&t));
    }

    /// ACR values stay in [0, 1] and the product of growth factors
    /// reconstructs the distinct-address count.
    #[test]
    fn acr_consistency(vs in prop::collection::vec(any::<u128>(), 1..100)) {
        let set: AddressSet = vs.iter().map(|&v| Ip6(v)).collect();
        let a = acr4(&set);
        prop_assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Sum of log16 growth factors = log16(A(128)/A(0)) = log16(len).
        let sum: f64 = a.iter().sum();
        let expect = (set.len() as f64).ln() / 16f64.ln();
        prop_assert!((sum - expect).abs() < 1e-6, "sum {} expect {}", sum, expect);
        let counts = aggregate_counts(&set);
        prop_assert_eq!(counts[32], set.len());
    }

    /// The outlier threshold never falls below Q3.
    #[test]
    fn threshold_at_least_q3(counts in prop::collection::vec(1u64..500, 2..64)) {
        let (_, q3) = quartiles(&counts);
        prop_assert!(outlier_threshold(&counts) >= q3 - 1e-9);
    }

    /// Histogram totals and distinct counts match a reference map.
    #[test]
    fn histogram_totals(vals in prop::collection::vec(0u128..64, 0..200)) {
        let h = Histogram::from_values(&vals);
        prop_assert_eq!(h.total(), vals.len() as u64);
        let distinct: std::collections::HashSet<u128> = vals.iter().copied().collect();
        prop_assert_eq!(h.distinct(), distinct.len());
        for &v in &distinct {
            prop_assert_eq!(h.count_of(v), vals.iter().filter(|&&x| x == v).count() as u64);
        }
    }

    /// Sharded histogram building is exact: splitting the raw values
    /// at any point and merging the two shard histograms equals the
    /// single-pass build, and the sort-based owned-buffer constructor
    /// agrees with the hash-based one.
    #[test]
    fn histogram_merge_equals_single_pass(
        vals in prop::collection::vec(0u128..256, 0..300),
        cut_frac in 0.0f64..=1.0,
    ) {
        let whole = Histogram::from_values(&vals);
        prop_assert_eq!(Histogram::from_values_owned(vals.clone()), whole.clone());
        let cut = ((vals.len() as f64) * cut_frac) as usize;
        let mut merged = Histogram::from_values(&vals[..cut]);
        merged.merge(&Histogram::from_values(&vals[cut..]));
        prop_assert_eq!(merged, whole);
    }

    /// Sharded profiling is exact: per-shard `NybbleCounts` merged in
    /// any shard decomposition equal the single-pass accumulator.
    #[test]
    fn nybble_counts_merge_equals_single_pass(
        vs in prop::collection::vec(any::<u128>(), 1..120),
        shards in 1usize..=8,
    ) {
        let addrs: Vec<Ip6> = vs.iter().map(|&v| Ip6(v)).collect();
        let whole: NybbleCounts = addrs.iter().copied().collect();
        let per = addrs.len().div_ceil(shards);
        let mut acc = NybbleCounts::new();
        for chunk in addrs.chunks(per) {
            acc.merge(&chunk.iter().copied().collect());
        }
        prop_assert_eq!(&acc, &whole);
        prop_assert_eq!(acc.entropy(), whole.entropy());
        prop_assert_eq!(acc.total(), addrs.len() as u64);
    }

    /// Window entropy of adjacent windows is superadditive-bounded:
    /// H(window A+B) <= H(A) + H(B), and >= max(H(A), H(B)).
    #[test]
    fn window_entropy_composition(vs in prop::collection::vec(any::<u128>(), 1..60),
                                  start in 1usize..=30, l1 in 1usize..=8, l2 in 1usize..=8) {
        let a: Vec<Ip6> = vs.iter().map(|&v| Ip6(v)).collect();
        prop_assume!(start + l1 + l2 - 1 <= 32);
        let ha = window_entropy(&a, start, l1);
        let hb = window_entropy(&a, start + l1, l2);
        let hab = window_entropy(&a, start, l1 + l2);
        prop_assert!(hab <= ha + hb + 1e-9);
        prop_assert!(hab + 1e-9 >= ha.max(hb));
    }
}
