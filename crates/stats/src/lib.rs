//! Information-theoretic and statistical primitives for Entropy/IP.
//!
//! This crate implements the measurement layer of the paper:
//!
//! * [`entropy`] — Shannon entropy of empirical distributions, the
//!   normalized per-nybble entropy profile Ĥ(X₁)…Ĥ(X₃₂) of an address
//!   set (§4.1, Eq. 1–2), and the total entropy Ĥ_S (Eq. 3).
//! * [`acr`] — the 4-bit Aggregate Count Ratio overlay that the paper
//!   borrows from Plonka & Berger's Multi-Resolution Aggregate
//!   analysis and plots alongside entropy in Figs. 7–10.
//! * [`window`] — the "windowing analysis" of §4.5 / Fig. 5:
//!   unnormalized entropy of every (position, length) address window.
//! * [`histogram`] — value histograms over segment values, plus the
//!   quartile/IQR frequency-outlier rule (Q3 + 1.5·IQR) that seeds
//!   segment mining (§4.3 step (a)).
//!
//! All entropies are in **bits** (log base 2) unless a function name
//! says `normalized`, in which case the value is divided by the
//! maximum attainable entropy so it falls in `[0, 1]` exactly as the
//! paper plots it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acr;
pub mod entropy;
pub mod histogram;
pub mod window;

pub use acr::acr4;
pub use entropy::{entropy_bits, normalized_entropy, nybble_entropy, total_entropy, NybbleCounts};
pub use histogram::{outlier_threshold, quartiles, Histogram};
pub use window::{window_entropy, window_measure, WindowGrid, WindowMeasure};
