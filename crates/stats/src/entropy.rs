//! Shannon entropy of empirical distributions and the per-nybble
//! entropy profile of an address set (§4.1).
//!
//! The paper's worked example (Eq. 2): for the five addresses of its
//! Fig. 3, the last hex character takes value `c` twice and `f`
//! thrice, so
//!
//! ```text
//! Ĥ(X₃₂) = −(p_c·log p_c + p_f·log p_f) / log 16 ≈ 0.24
//! ```
//!
//! [`nybble_entropy`] reproduces exactly that computation for all 32
//! positions.

use eip_addr::Ip6;

/// Shannon entropy, in bits, of the empirical distribution given by
/// raw counts. Zero counts contribute nothing; an empty or
/// single-value distribution has zero entropy.
pub fn entropy_bits<I>(counts: I) -> f64
where
    I: IntoIterator<Item = u64>,
{
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for c in counts {
        let p = c as f64 / total;
        h -= p * p.log2();
    }
    // Clamp tiny negative rounding residue from the subtraction.
    h.max(0.0)
}

/// Normalized Shannon entropy: [`entropy_bits`] divided by
/// `log2(k)` where `k` is the number of *possible* outcomes, so the
/// result lies in `[0, 1]`. This is Eq. 1–2 of the paper with its
/// "divide by log k (maximum value)" normalization.
///
/// Returns 0 when `k <= 1`.
pub fn normalized_entropy<I>(counts: I, k: usize) -> f64
where
    I: IntoIterator<Item = u64>,
{
    if k <= 1 {
        return 0.0;
    }
    entropy_bits(counts) / (k as f64).log2()
}

/// Streaming per-position nybble value counts: the sufficient
/// statistic behind the entropy profile, accumulated one address at a
/// time so callers can profile any `Iterator<Item = Ip6>` without
/// materializing an intermediate `Vec<Ip6>`.
///
/// ```
/// use eip_addr::Ip6;
/// use eip_stats::NybbleCounts;
///
/// let mut counts = NybbleCounts::new();
/// for i in 0..16u128 {
///     counts.observe(Ip6((0x2001_0db8u128 << 96) | i));
/// }
/// let h = counts.entropy();
/// assert!((h[31] - 1.0).abs() < 1e-12); // last nybble fully uniform
/// assert_eq!(h[0], 0.0); // first nybble constant
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NybbleCounts {
    counts: [[u64; 16]; 32],
    total: u64,
}

impl Default for NybbleCounts {
    fn default() -> Self {
        NybbleCounts::new()
    }
}

impl NybbleCounts {
    /// An empty accumulator.
    pub fn new() -> Self {
        NybbleCounts {
            counts: [[0u64; 16]; 32],
            total: 0,
        }
    }

    /// Accumulates one address into the per-position counts.
    #[inline]
    pub fn observe(&mut self, ip: Ip6) {
        let mut v = ip.value();
        // Walk nybbles from the least significant (position 32) up,
        // avoiding 32 shifts per address.
        for pos in (0..32).rev() {
            self.counts[pos][(v & 0xf) as usize] += 1;
            v >>= 4;
        }
        self.total += 1;
    }

    /// Accumulates every address of an iterator.
    pub fn observe_all<I: IntoIterator<Item = Ip6>>(&mut self, ips: I) {
        for ip in ips {
            self.observe(ip);
        }
    }

    /// Accumulates a slice with the wide counting kernel: each
    /// address's `u128` is split into two `u64` halves walked as
    /// independent 16-step shift chains. On 64-bit hardware a `u128`
    /// shift is a multi-instruction carry chain, so the single
    /// 32-step walk of [`NybbleCounts::observe`] serializes on it;
    /// the half-walks cost one instruction per shift and overlap.
    /// Exact integer counts — byte-identical to observing each
    /// address with [`NybbleCounts::observe`], which stays as the
    /// scalar oracle (equivalence asserted in the tests).
    pub fn observe_slice(&mut self, ips: &[Ip6]) {
        for &ip in ips {
            let v = ip.value();
            let mut hi = (v >> 64) as u64;
            let mut lo = v as u64;
            for pos in (0..16).rev() {
                self.counts[pos + 16][(lo & 0xf) as usize] += 1;
                self.counts[pos][(hi & 0xf) as usize] += 1;
                lo >>= 4;
                hi >>= 4;
            }
        }
        self.total += ips.len() as u64;
    }

    /// Merges another accumulator into this one, as if every address
    /// the other observed had been observed here. Exact (integer
    /// counts), commutative, and associative — per-shard counts built
    /// over a partition of an address stream merge to the single-pass
    /// result at any shard count, which is what lets profiling shard
    /// its input (see `eip_exec`).
    pub fn merge(&mut self, other: &NybbleCounts) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
        self.total += other.total;
    }

    /// Number of addresses observed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw counts: `counts()[i][v]` is how many observed
    /// addresses have hex value `v` at 1-based position `i + 1`.
    pub fn counts(&self) -> &[[u64; 16]; 32] {
        &self.counts
    }

    /// The normalized per-nybble entropy profile of everything
    /// observed so far (each value in `[0, 1]`).
    pub fn entropy(&self) -> [f64; 32] {
        let mut out = [0.0; 32];
        for (i, c) in self.counts.iter().enumerate() {
            out[i] = normalized_entropy(c.iter().copied(), 16);
        }
        out
    }
}

impl FromIterator<Ip6> for NybbleCounts {
    fn from_iter<I: IntoIterator<Item = Ip6>>(iter: I) -> Self {
        let mut c = NybbleCounts::new();
        c.observe_all(iter);
        c
    }
}

/// Per-position nybble value counts across an address set:
/// `counts[i][v]` is how many addresses have hex value `v` at 1-based
/// position `i + 1`.
pub fn nybble_counts(addrs: &[Ip6]) -> [[u64; 16]; 32] {
    *addrs.iter().copied().collect::<NybbleCounts>().counts()
}

/// The normalized per-nybble entropy profile Ĥ(X₁)…Ĥ(X₃₂) of an
/// address set: entry `i` (0-based) is the normalized entropy of hex
/// character position `i + 1`. Each value is in `[0, 1]`.
pub fn nybble_entropy(addrs: &[Ip6]) -> [f64; 32] {
    addrs.iter().copied().collect::<NybbleCounts>().entropy()
}

/// Total entropy Ĥ_S (Eq. 3): the sum of the 32 normalized per-nybble
/// entropies. Quantifies how hard the set's addresses are to guess;
/// the paper reports e.g. Ĥ_S = 4.6 for router set R1 and 21.2 for
/// client set C1.
pub fn total_entropy(addrs: &[Ip6]) -> f64 {
    nybble_entropy(addrs).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_addrs() -> Vec<Ip6> {
        // The paper's Fig. 3 sample set (note the duplicate line —
        // Fig. 3 lists five address *lines*, and the entropy example
        // treats them as five observations).
        [
            "20010db840011111000000000000111c",
            "20010db840011111000000000000111f",
            "20010db840031c13000000000000200c",
            "20010db8400a2f2a000000000000200f",
            "20010db840011111000000000000111f",
        ]
        .iter()
        .map(|s| Ip6::from_hex32(s).unwrap())
        .collect()
    }

    #[test]
    fn paper_eq2_last_nybble() {
        // Ĥ(X₃₂) ≈ 0.24 per the paper's Eq. 2.
        let h = nybble_entropy(&fig3_addrs());
        assert!((h[31] - 0.242_8).abs() < 1e-3, "got {}", h[31]);
    }

    #[test]
    fn constant_positions_have_zero_entropy() {
        let h = nybble_entropy(&fig3_addrs());
        // Hex chars 1-11 and 17-28 are constant in Fig. 3.
        for pos in (1..=11).chain(17..=28) {
            assert_eq!(h[pos - 1], 0.0, "pos {pos}");
        }
        // Chars 12-16 and 29-32 vary.
        for pos in (12..=16).chain(29..=32) {
            assert!(h[pos - 1] > 0.0, "pos {pos}");
        }
    }

    #[test]
    fn entropy_bits_uniform_is_log_k() {
        assert!((entropy_bits([1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert!((entropy_bits([5, 5]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy_bits([7]), 0.0);
        assert_eq!(entropy_bits([]), 0.0);
        assert_eq!(entropy_bits([0, 0, 3]), 0.0);
    }

    #[test]
    fn normalized_entropy_bounds() {
        assert!((normalized_entropy([1u64; 16].iter().copied(), 16) - 1.0).abs() < 1e-12);
        assert_eq!(normalized_entropy([4], 16), 0.0);
        assert_eq!(normalized_entropy([1, 2, 3], 1), 0.0);
        assert_eq!(normalized_entropy([1, 2, 3], 0), 0.0);
    }

    #[test]
    fn total_entropy_is_sum() {
        let addrs = fig3_addrs();
        let h = nybble_entropy(&addrs);
        assert!((total_entropy(&addrs) - h.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn empty_set_profile_is_zero() {
        let h = nybble_entropy(&[]);
        assert!(h.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn streaming_counts_match_batch_profile() {
        let addrs = fig3_addrs();
        let mut acc = NybbleCounts::new();
        for &ip in &addrs {
            acc.observe(ip);
        }
        assert_eq!(acc.total(), addrs.len() as u64);
        assert_eq!(acc.counts(), &nybble_counts(&addrs));
        assert_eq!(acc.entropy(), nybble_entropy(&addrs));
        // Incremental observation in two halves gives the same state.
        let mut half = NybbleCounts::new();
        half.observe_all(addrs[..2].iter().copied());
        half.observe_all(addrs[2..].iter().copied());
        assert_eq!(half, acc);
    }

    #[test]
    fn merged_counts_equal_single_pass() {
        let addrs: Vec<Ip6> = (0..300u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | (i * 31)))
            .collect();
        let whole: NybbleCounts = addrs.iter().copied().collect();
        for shards in 1..=5 {
            let per = addrs.len().div_ceil(shards);
            let mut acc = NybbleCounts::new();
            for chunk in addrs.chunks(per) {
                acc.merge(&chunk.iter().copied().collect());
            }
            assert_eq!(acc, whole, "{shards} shards");
            assert_eq!(acc.entropy(), whole.entropy());
        }
        // Merging an empty accumulator is the identity.
        let mut id = whole.clone();
        id.merge(&NybbleCounts::new());
        assert_eq!(id, whole);
    }

    #[test]
    fn wide_slice_kernel_matches_scalar_oracle() {
        // observe_slice ≡ observe, address for address, on a mix of
        // structured, extreme, and pseudo-random values.
        let mut addrs: Vec<Ip6> = fig3_addrs();
        addrs.extend([Ip6(0), Ip6(u128::MAX)]);
        let mut x = 0x2001_0db8_u128;
        for _ in 0..257 {
            x = x
                .wrapping_mul(0x2d99_787926d46932a4c1f32680f70c55u128)
                .wrapping_add(1);
            addrs.push(Ip6(x));
        }
        let mut oracle = NybbleCounts::new();
        for &ip in &addrs {
            oracle.observe(ip);
        }
        for split in [0usize, 1, 100, addrs.len()] {
            let mut wide = NybbleCounts::new();
            wide.observe_slice(&addrs[..split]);
            wide.observe_slice(&addrs[split..]);
            assert_eq!(wide, oracle, "split at {split}");
        }
    }

    #[test]
    fn counts_sum_to_set_size() {
        let addrs = fig3_addrs();
        let c = nybble_counts(&addrs);
        for (i, pos) in c.iter().enumerate() {
            let s: u64 = pos.iter().sum();
            assert_eq!(s, addrs.len() as u64, "pos {}", i + 1);
        }
    }
}
