//! Value histograms over segment values, quartiles, and the
//! frequency-outlier rule used by segment mining (§4.3 step (a)):
//!
//! > "Assuming normal distribution of frequencies of values, we
//! > select the values more common than Q3 + 1.5·IQR, where Q3 is
//! > the third quartile and IQR is the inter-quartile range."

use std::collections::HashMap;

/// A histogram of (up to 128-bit) segment values: sorted unique
/// values with their occurrence counts.
///
/// This is the `D_k`-derived "vector of values vs. their counts" that
/// §4.3 feeds both to the outlier rule and to the histogram-mode
/// DBSCAN run (its Fig. 4 scatter plot is exactly this structure).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    entries: Vec<(u128, u64)>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram from raw (unsorted, repeating) values.
    pub fn from_values(values: &[u128]) -> Self {
        let mut map: HashMap<u128, u64> = HashMap::new();
        for &v in values {
            *map.entry(v).or_insert(0) += 1;
        }
        let mut entries: Vec<(u128, u64)> = map.into_iter().collect();
        entries.sort_unstable();
        let total = values.len() as u64;
        Histogram { entries, total }
    }

    /// Builds directly from (value, count) pairs; duplicates are
    /// merged, zero counts dropped.
    pub fn from_counts<I: IntoIterator<Item = (u128, u64)>>(pairs: I) -> Self {
        let mut map: HashMap<u128, u64> = HashMap::new();
        for (v, c) in pairs {
            if c > 0 {
                *map.entry(v).or_insert(0) += c;
            }
        }
        let mut entries: Vec<(u128, u64)> = map.into_iter().collect();
        entries.sort_unstable();
        let total = entries.iter().map(|&(_, c)| c).sum();
        Histogram { entries, total }
    }

    /// Builds a histogram from an owned value buffer by sorting it in
    /// place and run-length encoding the sorted runs. Produces exactly
    /// the same histogram as [`Histogram::from_values`] without a hash
    /// map — the constructor of choice for per-shard counting on the
    /// sharded hot paths, where buffers are already owned and
    /// duplicate-heavy segments sort in near-linear time.
    pub fn from_values_owned(mut values: Vec<u128>) -> Self {
        let total = values.len() as u64;
        values.sort_unstable();
        let mut entries: Vec<(u128, u64)> = Vec::new();
        for v in values {
            match entries.last_mut() {
                Some(e) if e.0 == v => e.1 += 1,
                _ => entries.push((v, 1)),
            }
        }
        Histogram { entries, total }
    }

    /// Merges another histogram into this one, summing the counts of
    /// shared values. Exact (integer counts), commutative, and
    /// associative, so shard-built histograms reduce to the same
    /// result at any shard count:
    /// `merge(from_values(a), from_values(b)) == from_values(a ++ b)`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            self.entries = other.entries.clone();
            self.total = other.total;
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() && j < other.entries.len() {
            let (av, ac) = self.entries[i];
            let (bv, bc) = other.entries[j];
            match av.cmp(&bv) {
                std::cmp::Ordering::Less => {
                    merged.push((av, ac));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((bv, bc));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((av, ac + bc));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
        self.total += other.total;
    }

    /// Sorted (value, count) pairs.
    #[inline]
    pub fn entries(&self) -> &[(u128, u64)] {
        &self.entries
    }

    /// Number of distinct values.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total number of observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the histogram holds no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The count of one value (0 if absent).
    pub fn count_of(&self, value: u128) -> u64 {
        match self.entries.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Minimum observed value. `None` when empty.
    pub fn min(&self) -> Option<u128> {
        self.entries.first().map(|&(v, _)| v)
    }

    /// Maximum observed value. `None` when empty.
    pub fn max(&self) -> Option<u128> {
        self.entries.last().map(|&(v, _)| v)
    }

    /// Removes a set of values (e.g. values claimed by a mining
    /// step), returning how many *observations* were removed.
    pub fn remove_values(&mut self, values: &[u128]) -> u64 {
        let mut removed = 0u64;
        let victims: std::collections::HashSet<u128> = values.iter().copied().collect();
        self.entries.retain(|&(v, c)| {
            if victims.contains(&v) {
                removed += c;
                false
            } else {
                true
            }
        });
        self.total -= removed;
        removed
    }

    /// Removes every value inside the closed range `[lo, hi]`,
    /// returning how many observations were removed.
    pub fn remove_range(&mut self, lo: u128, hi: u128) -> u64 {
        let mut removed = 0u64;
        self.entries.retain(|&(v, c)| {
            if (lo..=hi).contains(&v) {
                removed += c;
                false
            } else {
                true
            }
        });
        self.total -= removed;
        removed
    }

    /// Values whose frequency exceeds the Q3 + 1.5·IQR outlier
    /// threshold over the count distribution, most frequent first.
    /// This is mining step (a).
    pub fn frequency_outliers(&self) -> Vec<(u128, u64)> {
        if self.entries.len() < 2 {
            // With 0 or 1 distinct values the outlier rule is
            // meaningless; a single dominant value is still "unusually
            // prevalent" if it is the only one, so return it.
            return self.entries.clone();
        }
        let counts: Vec<u64> = self.entries.iter().map(|&(_, c)| c).collect();
        let thr = outlier_threshold(&counts);
        let mut out: Vec<(u128, u64)> = self
            .entries
            .iter()
            .copied()
            .filter(|&(_, c)| (c as f64) > thr)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Linearly interpolated quartiles (Q1, Q3) of a count sample
/// (the common "type 7" estimator used by NumPy's default
/// percentile). The input need not be sorted.
///
/// Returns `(0.0, 0.0)` for an empty sample.
pub fn quartiles(counts: &[u64]) -> (f64, f64) {
    if counts.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    (
        percentile_sorted(&sorted, 0.25),
        percentile_sorted(&sorted, 0.75),
    )
}

/// The Q3 + 1.5·IQR threshold over a count sample: values strictly
/// above this are "unusually prevalent" (§4.3 step (a)).
pub fn outlier_threshold(counts: &[u64]) -> f64 {
    let (q1, q3) = quartiles(counts);
    q3 + 1.5 * (q3 - q1)
}

/// Type-7 percentile of a pre-sorted slice, `p` in `[0, 1]`.
fn percentile_sorted(sorted: &[u64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0] as f64;
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_counts() {
        let h = Histogram::from_values(&[5, 3, 5, 5, 3, 9]);
        assert_eq!(h.entries(), &[(3, 2), (5, 3), (9, 1)]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.count_of(5), 3);
        assert_eq!(h.count_of(4), 0);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn from_counts_merges_and_drops_zero() {
        let h = Histogram::from_counts([(1, 2), (1, 3), (2, 0)]);
        assert_eq!(h.entries(), &[(1, 5)]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn quartiles_linear_interpolation() {
        // [1,2,3,4]: Q1 at rank 0.75 -> 1.75; Q3 at rank 2.25 -> 3.25.
        let (q1, q3) = quartiles(&[4, 1, 3, 2]);
        assert!((q1 - 1.75).abs() < 1e-12);
        assert!((q3 - 3.25).abs() < 1e-12);
        assert_eq!(quartiles(&[]), (0.0, 0.0));
        assert_eq!(quartiles(&[7]), (7.0, 7.0));
    }

    #[test]
    fn outlier_rule_finds_prevalent_values() {
        // 20 values with count 1 and one value with count 50.
        let mut pairs: Vec<(u128, u64)> = (0..20u128).map(|v| (v, 1)).collect();
        pairs.push((99, 50));
        let h = Histogram::from_counts(pairs);
        let out = h.frequency_outliers();
        assert_eq!(out, vec![(99, 50)]);
    }

    #[test]
    fn uniform_counts_have_no_outliers() {
        let h = Histogram::from_counts((0..32u128).map(|v| (v, 4)));
        assert!(h.frequency_outliers().is_empty());
    }

    #[test]
    fn outliers_sorted_by_count_desc() {
        let mut pairs: Vec<(u128, u64)> = (0..30u128).map(|v| (v, 1)).collect();
        pairs.push((100, 40));
        pairs.push((101, 90));
        let h = Histogram::from_counts(pairs);
        let out = h.frequency_outliers();
        assert_eq!(out[0].0, 101);
        assert_eq!(out[1].0, 100);
    }

    #[test]
    fn remove_values_and_ranges() {
        let mut h = Histogram::from_counts([(1, 2), (2, 3), (5, 1), (9, 4)]);
        assert_eq!(h.remove_values(&[2, 9]), 7);
        assert_eq!(h.total(), 3);
        assert_eq!(h.remove_range(0, 5), 3);
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn from_values_owned_matches_from_values() {
        let values: Vec<u128> = (0..500u128).map(|i| (i * 37) % 97).collect();
        assert_eq!(
            Histogram::from_values_owned(values.clone()),
            Histogram::from_values(&values)
        );
        assert_eq!(
            Histogram::from_values_owned(Vec::new()),
            Histogram::default()
        );
    }

    #[test]
    fn merge_equals_concatenated_build() {
        let a: Vec<u128> = (0..200u128).map(|i| i % 17).collect();
        let b: Vec<u128> = (0..300u128).map(|i| (i * 5) % 23).collect();
        let mut merged = Histogram::from_values(&a);
        merged.merge(&Histogram::from_values(&b));
        let both: Vec<u128> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, Histogram::from_values(&both));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::from_values(&[1, 2, 2, 9]);
        let mut left = h.clone();
        left.merge(&Histogram::default());
        assert_eq!(left, h);
        let mut right = Histogram::default();
        right.merge(&h);
        assert_eq!(right, h);
    }

    #[test]
    fn merge_is_associative_over_shards() {
        let values: Vec<u128> = (0..600u128).map(|i| (i * 13) % 41).collect();
        let whole = Histogram::from_values(&values);
        for shards in 1..=6 {
            let per = values.len().div_ceil(shards);
            let mut acc = Histogram::default();
            for chunk in values.chunks(per) {
                acc.merge(&Histogram::from_values(chunk));
            }
            assert_eq!(acc, whole, "{shards} shards");
        }
    }

    #[test]
    fn singleton_histogram_returns_itself_as_outlier() {
        let h = Histogram::from_values(&[42, 42, 42]);
        assert_eq!(h.frequency_outliers(), vec![(42, 3)]);
    }
}
