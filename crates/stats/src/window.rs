//! Windowing analysis of entropy (§4.5, Fig. 5).
//!
//! For every address window — determined by a starting nybble
//! position and a length in nybbles — compute the *unnormalized*
//! entropy (in bits) of the windowed values across the set. Plotted
//! as a heat map this "may be especially useful … for visual
//! discovery of patterns": constant regions show as 0, pseudo-random
//! regions grow linearly with window length until they saturate at
//! `log2(N)` for a set of `N` addresses.

use std::collections::HashMap;

use eip_addr::Ip6;

use crate::entropy::entropy_bits;

/// Entropy (bits, unnormalized) of the values of the window covering
/// 1-based nybble positions `start..start+len_nybbles` across the
/// set.
///
/// # Panics
/// Panics if the window falls outside positions 1..=32 or has zero
/// length.
pub fn window_entropy(addrs: &[Ip6], start: usize, len_nybbles: usize) -> f64 {
    assert!(len_nybbles >= 1, "window length must be >= 1");
    let end = start + len_nybbles - 1;
    assert!(start >= 1 && end <= 32, "window out of range");
    let mut counts: HashMap<u128, u64> = HashMap::new();
    for &ip in addrs {
        let v = ip.bits((start - 1) * 4, end * 4);
        *counts.entry(v).or_insert(0) += 1;
    }
    entropy_bits(counts.into_values())
}

/// Alternative variability measures for windowing analysis.
///
/// §4.5: "note that one could use a different variability measure
/// than the entropy, e.g., number of distinct values, inter-quartile
/// range, frequency of the most popular value, or a weighted mean
/// thereof." These are those alternatives, over the same windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowMeasure {
    /// Shannon entropy in bits (the default used by Fig. 5).
    EntropyBits,
    /// Number of distinct window values.
    DistinctValues,
    /// Inter-quartile range of the window values (as f64).
    InterQuartileRange,
    /// Frequency (fraction) of the most popular value — *low* values
    /// mean high variability, so this is reported as
    /// `1 − max-frequency` to keep "bigger = more variable".
    TopValueComplement,
}

/// Evaluates one window under the chosen variability measure.
///
/// # Panics
/// Panics on out-of-range windows (see [`window_entropy`]).
pub fn window_measure(
    addrs: &[Ip6],
    start: usize,
    len_nybbles: usize,
    measure: WindowMeasure,
) -> f64 {
    assert!(len_nybbles >= 1, "window length must be >= 1");
    let end = start + len_nybbles - 1;
    assert!(start >= 1 && end <= 32, "window out of range");
    let mut counts: HashMap<u128, u64> = HashMap::new();
    for &ip in addrs {
        let v = ip.bits((start - 1) * 4, end * 4);
        *counts.entry(v).or_insert(0) += 1;
    }
    match measure {
        WindowMeasure::EntropyBits => entropy_bits(counts.into_values()),
        WindowMeasure::DistinctValues => counts.len() as f64,
        WindowMeasure::InterQuartileRange => {
            // IQR over the multiset of window *values*.
            let mut vals: Vec<u128> = Vec::with_capacity(addrs.len());
            for (v, c) in counts {
                for _ in 0..c {
                    vals.push(v);
                }
            }
            vals.sort_unstable();
            if vals.is_empty() {
                return 0.0;
            }
            let q = |p: f64| -> f64 {
                let rank = p * (vals.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                vals[lo] as f64 * (1.0 - frac) + vals[hi] as f64 * frac
            };
            q(0.75) - q(0.25)
        }
        WindowMeasure::TopValueComplement => {
            let total: u64 = counts.values().sum();
            if total == 0 {
                return 0.0;
            }
            let top = counts.values().copied().max().unwrap_or(0);
            1.0 - top as f64 / total as f64
        }
    }
}

/// The full triangular grid of window entropies: every valid
/// (start position, length) pair at nybble granularity — the data
/// behind Fig. 5.
#[derive(Clone, Debug)]
pub struct WindowGrid {
    /// `cells[start - 1][len - 1]` = entropy (bits) of the window at
    /// 1-based nybble `start` with length `len` nybbles; windows
    /// exceeding position 32 are absent (the row is shorter).
    cells: Vec<Vec<f64>>,
    /// Number of addresses the grid was computed from.
    n: usize,
}

impl WindowGrid {
    /// Computes the grid over the set. Costs
    /// O(32² · N) hashing work; fine for the ≤100K-address sets the
    /// analyses use.
    pub fn compute(addrs: &[Ip6]) -> Self {
        let mut cells = Vec::with_capacity(32);
        for start in 1..=32usize {
            let max_len = 32 - start + 1;
            let mut row = Vec::with_capacity(max_len);
            for len in 1..=max_len {
                row.push(window_entropy(addrs, start, len));
            }
            cells.push(row);
        }
        WindowGrid {
            cells,
            n: addrs.len(),
        }
    }

    /// Entropy of the window at 1-based `start` with `len` nybbles,
    /// or `None` if the window exceeds the address.
    pub fn get(&self, start: usize, len: usize) -> Option<f64> {
        if start == 0 || len == 0 || start > 32 {
            return None;
        }
        self.cells
            .get(start - 1)
            .and_then(|row| row.get(len - 1))
            .copied()
    }

    /// Number of addresses the grid was computed from.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Upper bound for any cell: `log2(N)` (a window cannot carry
    /// more information than the sample provides).
    pub fn max_possible(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            (self.n as f64).log2()
        }
    }

    /// Iterates `(start, len, entropy_bits)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .flat_map(|(s, row)| row.iter().enumerate().map(move |(l, &h)| (s + 1, l + 1, h)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_addrs() -> Vec<Ip6> {
        [
            "20010db840011111000000000000111c",
            "20010db840011111000000000000111f",
            "20010db840031c13000000000000200c",
            "20010db8400a2f2a000000000000200f",
            "20010db840011111000000000000111f",
        ]
        .iter()
        .map(|s| Ip6::from_hex32(s).unwrap())
        .collect()
    }

    #[test]
    fn constant_window_zero_entropy() {
        let a = fig3_addrs();
        assert_eq!(window_entropy(&a, 1, 11), 0.0);
        assert_eq!(window_entropy(&a, 17, 12), 0.0);
    }

    #[test]
    fn varying_window_positive_entropy() {
        let a = fig3_addrs();
        // Window 12..16 has values {11111 (x3), 31c13, a2f2a}.
        let h = window_entropy(&a, 12, 5);
        let expect = entropy_bits([3u64, 1, 1]);
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn whole_address_window_counts_distinct_addresses() {
        let a = fig3_addrs();
        // 5 lines, 4 distinct addresses: one appears twice.
        let h = window_entropy(&a, 1, 32);
        let expect = entropy_bits([2u64, 1, 1, 1]);
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn grid_matches_pointwise_queries() {
        let a = fig3_addrs();
        let g = WindowGrid::compute(&a);
        assert_eq!(g.get(1, 11), Some(0.0));
        let direct = window_entropy(&a, 12, 5);
        assert_eq!(g.get(12, 5), Some(direct));
        assert_eq!(g.get(32, 2), None); // exceeds the address
        assert_eq!(g.get(0, 1), None);
        assert_eq!(g.population(), 5);
    }

    #[test]
    fn grid_cells_bounded_by_log_n() {
        let a = fig3_addrs();
        let g = WindowGrid::compute(&a);
        let cap = g.max_possible() + 1e-12;
        for (_, _, h) in g.iter() {
            assert!(h <= cap);
        }
    }

    #[test]
    fn entropy_monotone_in_window_extension() {
        // Extending a window can only add information:
        // H(start, len+1) >= H(start, len).
        let a = fig3_addrs();
        let g = WindowGrid::compute(&a);
        for start in 1..=32usize {
            let max_len = 32 - start + 1;
            for len in 1..max_len {
                let h1 = g.get(start, len).unwrap();
                let h2 = g.get(start, len + 1).unwrap();
                assert!(h2 + 1e-12 >= h1, "window ({start},{len})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "window out of range")]
    fn window_bounds_checked() {
        window_entropy(&fig3_addrs(), 30, 5);
    }

    #[test]
    fn alternative_measures_agree_on_constant_windows() {
        let a = fig3_addrs();
        for m in [
            WindowMeasure::EntropyBits,
            WindowMeasure::InterQuartileRange,
            WindowMeasure::TopValueComplement,
        ] {
            assert_eq!(window_measure(&a, 1, 11, m), 0.0, "{m:?}");
        }
        assert_eq!(
            window_measure(&a, 1, 11, WindowMeasure::DistinctValues),
            1.0
        );
    }

    #[test]
    fn distinct_values_counts_support() {
        let a = fig3_addrs();
        // Window 12..16 has 3 distinct values across the 5 lines.
        assert_eq!(
            window_measure(&a, 12, 5, WindowMeasure::DistinctValues),
            3.0
        );
    }

    #[test]
    fn top_value_complement_matches_hand_computation() {
        let a = fig3_addrs();
        // Window 12..16: top value 11111 appears 3 of 5 times.
        let v = window_measure(&a, 12, 5, WindowMeasure::TopValueComplement);
        assert!((v - (1.0 - 3.0 / 5.0)).abs() < 1e-12);
    }

    #[test]
    fn iqr_positive_only_when_values_spread() {
        let a = fig3_addrs();
        assert_eq!(
            window_measure(&a, 17, 12, WindowMeasure::InterQuartileRange),
            0.0
        );
        assert!(window_measure(&a, 29, 4, WindowMeasure::InterQuartileRange) > 0.0);
    }

    #[test]
    fn entropy_measure_matches_window_entropy() {
        let a = fig3_addrs();
        for (s, l) in [(1usize, 11usize), (12, 5), (29, 4)] {
            let via_measure = window_measure(&a, s, l, WindowMeasure::EntropyBits);
            assert!((via_measure - window_entropy(&a, s, l)).abs() < 1e-12);
        }
    }
}
