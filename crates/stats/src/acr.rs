//! 4-bit Aggregate Count Ratios (ACR).
//!
//! The paper overlays a normalized ACR series on its entropy plots
//! (Figs. 7–10): "ACR reveals how much a segment of the address is
//! relevant to grouping addresses into areas of the address space.
//! The higher the ACR value, the more pertinent to prefix
//! discrimination a given segment is." The metric descends from the
//! Multi-Resolution Aggregate count ratios of Plonka & Berger (IMC
//! 2015), which count distinct aggregates (prefixes) at every length.
//!
//! Our definition, documented in DESIGN.md: let `A(b)` be the number
//! of distinct `b`-bit prefixes covering the set. For nybble position
//! `i` (1-based), the growth factor when extending prefixes by that
//! nybble is `A(4i) / A(4(i−1))`, between 1 (the nybble never
//! discriminates) and 16 (every value splits every aggregate
//! sixteen-fold). Taking `log` and normalizing by `log 16` maps this
//! to `[0, 1]`:
//!
//! ```text
//! ACR(i) = log(A(4i) / A(4(i−1))) / log 16
//! ```
//!
//! A high value at nybble `i` means that hex character separates
//! addresses into many distinct sub-prefixes — exactly what the
//! paper's figures read off the dashed red line (e.g. S1's bits
//! 40–56 "utilized for discriminating prefixes" versus segment F's
//! "high entropy with ACR near zero").

use eip_addr::AddressSet;

/// The normalized 4-bit ACR profile: entry `i` (0-based) corresponds
/// to nybble position `i + 1`. Values lie in `[0, 1]`.
///
/// An empty set yields all zeros.
pub fn acr4(set: &AddressSet) -> [f64; 32] {
    let mut out = [0.0; 32];
    if set.is_empty() {
        return out;
    }
    // A(0) = 1 by definition (the whole space is one aggregate).
    let mut prev = 1usize;
    for (i, slot) in out.iter_mut().enumerate() {
        let cur = set.count_prefixes(((i + 1) * 4) as u8);
        *slot = ((cur as f64 / prev as f64).ln() / 16f64.ln()).clamp(0.0, 1.0);
        prev = cur;
    }
    out
}

/// Raw aggregate counts `A(4i)` for `i` in `0..=32` (index 0 is
/// `A(0) = 1`). Exposed for the windowing/MRA-style diagnostics and
/// the benches.
pub fn aggregate_counts(set: &AddressSet) -> [usize; 33] {
    let mut out = [0usize; 33];
    out[0] = if set.is_empty() { 0 } else { 1 };
    for (i, slot) in out.iter_mut().enumerate().skip(1) {
        *slot = set.count_prefixes((i * 4) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_addr::Ip6;

    fn set_of(strs: &[&str]) -> AddressSet {
        AddressSet::from_iter(strs.iter().map(|s| s.parse::<Ip6>().unwrap()))
    }

    #[test]
    fn single_address_has_zero_acr() {
        let s = set_of(&["2001:db8::1"]);
        assert_eq!(acr4(&s), [0.0; 32]);
    }

    #[test]
    fn empty_set_is_zero() {
        assert_eq!(acr4(&AddressSet::new()), [0.0; 32]);
    }

    #[test]
    fn discriminating_nybble_has_positive_acr() {
        // 16 addresses differing only in nybble 9 (bits 32-36):
        // nybble 9 splits one /32 into 16 /36s -> ACR = 1 there.
        let s: AddressSet = (0..16u128)
            .map(|v| Ip6((0x2001_0db8u128 << 96) | (v << 92)))
            .collect();
        let a = acr4(&s);
        assert!((a[8] - 1.0).abs() < 1e-12, "nybble 9: {}", a[8]);
        for (i, &x) in a.iter().enumerate() {
            if i != 8 {
                assert_eq!(x, 0.0, "nybble {}", i + 1);
            }
        }
    }

    #[test]
    fn partial_split_is_fractional() {
        // 4 distinct values in nybble 9 -> growth factor 4 -> ACR 0.5.
        let s: AddressSet = (0..4u128)
            .map(|v| Ip6((0x2001_0db8u128 << 96) | (v << 92)))
            .collect();
        let a = acr4(&s);
        assert!((a[8] - 0.5).abs() < 1e-12, "got {}", a[8]);
    }

    #[test]
    fn acr_detects_low_bit_discrimination() {
        // Addresses differ only in the last nybble.
        let s: AddressSet = (0..8u128)
            .map(|v| Ip6((0x2001_0db8u128 << 96) | v))
            .collect();
        let a = acr4(&s);
        assert!(a[31] > 0.7);
        assert!(a[..31].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn aggregate_counts_monotone() {
        let s: AddressSet = (0..100u128)
            .map(|v| Ip6(v * 0x1234_5678_9abcu128))
            .collect();
        let c = aggregate_counts(&s);
        for w in c.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(c[32], s.len());
    }
}
