//! End-to-end daemon tests: a real TCP server on loopback, scripted
//! and concurrent client sessions, and the acceptance criterion —
//! `GEN` responses byte-identical to the in-process
//! [`Generator`](entropy_ip::Generator) oracle.

mod common;

use std::sync::Arc;

use eip_exec::rng::stream_key;
use eip_serve::{spawn, Client, ModelStore, Registry, Service};
use entropy_ip::Generator;

const BASE_SEED: u64 = 42;

/// Spins up a server over freshly trained models and returns the
/// handle plus the in-process oracle models.
fn server_with(
    test: &str,
    nets: &[(&str, u128)],
    capacity: usize,
) -> (eip_serve::ServerHandle, Vec<entropy_ip::IpModel>) {
    let dir = common::scratch(test);
    let store = ModelStore::open(&dir).unwrap();
    let models = nets
        .iter()
        .map(|&(net, base)| common::train_into(&store, net, base))
        .collect();
    let service = Arc::new(Service::new(Registry::new(store, capacity), BASE_SEED));
    let server = spawn(service, "127.0.0.1:0").unwrap();
    (server, models)
}

/// The oracle's candidate lines for a seed, formatted as the server
/// formats them.
fn oracle_lines(model: &entropy_ip::IpModel, n: usize, seed: u64) -> Vec<String> {
    Generator::new(model)
        .run_keyed_reference(n, seed)
        .candidates
        .iter()
        .map(|ip| ip.to_string())
        .collect()
}

#[test]
fn scripted_session_covers_every_command() {
    let (server, models) = server_with("script", &[("S1", 0)], 4);
    let model = &models[0];
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert!(c.stream_id >= 1);

    // BROWSE: first segment's prior, one V line per dictionary value.
    let label = &model.mined()[0].segment.label;
    let resp = c.request(&format!("BROWSE S1 {label}")).unwrap();
    assert!(resp[0].starts_with(&format!("OK BROWSE S1 {label} ")));
    assert_eq!(resp.len() - 1, model.mined()[0].values.len());
    let probs: f64 = resp[1..]
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum();
    assert!((probs - 1.0).abs() < 1e-3, "prior sums to {probs}");

    // GEN with a pinned seed: byte-identical to the oracle.
    let resp = c.request("GEN S1 50 seed=7").unwrap();
    assert!(resp[0].starts_with("OK GEN S1 50 seed=7 "));
    assert_eq!(resp[1..], oracle_lines(model, 50, 7));

    // PREDICT64 on a trained /64: known, nonzero probability.
    let known_addr = common::training_set(0).iter().next().unwrap();
    let resp = c.request(&format!("PREDICT64 S1 {known_addr}")).unwrap();
    assert!(resp[0].contains("known=true"), "got {:?}", resp[0]);
    assert!(resp[0].contains("logp="));
    assert!(resp.len() > 1, "expected per-segment lines");

    // PREDICT64 on a /64 the model never saw: probability zero.
    let resp = c.request("PREDICT64 S1 dead:beef::1").unwrap();
    assert!(
        resp[0].contains("known=false") && resp[0].ends_with("p=0"),
        "got {:?}",
        resp[0]
    );

    // STATS reflects the session so far.
    let resp = c.request("STATS").unwrap();
    assert_eq!(resp[0], "OK STATS");
    let field = |name: &str| {
        resp.iter()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("missing {name} in {resp:?}"))
            .to_string()
    };
    assert_eq!(field("networks"), "1");
    assert_eq!(field("resident"), "1");
    assert_eq!(field("cache_loads"), "1");
    assert_eq!(field("req_browse"), "1");
    assert_eq!(field("req_gen"), "1");
    assert_eq!(field("req_predict64"), "2");
    assert_eq!(field("mru"), "S1");
    // Per-model residency: the gauge plus one `model <id>` line per
    // resident network, so fleet deployments can assert servability.
    assert_eq!(field("models_resident"), "1");
    assert_eq!(field("model"), "S1");

    // Errors are tagged and do not kill the connection.
    assert!(c.request("GEN nope 5").unwrap()[0].starts_with("ERR unknown-model "));
    assert!(c.request("BROWSE S1 ZZ").unwrap()[0].starts_with("ERR unknown-segment "));
    assert!(c.request("GEN S1 5 Q=Q1").unwrap()[0].starts_with("ERR bad-evidence "));
    assert!(c.request("FROB").unwrap()[0].starts_with("ERR unknown-command "));
    assert!(c.request("PREDICT64 S1 zz").unwrap()[0].starts_with("ERR bad-address "));

    // QUIT closes cleanly.
    assert_eq!(c.request("QUIT").unwrap()[0], "OK BYE");
    server.shutdown();
}

/// The acceptance criterion: concurrent unpinned GEN clients each get
/// a batch byte-identical to the oracle run with their echoed seed,
/// and the seed derivation matches the documented stream discipline.
#[test]
fn concurrent_gen_matches_oracle_byte_for_byte() {
    let (server, models) = server_with("concurrent", &[("S1", 0), ("S2", 9)], 4);
    let addr = server.local_addr();
    let models = Arc::new(models);

    const CLIENTS: usize = 6;
    const N: usize = 40;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let models = models.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let net = if k % 2 == 0 { "S1" } else { "S2" };
                let model = &models[k % 2];
                let mut seeds = Vec::new();
                // Two unpinned GENs per connection: request index must
                // advance the derived seed.
                for req_index in 0..2u64 {
                    let resp = c.request(&format!("GEN {net} {N}")).unwrap();
                    let seed: u64 = resp[0]
                        .split_whitespace()
                        .find_map(|t| t.strip_prefix("seed="))
                        .unwrap()
                        .parse()
                        .unwrap();
                    let expected = stream_key(stream_key(BASE_SEED, c.stream_id), req_index);
                    assert_eq!(seed, expected, "seed derivation drifted");
                    assert_eq!(
                        resp[1..],
                        oracle_lines(model, N, seed)[..],
                        "client {k} req {req_index}: GEN differs from oracle"
                    );
                    seeds.push(seed);
                }
                assert_ne!(seeds[0], seeds[1]);
                (c.stream_id, seeds)
            })
        })
        .collect();

    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Every connection got a distinct stream, hence distinct seeds.
    let mut streams: Vec<u64> = results.iter().map(|r| r.0).collect();
    streams.sort_unstable();
    streams.dedup();
    assert_eq!(streams.len(), CLIENTS, "stream ids must be unique");

    // Pinned seeds are connection-independent: two fresh connections
    // asking for the same (net, count, seed) get identical bytes.
    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    let r1 = c1.request("GEN S1 64 seed=123").unwrap();
    let r2 = c2.request("GEN S1 64 seed=123").unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1[1..], oracle_lines(&models[0], 64, 123)[..]);

    server.shutdown();
}

/// Evidence-constrained GEN matches the keyed constrained oracle and
/// honors the clamp.
#[test]
fn constrained_gen_matches_oracle() {
    let (server, models) = server_with("constrained", &[("S1", 0)], 2);
    let model = &models[0];
    // Pick a segment with a real choice (>1 dictionary values).
    let (label, code, pair) = model
        .mined()
        .iter()
        .find(|m| m.values.len() > 1)
        .map(|m| {
            let label = m.segment.label.clone();
            let code = m.values[0].code.clone();
            let pair = model.evidence_for(&label, &code).unwrap();
            (label, code, pair)
        })
        .expect("test model has a multi-valued segment");

    let mut c = Client::connect(server.local_addr()).unwrap();
    let resp = c
        .request(&format!("GEN S1 30 seed=5 {label}={code}"))
        .unwrap();
    let evidence = vec![pair];
    let oracle = Generator::new(model).run_keyed_constrained(&evidence, 30, 5);
    let oracle_lines: Vec<String> = oracle.candidates.iter().map(|ip| ip.to_string()).collect();
    assert_eq!(resp[1..], oracle_lines[..]);
    assert!(!oracle.candidates.is_empty());
    server.shutdown();
}

/// Finished connections release their slots (fd + join handle)
/// without waiting for shutdown, so a long-lived daemon serving many
/// short sessions (`eip query` is one connection each) never runs
/// out of file descriptors.
#[test]
fn finished_connections_are_reaped() {
    let (server, _) = server_with("reap", &[("S1", 0)], 4);
    for _ in 0..8 {
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(c.request("QUIT").unwrap()[0], "OK BYE");
    }
    // Each thread removes its own slot right after its QUIT response;
    // allow a beat for the last ones to get there.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.tracked_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(server.tracked_connections(), 0, "connection slots leaked");
    server.shutdown();
}

/// Shutdown joins every thread and the port stops accepting.
#[test]
fn shutdown_is_clean() {
    let (server, _) = server_with("shutdown", &[("S1", 0)], 2);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    assert!(c.request("STATS").unwrap()[0].starts_with("OK STATS"));
    drop(c);
    server.shutdown();
    // The listener is gone: a fresh connect must fail (allow a beat
    // for the OS to tear the socket down).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(std::net::TcpStream::connect(addr).is_err());
}
