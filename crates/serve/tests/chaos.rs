//! Chaos tests for the hardened daemon: slow-loris clients, oversize
//! request lines, load shedding at the connection limit, runtime GEN
//! caps, and quarantine of corrupt containers — each misbehavior must
//! draw its documented response (tagged error, deadline close, or
//! shed) without wedging the server or leaking a connection slot.

mod common;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eip_serve::{Client, Limits, ModelStore, Registry, RetryPolicy, ServerHandle, Service};

/// Spawns a server over `dir` with explicit limits (registry backoff
/// pinned long, so quarantine behavior is deterministic in-test).
fn spawn_with(dir: &Path, limits: Limits) -> ServerHandle {
    let store = ModelStore::open(dir).unwrap();
    let registry =
        Registry::with_backoff(store, 4, Duration::from_secs(600), Duration::from_secs(600));
    let service = Arc::new(Service::with_limits(registry, 0, limits));
    eip_serve::spawn(service, "127.0.0.1:0").unwrap()
}

/// One `STATS` counter, by line prefix.
fn stat(client: &mut Client, key: &str) -> u64 {
    let block = client.request("STATS").unwrap();
    block
        .iter()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("no {key} in {block:?}"))
        .parse()
        .unwrap()
}

/// Polls until the server's slot map drains (threads reap their own
/// slots asynchronously after the socket closes).
fn assert_no_leaked_slots(server: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if server.tracked_connections() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "leaked connection slots: {} still tracked",
        server.tracked_connections()
    );
}

#[test]
fn slow_loris_is_cut_off_by_the_read_deadline() {
    let dir = common::scratch("chaos_loris");
    let server = spawn_with(
        &dir,
        Limits {
            read_timeout: Duration::from_millis(150),
            ..Limits::default()
        },
    );

    // A raw socket that sends a request prefix and then goes quiet:
    // the server must close it at the deadline, not wait forever.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut banner = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    banner.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK EIP-SERVE"), "{line:?}");
    raw.write_all(b"STA").unwrap();
    raw.flush().unwrap();

    let start = Instant::now();
    let mut rest = Vec::new();
    // The read returns (EOF or reset) once the server hangs up.
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = banner.read_to_end(&mut rest);
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "server did not enforce its read deadline"
    );

    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(stat(&mut client, "timeouts") >= 1);
    drop(client);
    assert_no_leaked_slots(&server);
    server.shutdown();
}

#[test]
fn oversize_request_line_draws_err_limit_and_a_close() {
    let dir = common::scratch("chaos_oversize");
    let server = spawn_with(
        &dir,
        Limits {
            max_line_bytes: 64,
            ..Limits::default()
        },
    );

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // banner
    line.clear();
    reader.read_line(&mut line).unwrap(); // "."

    // 600 bytes without a newline: the cap must fire mid-line, before
    // the request completes, with a tagged error and a close.
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = raw.write_all(&[b'x'; 600]);
    let _ = raw.flush();
    let mut response = String::new();
    while reader.read_line(&mut response).unwrap_or(0) > 0 {}
    assert!(
        response.starts_with("ERR limit") && response.contains("64 bytes"),
        "{response:?}"
    );

    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(stat(&mut client, "oversize_lines"), 1);
    assert!(stat(&mut client, "limit_rejects") >= 1);
    drop(client);
    assert_no_leaked_slots(&server);
    server.shutdown();
}

#[test]
fn connection_limit_sheds_with_busy_and_recovers() {
    let dir = common::scratch("chaos_shed");
    {
        let store = ModelStore::open(&dir).unwrap();
        common::train_into(&store, "S1", 0);
    }
    let server = spawn_with(
        &dir,
        Limits {
            max_conns: 1,
            retry_ms: 25,
            ..Limits::default()
        },
    );

    // The first connection occupies the only slot...
    let mut holder = Client::connect(server.local_addr()).unwrap();
    assert!(holder.request("BROWSE S1 A").unwrap()[0].starts_with("OK"));

    // ...so the second is shed at accept with the retry hint.
    let err = Client::connect(server.local_addr()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.starts_with("ERR busy"), "{msg:?}");
    assert!(msg.contains("retry-ms=25"), "{msg:?}");

    // A retrying client wins once the holder leaves. Release the slot
    // from another thread mid-retry to exercise the backoff loop.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        let _ = holder.request("QUIT");
    });
    let policy = RetryPolicy {
        attempts: 40,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
        seed: 7,
    };
    let mut client = Client::connect_with_retry(server.local_addr(), &policy).unwrap();
    release.join().unwrap();
    assert!(client.request("BROWSE S1 A").unwrap()[0].starts_with("OK"));
    assert!(stat(&mut client, "shed_busy") >= 1);
    assert_eq!(stat(&mut client, "conns_open"), 1, "just this connection");
    drop(client);
    assert_no_leaked_slots(&server);
    server.shutdown();
}

#[test]
fn gen_over_the_runtime_cap_is_rejected_without_allocation() {
    let dir = common::scratch("chaos_gen_cap");
    {
        let store = ModelStore::open(&dir).unwrap();
        common::train_into(&store, "S1", 0);
    }
    let server = spawn_with(
        &dir,
        Limits {
            max_gen: 10,
            ..Limits::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();

    let over = client.request("GEN S1 11 seed=1").unwrap();
    assert!(over[0].starts_with("ERR limit"), "{over:?}");
    assert!(over[0].contains("cap 10"), "{over:?}");
    // The reject happened before any model fetch: nothing was loaded.
    assert_eq!(stat(&mut client, "cache_loads"), 0);
    assert_eq!(stat(&mut client, "limit_rejects"), 1);

    let at_cap = client.request("GEN S1 10 seed=1").unwrap();
    assert!(at_cap[0].starts_with("OK GEN"), "{at_cap:?}");
    assert_eq!(at_cap.len(), 1 + 10);

    // The parse-time ceiling wears the same tag.
    let parse_cap = client
        .request(&format!("GEN S1 {}", eip_serve::MAX_GEN_COUNT + 1))
        .unwrap();
    assert!(parse_cap[0].starts_with("ERR limit"), "{parse_cap:?}");
    drop(client);
    assert_no_leaked_slots(&server);
    server.shutdown();
}

#[test]
fn truncated_container_is_quarantined_not_hammered() {
    let dir = common::scratch("chaos_truncated");
    let path = {
        let store = ModelStore::open(&dir).unwrap();
        common::train_into(&store, "S1", 0);
        store.path_for("S1").unwrap()
    };
    // Truncate the container to half: decodes now fail.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let server = spawn_with(&dir, Limits::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let first = client.request("BROWSE S1 A").unwrap();
    assert!(first[0].starts_with("ERR io"), "{first:?}");
    for _ in 0..5 {
        let again = client.request("BROWSE S1 A").unwrap();
        assert_eq!(again, first, "quarantine serves the same error");
    }
    // One disk decode total: the rest came from the negative cache.
    assert_eq!(stat(&mut client, "cache_loads"), 1);
    assert_eq!(stat(&mut client, "cache_load_failures"), 1);
    assert_eq!(stat(&mut client, "cache_neg_hits"), 5);
    drop(client);
    assert_no_leaked_slots(&server);
    server.shutdown();
}
