//! Shared helpers for the eip_serve integration tests: tiny trained
//! models and per-test scratch directories.

use std::path::PathBuf;

use eip_addr::{AddressSet, Ip6};
use entropy_ip::{store, EntropyIp, IpModel};

use eip_serve::ModelStore;

/// A fresh scratch directory under the target-local temp dir, unique
/// per test name (tests run concurrently in one process).
pub fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eip_serve_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The addresses a test network is trained on: two /32s with distinct
/// subnet distributions and low-entropy IIDs (same shape as the
/// browser tests — yields several segments with multi-value
/// dictionaries).
pub fn training_set(base: u128) -> AddressSet {
    let mut v = Vec::new();
    for i in 0..600u128 {
        v.push(Ip6(((0x2001_0db8 + base) << 96)
            | ((i % 4) << 80)
            | (i + 1)));
    }
    for i in 0..400u128 {
        v.push(Ip6(((0x3001_0db8 + base) << 96)
            | ((8 + i % 8) << 80)
            | (i + 1)));
    }
    AddressSet::from_iter(v)
}

/// Trains the test model for `base`.
pub fn train(base: u128) -> IpModel {
    EntropyIp::new().analyze(&training_set(base)).unwrap()
}

/// Trains a model and saves it under `network` in `store`.
pub fn train_into(store: &ModelStore, network: &str, base: u128) -> IpModel {
    let model = train(base);
    let fp = store::fingerprint(&format!("test net {network} base {base}"));
    store.save(network, &model, fp).unwrap();
    model
}
