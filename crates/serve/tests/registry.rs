//! Registry/LRU behavior: eviction order, the capacity-1 degenerate
//! case, and single-flight cold loads under concurrency.

mod common;

use std::sync::{Arc, Barrier};
use std::time::Duration;

use eip_serve::{ModelStore, Registry};

#[test]
fn evicts_least_recently_used_first() {
    let dir = common::scratch("lru_order");
    let store = ModelStore::open(&dir).unwrap();
    for (net, base) in [("A", 0), ("B", 1), ("C", 2)] {
        common::train_into(&store, net, base);
    }
    let reg = Registry::new(store, 2);

    reg.get("A").unwrap();
    reg.get("B").unwrap();
    assert_eq!(reg.resident(), vec!["B", "A"]);

    // Touch A so B becomes the LRU victim.
    reg.get("A").unwrap();
    reg.get("C").unwrap();
    assert_eq!(reg.resident(), vec!["C", "A"]);

    let stats = reg.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.hits, 1); // the A touch
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.loads, 3);

    // B was evicted: fetching it again is a fresh disk load.
    reg.get("B").unwrap();
    let stats = reg.stats();
    assert_eq!(stats.loads, 4);
    assert_eq!(stats.evictions, 2);
    assert_eq!(stats.resident, 2);
}

#[test]
fn capacity_one_thrashes_but_serves() {
    let dir = common::scratch("lru_cap1");
    let store = ModelStore::open(&dir).unwrap();
    common::train_into(&store, "A", 0);
    common::train_into(&store, "B", 1);
    let reg = Registry::new(store, 1);

    for round in 0..3 {
        let a = reg.get("A").unwrap();
        assert_eq!(a.network, "A");
        assert_eq!(reg.resident(), vec!["A"], "round {round}");
        let b = reg.get("B").unwrap();
        assert_eq!(b.network, "B");
        assert_eq!(reg.resident(), vec!["B"], "round {round}");
    }
    let stats = reg.stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 6);
    assert_eq!(stats.loads, 6);
    assert_eq!(stats.evictions, 5);
    assert_eq!(stats.resident, 1);

    // Capacity 0 is clamped to 1, not a panic or an empty cache.
    let reg0 = Registry::new(ModelStore::open(&dir).unwrap(), 0);
    reg0.get("A").unwrap();
    assert_eq!(reg0.stats().resident, 1);
}

#[test]
fn concurrent_cold_get_loads_exactly_once() {
    let dir = common::scratch("lru_single_flight");
    let store = ModelStore::open(&dir).unwrap();
    common::train_into(&store, "A", 0);
    let reg = Arc::new(Registry::new(store, 4));

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = reg.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                reg.get("A").unwrap()
            })
        })
        .collect();
    let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Everyone got the *same* decoded instance...
    for m in &models[1..] {
        assert!(Arc::ptr_eq(&models[0], m));
    }
    // ...and the container was decoded exactly once.
    let stats = reg.stats();
    assert_eq!(stats.loads, 1, "thundering herd: {stats:?}");
    assert_eq!(stats.hits + stats.misses, THREADS as u64);
    assert!(stats.misses >= 1);
}

#[test]
fn failed_loads_are_not_cached() {
    let dir = common::scratch("lru_retry");
    let store = ModelStore::open(&dir).unwrap();
    let path = store.path_for("A").unwrap();
    std::fs::write(&path, b"not a model container").unwrap();
    // Zero backoff disables the negative cache: every get retries the
    // disk immediately (quarantine behavior is covered below).
    let reg = Registry::with_backoff(store, 2, Duration::ZERO, Duration::ZERO);

    assert!(reg.get("A").is_err());
    assert_eq!(
        reg.stats().resident,
        0,
        "failed load must not stay resident"
    );

    // Fix the file; the next get must retry the disk and succeed.
    let store2 = ModelStore::open(&dir).unwrap();
    common::train_into(&store2, "A", 0);
    let a = reg.get("A").unwrap();
    assert_eq!(a.network, "A");
    assert_eq!(reg.stats().resident, 1);
    assert_eq!(reg.stats().load_failures, 1);
}

#[test]
fn quarantine_serves_the_cached_error_without_disk_reads() {
    let dir = common::scratch("lru_quarantine");
    let store = ModelStore::open(&dir).unwrap();
    let path = store.path_for("A").unwrap();
    std::fs::write(&path, b"not a model container").unwrap();
    // A backoff far longer than the test keeps the quarantine active.
    let reg = Registry::with_backoff(store, 2, Duration::from_secs(600), Duration::from_secs(600));

    let first = reg.get("A").unwrap_err();
    for _ in 0..5 {
        assert_eq!(reg.get("A").unwrap_err(), first, "same cached error");
    }
    let stats = reg.stats();
    assert_eq!(stats.loads, 1, "exactly one disk decode: {stats:?}");
    assert_eq!(stats.load_failures, 1);
    assert_eq!(stats.neg_hits, 5);

    // Fixing the file does not help while the quarantine holds...
    let store2 = ModelStore::open(&dir).unwrap();
    common::train_into(&store2, "A", 0);
    assert!(reg.get("A").is_err(), "backoff still in force");
    assert_eq!(reg.stats().loads, 1);
}

#[test]
fn quarantine_expiry_retries_the_disk_and_recovers() {
    let dir = common::scratch("lru_quarantine_expiry");
    let store = ModelStore::open(&dir).unwrap();
    let path = store.path_for("A").unwrap();
    std::fs::write(&path, b"not a model container").unwrap();
    let reg = Registry::with_backoff(
        store,
        2,
        Duration::from_millis(20),
        Duration::from_millis(20),
    );

    assert!(reg.get("A").is_err());
    std::thread::sleep(Duration::from_millis(40));
    // Backoff expired: the disk is retried (and fails again,
    // re-arming the quarantine).
    assert!(reg.get("A").is_err());
    assert_eq!(reg.stats().loads, 2);
    assert_eq!(reg.stats().load_failures, 2);

    // Repair the file and wait the backoff out: recovery is automatic.
    let store2 = ModelStore::open(&dir).unwrap();
    common::train_into(&store2, "A", 0);
    std::thread::sleep(Duration::from_millis(40));
    let a = reg.get("A").unwrap();
    assert_eq!(a.network, "A");
    // A successful load clears the quarantine: hits from here on.
    assert!(reg.get("A").is_ok());
    assert_eq!(reg.stats().loads, 3);
}

#[test]
fn get_rejects_invalid_ids_without_touching_disk() {
    let dir = common::scratch("lru_bad_ids");
    let reg = Registry::new(ModelStore::open(&dir).unwrap(), 2);
    assert!(reg.get("../A").is_err());
    assert!(reg.get("").is_err());
    let stats = reg.stats();
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.loads, 0);
}
