//! Request execution: one [`Service`] maps parsed [`Request`]s to
//! response blocks against the shared [`Registry`].
//!
//! The service is connection-agnostic and fully thread-safe: the
//! server hands every connection an `Arc<Service>` plus a private
//! [`ConnState`], and all shared mutation is either inside the
//! registry's lock or an atomic counter. Models are read-only behind
//! `Arc`, so concurrent requests never contend beyond the registry
//! lookup.
//!
//! ## GEN determinism
//!
//! Every connection is assigned a *stream id* (its accept-order
//! number, echoed in the connect banner), and every `GEN` without an
//! explicit seed derives its effective seed as
//!
//! ```text
//! stream_key(stream_key(base_seed, connection stream), request index)
//! ```
//!
//! using [`eip_exec::rng::stream_key`] — the same splittable-stream
//! discipline the generator itself uses per candidate. The effective
//! seed is echoed in the `OK GEN … seed=<s>` header, and the batch is
//! produced by the keyed reference generators
//! ([`Generator::run_keyed_reference`] /
//! [`Generator::run_keyed_constrained`]), so a batch is byte-identical
//! to an in-process oracle run with the same seed — for a given
//! `(base seed, connection stream, request index)` the response bytes
//! do not depend on how many other connections are active or how the
//! OS interleaves them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eip_exec::rng::stream_key;
use entropy_ip::{EipError, Generator, ValueKind};

use crate::protocol::{ProtoError, Request};
use crate::registry::{Registry, ServedModel};

/// Operational limits for the daemon — everything the server enforces
/// to keep one misbehaving client from degrading the rest.
///
/// Every limit has a visible failure mode: over-cap `GEN` counts and
/// over-long request lines get a tagged `ERR limit`, connections past
/// `max_conns` are shed at accept with `ERR busy retry-ms=<n>`, and a
/// connection idle (or a client stuck) past its deadline is closed.
/// Each enforcement bumps a `STATS` counter, so operators can see
/// limits firing before clients complain.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Connections served concurrently before new ones are shed.
    pub max_conns: usize,
    /// Largest `GEN` count executed (the protocol's parse-time
    /// [`MAX_GEN_COUNT`](crate::protocol::MAX_GEN_COUNT) bounds the
    /// integer; this bounds what this server will actually run).
    pub max_gen: usize,
    /// Longest request line accepted, in bytes (a slow-loris client
    /// feeding an endless line is cut off here).
    pub max_line_bytes: usize,
    /// Socket read deadline: a connection with no complete request
    /// for this long is closed. Also the idle timeout.
    pub read_timeout: Duration,
    /// Socket write deadline: a client that stops draining its
    /// responses for this long is closed.
    pub write_timeout: Duration,
    /// The retry hint (milliseconds) sent with `ERR busy`.
    pub retry_ms: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_conns: 256,
            max_gen: 100_000,
            max_line_bytes: 4096,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            retry_ms: 250,
        }
    }
}

/// Per-connection state the server threads own privately.
#[derive(Clone, Copy, Debug)]
pub struct ConnState {
    /// The connection's stream id (accept-order, starting at 1).
    pub stream: u64,
    /// Number of `GEN` requests already served on this connection.
    pub gen_index: u64,
}

impl ConnState {
    /// State for a fresh connection with the given stream id.
    pub fn new(stream: u64) -> Self {
        ConnState {
            stream,
            gen_index: 0,
        }
    }
}

/// Per-command request counters (monotone).
#[derive(Debug, Default)]
pub struct Counters {
    browse: AtomicU64,
    gen: AtomicU64,
    predict64: AtomicU64,
    stats: AtomicU64,
    errors: AtomicU64,
    /// Connections shed at accept time (`ERR busy`).
    shed: AtomicU64,
    /// Connections closed by a read/write deadline.
    timeouts: AtomicU64,
    /// Request lines rejected for exceeding the length cap.
    oversize: AtomicU64,
    /// Requests rejected for exceeding a server limit (`ERR limit`).
    limit_rejects: AtomicU64,
}

/// The request executor shared by all connections.
#[derive(Debug)]
pub struct Service {
    registry: Registry,
    base_seed: u64,
    limits: Limits,
    counters: Counters,
    /// Gauge of connections currently being served (not monotone).
    conns_open: AtomicU64,
}

/// Top-64 boundary in nybbles: segments ending at or before this
/// position make up the /64 prefix (segmentation never crosses it).
const TOP64_NYBBLES: usize = 16;

impl Service {
    /// A service over a registry, with `base_seed` as the root of all
    /// derived `GEN` seeds and default [`Limits`].
    pub fn new(registry: Registry, base_seed: u64) -> Self {
        Self::with_limits(registry, base_seed, Limits::default())
    }

    /// A service with explicit operational limits.
    pub fn with_limits(registry: Registry, base_seed: u64, limits: Limits) -> Self {
        Service {
            registry,
            base_seed,
            limits,
            counters: Counters::default(),
            conns_open: AtomicU64::new(0),
        }
    }

    /// The underlying registry (tests, STATS).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The operational limits this service enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Connections currently being served.
    pub fn conns_open(&self) -> u64 {
        self.conns_open.load(Ordering::SeqCst)
    }

    /// Records a connection entering service (called by the server's
    /// accept loop *before* the connection thread starts, so the
    /// shedding check never races a burst of accepts).
    pub fn conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a connection leaving service.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records a connection shed at accept time (`ERR busy`).
    pub fn note_shed(&self) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed by a read/write deadline.
    pub fn note_timeout(&self) {
        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request line rejected for exceeding the length cap.
    pub fn note_oversize(&self) {
        self.counters.oversize.fetch_add(1, Ordering::Relaxed);
        self.counters.limit_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// The effective seed of a `GEN` request: the explicit `seed=` if
    /// given, else derived from `(base seed, connection stream,
    /// request index)`.
    pub fn effective_seed(&self, explicit: Option<u64>, conn: &ConnState) -> u64 {
        explicit
            .unwrap_or_else(|| stream_key(stream_key(self.base_seed, conn.stream), conn.gen_index))
    }

    /// Executes one request line and returns the full response block
    /// (terminated by `.\n`). The boolean is `true` when the
    /// connection should close (`QUIT`).
    pub fn handle_line(&self, line: &str, conn: &mut ConnState) -> (String, bool) {
        match crate::protocol::parse_request(line) {
            Ok(Request::Quit) => ("OK BYE\n.\n".to_string(), true),
            Ok(req) => match self.execute(&req, conn) {
                Ok(block) => (block, false),
                Err(e) => {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    (e.render(), false)
                }
            },
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                (e.render(), false)
            }
        }
    }

    fn fetch(&self, net: &str) -> Result<Arc<ServedModel>, ProtoError> {
        // Distinguish "no such model" from genuine I/O trouble so
        // clients can react differently.
        match self.registry.store().path_for(net) {
            Ok(path) if !path.exists() => {
                return Err(ProtoError::new(
                    "unknown-model",
                    format!("no model for network {net:?}"),
                ))
            }
            Err(e) => return Err(ProtoError::new("bad-request", e.to_string())),
            Ok(_) => {}
        }
        self.registry.get(net).map_err(|e| match e {
            EipError::Usage(msg) => ProtoError::new("bad-request", msg),
            other => ProtoError::new("io", other.to_string()),
        })
    }

    fn execute(&self, req: &Request, conn: &mut ConnState) -> Result<String, ProtoError> {
        match req {
            Request::Browse { net, segment } => {
                self.counters.browse.fetch_add(1, Ordering::Relaxed);
                self.browse(net, segment)
            }
            Request::Gen {
                net,
                count,
                seed,
                evidence,
            } => {
                self.counters.gen.fetch_add(1, Ordering::Relaxed);
                let effective = self.effective_seed(*seed, conn);
                conn.gen_index += 1;
                self.gen(net, *count, effective, evidence)
            }
            Request::Predict64 { net, addr } => {
                self.counters.predict64.fetch_add(1, Ordering::Relaxed);
                self.predict64(net, *addr)
            }
            Request::Stats => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                Ok(self.stats_block())
            }
            Request::Quit => unreachable!("QUIT handled in handle_line"),
        }
    }

    /// `BROWSE`: the segment's prior distribution over its dictionary
    /// (what the paper's browser shows before any click).
    fn browse(&self, net: &str, segment: &str) -> Result<String, ProtoError> {
        let served = self.fetch(net)?;
        let model = &served.model;
        let Some(idx) = model.segment_index(segment) else {
            return Err(ProtoError::new(
                "unknown-segment",
                format!("network {net} has no segment {segment:?}"),
            ));
        };
        let dist = &served.priors()[idx];
        let seg = &model.mined()[idx].segment;
        let width = seg.end - seg.start + 1;
        let mut out = format!(
            "OK BROWSE {net} {segment} nybbles={}-{} values={}\n",
            seg.start,
            seg.end,
            dist.entries.len()
        );
        for (code, kind, p) in &dist.entries {
            match kind {
                ValueKind::Exact(v) => {
                    out.push_str(&format!("V {code} exact {v:0width$x} {p:.6}\n"));
                }
                ValueKind::Range { lo, hi } => {
                    out.push_str(&format!(
                        "V {code} range {lo:0width$x}-{hi:0width$x} {p:.6}\n"
                    ));
                }
            }
        }
        out.push_str(".\n");
        Ok(out)
    }

    /// `GEN`: a candidate batch from the keyed reference generators.
    fn gen(
        &self,
        net: &str,
        count: usize,
        seed: u64,
        evidence: &[(String, String)],
    ) -> Result<String, ProtoError> {
        // Enforce the runtime batch cap before fetching the model or
        // touching any allocation sized by `count`.
        if count > self.limits.max_gen {
            self.counters.limit_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(ProtoError::new(
                "limit",
                format!(
                    "count {count} exceeds this server's GEN cap {}",
                    self.limits.max_gen
                ),
            ));
        }
        let served = self.fetch(net)?;
        let model = &served.model;
        let generator = Generator::new(model);
        let report = if evidence.is_empty() {
            generator.run_keyed_reference(count, seed)
        } else {
            let mut ev = Vec::with_capacity(evidence.len());
            for (label, code) in evidence {
                let Some(pair) = model.evidence_for(label, code) else {
                    return Err(ProtoError::new(
                        "bad-evidence",
                        format!("network {net} has no value {label}={code}"),
                    ));
                };
                ev.push(pair);
            }
            generator.run_keyed_constrained(&ev, count, seed)
        };
        let mut out = format!(
            "OK GEN {net} {count} seed={seed} accepted={} attempts={} duplicates={} excluded={}\n",
            report.candidates.len(),
            report.attempts,
            report.duplicates,
            report.excluded
        );
        for ip in &report.candidates {
            out.push_str(&format!("{ip}\n"));
        }
        out.push_str(".\n");
        Ok(out)
    }

    /// `PREDICT64`: exact chain-rule probability of the address's /64
    /// prefix under the model (§5.6). The top-64 segments form a
    /// prefix of the variable order and parents always precede
    /// children, so the joint factors exactly — no inference needed.
    fn predict64(&self, net: &str, addr: eip_addr::Ip6) -> Result<String, ProtoError> {
        let served = self.fetch(net)?;
        let model = &served.model;
        let prefix = addr.slash64();
        let top: Vec<usize> = model
            .mined()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.segment.end <= TOP64_NYBBLES)
            .map(|(i, _)| i)
            .collect();
        // Encode each top-64 segment independently; an unseen value
        // anywhere makes the whole prefix probability zero.
        let mut codes: Vec<Option<usize>> = Vec::with_capacity(top.len());
        for &i in &top {
            let m = &model.mined()[i];
            codes.push(m.encode(prefix.segment(m.segment.start, m.segment.end)));
        }
        let known = codes.iter().all(|c| c.is_some());
        let mut logp = 0.0f64;
        let mut lines = String::new();
        for (k, &i) in top.iter().enumerate() {
            let m = &model.mined()[i];
            let label = &m.segment.label;
            match codes[k] {
                // The conditional factor needs every parent observed
                // too; with any top-64 value unseen the prefix
                // probability is zero, so skip the chain rule and just
                // report the decomposition.
                Some(code) if known => {
                    let node = model.bn().node(i);
                    let parent_vals: Vec<usize> = node
                        .parents
                        .iter()
                        .map(|&p| {
                            let pos = top.iter().position(|&t| t == p).expect(
                                "top-64 segments are a prefix of the order, closed under parents",
                            );
                            codes[pos].expect("all codes known")
                        })
                        .collect();
                    let p = node.cpt.prob(code, &parent_vals);
                    logp += p.ln();
                    lines.push_str(&format!("S {label} {} {p:.6}\n", m.values[code].code));
                }
                Some(code) => {
                    lines.push_str(&format!("S {label} {} -\n", m.values[code].code));
                }
                None => {
                    lines.push_str(&format!("S {label} ? -\n"));
                }
            }
        }
        let header = if known {
            format!(
                "OK PREDICT64 {net} {prefix} segments={} known=true logp={logp:.6} p={:.6e}\n",
                top.len(),
                logp.exp()
            )
        } else {
            format!(
                "OK PREDICT64 {net} {prefix} segments={} known=false logp=-inf p=0\n",
                top.len()
            )
        };
        Ok(format!("{header}{lines}.\n"))
    }

    /// `STATS`: registry counters, resident set, request counters.
    ///
    /// The `models_resident` gauge plus one `model <id>` line per
    /// resident network (MRU order) report per-model registry
    /// residency, so a fleet deployment can assert each freshly
    /// persisted model is actually decodable and being served — the
    /// fleet smoke test greps for them after exercising `GEN`.
    fn stats_block(&self) -> String {
        let stats = self.registry.stats();
        let networks = self.registry.store().list().map(|v| v.len()).unwrap_or(0);
        let resident = self.registry.resident();
        let c = &self.counters;
        let model_lines: String = resident.iter().map(|id| format!("model {id}\n")).collect();
        format!(
            "OK STATS\n\
             networks {networks}\n\
             resident {}\n\
             cache_hits {}\n\
             cache_misses {}\n\
             cache_loads {}\n\
             cache_evictions {}\n\
             cache_load_failures {}\n\
             cache_neg_hits {}\n\
             req_browse {}\n\
             req_gen {}\n\
             req_predict64 {}\n\
             req_stats {}\n\
             req_errors {}\n\
             conns_open {}\n\
             shed_busy {}\n\
             timeouts {}\n\
             oversize_lines {}\n\
             limit_rejects {}\n\
             mru {}\n\
             models_resident {}\n\
             {}.\n",
            stats.resident,
            stats.hits,
            stats.misses,
            stats.loads,
            stats.evictions,
            stats.load_failures,
            stats.neg_hits,
            c.browse.load(Ordering::Relaxed),
            c.gen.load(Ordering::Relaxed),
            c.predict64.load(Ordering::Relaxed),
            c.stats.load(Ordering::Relaxed),
            c.errors.load(Ordering::Relaxed),
            self.conns_open(),
            c.shed.load(Ordering::Relaxed),
            c.timeouts.load(Ordering::Relaxed),
            c.oversize.load(Ordering::Relaxed),
            c.limit_rejects.load(Ordering::Relaxed),
            if resident.is_empty() {
                "-".to_string()
            } else {
                resident.join(",")
            },
            resident.len(),
            model_lines
        )
    }
}
