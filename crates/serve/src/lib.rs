//! # eip_serve — the Entropy/IP model service
//!
//! Train once, serve millions: this crate turns trained
//! [`IpModel`](entropy_ip::IpModel)s into a long-lived daemon that a
//! fleet of scanners and dashboards can query, instead of re-running
//! the pipeline per question. Three layers:
//!
//! * [`registry`] — a directory of versioned `.eipm` model containers
//!   (one per network id, see [`entropy_ip::store`]) behind a
//!   capacity-bounded LRU cache of hot decoded models with
//!   single-flight cold loads.
//! * [`protocol`] — the line-oriented request/response wire format
//!   (`BROWSE` / `GEN` / `PREDICT64` / `STATS` / `QUIT`), friendly to
//!   both `nc` and the bundled [`Client`].
//! * [`service`] + [`server`] — request execution over the registry
//!   and the `std::net` TCP daemon (one thread per connection,
//!   cooperative shutdown that joins every thread).
//!
//! ## Hardening
//!
//! The daemon is built to degrade predictably under abuse or
//! overload: per-connection read/write deadlines, a request-line
//! length cap, a runtime `GEN` batch cap, and accept-time load
//! shedding (`ERR busy retry-ms=<n>`) once [`Limits::max_conns`]
//! connections are in service — see [`Limits`] for the knobs and
//! [`Client::connect_with_retry`] / [`RetryPolicy`] for the client
//! side of the retry contract. Models that fail to decode are
//! quarantined by the registry's negative cache (exponential backoff
//! before the disk is retried), and every enforcement action is
//! visible as a `STATS` counter.
//!
//! ## Determinism
//!
//! `GEN` batches come from the keyed reference generators: every
//! connection gets a stream id (announced in its banner), every
//! request derives an effective seed via
//! [`eip_exec::rng::stream_key`], and the response is byte-identical
//! to an in-process [`Generator`](entropy_ip::Generator) oracle run
//! with that seed — regardless of how many connections are active or
//! how the OS schedules them. The end-to-end tests pin exactly this:
//! concurrent clients diffed line-by-line against
//! [`Generator::run_keyed_reference`](entropy_ip::Generator::run_keyed_reference).
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use eip_serve::{spawn, Client, ModelStore, Registry, Service};
//!
//! let store = ModelStore::open("models")?;
//! let service = Arc::new(Service::new(Registry::new(store, 16), 0));
//! let server = spawn(service, "127.0.0.1:0")?;
//! let mut client = Client::connect(server.local_addr())?;
//! for line in client.request("GEN S1 100 seed=7")? {
//!     println!("{line}");
//! }
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;

pub use protocol::{parse_request, ProtoError, Request, MAX_GEN_COUNT};
pub use registry::{valid_network_id, ModelStore, Registry, RegistryStats, ServedModel};
pub use server::{spawn, Client, RetryPolicy, ServerHandle, PROTOCOL_VERSION};
pub use service::{ConnState, Limits, Service};
