//! The TCP daemon: `std::net` listener, one thread per connection,
//! cooperative shutdown.
//!
//! Connections are numbered in accept order starting at 1; the number
//! is the connection's RNG *stream id*, announced in the connect
//! banner (`OK EIP-SERVE 1 stream=<id>`) so clients can reproduce
//! their derived `GEN` seeds offline. Shutdown is cooperative: a flag
//! flips, a self-connection wakes the accept loop, open connection
//! sockets are shut down (unblocking their reader threads at the next
//! request boundary — an in-flight response is still written whole),
//! and [`ServerHandle::shutdown`] joins the acceptor and every
//! connection thread before returning. Finished connections release
//! their slot (socket clone + join handle) immediately, so a
//! long-lived daemon's footprint tracks the *live* connection set,
//! not the accept count.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use entropy_ip::EipError;

use crate::service::{ConnState, Service};

/// Protocol version announced in the banner.
pub const PROTOCOL_VERSION: u32 = 1;

/// One `(thread, socket)` slot per *open* connection, keyed by stream
/// id; the socket clone lets shutdown unblock a reader parked in
/// `read_line`. Connection threads remove their own slot on exit (so
/// a long-lived daemon does not accumulate one fd + join handle per
/// finished connection), and the accept loop sweeps any slot that
/// lost the insert/exit race.
type ConnSlots = Arc<Mutex<HashMap<u64, (JoinHandle<()>, TcpStream)>>>;

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: ConnSlots,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connection slots currently tracked: open connections
    /// plus any finished ones not yet swept (threads reap their own
    /// slot on exit, so this stays bounded by the live set).
    pub fn tracked_connections(&self) -> usize {
        self.conns.lock().expect("conns lock").len()
    }

    /// Blocks until the acceptor exits — i.e. forever, unless another
    /// thread calls [`ServerHandle::shutdown`] or the process is
    /// signalled. This is what `eip serve` parks on.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting, wakes the acceptor, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock `accept`; the acceptor re-checks the
        // flag before serving.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().expect("conns lock");
            guard.drain().map(|(_, slot)| slot).collect()
        };
        for (h, stream) in handles {
            // Unblock the connection thread if it is idle in
            // `read_line` waiting for a client that never hangs up.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = h.join();
        }
    }
}

/// Binds `addr` and starts serving `service` in background threads.
pub fn spawn(service: Arc<Service>, addr: impl ToSocketAddrs) -> Result<ServerHandle, EipError> {
    let listener = TcpListener::bind(addr).map_err(|e| EipError::io("bind".to_string(), e))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| EipError::io("local_addr".to_string(), e))?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: ConnSlots = Arc::new(Mutex::new(HashMap::new()));
    let next_stream = AtomicU64::new(1);

    let acceptor = {
        let stop = stop.clone();
        let conns = conns.clone();
        std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Sweep slots whose thread beat its own insert to the
                // exit (self-removal found nothing to remove).
                reap_finished(&conns);
                let stream = match incoming {
                    Ok(s) => s,
                    Err(e) => {
                        // accept can fail persistently (EMFILE, …);
                        // back off instead of busy-spinning.
                        eprintln!("eip-serve: accept failed: {e}");
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        continue;
                    }
                };
                let id = next_stream.fetch_add(1, Ordering::Relaxed);
                let service = service.clone();
                let Ok(stream_for_shutdown) = stream.try_clone() else {
                    continue;
                };
                let conns_for_conn = conns.clone();
                let handle = std::thread::spawn(move || {
                    serve_connection(&service, stream, id);
                    // Release this connection's slot (fd + handle) as
                    // soon as it finishes; dropping our own
                    // JoinHandle just detaches the exiting thread.
                    conns_for_conn.lock().expect("conns lock").remove(&id);
                });
                conns
                    .lock()
                    .expect("conns lock")
                    .insert(id, (handle, stream_for_shutdown));
            }
        })
    };

    Ok(ServerHandle {
        local_addr,
        stop,
        acceptor: Some(acceptor),
        conns,
    })
}

/// Joins and removes connections whose threads have already exited.
/// Normally threads remove their own slot, but a thread that finishes
/// before the acceptor inserts its slot leaves a dead entry behind;
/// this sweep (and shutdown) catches those.
fn reap_finished(conns: &ConnSlots) {
    let finished: Vec<(JoinHandle<()>, TcpStream)> = {
        let mut guard = conns.lock().expect("conns lock");
        let done: Vec<u64> = guard
            .iter()
            .filter(|(_, (handle, _))| handle.is_finished())
            .map(|(&id, _)| id)
            .collect();
        done.into_iter()
            .filter_map(|id| guard.remove(&id))
            .collect()
    };
    for (handle, _stream) in finished {
        let _ = handle.join();
    }
}

/// Serves one connection to completion: banner, then a
/// request/response loop until `QUIT`, EOF, or an I/O error.
fn serve_connection(service: &Service, stream: TcpStream, id: u64) {
    // Request/response is strictly ping-pong; Nagle + delayed ACK
    // turns that into ~40ms stalls per round trip on loopback.
    let _ = stream.set_nodelay(true);
    let mut conn = ConnState::new(id);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let banner = format!("OK EIP-SERVE {PROTOCOL_VERSION} stream={id}\n.\n");
    if writer.write_all(banner.as_bytes()).is_err() {
        return;
    }
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = service.handle_line(line.trim(), &mut conn);
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if quit {
            break;
        }
    }
}

/// A minimal blocking client for the line protocol — used by
/// `eip query`, the CI smoke script, and the end-to-end tests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The stream id the server assigned this connection.
    pub stream_id: u64,
}

impl Client {
    /// Connects and consumes the banner.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: stream,
            stream_id: 0,
        };
        let banner = client.read_block()?;
        client.stream_id = banner
            .first()
            .and_then(|l| l.rsplit("stream=").next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Ok(client)
    }

    /// Sends one request line and returns the response block's lines
    /// (status line first, `.` terminator stripped).
    pub fn request(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_block()
    }

    fn read_block(&mut self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed == "." {
                return Ok(out);
            }
            out.push(trimmed.to_string());
        }
    }
}
