//! The TCP daemon: `std::net` listener, one thread per connection,
//! cooperative shutdown, deadline enforcement, and load shedding.
//!
//! Connections are numbered in accept order starting at 1; the number
//! is the connection's RNG *stream id*, announced in the connect
//! banner (`OK EIP-SERVE 1 stream=<id>`) so clients can reproduce
//! their derived `GEN` seeds offline. Shutdown is cooperative: a flag
//! flips, a self-connection wakes the accept loop, open connection
//! sockets are shut down (unblocking their reader threads at the next
//! request boundary — an in-flight response is still written whole),
//! and [`ServerHandle::shutdown`] joins the acceptor and every
//! connection thread before returning. Finished connections release
//! their slot (socket clone + join handle) immediately, so a
//! long-lived daemon's footprint tracks the *live* connection set,
//! not the accept count.
//!
//! ## Hardening
//!
//! Every limit in [`Limits`] is enforced
//! here:
//!
//! * Accepted sockets get read/write deadlines; a connection that
//!   sends no complete request (or stops draining responses) for the
//!   deadline is closed, so no client can pin a thread forever.
//! * Request lines are read through a bounded reader — a line longer
//!   than `max_line_bytes` draws `ERR limit` and a close instead of
//!   growing a buffer at the slow-loris client's pace.
//! * When `max_conns` connections are in service, new ones are *shed*
//!   at accept: they get `ERR busy retry-ms=<n>` and an immediate
//!   close, never a thread. [`Client::connect_with_retry`] turns that
//!   hint plus jittered exponential backoff into a blocking connect.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use entropy_ip::EipError;

use crate::service::{ConnState, Limits, Service};

/// Protocol version announced in the banner.
pub const PROTOCOL_VERSION: u32 = 1;

/// One `(thread, socket)` slot per *open* connection, keyed by stream
/// id; the socket clone lets shutdown unblock a reader parked in
/// `read_line`. Connection threads remove their own slot on exit (so
/// a long-lived daemon does not accumulate one fd + join handle per
/// finished connection), and the accept loop sweeps any slot that
/// lost the insert/exit race.
type ConnSlots = Arc<Mutex<HashMap<u64, (JoinHandle<()>, TcpStream)>>>;

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: ConnSlots,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connection slots currently tracked: open connections
    /// plus any finished ones not yet swept (threads reap their own
    /// slot on exit, so this stays bounded by the live set).
    pub fn tracked_connections(&self) -> usize {
        self.conns.lock().expect("conns lock").len()
    }

    /// Blocks until the acceptor exits — i.e. forever, unless another
    /// thread calls [`ServerHandle::shutdown`] or the process is
    /// signalled. This is what `eip serve` parks on.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting, wakes the acceptor, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock `accept`; the acceptor re-checks the
        // flag before serving.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().expect("conns lock");
            guard.drain().map(|(_, slot)| slot).collect()
        };
        for (h, stream) in handles {
            // Unblock the connection thread if it is idle in
            // `read_line` waiting for a client that never hangs up.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = h.join();
        }
    }
}

/// Binds `addr` and starts serving `service` in background threads.
pub fn spawn(service: Arc<Service>, addr: impl ToSocketAddrs) -> Result<ServerHandle, EipError> {
    let listener = TcpListener::bind(addr).map_err(|e| EipError::io("bind".to_string(), e))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| EipError::io("local_addr".to_string(), e))?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: ConnSlots = Arc::new(Mutex::new(HashMap::new()));
    let next_stream = AtomicU64::new(1);

    let acceptor = {
        let stop = stop.clone();
        let conns = conns.clone();
        std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Sweep slots whose thread beat its own insert to the
                // exit (self-removal found nothing to remove).
                reap_finished(&conns);
                let stream = match incoming {
                    Ok(s) => s,
                    Err(e) => {
                        // accept can fail persistently (EMFILE, …);
                        // back off instead of busy-spinning.
                        eprintln!("eip-serve: accept failed: {e}");
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        continue;
                    }
                };
                // Load shedding: at the connection limit, answer with
                // a retry hint and close — the client never gets a
                // thread, so an overload cannot exhaust the host. The
                // gauge is bumped *here*, before the thread spawns,
                // so a burst of accepts cannot all pass the check.
                let limits = *service.limits();
                if service.conns_open() >= limits.max_conns as u64 {
                    service.note_shed();
                    shed(stream, &limits);
                    continue;
                }
                service.conn_opened();
                let id = next_stream.fetch_add(1, Ordering::Relaxed);
                let service = service.clone();
                let Ok(stream_for_shutdown) = stream.try_clone() else {
                    service.conn_closed();
                    continue;
                };
                let conns_for_conn = conns.clone();
                let handle = std::thread::spawn(move || {
                    serve_connection(&service, stream, id);
                    service.conn_closed();
                    // Release this connection's slot (fd + handle) as
                    // soon as it finishes; dropping our own
                    // JoinHandle just detaches the exiting thread.
                    conns_for_conn.lock().expect("conns lock").remove(&id);
                });
                conns
                    .lock()
                    .expect("conns lock")
                    .insert(id, (handle, stream_for_shutdown));
            }
        })
    };

    Ok(ServerHandle {
        local_addr,
        stop,
        acceptor: Some(acceptor),
        conns,
    })
}

/// Joins and removes connections whose threads have already exited.
/// Normally threads remove their own slot, but a thread that finishes
/// before the acceptor inserts its slot leaves a dead entry behind;
/// this sweep (and shutdown) catches those.
fn reap_finished(conns: &ConnSlots) {
    let finished: Vec<(JoinHandle<()>, TcpStream)> = {
        let mut guard = conns.lock().expect("conns lock");
        let done: Vec<u64> = guard
            .iter()
            .filter(|(_, (handle, _))| handle.is_finished())
            .map(|(&id, _)| id)
            .collect();
        done.into_iter()
            .filter_map(|id| guard.remove(&id))
            .collect()
    };
    for (handle, _stream) in finished {
        let _ = handle.join();
    }
}

/// Refuses a connection at accept time: best-effort `ERR busy` block
/// with a retry hint, under a short write deadline so a client that
/// won't read can't stall the accept loop either.
fn shed(mut stream: TcpStream, limits: &Limits) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(
        format!(
            "ERR busy retry-ms={} at the connection limit ({})\n.\n",
            limits.retry_ms, limits.max_conns
        )
        .as_bytes(),
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// What reading one request line produced.
enum LineOutcome {
    /// A complete line (newline stripped, lossily decoded).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the length cap before its newline arrived.
    TooLong,
    /// The socket's read deadline expired.
    TimedOut,
    /// Any other I/O error.
    Failed,
}

/// Reads one `\n`-terminated request line through the cap: at most
/// `max_bytes` are buffered, no matter how slowly (or endlessly) the
/// client feeds bytes. A final unterminated line at EOF is returned
/// as a line, matching `read_line` semantics.
fn read_request_line(reader: &mut impl BufRead, max_bytes: usize) -> LineOutcome {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.fill_buf() {
            Ok([]) => {
                return if buf.is_empty() {
                    LineOutcome::Eof
                } else {
                    LineOutcome::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            Ok(avail) => {
                if let Some(pos) = eip_addr::chunk::find_byte(avail, b'\n') {
                    if buf.len() + pos > max_bytes {
                        return LineOutcome::TooLong;
                    }
                    buf.extend_from_slice(&avail[..pos]);
                    reader.consume(pos + 1);
                    return LineOutcome::Line(String::from_utf8_lossy(&buf).into_owned());
                }
                let n = avail.len();
                if buf.len() + n > max_bytes {
                    return LineOutcome::TooLong;
                }
                buf.extend_from_slice(avail);
                reader.consume(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineOutcome::TimedOut;
            }
            Err(_) => return LineOutcome::Failed,
        }
    }
}

/// Serves one connection to completion: banner, then a
/// request/response loop until `QUIT`, EOF, a deadline, an over-long
/// line, or an I/O error.
fn serve_connection(service: &Service, stream: TcpStream, id: u64) {
    let limits = *service.limits();
    // Request/response is strictly ping-pong; Nagle + delayed ACK
    // turns that into ~40ms stalls per round trip on loopback.
    let _ = stream.set_nodelay(true);
    // Deadlines: a zero Duration would mean "non-blocking", so map it
    // (and only it) to None = no deadline.
    let deadline = |d: Duration| (!d.is_zero()).then_some(d);
    let _ = stream.set_read_timeout(deadline(limits.read_timeout));
    let _ = stream.set_write_timeout(deadline(limits.write_timeout));
    let mut conn = ConnState::new(id);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let banner = format!("OK EIP-SERVE {PROTOCOL_VERSION} stream={id}\n.\n");
    if writer.write_all(banner.as_bytes()).is_err() {
        return;
    }
    loop {
        let line = match read_request_line(&mut reader, limits.max_line_bytes) {
            LineOutcome::Line(l) => l,
            LineOutcome::Eof | LineOutcome::Failed => break,
            LineOutcome::TimedOut => {
                service.note_timeout();
                break;
            }
            LineOutcome::TooLong => {
                service.note_oversize();
                let _ = writer.write_all(
                    format!(
                        "ERR limit request line exceeds {} bytes\n.\n",
                        limits.max_line_bytes
                    )
                    .as_bytes(),
                );
                // Drain (bounded) what the client already sent before
                // closing: unread bytes at close make the kernel send
                // RST, which can discard the error response in flight.
                let _ = reader
                    .get_ref()
                    .set_read_timeout(Some(Duration::from_millis(250)));
                let mut sink = [0u8; 4096];
                for _ in 0..64 {
                    match std::io::Read::read(&mut reader, &mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = service.handle_line(line.trim(), &mut conn);
        match writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.flush())
        {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                service.note_timeout();
                break;
            }
            Err(_) => break,
        }
        if quit {
            break;
        }
    }
}

/// A minimal blocking client for the line protocol — used by
/// `eip query`, the CI smoke script, and the end-to-end tests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The stream id the server assigned this connection.
    pub stream_id: u64,
}

/// Backoff schedule for [`Client::connect_with_retry`]: jittered
/// exponential delays, deterministic per seed (the jitter comes from
/// [`eip_exec::rng::mix`], so a pinned seed reproduces the exact
/// retry timing).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts (≥ 1) before giving up.
    pub attempts: u32,
    /// Base delay before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based): exponential
    /// with ±50% deterministic jitter, capped at `max_delay`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_delay);
        // Scale by a factor in [0.5, 1.5): the thousandths come from
        // the keyed RNG, so concurrent clients with different seeds
        // spread out instead of stampeding in lockstep.
        let jitter_pm = eip_exec::rng::mix(self.seed, u64::from(attempt), 0) % 1000;
        exp.mul_f64(0.5 + jitter_pm as f64 / 1000.0)
    }
}

impl Client {
    /// Connects and consumes the banner. A server that sheds the
    /// connection (`ERR busy …`) surfaces as an error whose message
    /// carries the server's `retry-ms=<n>` hint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: stream,
            stream_id: 0,
        };
        let banner = client.read_block()?;
        if let Some(first) = banner.first() {
            if first.starts_with("ERR") {
                return Err(std::io::Error::other(first.clone()));
            }
        }
        client.stream_id = banner
            .first()
            .and_then(|l| l.rsplit("stream=").next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Ok(client)
    }

    /// [`Client::connect`] with retries: refused or shed connections
    /// are retried on the policy's jittered exponential schedule,
    /// honoring the server's `retry-ms=<n>` busy hint when it is
    /// longer than the policy's own delay. Returns the last error
    /// once the attempts are exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        policy: &RetryPolicy,
    ) -> std::io::Result<Self> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if attempt < attempts {
                        let mut delay = policy.delay(attempt);
                        if let Some(hint) = busy_retry_hint(&e) {
                            delay = delay.max(hint);
                        }
                        std::thread::sleep(delay);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Sends one request line and returns the response block's lines
    /// (status line first, `.` terminator stripped).
    pub fn request(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_block()
    }

    fn read_block(&mut self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed == "." {
                return Ok(out);
            }
            out.push(trimmed.to_string());
        }
    }
}

/// Extracts the `retry-ms=<n>` hint from an `ERR busy` connect error,
/// if the error carries one.
fn busy_retry_hint(e: &std::io::Error) -> Option<Duration> {
    let msg = e.to_string();
    if !msg.starts_with("ERR busy") {
        return None;
    }
    let rest = msg.split("retry-ms=").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok().map(Duration::from_millis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn line(input: &[u8], cap: usize) -> LineOutcome {
        let mut reader = std::io::BufReader::new(Cursor::new(input.to_vec()));
        read_request_line(&mut reader, cap)
    }

    #[test]
    fn bounded_reader_reads_lines_and_caps_them() {
        match line(b"STATS\n", 64) {
            LineOutcome::Line(l) => assert_eq!(l, "STATS"),
            _ => panic!("expected a line"),
        }
        // Exactly at the cap is allowed; one past it is not.
        match line(b"abcd\n", 4) {
            LineOutcome::Line(l) => assert_eq!(l, "abcd"),
            _ => panic!("cap is inclusive"),
        }
        assert!(matches!(line(b"abcde\n", 4), LineOutcome::TooLong));
        // No newline at all: the cap still bites mid-stream.
        assert!(matches!(line(&[b'x'; 100], 10), LineOutcome::TooLong));
        // EOF semantics: empty input is Eof, a final unterminated
        // line is still handed out.
        assert!(matches!(line(b"", 16), LineOutcome::Eof));
        match line(b"QUIT", 16) {
            LineOutcome::Line(l) => assert_eq!(l, "QUIT"),
            _ => panic!("unterminated final line"),
        }
    }

    #[test]
    fn retry_policy_delays_are_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 1..=10 {
            let d = policy.delay(attempt);
            assert_eq!(d, policy.delay(attempt), "same seed, same delay");
            // ±50% jitter around an exp curve capped at max_delay.
            assert!(
                d <= policy.max_delay.mul_f64(1.5),
                "attempt {attempt}: {d:?}"
            );
        }
        let other = RetryPolicy {
            seed: 1,
            ..RetryPolicy::default()
        };
        assert_ne!(
            (1..=5).map(|a| policy.delay(a)).collect::<Vec<_>>(),
            (1..=5).map(|a| other.delay(a)).collect::<Vec<_>>(),
            "different seeds jitter differently"
        );
    }

    #[test]
    fn busy_hints_parse_from_connect_errors() {
        let e = std::io::Error::other("ERR busy retry-ms=250 at the connection limit (1)");
        assert_eq!(busy_retry_hint(&e), Some(Duration::from_millis(250)));
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        assert_eq!(busy_retry_hint(&refused), None);
        let no_hint = std::io::Error::other("ERR busy overloaded");
        assert_eq!(busy_retry_hint(&no_hint), None);
    }
}
