//! The line-oriented request/response protocol.
//!
//! Designed to be driven by `nc` as easily as by the `eip query`
//! client: requests are single lines of whitespace-separated tokens,
//! and **every** response is a block that starts with `OK …` or
//! `ERR <tag> <message>` and ends with a lone `.` line, so a client
//! always knows where a response stops:
//!
//! ```text
//! C: BROWSE S1 A
//! S: OK BROWSE S1 A values=2
//! S: V A1 exact 20010db8 0.700000
//! S: V A2 exact 30010db8 0.300000
//! S: .
//! C: GEN S1 5 seed=7
//! S: OK GEN S1 5 seed=7 attempts=5
//! S: 2001:db8:3::2e
//! S: …
//! S: .
//! ```
//!
//! Commands:
//!
//! * `BROWSE <net> <segment>` — the segment's posterior distribution
//!   over its dictionary values (no evidence: the prior the paper's
//!   browser opens with).
//! * `GEN <net> <count> [seed=<u64>] [<label>=<code> …]` — a
//!   candidate batch. Without evidence the batch is byte-identical to
//!   [`Generator::run_keyed_reference`](entropy_ip::Generator::run_keyed_reference)
//!   for the same `(model, count, seed)`; with evidence it is the
//!   keyed constrained reference. `seed` defaults to the connection's
//!   stream id, so concurrent unpinned clients get independent
//!   batches while pinned seeds reproduce exactly.
//! * `PREDICT64 <net> <addr>` — the /64-prefix verdict: the top-64
//!   segment decomposition with dictionary codes and the exact model
//!   log-probability of that prefix (chain rule over the top-64
//!   segments, whose parents always precede them).
//! * `STATS` — registry and request counters.
//! * `QUIT` — closes the connection (`OK BYE`).
//!
//! Errors are tagged for machine handling: `bad-request`,
//! `unknown-command`, `unknown-model`, `unknown-segment`,
//! `bad-evidence`, `bad-address`, `io`, plus two operational tags:
//!
//! * `limit` — the request is well-formed but exceeds a server limit
//!   (`GEN` count over the batch cap, request line over the length
//!   cap). Shrink the request; retrying as-is will fail forever.
//! * `busy` — the server is at its connection limit and shed this
//!   connection at accept time. The message carries a
//!   `retry-ms=<n>` hint; retry after a (jittered) delay, as
//!   [`Client::connect_with_retry`](crate::Client::connect_with_retry)
//!   does.

use eip_addr::Ip6;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `BROWSE <net> <segment-label>`
    Browse {
        /// Network id.
        net: String,
        /// Segment letter label.
        segment: String,
    },
    /// `GEN <net> <count> [seed=<u64>] [<label>=<code> …]`
    Gen {
        /// Network id.
        net: String,
        /// Number of candidates requested.
        count: usize,
        /// Explicit seed; `None` = the connection's stream id.
        seed: Option<u64>,
        /// Evidence as `(segment label, dictionary code)` pairs.
        evidence: Vec<(String, String)>,
    },
    /// `PREDICT64 <net> <addr>`
    Predict64 {
        /// Network id.
        net: String,
        /// Query address (reduced to its /64).
        addr: Ip6,
    },
    /// `STATS`
    Stats,
    /// `QUIT`
    Quit,
}

/// A tagged protocol error, rendered as `ERR <tag> <message>`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    /// Machine-readable tag (e.g. `bad-request`, `unknown-model`).
    pub tag: &'static str,
    /// Human-readable detail.
    pub msg: String,
}

impl ProtoError {
    /// A new tagged error.
    pub fn new(tag: &'static str, msg: impl Into<String>) -> Self {
        ProtoError {
            tag,
            msg: msg.into(),
        }
    }

    /// Renders the error as its response block (including the
    /// terminating `.`).
    pub fn render(&self) -> String {
        format!("ERR {} {}\n.\n", self.tag, self.msg)
    }
}

/// Hard cap on `GEN` batch size, keeping one request from pinning a
/// connection thread (and its memory) indefinitely.
pub const MAX_GEN_COUNT: usize = 1_000_000;

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let bad = |msg: String| ProtoError::new("bad-request", msg);
    let Some(&cmd) = toks.first() else {
        return Err(bad("empty request".into()));
    };
    match cmd.to_ascii_uppercase().as_str() {
        "BROWSE" => {
            let [_, net, segment] = toks[..] else {
                return Err(bad("usage: BROWSE <net> <segment>".into()));
            };
            Ok(Request::Browse {
                net: net.to_string(),
                segment: segment.to_string(),
            })
        }
        "GEN" => {
            if toks.len() < 3 {
                return Err(bad(
                    "usage: GEN <net> <count> [seed=<u64>] [<label>=<code> ...]".into(),
                ));
            }
            let net = toks[1].to_string();
            let count: usize = toks[2]
                .parse()
                .map_err(|_| bad(format!("count {:?} is not a number", toks[2])))?;
            if count > MAX_GEN_COUNT {
                return Err(ProtoError::new(
                    "limit",
                    format!("count {count} exceeds limit {MAX_GEN_COUNT}"),
                ));
            }
            let mut seed = None;
            let mut evidence = Vec::new();
            for tok in &toks[3..] {
                let Some((k, v)) = tok.split_once('=') else {
                    return Err(bad(format!(
                        "expected seed=<u64> or <label>=<code>, got {tok:?}"
                    )));
                };
                if k == "seed" {
                    seed = Some(
                        v.parse()
                            .map_err(|_| bad(format!("seed {v:?} is not a u64")))?,
                    );
                } else {
                    evidence.push((k.to_string(), v.to_string()));
                }
            }
            Ok(Request::Gen {
                net,
                count,
                seed,
                evidence,
            })
        }
        "PREDICT64" => {
            let [_, net, addr] = toks[..] else {
                return Err(bad("usage: PREDICT64 <net> <addr>".into()));
            };
            let addr: Ip6 = addr
                .parse()
                .map_err(|_| ProtoError::new("bad-address", format!("cannot parse {addr:?}")))?;
            Ok(Request::Predict64 {
                net: net.to_string(),
                addr,
            })
        }
        "STATS" => {
            if toks.len() != 1 {
                return Err(bad("usage: STATS".into()));
            }
            Ok(Request::Stats)
        }
        "QUIT" => Ok(Request::Quit),
        other => Err(ProtoError::new(
            "unknown-command",
            format!("{other} (try BROWSE, GEN, PREDICT64, STATS, QUIT)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        assert_eq!(
            parse_request("BROWSE S1 A").unwrap(),
            Request::Browse {
                net: "S1".into(),
                segment: "A".into()
            }
        );
        assert_eq!(
            parse_request("gen S1 100 seed=7 A=A2 J=J1").unwrap(),
            Request::Gen {
                net: "S1".into(),
                count: 100,
                seed: Some(7),
                evidence: vec![("A".into(), "A2".into()), ("J".into(), "J1".into())],
            }
        );
        let Request::Predict64 { net, addr } = parse_request("PREDICT64 S1 2001:db8::1").unwrap()
        else {
            panic!("not a predict64");
        };
        assert_eq!(net, "S1");
        assert_eq!(addr, "2001:db8::1".parse().unwrap());
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("QUIT now").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed_requests_with_tags() {
        assert_eq!(parse_request("").unwrap_err().tag, "bad-request");
        assert_eq!(parse_request("BROWSE S1").unwrap_err().tag, "bad-request");
        assert_eq!(parse_request("GEN S1 lots").unwrap_err().tag, "bad-request");
        assert_eq!(
            parse_request("GEN S1 10 seed=banana").unwrap_err().tag,
            "bad-request"
        );
        assert_eq!(
            parse_request("GEN S1 10 floop").unwrap_err().tag,
            "bad-request"
        );
        assert_eq!(
            parse_request(&format!("GEN S1 {}", MAX_GEN_COUNT + 1))
                .unwrap_err()
                .tag,
            "limit"
        );
        assert_eq!(
            parse_request("PREDICT64 S1 not-an-ip").unwrap_err().tag,
            "bad-address"
        );
        assert_eq!(parse_request("FROB x").unwrap_err().tag, "unknown-command");
        assert!(parse_request("STATS please").is_err());
    }

    #[test]
    fn errors_render_as_tagged_blocks() {
        let e = ProtoError::new("unknown-model", "no such network Z9");
        assert_eq!(e.render(), "ERR unknown-model no such network Z9\n.\n");
    }
}
