//! The model registry: a directory-backed store plus a bounded LRU
//! cache of hot decoded models.
//!
//! A fleet deployment trains one model per network (16+ Table-1
//! families at paper scale) but serves them all from one daemon. The
//! registry splits that into two layers:
//!
//! * [`ModelStore`] — the persistence boundary: one
//!   `<network>.eipm` container file (see [`entropy_ip::store`]) per
//!   network id under a models directory. Ids are restricted to
//!   `[A-Za-z0-9_-]` so a request can never walk outside the
//!   directory.
//! * [`Registry`] — the serving boundary: a capacity-bounded LRU
//!   cache of decoded models behind `Arc`s, with hit/miss/eviction
//!   counters ([`RegistryStats`]) and single-flight cold loads — a
//!   burst of concurrent requests for the same cold model decodes the
//!   file exactly once while the rest wait on the same slot (no
//!   thundering herd), which matters because decoding recompiles the
//!   [`SamplingPlan`](eip_bayes::SamplingPlan).
//!
//! Decoded models are immutable and shared: [`Registry::get`] returns
//! `Arc<ServedModel>`, so an eviction only drops the cache's
//! reference — connections already serving from the model keep it
//! alive until they finish.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use entropy_ip::store;
use entropy_ip::{Browser, EipError, IpModel, SegmentDistribution};

/// A decoded model with its provenance, as served to connections.
#[derive(Debug)]
pub struct ServedModel {
    /// Network id this model was registered under.
    pub network: String,
    /// The decoded, plan-compiled model.
    pub model: IpModel,
    /// The training-run fingerprint stored in the container header.
    pub fingerprint: u64,
    /// Prior (no-evidence) browser distributions, computed lazily at
    /// most once per residency — models are immutable, so `BROWSE`
    /// requests share this instead of re-running inference each time.
    priors: OnceLock<Vec<SegmentDistribution>>,
}

impl ServedModel {
    /// The prior distribution of every segment, indexed like
    /// [`IpModel::mined`] (cached across requests).
    pub fn priors(&self) -> &[SegmentDistribution] {
        self.priors
            .get_or_init(|| Browser::new(&self.model).distributions())
    }
}

/// Directory-backed model persistence, one `.eipm` file per network.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

/// Is `id` a safe network id (non-empty, `[A-Za-z0-9_-]` only)?
pub fn valid_network_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl ModelStore {
    /// A store over `dir` (created if missing).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, EipError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| EipError::io(dir.display().to_string(), e))?;
        Ok(ModelStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The container path for a network id.
    pub fn path_for(&self, network: &str) -> Result<PathBuf, EipError> {
        if !valid_network_id(network) {
            return Err(EipError::Usage(format!(
                "invalid network id {network:?} (use [A-Za-z0-9_-], at most 64 chars)"
            )));
        }
        Ok(self.dir.join(format!("{network}.{}", store::EXTENSION)))
    }

    /// Persists a model under a network id.
    pub fn save(&self, network: &str, model: &IpModel, fingerprint: u64) -> Result<(), EipError> {
        store::save_file(self.path_for(network)?, model, fingerprint)
    }

    /// Loads and decodes a network's model container.
    pub fn load(&self, network: &str) -> Result<ServedModel, EipError> {
        let (model, fingerprint) = store::load_file(self.path_for(network)?)?;
        Ok(ServedModel {
            network: network.to_string(),
            model,
            fingerprint,
            priors: OnceLock::new(),
        })
    }

    /// Network ids with a container file in the directory, sorted.
    pub fn list(&self) -> Result<Vec<String>, EipError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| EipError::io(self.dir.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| EipError::io(self.dir.display().to_string(), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(&format!(".{}", store::EXTENSION)) {
                if valid_network_id(stem) {
                    out.push(stem.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Cache counters, all monotone since registry construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests answered from a decoded model already in cache.
    pub hits: u64,
    /// Requests that had to (wait for a) load from disk.
    pub misses: u64,
    /// Decoded models dropped to respect the capacity bound.
    pub evictions: u64,
    /// Actual container decodes (≤ misses: concurrent misses on one
    /// network share a single load).
    pub loads: u64,
    /// Disk loads that failed (missing file, torn container, bad
    /// checksum); each one quarantines its network for a backoff.
    pub load_failures: u64,
    /// Requests answered by the negative cache — a quarantined
    /// network's cached error, served without touching the disk.
    pub neg_hits: u64,
    /// Models currently resident.
    pub resident: usize,
}

/// One cache slot: a single-flight cell plus its LRU timestamp.
///
/// The `OnceLock` is the single-flight mechanism: every requester
/// clones the same `Arc`'d cell, and `get_or_init` guarantees exactly
/// one of them runs the disk load while the rest block on the result.
struct Slot {
    cell: Arc<OnceLock<Result<Arc<ServedModel>, EipError>>>,
    /// Logical clock of the last `get` touching this slot.
    last_used: u64,
}

/// One quarantined network: how often its load has failed in a row,
/// when a retry is next allowed, and the error served meanwhile.
struct Quarantine {
    failures: u32,
    until: Instant,
    error: EipError,
}

/// Bound on remembered failing networks — far above any real fleet;
/// a flood of distinct failing ids must not grow memory unboundedly.
const MAX_QUARANTINED: usize = 1024;

struct CacheState {
    slots: HashMap<String, Slot>,
    quarantine: HashMap<String, Quarantine>,
    tick: u64,
    stats: RegistryStats,
}

/// A capacity-bounded LRU of decoded models over a [`ModelStore`],
/// with a negative cache: a network whose container fails to load is
/// *quarantined* — its error is served from memory, and the disk is
/// retried only after an exponential backoff (`backoff_base × 2^(n-1)`
/// after the n-th consecutive failure, capped at `backoff_cap`). A
/// corrupt file under request load therefore costs one decode attempt
/// per backoff window instead of one per request, and a repaired file
/// is picked up at the next allowed retry.
pub struct Registry {
    store: ModelStore,
    capacity: usize,
    backoff_base: Duration,
    backoff_cap: Duration,
    state: Mutex<CacheState>,
}

/// Default first-failure backoff before a quarantined network's
/// container is re-read.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(250);

/// Default ceiling on the quarantine backoff.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_secs(30);

impl Registry {
    /// A registry serving from `store`, keeping at most `capacity`
    /// decoded models resident (clamped to ≥ 1), with the default
    /// quarantine backoff.
    pub fn new(store: ModelStore, capacity: usize) -> Self {
        Self::with_backoff(store, capacity, DEFAULT_BACKOFF_BASE, DEFAULT_BACKOFF_CAP)
    }

    /// A registry with an explicit quarantine backoff (base doubles
    /// per consecutive failure up to `cap`; `Duration::ZERO` disables
    /// the negative cache — every request retries the disk).
    pub fn with_backoff(
        store: ModelStore,
        capacity: usize,
        backoff_base: Duration,
        backoff_cap: Duration,
    ) -> Self {
        Registry {
            store,
            capacity: capacity.max(1),
            backoff_base,
            backoff_cap: backoff_cap.max(backoff_base),
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                quarantine: HashMap::new(),
                tick: 0,
                stats: RegistryStats::default(),
            }),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Fetches a network's model, loading and caching it on first
    /// use. Returns the shared decoded model. A load failure is
    /// reported to every waiter and quarantines the network: until
    /// the backoff expires, further requests get the cached error
    /// without a disk read; afterwards the disk is retried (so a
    /// repaired file comes back on its own).
    pub fn get(&self, network: &str) -> Result<Arc<ServedModel>, EipError> {
        if !valid_network_id(network) {
            return Err(EipError::Usage(format!("invalid network id {network:?}")));
        }
        let cell = {
            let mut st = self.state.lock().expect("registry lock");
            st.tick += 1;
            let tick = st.tick;
            // Negative cache: a quarantined network answers from
            // memory while its backoff runs — unless a (populated)
            // slot exists, which means a later load succeeded.
            if !st.slots.contains_key(network) {
                let cached = st
                    .quarantine
                    .get(network)
                    .and_then(|q| (Instant::now() < q.until).then(|| q.error.clone()));
                if let Some(err) = cached {
                    st.stats.neg_hits += 1;
                    return Err(err);
                }
            }
            if let Some(slot) = st.slots.get_mut(network) {
                slot.last_used = tick;
                let cell = slot.cell.clone();
                // A populated slot is a hit; a pending slot means we
                // joined an in-flight load (a miss, but not a new
                // disk read).
                if cell.get().is_some() {
                    st.stats.hits += 1;
                } else {
                    st.stats.misses += 1;
                }
                cell
            } else {
                st.stats.misses += 1;
                if st.slots.len() >= self.capacity {
                    self.evict_lru(&mut st);
                }
                let cell = Arc::new(OnceLock::new());
                st.slots.insert(
                    network.to_string(),
                    Slot {
                        cell: cell.clone(),
                        last_used: tick,
                    },
                );
                cell
            }
        };
        // The load runs outside the registry lock: other networks
        // keep serving while this one decodes. `get_or_init` makes
        // the load single-flight per slot.
        let result = cell
            .get_or_init(|| {
                // Count the decode under the lock for exact stats.
                let loaded = self.store.load(network).map(Arc::new);
                let mut st = self.state.lock().expect("registry lock");
                st.stats.loads += 1;
                match &loaded {
                    Ok(_) => {
                        st.quarantine.remove(network);
                    }
                    Err(e) => {
                        st.stats.load_failures += 1;
                        self.quarantine(&mut st, network, e.clone());
                    }
                }
                loaded
            })
            .clone();
        if result.is_err() {
            // Drop the failed slot (if it is still ours) so a later
            // request retries the disk.
            let mut st = self.state.lock().expect("registry lock");
            if let Some(slot) = st.slots.get(network) {
                if Arc::ptr_eq(&slot.cell, &cell) {
                    st.slots.remove(network);
                }
            }
        }
        result
    }

    /// Evicts the least-recently-used *populated* slot. Called with
    /// the lock held. Slots whose load is still in flight are never
    /// victims: evicting one drops the single-flight cell while its
    /// loader is mid-decode, so the finished decode would be orphaned
    /// and the next request would hit the disk again. If every slot
    /// is pending, nothing is evicted and the cache briefly exceeds
    /// capacity instead.
    fn evict_lru(&self, st: &mut CacheState) {
        if let Some(victim) = st
            .slots
            .iter()
            .filter(|(_, slot)| slot.cell.get().is_some())
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(k, _)| k.clone())
        {
            st.slots.remove(&victim);
            st.stats.evictions += 1;
        }
    }

    /// Records a failed load, escalating the network's quarantine:
    /// the n-th consecutive failure backs off `base × 2^(n-1)`,
    /// capped. Called with the lock held.
    fn quarantine(&self, st: &mut CacheState, network: &str, error: EipError) {
        let failures = st
            .quarantine
            .get(network)
            .map_or(1, |q| q.failures.saturating_add(1));
        let backoff = self
            .backoff_base
            .saturating_mul(1u32 << (failures - 1).min(30))
            .min(self.backoff_cap);
        if !st.quarantine.contains_key(network) && st.quarantine.len() >= MAX_QUARANTINED {
            // Full: drop the entry closest to expiry to stay bounded.
            if let Some(victim) = st
                .quarantine
                .iter()
                .min_by_key(|(_, q)| q.until)
                .map(|(k, _)| k.clone())
            {
                st.quarantine.remove(&victim);
            }
        }
        st.quarantine.insert(
            network.to_string(),
            Quarantine {
                failures,
                until: Instant::now() + backoff,
                error,
            },
        );
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> RegistryStats {
        let st = self.state.lock().expect("registry lock");
        let mut stats = st.stats;
        stats.resident = st.slots.len();
        stats
    }

    /// The networks currently resident in cache, most recently used
    /// first (exposes the eviction order for tests and STATS).
    pub fn resident(&self) -> Vec<String> {
        let st = self.state.lock().expect("registry lock");
        let mut pairs: Vec<(u64, String)> = st
            .slots
            .iter()
            .map(|(k, slot)| (slot.last_used, k.clone()))
            .collect();
        pairs.sort_by_key(|&(tick, _)| std::cmp::Reverse(tick));
        pairs.into_iter().map(|(_, k)| k).collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("dir", &self.store.dir)
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_id_validation() {
        assert!(valid_network_id("S1"));
        assert!(valid_network_id("client-C4_v2"));
        assert!(!valid_network_id(""));
        assert!(!valid_network_id("../etc/passwd"));
        assert!(!valid_network_id("a b"));
        assert!(!valid_network_id(&"x".repeat(65)));
    }

    #[test]
    fn eviction_skips_in_flight_loads() {
        let store = ModelStore::open(std::env::temp_dir().join("eip_reg_evict")).unwrap();
        let reg = Registry::new(store, 1);
        let mut st = reg.state.lock().unwrap();
        // "pending" is mid-load (empty cell) and, under concurrency,
        // can hold the oldest tick; "done" finished loading later. A
        // populated Err cell stands in for a decoded model here.
        let populated: Arc<OnceLock<Result<Arc<ServedModel>, EipError>>> =
            Arc::new(OnceLock::new());
        populated
            .set(Err(EipError::Usage("placeholder".into())))
            .unwrap();
        st.slots.insert(
            "pending".into(),
            Slot {
                cell: Arc::new(OnceLock::new()),
                last_used: 1,
            },
        );
        st.slots.insert(
            "done".into(),
            Slot {
                cell: populated,
                last_used: 2,
            },
        );
        reg.evict_lru(&mut st);
        assert!(st.slots.contains_key("pending"), "in-flight load evicted");
        assert!(!st.slots.contains_key("done"));
        // Only pending slots left: eviction is a no-op, not a panic.
        reg.evict_lru(&mut st);
        assert!(st.slots.contains_key("pending"));
        assert_eq!(st.stats.evictions, 1);
    }

    #[test]
    fn store_rejects_traversal_ids() {
        let store = ModelStore::open(std::env::temp_dir().join("eip_reg_ids")).unwrap();
        assert!(matches!(
            store.path_for("../escape"),
            Err(EipError::Usage(_))
        ));
        assert!(store.path_for("S1").unwrap().ends_with("S1.eipm"));
    }
}
