//! The address-plan DSL.
//!
//! A plan describes how a network assigns addresses: a weighted set
//! of [`Variant`]s (the paper found e.g. "4 variants of addressing
//! deployed across its /40 prefixes" in dataset S1), each a list of
//! disjoint bit [`PlanField`]s. Sampling a plan picks a variant by
//! weight and materializes every field; uncovered bits are zero.
//!
//! Field kinds map one-to-one to the structural phenomena the paper
//! reports:
//!
//! | Kind | Paper observation |
//! |---|---|
//! | `Const` | fixed prefixes, zero runs |
//! | `Choice` | popular values (Table 3's A1/A2, B1..B6, point-to-point `::1`/`::2` IIDs of R1/R2) |
//! | `Uniform` | pseudo-random privacy IIDs, random subnet ids |
//! | `Sequential` | static low-byte assignments, dynamic pools |
//! | `Eui64` | SLAAC Modified EUI-64 (`ff:fe` at bits 88–104) |
//! | `V4Hex` | IPv4 embedded in hex (S1's B4/B6 variant) |
//! | `V4Decimal` | IPv4 as decimal octets in 16-bit words (R4) |

use eip_addr::iid::{eui64_from_mac, iid_embed_v4_decimal_words, iid_embed_v4_hex};
use eip_addr::{AddressSet, Ip6};
use eip_exec::rng::{stream_key, KeyedRng};
use eip_exec::Scheduler;
use rand::{Rng, RngCore};

/// Stream id separating keyed plan sampling from every other keyed
/// consumer of the same seed (see [`eip_exec::rng`]).
const PLAN_STREAM: u64 = 0x706c_616e; // "plan"

/// How a field's value is produced.
#[derive(Clone, Debug)]
pub enum FieldKind {
    /// A constant value.
    Const(u128),
    /// A weighted choice among fixed values.
    Choice(Vec<(u128, f64)>),
    /// Uniform over the inclusive range.
    Uniform {
        /// Low bound (inclusive).
        lo: u128,
        /// High bound (inclusive).
        hi: u128,
    },
    /// `base + step * (k mod modulo)` where `k` is a per-sample
    /// counter — models sequential assignment from a pool.
    Sequential {
        /// First value.
        base: u128,
        /// Increment per pool slot.
        step: u128,
        /// Pool size.
        modulo: u128,
    },
    /// A Modified EUI-64 interface identifier built from a random MAC
    /// whose 24-bit OUI is drawn from the given list. Field width
    /// must be 64 bits.
    Eui64 {
        /// Organizationally-unique identifiers to draw from.
        ouis: Vec<u32>,
    },
    /// An IPv4 address `base + (k mod count)` embedded in hex in the
    /// low 32 bits of the field.
    V4Hex {
        /// First IPv4 address (as u32).
        base: u32,
        /// Number of consecutive addresses.
        count: u32,
    },
    /// An IPv4 address embedded as decimal octets in 16-bit words
    /// (width must be 64 bits).
    V4Decimal {
        /// First IPv4 address (as u32).
        base: u32,
        /// Number of consecutive addresses.
        count: u32,
    },
}

/// One field of a variant: a bit range plus a value recipe.
#[derive(Clone, Debug)]
pub struct PlanField {
    /// First bit (0-based from the top of the address).
    pub start_bit: usize,
    /// Width in bits.
    pub width: usize,
    /// Value recipe.
    pub kind: FieldKind,
}

impl PlanField {
    /// Convenience constructor.
    pub fn new(start_bit: usize, width: usize, kind: FieldKind) -> Self {
        assert!(width >= 1 && start_bit + width <= 128, "field out of range");
        PlanField {
            start_bit,
            width,
            kind,
        }
    }

    /// Materializes the field value for sample counter `k`.
    fn sample<R: Rng + ?Sized>(&self, k: u64, rng: &mut R) -> u128 {
        let max = if self.width == 128 {
            u128::MAX
        } else {
            (1u128 << self.width) - 1
        };
        let v = match &self.kind {
            FieldKind::Const(v) => *v,
            FieldKind::Choice(options) => {
                let total: f64 = options.iter().map(|&(_, w)| w).sum();
                let mut u = rng.gen_range(0.0..total);
                let mut out = options.last().expect("empty choice").0;
                for &(v, w) in options {
                    if u < w {
                        out = v;
                        break;
                    }
                    u -= w;
                }
                out
            }
            FieldKind::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else if hi - lo == u128::MAX {
                    rng.gen()
                } else {
                    lo + rng.gen_range(0..=(hi - lo))
                }
            }
            FieldKind::Sequential { base, step, modulo } => base + step * (u128::from(k) % modulo),
            FieldKind::Eui64 { ouis } => {
                let oui = ouis[rng.gen_range(0..ouis.len())];
                let tail: u32 = rng.gen::<u32>() & 0x00ff_ffff;
                let mac = [
                    (oui >> 16) as u8,
                    (oui >> 8) as u8,
                    oui as u8,
                    (tail >> 16) as u8,
                    (tail >> 8) as u8,
                    tail as u8,
                ];
                u128::from(eui64_from_mac(mac))
            }
            FieldKind::V4Hex { base, count } => {
                let v4 = base.wrapping_add((k % u64::from((*count).max(1))) as u32);
                u128::from(iid_embed_v4_hex(v4))
            }
            FieldKind::V4Decimal { base, count } => {
                let v4 = base.wrapping_add((k % u64::from((*count).max(1))) as u32);
                u128::from(iid_embed_v4_decimal_words(v4))
            }
        };
        v & max
    }
}

/// A weighted addressing variant: the fields it sets.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Relative weight of this variant.
    pub weight: f64,
    /// Disjoint fields (validated by [`AddressPlan::new`]).
    pub fields: Vec<PlanField>,
}

/// A complete address plan for one network.
#[derive(Clone, Debug)]
pub struct AddressPlan {
    /// Network name (e.g. "S1").
    pub name: String,
    variants: Vec<Variant>,
}

impl AddressPlan {
    /// Builds a plan, validating that each variant's fields are
    /// in-range and non-overlapping.
    ///
    /// # Panics
    /// Panics on overlapping fields, zero/negative weights, or an
    /// empty variant list.
    pub fn new(name: &str, variants: Vec<Variant>) -> Self {
        assert!(!variants.is_empty(), "plan needs at least one variant");
        for (vi, v) in variants.iter().enumerate() {
            assert!(v.weight > 0.0, "variant {vi} has non-positive weight");
            let mut covered = [false; 128];
            for f in &v.fields {
                assert!(
                    f.width >= 1 && f.start_bit + f.width <= 128,
                    "field out of range"
                );
                for (b, slot) in covered
                    .iter_mut()
                    .enumerate()
                    .take(f.start_bit + f.width)
                    .skip(f.start_bit)
                {
                    assert!(!*slot, "variant {vi}: bit {b} covered twice");
                    *slot = true;
                }
            }
        }
        AddressPlan {
            name: name.to_string(),
            variants,
        }
    }

    /// Single-variant convenience constructor.
    pub fn single(name: &str, fields: Vec<PlanField>) -> Self {
        AddressPlan::new(
            name,
            vec![Variant {
                weight: 1.0,
                fields,
            }],
        )
    }

    /// The variants.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// Samples one address; `k` is the sample counter feeding
    /// `Sequential`/`V4*` fields.
    pub fn sample<R: Rng + ?Sized>(&self, k: u64, rng: &mut R) -> Ip6 {
        let total: f64 = self.variants.iter().map(|v| v.weight).sum();
        let mut u = rng.gen_range(0.0..total);
        let mut chosen = self.variants.last().unwrap();
        for v in &self.variants {
            if u < v.weight {
                chosen = v;
                break;
            }
            u -= v.weight;
        }
        let mut out: u128 = 0;
        for f in &chosen.fields {
            let v = f.sample(k, rng);
            out |= v << (128 - f.start_bit - f.width);
        }
        Ip6(out)
    }

    /// Generates a deduplicated population of (at most) `n` unique
    /// addresses, drawing up to `4 n` samples. Uniques are kept in
    /// sampling order, so truncation does not bias toward numerically
    /// small addresses.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> AddressSet {
        self.generate_from(n, 0, rng)
    }

    /// Like [`AddressPlan::generate`], but with the sample counter
    /// starting at `k0` — lets callers (e.g. the temporal pools)
    /// advance `Sequential` fields instead of replaying the same
    /// pool slots.
    pub fn generate_from<R: Rng + ?Sized>(&self, n: usize, k0: u64, rng: &mut R) -> AddressSet {
        let mut seen: std::collections::HashSet<Ip6> = std::collections::HashSet::with_capacity(n);
        for k in k0..k0 + (n as u64 * 4) {
            if seen.len() >= n {
                break;
            }
            seen.insert(self.sample(k, rng));
        }
        AddressSet::from_iter(seen)
    }

    /// [`AddressPlan::generate_from`] with the dedup bookkeeping
    /// sharded on an [`eip_exec::Scheduler`] — the `repro --full`
    /// synthesize stage.
    ///
    /// Sampling itself must stay serial (each draw consumes a
    /// variable number of RNG words, so the stream cannot be split),
    /// but the serial reference spends much of its time *around* the
    /// sampler: SipHashing every draw into a `HashSet`, then sorting
    /// the randomly-ordered survivors. Here the stream is drawn in
    /// deterministic rounds; each round's draws are screened on the
    /// scheduler against the accepted set so far (a read-shared
    /// [`DedupSet`](eip_addr::DedupSet) — fast multiply-shift
    /// hashing, `&self` membership), the survivors pass one serial
    /// dedup-and-accept walk in draw order, and the accepted
    /// addresses get a single sharded sort at the end
    /// ([`Scheduler::par_sort_unstable`]) so
    /// [`AddressSet::from_iter`] sees pre-sorted input.
    ///
    /// The result is the set of **first `n` distinct** draws of the
    /// same capped sample stream the serial loop consumes — the
    /// screen only drops draws whose value is already accepted, so
    /// the first draw of every value reaches the serial walk in draw
    /// order — and is therefore byte-identical to
    /// [`AddressPlan::generate_from`] at any worker count (asserted
    /// by the equivalence proptests). Only the RNG's final stream
    /// position may differ (rounds can overshoot the serial loop's
    /// early break; callers use a dedicated RNG per population, so
    /// nothing observes the tail).
    pub fn generate_from_sharded<R: Rng + ?Sized>(
        &self,
        n: usize,
        k0: u64,
        rng: &mut R,
        exec: &Scheduler,
    ) -> AddressSet {
        use eip_addr::DedupSet;
        let budget = n.saturating_mul(4); // the serial loop's sample cap
        let mut consumed = 0usize;
        // Accepted addresses in draw order, and the same set for
        // membership screens.
        let mut accepted: Vec<Ip6> = Vec::with_capacity(n);
        let mut seen = DedupSet::with_capacity(n);
        while accepted.len() < n && consumed < budget {
            let shortfall = n - accepted.len();
            // Deterministic round size: the shortfall plus headroom
            // for the expected duplicate tail. A pure function of the
            // loop state, so the stream is worker-count independent.
            let round = (shortfall + shortfall / 16 + 1024).min(budget - consumed);
            let buf: Vec<Ip6> = (0..round)
                .map(|i| self.sample(k0 + (consumed + i) as u64, rng))
                .collect();
            consumed += round;
            // Sharded screen against the accepted-so-far set; shard
            // survivor lists concatenate in shard order = draw order.
            let survivors: Vec<Ip6> = exec
                .par_map_reduce(
                    buf.len(),
                    |range| {
                        buf[range]
                            .iter()
                            .copied()
                            .filter(|&ip| !seen.contains(ip))
                            .collect::<Vec<_>>()
                    },
                    |acc, part| acc.extend_from_slice(&part),
                )
                .unwrap_or_default();
            // Serial: in-round duplicates, accepting first
            // occurrences in draw order until `n` distinct — exactly
            // where the serial loop breaks.
            for &ip in &survivors {
                if seen.insert(ip) {
                    accepted.push(ip);
                    if accepted.len() >= n {
                        break;
                    }
                }
            }
        }
        exec.par_sort_unstable(&mut accepted);
        AddressSet::from_iter(accepted)
    }

    /// Samples address `k` of the keyed population `seed`: a pure
    /// function of `(plan, seed, k)`. Unlike [`AddressPlan::sample`],
    /// no stream is consumed — any worker can materialize any index,
    /// which is what makes keyed synthesis worker-count independent
    /// *by construction* (see [`eip_exec::rng`]).
    pub fn sample_keyed(&self, seed: u64, k: u64) -> Ip6 {
        self.sample_at(stream_key(seed, PLAN_STREAM), k)
    }

    /// [`AddressPlan::sample_keyed`] with the per-seed stream key
    /// hoisted out of the per-index loop.
    #[inline]
    fn sample_at(&self, key: u64, k: u64) -> Ip6 {
        self.sample(k, &mut KeyedRng::for_index(key, k))
    }

    /// Keyed population synthesis: the first `n` distinct values of
    /// the keyed sample stream `k0, k0+1, …` under `seed`, drawing at
    /// most `4 n` samples. The straight-line serial oracle for
    /// [`AddressPlan::generate_keyed_sharded`].
    pub fn generate_keyed(&self, n: usize, k0: u64, seed: u64) -> AddressSet {
        let key = stream_key(seed, PLAN_STREAM);
        let mut seen: std::collections::HashSet<Ip6> = std::collections::HashSet::with_capacity(n);
        for k in k0..k0 + (n as u64 * 4) {
            if seen.len() >= n {
                break;
            }
            seen.insert(self.sample_at(key, k));
        }
        AddressSet::from_iter(seen)
    }

    /// [`AddressPlan::generate_keyed`] with *sampling itself* sharded
    /// on an [`eip_exec::Scheduler`] — the `repro --full` synthesize
    /// stage.
    ///
    /// This is the payoff of keyed draws over the consumed-stream
    /// [`AddressPlan::generate_from_sharded`]: there, each draw eats a
    /// variable number of RNG words, so sampling had to stay serial
    /// and only the dedup bookkeeping sharded. Here address `k` is a
    /// pure function of `(seed, k)`, so every round's draws are
    /// materialized *and* screened against the accepted set in one
    /// sharded pass; a serial walk then accepts first occurrences in
    /// index order until `n` distinct — exactly where the serial
    /// oracle breaks. Round geometry cannot affect the output (it only
    /// decides which indices are materialized eagerly), so the result
    /// is byte-identical to [`AddressPlan::generate_keyed`] at any
    /// worker count and any shard geometry, by construction.
    pub fn generate_keyed_sharded(
        &self,
        n: usize,
        k0: u64,
        seed: u64,
        exec: &Scheduler,
    ) -> AddressSet {
        use eip_addr::DedupSet;
        let key = stream_key(seed, PLAN_STREAM);
        let compiled = self.compile(); // per-draw constants hoisted once
        let budget = n.saturating_mul(4); // the serial oracle's sample cap
        let mut consumed = 0usize;
        let mut accepted: Vec<Ip6> = Vec::with_capacity(n);
        let mut seen = DedupSet::with_capacity(n);
        while accepted.len() < n && consumed < budget {
            let shortfall = n - accepted.len();
            // Round size is pure loop-state arithmetic, but unlike the
            // stream-based engine it no longer needs to be: indices,
            // not stream positions, are what shards consume.
            let round = (shortfall + shortfall / 16 + 1024).min(budget - consumed);
            let base = k0 + consumed as u64;
            // Small top-up rounds are not worth fanning out: below
            // this many draws the spawn/join cost of a shard pass
            // exceeds the sampling work, so run the round inline.
            // Which branch runs cannot affect the output — survivors
            // are a pure function of the round's indices either way.
            const SERIAL_ROUND: usize = 4096;
            let survivors: Vec<Ip6> = if round <= SERIAL_ROUND {
                (0..round)
                    .map(|i| compiled.sample_at(key, base + i as u64))
                    .filter(|&ip| !seen.contains(ip))
                    .collect()
            } else {
                exec.par_map_reduce(
                    round,
                    |range| {
                        range
                            .map(|i| compiled.sample_at(key, base + i as u64))
                            .filter(|&ip| !seen.contains(ip))
                            .collect::<Vec<_>>()
                    },
                    |acc, part| acc.extend_from_slice(&part),
                )
                .unwrap_or_default()
            };
            consumed += round;
            for &ip in &survivors {
                if seen.insert(ip) {
                    accepted.push(ip);
                    if accepted.len() >= n {
                        break;
                    }
                }
            }
        }
        exec.par_sort_unstable(&mut accepted);
        AddressSet::from_iter(accepted)
    }

    /// Compiles the plan for bulk sampling: every constant the naive
    /// sampler recomputes on each draw — the total variant weight,
    /// per-choice weight totals, the rejection-sampling bound/zone of
    /// each uniform field, pool moduli narrowed to `u64` — hoisted
    /// out of the per-draw loop. The compiled sampler consumes
    /// exactly the same RNG words in the same order as
    /// [`AddressPlan::sample`] and produces the same values, so the
    /// engines built on it stay byte-identical to the straight-line
    /// oracles.
    pub(crate) fn compile(&self) -> CompiledPlan {
        CompiledPlan {
            total: self.variants.iter().map(|v| v.weight).sum(),
            variants: self
                .variants
                .iter()
                .map(|v| CompiledVariant {
                    weight: v.weight,
                    fields: v.fields.iter().map(PlanField::compile).collect(),
                })
                .collect(),
        }
    }
}

/// [`AddressPlan`] with the per-draw constants precomputed — see
/// [`AddressPlan::compile`]. Private engine detail: the public
/// samplers stay the naive reference.
pub(crate) struct CompiledPlan {
    variants: Vec<CompiledVariant>,
    total: f64,
}

struct CompiledVariant {
    weight: f64,
    fields: Vec<CompiledField>,
}

struct CompiledField {
    /// Left-shift placing the field value in the address.
    shift: u32,
    /// Width mask, as in the naive sampler.
    max: u128,
    kind: CompiledKind,
}

enum CompiledKind {
    Const(u128),
    /// The naive subtract-walk with the weight total pre-summed (same
    /// summation order, so bit-identical `f64` arithmetic).
    Choice {
        options: Vec<(u128, f64)>,
        total: f64,
    },
    /// Full-width draw (`hi - lo == u128::MAX`).
    UniformFull,
    /// Power-of-two bound: the rejection zone covers all of `u128`,
    /// so the draw always accepts and the modulo reduces to a mask.
    UniformMask {
        lo: u128,
        mask: u128,
    },
    /// General rejection sampling with `bound`/`zone` precomputed —
    /// the same accept test and reduction the `rand` shim performs,
    /// minus the two per-draw `u128` modulos that derive `zone`.
    Uniform {
        lo: u128,
        bound: u128,
        zone: u128,
    },
    /// Pool modulo narrowed to one native `u64` operation.
    Sequential {
        base: u128,
        step: u128,
        modulo: u64,
    },
    /// Everything else (`Eui64`, `V4*`, over-wide pools): the naive
    /// field sampler, draw-identical by definition.
    Naive(PlanField),
}

/// The shim's `next_u128` word order: high half first.
#[inline]
fn wide<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

impl PlanField {
    fn compile(&self) -> CompiledField {
        let max = if self.width == 128 {
            u128::MAX
        } else {
            (1u128 << self.width) - 1
        };
        let kind = match &self.kind {
            FieldKind::Const(v) => CompiledKind::Const(*v),
            FieldKind::Choice(options) => CompiledKind::Choice {
                options: options.clone(),
                total: options.iter().map(|&(_, w)| w).sum(),
            },
            FieldKind::Uniform { lo, hi } if lo == hi => CompiledKind::Const(*lo),
            FieldKind::Uniform { lo, hi } if hi - lo == u128::MAX => CompiledKind::UniformFull,
            FieldKind::Uniform { lo, hi } => {
                let bound = (hi - lo) + 1;
                if bound.is_power_of_two() {
                    CompiledKind::UniformMask {
                        lo: *lo,
                        mask: bound - 1,
                    }
                } else {
                    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
                    CompiledKind::Uniform {
                        lo: *lo,
                        bound,
                        zone,
                    }
                }
            }
            FieldKind::Sequential { base, step, modulo }
                if *modulo > 0 && *modulo <= u128::from(u64::MAX) =>
            {
                CompiledKind::Sequential {
                    base: *base,
                    step: *step,
                    modulo: *modulo as u64,
                }
            }
            _ => CompiledKind::Naive(self.clone()),
        };
        CompiledField {
            shift: (128 - self.start_bit - self.width) as u32,
            max,
            kind,
        }
    }
}

impl CompiledField {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, k: u64, rng: &mut R) -> u128 {
        let v = match &self.kind {
            CompiledKind::Const(v) => *v,
            CompiledKind::Choice { options, total } => {
                let mut u = rng.gen_range(0.0..*total);
                let mut out = options.last().expect("empty choice").0;
                for &(v, w) in options {
                    if u < w {
                        out = v;
                        break;
                    }
                    u -= w;
                }
                out
            }
            CompiledKind::UniformFull => rng.gen(),
            CompiledKind::UniformMask { lo, mask } => lo + (wide(rng) & mask),
            CompiledKind::Uniform { lo, bound, zone } => loop {
                let v = wide(rng);
                if v <= *zone {
                    break lo + v % bound;
                }
            },
            CompiledKind::Sequential { base, step, modulo } => base + step * u128::from(k % modulo),
            CompiledKind::Naive(field) => field.sample(k, rng),
        };
        v & self.max
    }
}

impl CompiledPlan {
    /// [`AddressPlan::sample`], draw-for-draw, on the precomputed
    /// constants.
    fn sample<R: Rng + ?Sized>(&self, k: u64, rng: &mut R) -> Ip6 {
        let mut u = rng.gen_range(0.0..self.total);
        let mut chosen = self.variants.last().unwrap();
        for v in &self.variants {
            if u < v.weight {
                chosen = v;
                break;
            }
            u -= v.weight;
        }
        let mut out: u128 = 0;
        for f in &chosen.fields {
            out |= f.sample(k, rng) << f.shift;
        }
        Ip6(out)
    }

    /// [`AddressPlan::sample_keyed`] on the compiled tables.
    #[inline]
    pub(crate) fn sample_at(&self, key: u64, k: u64) -> Ip6 {
        self.sample(k, &mut KeyedRng::for_index(key, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn compiled_sampler_is_draw_identical_to_naive() {
        // One plan exercising every compiled lowering: const, choice,
        // masked / general / full-width uniforms, the narrowed
        // sequential pool, and the naive fallbacks (EUI-64, embedded
        // IPv4) — compiled and naive must agree value-for-value on
        // the same keyed per-index draws.
        let plan = AddressPlan::new(
            "all-kinds",
            vec![
                Variant {
                    weight: 0.6,
                    fields: vec![
                        PlanField::new(0, 16, FieldKind::Const(0x2001)),
                        PlanField::new(
                            16,
                            8,
                            FieldKind::Choice(vec![(1, 0.2), (2, 0.5), (3, 0.3)]),
                        ),
                        // Power-of-two bound: compiles to a mask.
                        PlanField::new(24, 8, FieldKind::Uniform { lo: 0, hi: 0xff }),
                        // General bound: precomputed rejection zone.
                        PlanField::new(32, 16, FieldKind::Uniform { lo: 3, hi: 0x1234 }),
                        PlanField::new(
                            48,
                            16,
                            FieldKind::Sequential {
                                base: 7,
                                step: 3,
                                modulo: 500,
                            },
                        ),
                        PlanField::new(
                            64,
                            64,
                            FieldKind::Eui64 {
                                ouis: vec![0x00163e, 0x00aabb],
                            },
                        ),
                    ],
                },
                Variant {
                    weight: 0.4,
                    fields: vec![
                        PlanField::new(0, 16, FieldKind::Const(0x3001)),
                        PlanField::new(
                            32,
                            32,
                            FieldKind::V4Hex {
                                base: 0xc0a8_0001,
                                count: 77,
                            },
                        ),
                        PlanField::new(
                            64,
                            64,
                            FieldKind::V4Decimal {
                                base: 0x0a00_0001,
                                count: 99,
                            },
                        ),
                    ],
                },
            ],
        );
        let compiled = plan.compile();
        let key = stream_key(99, PLAN_STREAM);
        for k in 0..5_000 {
            assert_eq!(
                compiled.sample_at(key, k),
                plan.sample(k, &mut KeyedRng::for_index(key, k)),
                "draw {k} diverged"
            );
        }
        // The full-width uniform needs a 128-bit field of its own.
        let full = AddressPlan::single(
            "full",
            vec![PlanField::new(
                0,
                128,
                FieldKind::Uniform {
                    lo: 0,
                    hi: u128::MAX,
                },
            )],
        );
        let fc = full.compile();
        for k in 0..200 {
            assert_eq!(
                fc.sample_at(key, k),
                full.sample(k, &mut KeyedRng::for_index(key, k))
            );
        }
    }

    #[test]
    fn const_field_sets_bits() {
        let plan = AddressPlan::single(
            "t",
            vec![PlanField::new(0, 32, FieldKind::Const(0x2001_0db8))],
        );
        let ip = plan.sample(0, &mut rng());
        assert_eq!(ip.to_string(), "2001:db8::");
    }

    #[test]
    fn choice_respects_weights() {
        let plan = AddressPlan::single(
            "t",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(124, 4, FieldKind::Choice(vec![(1, 0.8), (2, 0.2)])),
            ],
        );
        let mut r = rng();
        let mut ones = 0;
        for k in 0..5000 {
            let ip = plan.sample(k, &mut r);
            if ip.nybble(32) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / 5000.0;
        assert!((frac - 0.8).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let plan = AddressPlan::single(
            "t",
            vec![PlanField::new(
                64,
                64,
                FieldKind::Uniform {
                    lo: 0x100,
                    hi: 0x1ff,
                },
            )],
        );
        let mut r = rng();
        for k in 0..200 {
            let iid = plan.sample(k, &mut r).bits(64, 128);
            assert!((0x100..=0x1ff).contains(&iid));
        }
    }

    #[test]
    fn sequential_counts() {
        let plan = AddressPlan::single(
            "t",
            vec![PlanField::new(
                120,
                8,
                FieldKind::Sequential {
                    base: 1,
                    step: 1,
                    modulo: 10,
                },
            )],
        );
        let mut r = rng();
        assert_eq!(plan.sample(0, &mut r).value(), 1);
        assert_eq!(plan.sample(9, &mut r).value(), 10);
        assert_eq!(plan.sample(10, &mut r).value(), 1); // wraps
    }

    #[test]
    fn eui64_has_fffe_signature() {
        let plan = AddressPlan::single(
            "t",
            vec![PlanField::new(
                64,
                64,
                FieldKind::Eui64 {
                    ouis: vec![0x00163e],
                },
            )],
        );
        let mut r = rng();
        for k in 0..50 {
            let iid = plan.sample(k, &mut r).bits(64, 128) as u64;
            assert!(eip_addr::iid::looks_like_eui64(iid));
            // OUI with u-bit flipped: 00163e -> 02163e in the IID.
            assert_eq!(iid >> 40, 0x02163e);
        }
    }

    #[test]
    fn v4_decimal_digits_are_decimal() {
        let base = u32::from_be_bytes([127, 0, 113, 54]);
        let plan = AddressPlan::single(
            "t",
            vec![PlanField::new(
                64,
                64,
                FieldKind::V4Decimal { base, count: 1 },
            )],
        );
        let ip = plan.sample(0, &mut rng());
        assert_eq!(ip.bits(64, 128), 0x0127_0000_0113_0054);
    }

    #[test]
    fn variants_partition_samples() {
        let plan = AddressPlan::new(
            "t",
            vec![
                Variant {
                    weight: 0.7,
                    fields: vec![PlanField::new(0, 8, FieldKind::Const(0xaa))],
                },
                Variant {
                    weight: 0.3,
                    fields: vec![PlanField::new(0, 8, FieldKind::Const(0xbb))],
                },
            ],
        );
        let mut r = rng();
        let mut aa = 0;
        for k in 0..2000 {
            if plan.sample(k, &mut r).bits(0, 8) == 0xaa {
                aa += 1;
            }
        }
        let frac = aa as f64 / 2000.0;
        assert!((frac - 0.7).abs() < 0.04, "got {frac}");
    }

    #[test]
    fn generate_dedups_and_caps() {
        let plan = AddressPlan::single(
            "t",
            vec![PlanField::new(
                120,
                8,
                FieldKind::Uniform { lo: 0, hi: 255 },
            )],
        );
        let set = plan.generate(100, &mut rng());
        assert!(set.len() <= 100);
        assert!(set.len() > 50);
    }

    #[test]
    fn sharded_generation_matches_serial_oracle() {
        // Duplicate-heavy (sequential pool + tiny uniform) and
        // duplicate-light plans, at sizes that exercise the
        // first-round break, the top-up rounds, and the exhausted
        // budget, for worker counts around the shard boundaries.
        let dense = AddressPlan::single(
            "dense",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(112, 16, FieldKind::Uniform { lo: 0, hi: 0x3ff }),
            ],
        );
        let sparse = AddressPlan::single(
            "sparse",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(
                    64,
                    64,
                    FieldKind::Uniform {
                        lo: 0,
                        hi: u64::MAX as u128,
                    },
                ),
            ],
        );
        for plan in [&dense, &sparse] {
            for n in [0usize, 1, 100, 700, 2000] {
                let mut oracle_rng = StdRng::seed_from_u64(9);
                let oracle = plan.generate_from(n, 5, &mut oracle_rng);
                for workers in [1usize, 2, 3, 8] {
                    let mut rng = StdRng::seed_from_u64(9);
                    let sharded =
                        plan.generate_from_sharded(n, 5, &mut rng, &Scheduler::new(workers));
                    assert_eq!(
                        sharded, oracle,
                        "plan {}, n {n}, {workers} workers",
                        plan.name
                    );
                }
            }
        }
    }

    #[test]
    fn keyed_sampling_is_index_pure() {
        let plan = AddressPlan::single(
            "t",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(
                    64,
                    64,
                    FieldKind::Uniform {
                        lo: 0,
                        hi: u64::MAX as u128,
                    },
                ),
            ],
        );
        // Same (seed, k) → same address, in any order, any number of
        // times; different seed or k → (almost surely) different.
        let forward: Vec<Ip6> = (0..50).map(|k| plan.sample_keyed(7, k)).collect();
        let backward: Vec<Ip6> = (0..50).rev().map(|k| plan.sample_keyed(7, k)).collect();
        assert!(forward.iter().eq(backward.iter().rev()));
        assert_ne!(plan.sample_keyed(7, 0), plan.sample_keyed(8, 0));
    }

    #[test]
    fn keyed_sharded_matches_keyed_serial_oracle() {
        // Same plan/size grid as the stream-based oracle test, plus
        // non-power-of-two worker counts: keyed output must be
        // byte-identical everywhere by construction.
        let dense = AddressPlan::single(
            "dense",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(112, 16, FieldKind::Uniform { lo: 0, hi: 0x3ff }),
            ],
        );
        let sparse = AddressPlan::single(
            "sparse",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(
                    64,
                    64,
                    FieldKind::Uniform {
                        lo: 0,
                        hi: u64::MAX as u128,
                    },
                ),
            ],
        );
        for plan in [&dense, &sparse] {
            for n in [0usize, 1, 100, 700, 2000] {
                let oracle = plan.generate_keyed(n, 5, 9);
                for workers in [1usize, 2, 3, 7, 8] {
                    let sharded = plan.generate_keyed_sharded(n, 5, 9, &Scheduler::new(workers));
                    assert_eq!(
                        sharded, oracle,
                        "plan {}, n {n}, {workers} workers",
                        plan.name
                    );
                }
            }
        }
    }

    #[test]
    fn keyed_generation_respects_plan_distribution() {
        // The keyed draws must still honor the plan's weights: an
        // 80/20 Choice field over 5000 keyed samples.
        let plan = AddressPlan::single(
            "t",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(124, 4, FieldKind::Choice(vec![(1, 0.8), (2, 0.2)])),
            ],
        );
        let ones = (0..5000)
            .filter(|&k| plan.sample_keyed(3, k).nybble(32) == 1)
            .count();
        let frac = ones as f64 / 5000.0;
        assert!((frac - 0.8).abs() < 0.03, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "covered twice")]
    fn overlapping_fields_rejected() {
        AddressPlan::single(
            "t",
            vec![
                PlanField::new(0, 16, FieldKind::Const(0)),
                PlanField::new(8, 16, FieldKind::Const(0)),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "field out of range")]
    fn out_of_range_field_rejected() {
        PlanField::new(120, 16, FieldKind::Const(0));
    }
}
