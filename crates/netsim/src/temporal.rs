//! Day-indexed client /64 pools for the prefix-prediction experiment
//! (§5.6, Table 6).
//!
//! The paper trained on /64 prefixes "seen on March 17th 2016" and
//! tested candidates against (a) the same day and (b) the following
//! week. The interesting effect — that a 7-day window catches more
//! predictions than a single day for some operators but not others —
//! comes from *churn*: dynamic pools hand different /64s to customers
//! over time, within a structured assignment space.
//!
//! [`TemporalPool`] models that: an operator has a structured /64
//! space (an [`AddressPlan`] restricted to its top 64 bits); each day
//! a stable core of prefixes recurs and a dynamic share is re-drawn.

use eip_addr::AddressSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::plan::AddressPlan;

/// A churning pool of active client /64 prefixes.
#[derive(Clone, Debug)]
pub struct TemporalPool {
    plan: AddressPlan,
    per_day: usize,
    /// Fraction of each day's prefixes drawn from the stable core.
    stable_fraction: f64,
    seed: u64,
}

impl TemporalPool {
    /// Creates a pool over the /64 space of `plan`.
    ///
    /// `per_day` prefixes are active each day; `stable_fraction` of
    /// them come from a stable core that recurs daily, the rest are
    /// re-drawn (the dynamic share).
    pub fn new(plan: AddressPlan, per_day: usize, stable_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stable_fraction),
            "fraction out of range"
        );
        TemporalPool {
            plan,
            per_day,
            stable_fraction,
            seed,
        }
    }

    /// The /64 prefixes observed on `day` (0-based).
    pub fn day(&self, day: u32) -> AddressSet {
        let stable_n = (self.per_day as f64 * self.stable_fraction) as usize;
        let dynamic_n = self.per_day - stable_n;
        // Stable core: same seed every day.
        let mut stable_rng = StdRng::seed_from_u64(self.seed);
        let stable = self.plan.generate(stable_n, &mut stable_rng);
        // Dynamic share: seed and sequential-pool offset vary by day,
        // so pooled assignments churn instead of replaying.
        let mut dyn_rng = StdRng::seed_from_u64(self.seed ^ (0x9e37 + u64::from(day) * 0x1_0001));
        let k0 = u64::from(day + 1) * self.per_day as u64 * 4;
        let dynamic = self.plan.generate_from(dynamic_n, k0, &mut dyn_rng);
        stable
            .union(&dynamic)
            .iter()
            .map(|ip| ip.slash64())
            .collect()
    }

    /// The union of days `start..start + len` — the paper's 7-day
    /// window is `window(0, 7)`.
    pub fn window(&self, start: u32, len: u32) -> AddressSet {
        let mut out = AddressSet::new();
        for d in start..start + len {
            out = out.union(&self.day(d));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::dataset;

    fn pool() -> TemporalPool {
        TemporalPool::new(dataset("C5").unwrap().plan(), 2000, 0.7, 11)
    }

    #[test]
    fn days_are_deterministic() {
        let p = pool();
        assert_eq!(p.day(0), p.day(0));
        assert_ne!(p.day(0), p.day(1));
    }

    #[test]
    fn consecutive_days_share_the_stable_core() {
        let p = pool();
        let d0 = p.day(0);
        let d1 = p.day(1);
        let shared = d0.iter().filter(|&ip| d1.contains(ip)).count();
        // At least the stable fraction recurs (dedup across /64
        // truncation can only merge prefixes).
        assert!(
            shared as f64 >= 0.5 * d0.len() as f64,
            "only {shared} shared"
        );
        assert!(shared < d0.len(), "days should differ in the dynamic share");
    }

    #[test]
    fn window_grows_with_length() {
        let p = pool();
        let one = p.window(0, 1);
        let week = p.window(0, 7);
        assert!(week.len() > one.len());
        for ip in one.iter() {
            assert!(week.contains(ip), "window must contain day 0");
        }
    }

    #[test]
    fn prefixes_are_slash64_networks() {
        let p = pool();
        for ip in p.day(0).iter().take(100) {
            assert_eq!(ip.value() & u128::from(u64::MAX), 0);
        }
    }
}
