//! The 16 dataset families of the paper's Table 1, as address plans.
//!
//! Each spec is parameterized to match the *published structural
//! description* of that network in §5.2–5.4 (the raw data is
//! proprietary; see DESIGN.md "Substitutions"). Populations are
//! scaled roughly 1:1000 from Table 1 so experiments run on a laptop;
//! the entropy/ACR *shapes* — which is what the paper's figures show —
//! depend on the plan structure, not the population size.
//!
//! All plans live inside documentation prefixes (`2001:db8::/32` and
//! friends), so printed results are inherently anonymized the same
//! way the paper's are.

use eip_addr::AddressSet;

use crate::plan::{AddressPlan, FieldKind, PlanField, Variant};

/// Dataset category, mirroring Table 1's grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Server datasets S1–S5 (+ aggregate AS).
    Server,
    /// Router datasets R1–R5 (+ aggregate AR).
    Router,
    /// Client datasets C1–C5 (+ aggregates AC, AT).
    Client,
}

/// One dataset family: identity, provenance note, and its plan.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset id as in the paper ("S1" … "AT").
    pub id: &'static str,
    /// Category.
    pub category: Category,
    /// What the paper says this network is.
    pub description: &'static str,
    /// The population reported in the paper's Table 1.
    pub paper_population: &'static str,
    /// Our scaled default population.
    pub default_population: usize,
    /// Fraction of active hosts with reverse-DNS records in the
    /// simulated responder.
    pub rdns_fraction: f64,
}

/// Ids of all dataset families, paper order.
pub const ALL_DATASETS: [&str; 16] = [
    "S1", "S2", "S3", "S4", "S5", "R1", "R2", "R3", "R4", "R5", "C1", "C2", "C3", "C4", "C5", "AT",
];

/// Ids of the aggregate families (AT is also in [`ALL_DATASETS`]).
pub const AGGREGATES: [&str; 4] = ["AS", "AR", "AC", "AT"];

/// Looks up a dataset spec by id (also accepts the aggregates
/// AS/AR/AC).
pub fn dataset(id: &str) -> Option<DatasetSpec> {
    let mk = |id, category, description, paper_population, default_population, rdns_fraction| {
        Some(DatasetSpec {
            id,
            category,
            description,
            paper_population,
            default_population,
            rdns_fraction,
        })
    };
    match id {
        "S1" => mk(
            "S1",
            Category::Server,
            "web hosting company, two /32s, four addressing variants",
            "290 K",
            40_000,
            0.5,
        ),
        "S2" => mk(
            "S2",
            Category::Server,
            "CDN using DNS + IP unicast: many global prefixes",
            "295 K",
            15_000,
            0.5,
        ),
        "S3" => mk(
            "S3",
            Category::Server,
            "CDN using IP anycast: one /96 worldwide",
            "72 K",
            8_000,
            0.5,
        ),
        "S4" => mk(
            "S4",
            Category::Server,
            "cloud provider: only last 32 bits discriminate",
            "18 K",
            6_000,
            0.5,
        ),
        "S5" => mk(
            "S5",
            Category::Server,
            "large service operator: service type in last nybbles",
            "65 K",
            12_000,
            0.5,
        ),
        "R1" => mk(
            "R1",
            Category::Router,
            "global carrier: subnets in bits 28-64, ::1/::2 IIDs",
            "6.7 M",
            30_000,
            0.7,
        ),
        "R2" => mk(
            "R2",
            Category::Router,
            "carrier: bottom 64 bits equal 1 or 2",
            "235 K",
            12_000,
            0.7,
        ),
        "R3" => mk(
            "R3",
            Category::Router,
            "carrier: zeros through bit 116, random last 12 bits",
            "21 K",
            8_000,
            0.7,
        ),
        "R4" => mk(
            "R4",
            Category::Router,
            "carrier embedding IPv4 as decimal octets in the IID",
            "3.4 K",
            3_000,
            0.7,
        ),
        "R5" => mk(
            "R5",
            Category::Router,
            "carrier discriminating in bits 52-64, predictable IIDs",
            "1.7 K",
            2_000,
            0.7,
        ),
        "C1" => mk(
            "C1",
            Category::Client,
            "mobile ISP: 47% of IIDs end 01 (Android pattern)",
            "83 M",
            50_000,
            0.02,
        ),
        "C2" => mk(
            "C2",
            Category::Client,
            "mobile ISP: random IIDs without the u-bit dip",
            "8.2 M",
            20_000,
            0.02,
        ),
        "C3" => mk(
            "C3",
            Category::Client,
            "wireline ISP: sequential /64 pools, privacy IIDs",
            "530 M",
            60_000,
            0.02,
        ),
        "C4" => mk(
            "C4",
            Category::Client,
            "ISP with structure from bit 20, privacy IIDs",
            "39 M",
            30_000,
            0.02,
        ),
        "C5" => mk(
            "C5",
            Category::Client,
            "ISP with skewed /64 pools, privacy IIDs",
            "43 M",
            30_000,
            0.02,
        ),
        "AS" => mk(
            "AS",
            Category::Server,
            "server aggregate: 790K IPs in 4.3K /32s (DNS)",
            "790 K",
            40_000,
            0.5,
        ),
        "AR" => mk(
            "AR",
            Category::Router,
            "router aggregate: 12M IPs in 5.5K /32s (traceroute)",
            "12 M",
            40_000,
            0.7,
        ),
        "AC" => mk(
            "AC",
            Category::Client,
            "client aggregate: 3.5G IPs in 6.0K /32s (CDN)",
            "3.5 G",
            60_000,
            0.02,
        ),
        "AT" => mk(
            "AT",
            Category::Client,
            "BitTorrent peers: like AC but more EUI-64",
            "220 K",
            20_000,
            0.02,
        ),
        _ => None,
    }
}

impl DatasetSpec {
    /// The address plan of this family.
    pub fn plan(&self) -> AddressPlan {
        match self.id {
            "S1" => s1(),
            "S2" => s2(),
            "S3" => s3(),
            "S4" => s4(),
            "S5" => s5(),
            "R1" => r1(),
            "R2" => r2(),
            "R3" => r3(),
            "R4" => r4(),
            "R5" => r5(),
            "C1" => c1(),
            "C2" => c2(),
            "C3" => c3(),
            "C4" => c4(),
            "C5" => c5(),
            "AS" => aggregate_servers(),
            "AR" => aggregate_routers(),
            "AC" => aggregate_clients(0.15),
            "AT" => aggregate_clients(0.45),
            other => unreachable!("unknown dataset {other}"),
        }
    }

    /// Generates the observed population at the default size.
    pub fn population(&self, seed: u64) -> AddressSet {
        self.population_sized(self.default_population, seed)
    }

    /// Generates an observed population of `n` addresses, as the
    /// first `n` distinct draws of the keyed sample stream under
    /// `seed` ([`AddressPlan::generate_keyed`]) — a pure function of
    /// `(dataset, n, seed)`, independent of who computes it and how
    /// it is sharded.
    pub fn population_sized(&self, n: usize, seed: u64) -> AddressSet {
        self.plan().generate_keyed(n, 0, seed)
    }

    /// [`DatasetSpec::population_sized`] with sampling *and* dedup
    /// sharded over `jobs` workers
    /// ([`AddressPlan::generate_keyed_sharded`]): byte-identical to
    /// the serial form at any `jobs` by construction. This is the
    /// `repro --full` synthesize stage.
    pub fn population_sized_jobs(&self, n: usize, seed: u64, jobs: usize) -> AddressSet {
        self.population_sized_exec(n, seed, &eip_exec::Scheduler::new(jobs))
    }

    /// Like [`DatasetSpec::population_sized_jobs`], but synthesizing
    /// on a caller-provided scheduler, so fleet jobs sharing a
    /// work-stealing pool reuse their own execution context. The
    /// scheduler's worker count fixes the shard geometry exactly as
    /// `jobs` does above; the output depends on nothing else.
    pub fn population_sized_exec(
        &self,
        n: usize,
        seed: u64,
        exec: &eip_exec::Scheduler,
    ) -> AddressSet {
        self.plan().generate_keyed_sharded(n, 0, seed, exec)
    }
}

// ---- helpers ----------------------------------------------------------

fn f(start_bit: usize, width: usize, kind: FieldKind) -> PlanField {
    PlanField::new(start_bit, width, kind)
}

fn doc32(n: u128) -> u128 {
    // 2001:db8::/32 with the first nybble bumped per index, the
    // paper's own anonymization presentation.
    (0x2001_0db8u128 & 0x0fff_ffff) | (((0x2 + n) % 16) << 28)
}

/// Several /32s as a weighted choice with Zipf-ish popularity.
fn slash32_mix(count: usize) -> FieldKind {
    let options: Vec<(u128, f64)> = (0..count)
        .map(|i| (doc32(i as u128), 1.0 / (i as f64 + 1.0)))
        .collect();
    FieldKind::Choice(options)
}

/// A pseudo-random privacy IID (RFC 4941): fully random except the
/// u-bit (bit 70 of the address) forced to zero.
fn privacy_iid_fields() -> Vec<PlanField> {
    vec![
        f(64, 6, FieldKind::Uniform { lo: 0, hi: 0x3f }),
        f(70, 1, FieldKind::Const(0)),
        f(
            71,
            57,
            FieldKind::Uniform {
                lo: 0,
                hi: (1 << 57) - 1,
            },
        ),
    ]
}

// ---- servers -----------------------------------------------------------

/// S1 (§5.2): two /32s at 64%/36%; segment B (bits 32-40) selects one
/// of four addressing variants; B4/B6 embeds literal IPv4; B1 has
/// pseudo-random IIDs.
fn s1() -> AddressPlan {
    let a = FieldKind::Choice(vec![(0x2001_0db8, 0.635), (0x3001_0db8, 0.365)]);
    let c = FieldKind::Choice(vec![
        (0x00, 0.67),
        (0x01, 0.11),
        (0xc2, 0.007),
        (0xfe, 0.004),
        (0xff, 0.004),
        (0x2b, 0.12),
        (0x5e, 0.085),
    ]);
    let d = FieldKind::Choice(vec![
        (0x0, 0.10),
        (0x5, 0.09),
        (0x4, 0.09),
        (0x2, 0.09),
        (0x1, 0.09),
        (0x8, 0.18),
        (0xb, 0.18),
        (0xe, 0.18),
    ]);
    let e = FieldKind::Choice(vec![
        (0x0, 0.70),
        (0x1, 0.05),
        (0x2, 0.05),
        (0x3, 0.04),
        (0x5, 0.02),
        (0x9, 0.07),
        (0xc, 0.07),
    ]);
    AddressPlan::new(
        "S1",
        vec![
            // B1 = 10: variable low bits, pseudo-random IIDs.
            Variant {
                weight: 0.778,
                fields: vec![
                    f(0, 32, a.clone()),
                    f(32, 8, FieldKind::Const(0x10)),
                    f(40, 8, c.clone()),
                    f(48, 4, d.clone()),
                    f(52, 4, e.clone()),
                    f(56, 8, FieldKind::Uniform { lo: 0x01, hi: 0xff }),
                    f(
                        64,
                        64,
                        FieldKind::Uniform {
                            lo: 0x0103_32b0_b1e1_7000,
                            hi: 0xfffd_8c3a_b164_3fff,
                        },
                    ),
                ],
            },
            // B2/B3 = 08/09: essentially non-random low bits.
            Variant {
                weight: 0.204,
                fields: vec![
                    f(0, 32, a.clone()),
                    f(32, 8, FieldKind::Choice(vec![(0x08, 0.75), (0x09, 0.25)])),
                    f(40, 8, c.clone()),
                    f(48, 4, d.clone()),
                    f(52, 4, e.clone()),
                    f(56, 8, FieldKind::Const(0)),
                    f(64, 52, FieldKind::Const(0)),
                    f(
                        116,
                        12,
                        FieldKind::Sequential {
                            base: 1,
                            step: 1,
                            modulo: 800,
                        },
                    ),
                ],
            },
            // B4/B6 = 07/05: 67% embed literal IPv4 in the IID.
            Variant {
                weight: 0.012,
                fields: vec![
                    f(0, 32, a.clone()),
                    f(32, 8, FieldKind::Choice(vec![(0x07, 0.6), (0x05, 0.4)])),
                    f(40, 24, FieldKind::Const(0)),
                    f(64, 32, FieldKind::Const(0)),
                    f(
                        96,
                        32,
                        FieldKind::V4Hex {
                            base: u32::from_be_bytes([127, 16, 0, 1]),
                            count: 4000,
                        },
                    ),
                ],
            },
            // B5 = 00: small static block.
            Variant {
                weight: 0.006,
                fields: vec![
                    f(0, 32, a),
                    f(32, 8, FieldKind::Const(0x00)),
                    f(40, 24, FieldKind::Const(0)),
                    f(64, 52, FieldKind::Const(0)),
                    f(
                        116,
                        12,
                        FieldKind::Sequential {
                            base: 0x100,
                            step: 1,
                            modulo: 250,
                        },
                    ),
                ],
            },
        ],
    )
}

/// S2: unicast CDN — many globally distributed prefixes, static
/// low-byte hosts. The wide per-/32 subnet space keeps the guessable
/// fraction small: the paper scans S2 at ~1%, far below anycast S3.
fn s2() -> AddressPlan {
    AddressPlan::single(
        "S2",
        vec![
            f(0, 32, slash32_mix(8)),
            f(32, 16, FieldKind::Uniform { lo: 0, hi: 0x1ff }),
            f(
                48,
                16,
                FieldKind::Choice(vec![(0, 0.8), (1, 0.1), (2, 0.1)]),
            ),
            f(64, 48, FieldKind::Const(0)),
            f(
                112,
                16,
                FieldKind::Sequential {
                    base: 1,
                    step: 1,
                    modulo: 200,
                },
            ),
        ],
    )
}

/// S3: anycast CDN — "basically uses just one /96 prefix worldwide".
/// Both variants stay dense (a sequential pool plus a compact dynamic
/// block), which is what makes S3 the paper's easiest server network
/// (43% hit rate): nearly everything inside the discovered ranges is
/// alive.
fn s3() -> AddressPlan {
    AddressPlan::new(
        "S3",
        vec![
            Variant {
                weight: 0.9,
                fields: vec![
                    f(0, 96, FieldKind::Const(0x2001_0db8_0003_0000_0000_0000)),
                    f(
                        96,
                        32,
                        FieldKind::Sequential {
                            base: 0x100,
                            step: 1,
                            modulo: 9000,
                        },
                    ),
                ],
            },
            Variant {
                weight: 0.1,
                fields: vec![
                    f(0, 96, FieldKind::Const(0x2001_0db8_0003_0000_0000_0000)),
                    f(
                        96,
                        32,
                        FieldKind::Uniform {
                            lo: 0x1_0000,
                            hi: 0x1_0fff,
                        },
                    ),
                ],
            },
        ],
    )
}

/// S4: cloud provider — simple structure in bits 32-48, "only the
/// last 32 bits are utilized for discriminating hosts and networks".
fn s4() -> AddressPlan {
    AddressPlan::single(
        "S4",
        vec![
            f(0, 32, FieldKind::Const(0x2001_0db8)),
            f(
                32,
                16,
                FieldKind::Choice(vec![(0x4000, 0.5), (0x8000, 0.3), (0xc000, 0.2)]),
            ),
            f(48, 48, FieldKind::Const(0)),
            f(
                96,
                32,
                FieldKind::Uniform {
                    lo: 0x1,
                    hi: 0x1_ffff,
                },
            ),
        ],
    )
}

/// S5: the last 2-4 nybbles often identify the service type, deployed
/// across many /64 prefixes.
fn s5() -> AddressPlan {
    AddressPlan::single(
        "S5",
        vec![
            f(0, 32, FieldKind::Const(0x2001_0db8)),
            f(
                32,
                32,
                FieldKind::Sequential {
                    base: 0x10,
                    step: 0x10,
                    modulo: 300,
                },
            ),
            f(64, 32, FieldKind::Const(0)),
            f(96, 16, FieldKind::Uniform { lo: 0x1, hi: 0xff }),
            f(
                112,
                16,
                FieldKind::Choice(vec![
                    (0x0050, 0.30), // www
                    (0x0035, 0.20), // dns
                    (0x0019, 0.10), // smtp
                    (0x0443, 0.20), // https (vanity hex)
                    (0x0081, 0.10),
                    (0x1001, 0.10),
                ]),
            ),
        ],
    )
}

// ---- routers -----------------------------------------------------------

/// R1 (§5.3): bits 28-64 discriminate prefixes; IIDs are strings of
/// zeros ending in 1 or 2 (point-to-point links).
fn r1() -> AddressPlan {
    AddressPlan::single(
        "R1",
        vec![
            f(0, 28, FieldKind::Const(0x0200_10db)),
            f(28, 4, FieldKind::Choice(vec![(0x8, 0.6), (0x9, 0.4)])),
            f(
                32,
                32,
                FieldKind::Uniform {
                    lo: 0,
                    hi: 0x1_ffff,
                },
            ),
            f(64, 60, FieldKind::Const(0)),
            f(
                124,
                4,
                FieldKind::Choice(vec![(1, 0.50), (2, 0.40), (0xe, 0.06), (5, 0.04)]),
            ),
        ],
    )
}

/// R2: same pattern as R1 — bottom 64 bits equal 1 or 2.
fn r2() -> AddressPlan {
    AddressPlan::single(
        "R2",
        vec![
            f(0, 32, slash32_mix(3)),
            f(32, 16, FieldKind::Uniform { lo: 0, hi: 0x7fff }),
            f(48, 16, FieldKind::Choice(vec![(0, 0.7), (0xffff, 0.3)])),
            f(64, 63, FieldKind::Const(0)),
            f(127, 1, FieldKind::Choice(vec![(0, 0.45), (1, 0.55)])),
        ],
    )
}

/// R3: bits 32-48 discriminate, bits 48-116 mostly zero, last 12 bits
/// largely pseudo-random.
fn r3() -> AddressPlan {
    AddressPlan::single(
        "R3",
        vec![
            f(0, 32, FieldKind::Const(0x2001_0db8)),
            f(32, 16, FieldKind::Uniform { lo: 0, hi: 0x7f }),
            f(48, 68, FieldKind::Choice(vec![(0, 0.9), (1, 0.1)])),
            f(116, 12, FieldKind::Uniform { lo: 0, hi: 0xfff }),
        ],
    )
}

/// R4: IIDs encode literal IPv4 addresses as decimal octets in
/// 16-bit words.
fn r4() -> AddressPlan {
    AddressPlan::single(
        "R4",
        vec![
            f(0, 32, FieldKind::Const(0x2001_0db8)),
            f(32, 20, FieldKind::Uniform { lo: 0, hi: 0x3f }),
            f(52, 12, FieldKind::Const(0)),
            f(
                64,
                64,
                FieldKind::V4Decimal {
                    base: u32::from_be_bytes([127, 0, 16, 1]),
                    count: 3000,
                },
            ),
        ],
    )
}

/// R5: discriminates largely in bits 52-64; predictable bottom bits.
fn r5() -> AddressPlan {
    AddressPlan::single(
        "R5",
        vec![
            f(0, 32, FieldKind::Const(0x2001_0db8)),
            f(32, 20, FieldKind::Const(0x00100)),
            f(52, 12, FieldKind::Uniform { lo: 0, hi: 0xfff }),
            f(64, 56, FieldKind::Const(0)),
            f(120, 8, FieldKind::Uniform { lo: 0x1, hi: 0x3f }),
        ],
    )
}

// ---- clients -----------------------------------------------------------

/// C1 (§5.4): a large mobile operator. Bits 32-64 discriminate
/// prefixes (segment B takes only low values); 47% of IIDs follow the
/// Android-vendor pattern — a run of zeros (segment D), a random
/// middle (E), and a final 01 (F1) — the rest are fully pseudo-random.
fn c1() -> AddressPlan {
    let prefix_fields = |fields: &mut Vec<PlanField>| {
        fields.push(f(0, 32, FieldKind::Const(0x2001_0db8)));
        fields.push(f(32, 4, FieldKind::Uniform { lo: 0, hi: 8 }));
        fields.push(f(36, 28, FieldKind::Uniform { lo: 0, hi: 0xefff }));
    };
    let mut android = Vec::new();
    prefix_fields(&mut android);
    android.push(f(64, 20, FieldKind::Const(0))); // segment D = 00000
    android.push(f(
        84,
        36,
        FieldKind::Uniform {
            lo: 0,
            hi: (1 << 36) - 1,
        },
    )); // E
    android.push(f(120, 8, FieldKind::Const(0x01))); // F1
    let mut random = Vec::new();
    prefix_fields(&mut random);
    random.push(f(
        64,
        64,
        FieldKind::Uniform {
            lo: 0,
            hi: u64::MAX as u128,
        },
    ));
    AddressPlan::new(
        "C1",
        vec![
            Variant {
                weight: 0.47,
                fields: android,
            },
            Variant {
                weight: 0.53,
                fields: random,
            },
        ],
    )
}

/// C2: mobile operator with fully random IIDs and *no* u-bit dip.
fn c2() -> AddressPlan {
    AddressPlan::single(
        "C2",
        vec![
            f(0, 32, FieldKind::Const(0x2001_0db8)),
            f(
                32,
                32,
                FieldKind::Uniform {
                    lo: 0x1000,
                    hi: 0xfffff,
                },
            ),
            f(
                64,
                64,
                FieldKind::Uniform {
                    lo: 0,
                    hi: u64::MAX as u128,
                },
            ),
        ],
    )
}

/// C3: wireline ISP — sequential /64 pools per region, privacy IIDs.
fn c3() -> AddressPlan {
    let mut fields = vec![
        f(0, 32, FieldKind::Const(0x2001_0db8)),
        f(
            32,
            12,
            FieldKind::Choice(vec![(0x1, 0.4), (0x2, 0.3), (0x3, 0.2), (0x4, 0.1)]),
        ),
        f(
            44,
            20,
            FieldKind::Sequential {
                base: 0,
                step: 1,
                modulo: 1_000_000,
            },
        ),
    ];
    fields.extend(privacy_iid_fields());
    AddressPlan::single("C3", fields)
}

/// C4: structure reaching up into bits 20-32 (several /32s), privacy
/// IIDs.
fn c4() -> AddressPlan {
    let mut fields = vec![
        f(0, 20, FieldKind::Const(0x0002_0010)),
        f(
            20,
            12,
            FieldKind::Choice(vec![(0xdb8, 0.5), (0xdb9, 0.3), (0xdba, 0.2)]),
        ),
        f(32, 32, FieldKind::Uniform { lo: 0, hi: 0xcfff }),
    ];
    fields.extend(privacy_iid_fields());
    AddressPlan::single("C4", fields)
}

/// C5: skewed /64 pools (some far more popular), privacy IIDs.
fn c5() -> AddressPlan {
    let pool: Vec<(u128, f64)> = (0..64u128)
        .map(|i| (i * 0x41, 1.0 / (1.0 + i as f64)))
        .collect();
    let mut fields = vec![
        f(0, 32, FieldKind::Const(0x2001_0db8)),
        f(32, 16, FieldKind::Choice(pool)),
        f(
            48,
            16,
            FieldKind::Sequential {
                base: 0,
                step: 1,
                modulo: 2_000,
            },
        ),
    ];
    fields.extend(privacy_iid_fields());
    AddressPlan::single("C5", fields)
}

// ---- aggregates ---------------------------------------------------------

/// AS: many operators' servers; entropy oscillates across the
/// address and rises toward bit 128 (static low-bit assignment).
fn aggregate_servers() -> AddressPlan {
    let mk = |low_bits: usize, weight: f64| Variant {
        weight,
        fields: vec![
            f(0, 32, slash32_mix(40)),
            f(32, 8, FieldKind::Uniform { lo: 0, hi: 0xff }),
            f(
                40,
                8,
                FieldKind::Choice(vec![(0, 0.6), (1, 0.25), (0x10, 0.15)]),
            ),
            f(48, 8, FieldKind::Uniform { lo: 0, hi: 0x7f }),
            f(56, 8, FieldKind::Choice(vec![(0, 0.7), (1, 0.3)])),
            f(64, 64 - low_bits, FieldKind::Const(0)),
            f(
                128 - low_bits,
                low_bits,
                FieldKind::Uniform {
                    lo: 1,
                    hi: (1 << low_bits) - 1,
                },
            ),
        ],
    };
    AddressPlan::new(
        "AS",
        vec![
            mk(8, 0.35),
            mk(16, 0.30),
            mk(24, 0.20),
            mk(32, 0.10),
            mk(44, 0.05),
        ],
    )
}

/// AR: router aggregate — a mixture of Modified EUI-64 IIDs (the
/// fffe dip at bits 88-104) and low point-to-point IIDs.
fn aggregate_routers() -> AddressPlan {
    let prefix = |fields: &mut Vec<PlanField>| {
        fields.push(f(0, 32, slash32_mix(30)));
        fields.push(f(
            32,
            32,
            FieldKind::Uniform {
                lo: 0,
                hi: 0xf_ffff,
            },
        ));
    };
    let mut eui = Vec::new();
    prefix(&mut eui);
    eui.push(f(
        64,
        64,
        FieldKind::Eui64 {
            ouis: vec![0x00163e, 0x0002b3, 0x00d0b7, 0xac4bc8],
        },
    ));
    let mut p2p = Vec::new();
    prefix(&mut p2p);
    p2p.push(f(64, 60, FieldKind::Const(0)));
    p2p.push(f(124, 4, FieldKind::Choice(vec![(1, 0.6), (2, 0.4)])));
    let mut low = Vec::new();
    prefix(&mut low);
    low.push(f(64, 48, FieldKind::Const(0)));
    low.push(f(112, 16, FieldKind::Uniform { lo: 0, hi: 0xffff }));
    AddressPlan::new(
        "AR",
        vec![
            Variant {
                weight: 0.45,
                fields: eui,
            },
            Variant {
                weight: 0.35,
                fields: p2p,
            },
            Variant {
                weight: 0.20,
                fields: low,
            },
        ],
    )
}

/// AC/AT: client aggregate — mostly RFC 4941 privacy IIDs (u-bit dip
/// at bits 68-72 to ~0.8) plus an EUI-64 share (`eui_share`), which
/// is larger for BitTorrent peers (AT) than web clients (AC).
fn aggregate_clients(eui_share: f64) -> AddressPlan {
    let prefix = |fields: &mut Vec<PlanField>| {
        fields.push(f(0, 32, slash32_mix(48)));
        fields.push(f(
            32,
            32,
            FieldKind::Uniform {
                lo: 0,
                hi: 0xff_ffff,
            },
        ));
    };
    let mut privacy = Vec::new();
    prefix(&mut privacy);
    privacy.extend(privacy_iid_fields());
    let mut rand_iid = Vec::new();
    prefix(&mut rand_iid);
    rand_iid.push(f(
        64,
        64,
        FieldKind::Uniform {
            lo: 0,
            hi: u64::MAX as u128,
        },
    ));
    let mut eui = Vec::new();
    prefix(&mut eui);
    eui.push(f(
        64,
        64,
        FieldKind::Eui64 {
            ouis: vec![0x3c0754, 0xa45e60, 0xdc2b2a, 0x40b395],
        },
    ));
    AddressPlan::new(
        if eui_share > 0.3 { "AT" } else { "AC" },
        vec![
            Variant {
                weight: (1.0 - eui_share) * 0.85,
                fields: privacy,
            },
            Variant {
                weight: (1.0 - eui_share) * 0.15,
                fields: rand_iid,
            },
            Variant {
                weight: eui_share,
                fields: eui,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_stats::nybble_entropy;

    fn entropy_of(id: &str, n: usize) -> [f64; 32] {
        let spec = dataset(id).unwrap();
        let set = spec.population_sized(n, 1);
        let addrs: Vec<_> = set.iter().collect();
        nybble_entropy(&addrs)
    }

    #[test]
    fn all_datasets_resolve_and_build() {
        for id in ALL_DATASETS.iter().chain(AGGREGATES.iter()) {
            let spec = dataset(id).expect(id);
            let set = spec.population_sized(500, 7);
            assert!(set.len() >= 300, "{id}: only {} addresses", set.len());
        }
        assert!(dataset("XX").is_none());
    }

    #[test]
    fn keyed_engines_agree_on_every_catalog_plan() {
        // The sharded engine samples through the compiled plan; the
        // serial oracle through the naive one. Sweeping the whole
        // catalog covers every field-kind lowering on real specs.
        for id in ALL_DATASETS.iter().chain(AGGREGATES.iter()) {
            let plan = dataset(id).expect(id).plan();
            let serial = plan.generate_keyed(400, 0, 11);
            for workers in [1usize, 3] {
                let sharded =
                    plan.generate_keyed_sharded(400, 0, 11, &eip_exec::Scheduler::new(workers));
                assert_eq!(sharded, serial, "{id} diverged at {workers} workers");
            }
        }
    }

    #[test]
    fn s1_has_two_slash32s() {
        let set = dataset("S1").unwrap().population_sized(3000, 2);
        assert_eq!(set.count_prefixes(32), 2);
    }

    #[test]
    fn s3_is_one_slash96() {
        let set = dataset("S3").unwrap().population_sized(2000, 3);
        assert_eq!(set.count_prefixes(96), 1);
        let h = entropy_of("S3", 2000);
        // Entropy confined to the last 8 nybbles.
        assert!(h[..24].iter().all(|&x| x == 0.0));
        assert!(h[24..].iter().any(|&x| x > 0.1));
    }

    #[test]
    fn r1_iids_end_in_small_values() {
        let set = dataset("R1").unwrap().population_sized(2000, 4);
        for ip in set.iter().take(200) {
            let iid = ip.bits(64, 128);
            assert!(iid <= 0xf, "{ip} IID too large");
        }
        let h = entropy_of("R1", 2000);
        // Near-zero entropy for bits 64-124 (nybbles 17-31).
        assert!(h[16..31].iter().all(|&x| x < 0.05), "{:?}", &h[16..31]);
        assert!(h[31] > 0.3, "last nybble should vary");
    }

    #[test]
    fn c1_android_pattern_share() {
        let set = dataset("C1").unwrap().population_sized(20_000, 5);
        let ending01 = set.iter().filter(|ip| ip.bits(120, 128) == 0x01).count();
        let frac = ending01 as f64 / set.len() as f64;
        assert!((frac - 0.47).abs() < 0.05, "01-suffix share {frac}");
        // Among the 01-enders, segment D (bits 64-84) is zero for the
        // Android share (a sliver of random IIDs also end 01).
        let enders: Vec<_> = set.iter().filter(|ip| ip.bits(120, 128) == 0x01).collect();
        let zero_d = enders.iter().filter(|ip| ip.bits(64, 84) == 0).count();
        assert!(
            zero_d as f64 > 0.95 * enders.len() as f64,
            "only {zero_d}/{} 01-enders have a zero D segment",
            enders.len()
        );
    }

    #[test]
    fn client_aggregate_has_ubit_dip() {
        let h = entropy_of("AC", 20_000);
        // Nybble 18 covers bits 68-72 which contain the u-bit:
        // privacy addresses force it to 0, EUI-64 forces it to 1, so
        // the nybble is depressed relative to its neighbours.
        assert!(
            h[17] < h[16] - 0.05,
            "u-bit dip missing: {} vs {}",
            h[17],
            h[16]
        );
        assert!(h[17] > 0.6, "dip too deep: {}", h[17]);
        // The IID is otherwise near-random.
        assert!(h[20] > 0.95);
    }

    #[test]
    fn bittorrent_aggregate_shows_eui64_dip() {
        let h_at = entropy_of("AT", 20_000);
        let h_ac = entropy_of("AC", 20_000);
        // Nybbles 23-26 cover bits 88-104 where EUI-64 inserts fffe:
        // more EUI-64 => lower entropy there (paper Fig. 6).
        let at_mid: f64 = h_at[22..26].iter().sum();
        let ac_mid: f64 = h_ac[22..26].iter().sum();
        assert!(at_mid < ac_mid - 0.3, "AT {at_mid} vs AC {ac_mid}");
    }

    #[test]
    fn server_aggregate_entropy_rises_toward_bit_128() {
        let h = entropy_of("AS", 20_000);
        // Steadily increasing low-bit entropy: last nybble busier
        // than nybble 21.
        assert!(h[31] > h[20] + 0.2, "{} vs {}", h[31], h[20]);
    }

    #[test]
    fn r4_iids_are_decimal_octet_words() {
        let set = dataset("R4").unwrap().population_sized(1000, 6);
        for ip in set.iter().take(100) {
            let iid = ip.bits(64, 128) as u64;
            for word_i in 0..4 {
                let w = (iid >> (16 * (3 - word_i))) & 0xffff;
                let (h, t, o) = ((w >> 8) & 0xf, (w >> 4) & 0xf, w & 0xf);
                assert!(h <= 2 && t <= 9 && o <= 9, "{ip}: word {w:#x} not decimal");
            }
        }
    }

    #[test]
    fn populations_are_deterministic_per_seed() {
        let spec = dataset("S2").unwrap();
        assert_eq!(
            spec.population_sized(1000, 9),
            spec.population_sized(1000, 9)
        );
        assert_ne!(
            spec.population_sized(1000, 9),
            spec.population_sized(1000, 10)
        );
    }
}
