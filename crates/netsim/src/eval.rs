//! Scanning-campaign evaluation (the bookkeeping behind Tables 4–6).
//!
//! §5.5's protocol: train a model on 1K addresses, generate 1M
//! candidates, then count
//!
//! * **Test set** — candidates present in the held-out remainder of
//!   the dataset;
//! * **Ping** — candidates answering an ICMPv6 echo;
//! * **rDNS** — candidates with a genuine reverse-DNS record;
//! * **Overall** — candidates passing at least one of the three
//!   tests, and the success rate = overall / generated;
//! * **New /64s** — /64 prefixes among the hits that were absent from
//!   the training sample.
//!
//! ## Sort-join instead of hashing
//!
//! At the paper's native scale ([`crate::eval`] sees a million
//! candidates per run) the original `HashSet` bookkeeping — hash the
//! training /64s, hash every hit's /64 — was the hot spot. The
//! counters are now computed over *sorted `u128` keys*: training /64s
//! come pre-sorted from [`AddressSet::slash64s`], membership is a
//! binary search, and the distinct new-/64 count is one
//! sort-and-dedup over the collected hit prefixes. The candidate scan
//! shards on an [`eip_exec::Scheduler`] (counters merge by addition,
//! prefix lists concatenate in shard order before the global dedup),
//! so the outcome is identical at any worker count. The original
//! hashing implementation survives as
//! [`evaluate_scan_reference`], the oracle the sort-join path is
//! verified against (see `tests/proptests.rs`).

use std::collections::HashSet;

use eip_addr::{AddressSet, Ip6};
use eip_exec::Scheduler;

use crate::responder::Responder;

/// The counters of one scanning evaluation (one row of Table 4).
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Candidates generated.
    pub generated: usize,
    /// Hits against the held-out test set.
    pub test_hits: usize,
    /// Candidates answering ping.
    pub ping_hits: usize,
    /// Candidates with reverse DNS.
    pub rdns_hits: usize,
    /// Candidates passing at least one test.
    pub overall: usize,
    /// Distinct /64s among overall hits that were not in training.
    pub new_slash64: usize,
}

impl ScanOutcome {
    /// Success rate = overall / generated (0 if nothing generated).
    pub fn success_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.overall as f64 / self.generated as f64
        }
    }
}

/// Evaluates a candidate list against the held-out test set and the
/// responder, counting new /64s relative to the training sample —
/// serially, via the sort-join core. Equivalent to
/// [`evaluate_scan_sharded`] with a serial scheduler.
pub fn evaluate_scan(
    candidates: &[Ip6],
    training: &AddressSet,
    test: &AddressSet,
    responder: &Responder,
) -> ScanOutcome {
    evaluate_scan_sharded(candidates, training, test, responder, &Scheduler::default())
}

/// [`evaluate_scan`] with the candidate scan fanned out on a
/// scheduler. Shard counters merge by addition and the new-/64 dedup
/// runs globally over sorted keys, so the outcome is identical at any
/// worker count.
pub fn evaluate_scan_sharded(
    candidates: &[Ip6],
    training: &AddressSet,
    test: &AddressSet,
    responder: &Responder,
    exec: &Scheduler,
) -> ScanOutcome {
    /// Per-shard counters plus the raw hit /64s outside training.
    struct Shard {
        test_hits: usize,
        ping_hits: usize,
        rdns_hits: usize,
        overall: usize,
        new64: Vec<Ip6>,
    }
    let train64: Vec<Ip6> = training.slash64s();
    let merged = exec.par_map_reduce(
        candidates.len(),
        |range| {
            let mut s = Shard {
                test_hits: 0,
                ping_hits: 0,
                rdns_hits: 0,
                overall: 0,
                new64: Vec::new(),
            };
            for &ip in &candidates[range] {
                let in_test = test.contains(ip);
                let ping = responder.ping(ip);
                let rdns = responder.rdns(ip);
                s.test_hits += usize::from(in_test);
                s.ping_hits += usize::from(ping);
                s.rdns_hits += usize::from(rdns);
                if in_test || ping || rdns {
                    s.overall += 1;
                    let p64 = ip.slash64();
                    if train64.binary_search(&p64).is_err() {
                        s.new64.push(p64);
                    }
                }
            }
            s
        },
        |acc, part| {
            acc.test_hits += part.test_hits;
            acc.ping_hits += part.ping_hits;
            acc.rdns_hits += part.rdns_hits;
            acc.overall += part.overall;
            acc.new64.extend_from_slice(&part.new64);
        },
    );
    let mut out = ScanOutcome {
        generated: candidates.len(),
        ..Default::default()
    };
    if let Some(mut merged) = merged {
        out.test_hits = merged.test_hits;
        out.ping_hits = merged.ping_hits;
        out.rdns_hits = merged.rdns_hits;
        out.overall = merged.overall;
        merged.new64.sort_unstable();
        merged.new64.dedup();
        out.new_slash64 = merged.new64.len();
    }
    out
}

/// The original `HashSet`-based evaluation, kept verbatim as the
/// oracle the sort-join path is verified against (equivalence
/// proptests in `tests/proptests.rs`). Prefer [`evaluate_scan`].
pub fn evaluate_scan_reference(
    candidates: &[Ip6],
    training: &AddressSet,
    test: &AddressSet,
    responder: &Responder,
) -> ScanOutcome {
    let train64: HashSet<Ip6> = training.iter().map(|ip| ip.slash64()).collect();
    let mut out = ScanOutcome {
        generated: candidates.len(),
        ..Default::default()
    };
    let mut new64: HashSet<Ip6> = HashSet::new();
    for &ip in candidates {
        let in_test = test.contains(ip);
        let ping = responder.ping(ip);
        let rdns = responder.rdns(ip);
        if in_test {
            out.test_hits += 1;
        }
        if ping {
            out.ping_hits += 1;
        }
        if rdns {
            out.rdns_hits += 1;
        }
        if in_test || ping || rdns {
            out.overall += 1;
            let p64 = ip.slash64();
            if !train64.contains(&p64) {
                new64.insert(p64);
            }
        }
    }
    out.new_slash64 = new64.len();
    out
}

/// In-sample adherence of a candidate batch: how many candidates land
/// back inside the (training) population, and how many *distinct*
/// /64s the rest open up. This is the `repro --full` evaluate stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Adherence {
    /// Candidates present in the population.
    pub hits: usize,
    /// Candidates whose /64 prefix is present in the population —
    /// the "aiming at the right subnets" counter. For populations
    /// with wide pseudo-random IIDs (the paper's S1), exact `hits`
    /// are vanishingly rare no matter how good the model is
    /// (collision odds ~2⁻⁶⁴ per candidate), so this is the metric
    /// that distinguishes *structure learned, IID space huge* from
    /// *model aiming nowhere*.
    pub slash64_hits: usize,
    /// Distinct candidate /64s absent from the population's /64s.
    pub new_slash64: usize,
}

/// Computes [`Adherence`] by sort-merge-join: the candidate keys are
/// sorted once (sharded on the scheduler, identical at any worker
/// count), then one streaming two-pointer pass against the sorted
/// population — and, since `/64` prefixes are the *top* 64 bits, the
/// sorted candidates' prefixes are already sorted too, so the same
/// pass merge-joins them against the population's pre-sorted /64 list
/// and counts distinct misses. No hashing, no tree, no per-candidate
/// binary search into a cache-cold megabyte array.
pub fn population_adherence(
    candidates: &[Ip6],
    population: &AddressSet,
    exec: &Scheduler,
) -> Adherence {
    let mut keys: Vec<Ip6> = candidates.to_vec();
    exec.par_sort_unstable(&mut keys);
    let pop = population.as_slice();
    let pop64: Vec<Ip6> = population.slash64s();
    let mut hits = 0usize;
    let mut hits64 = 0usize;
    let mut new64 = 0usize;
    let mut pi = 0usize; // cursor into pop
    let mut qi = 0usize; // cursor into pop64
    let mut last_new: Option<Ip6> = None;
    for &ip in &keys {
        while pi < pop.len() && pop[pi] < ip {
            pi += 1;
        }
        hits += usize::from(pi < pop.len() && pop[pi] == ip);
        let p64 = ip.slash64();
        while qi < pop64.len() && pop64[qi] < p64 {
            qi += 1;
        }
        let known = qi < pop64.len() && pop64[qi] == p64;
        hits64 += usize::from(known);
        if !known && last_new != Some(p64) {
            new64 += 1;
            last_new = Some(p64);
        }
    }
    Adherence {
        hits,
        slash64_hits: hits64,
        new_slash64: new64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(i: u128) -> Ip6 {
        Ip6((0x2001_0db8u128 << 96) | i)
    }

    #[test]
    fn counts_each_test_independently() {
        let training: AddressSet = (0..10u128).map(base).collect();
        let test: AddressSet = (10..20u128).map(base).collect();
        // Active = training + test (the usual situation).
        let responder = Responder::new(training.union(&test), 1.0, 1);
        let candidates = vec![base(11), base(5000), base(12)];
        let o = evaluate_scan(&candidates, &training, &test, &responder);
        assert_eq!(o.generated, 3);
        assert_eq!(o.test_hits, 2);
        assert_eq!(o.ping_hits, 2);
        assert_eq!(o.rdns_hits, 2);
        assert_eq!(o.overall, 2);
        assert!((o.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn new_slash64_excludes_training_prefixes() {
        let training: AddressSet = vec![base(1)].into_iter().collect();
        // Test addresses in a *different* /64.
        let other = Ip6((0x2001_0db8_0000_0001u128 << 64) | 7);
        let test: AddressSet = vec![other].into_iter().collect();
        let responder = Responder::new(test.clone(), 0.0, 1);
        let o = evaluate_scan(&[other, base(1)], &training, &test, &responder);
        assert_eq!(o.new_slash64, 1);
    }

    #[test]
    fn misses_score_zero() {
        let training: AddressSet = (0..5u128).map(base).collect();
        let test: AddressSet = (5..10u128).map(base).collect();
        let responder = Responder::new(test.clone(), 0.5, 1);
        let o = evaluate_scan(&[base(100), base(200)], &training, &test, &responder);
        assert_eq!(o.overall, 0);
        assert_eq!(o.success_rate(), 0.0);
        assert_eq!(o.new_slash64, 0);
    }

    /// Sort-join and hashing oracle must agree field by field, at any
    /// worker count.
    #[test]
    fn sharded_matches_reference_at_any_worker_count() {
        let training: AddressSet = (0..50u128).map(base).collect();
        let test: AddressSet = (50..200u128).map(base).collect();
        let responder = Responder::new(training.union(&test), 0.4, 3);
        let candidates: Vec<Ip6> = (0..500u128)
            .map(|i| {
                if i % 3 == 0 {
                    base(i) // some hits, some /64-local misses
                } else {
                    Ip6((0x2001_0db8u128 << 96) | (i << 64) | i) // fresh /64s
                }
            })
            .collect();
        let oracle = evaluate_scan_reference(&candidates, &training, &test, &responder);
        for workers in [1usize, 2, 3, 8] {
            let o = evaluate_scan_sharded(
                &candidates,
                &training,
                &test,
                &responder,
                &Scheduler::new(workers),
            );
            assert_eq!(o.generated, oracle.generated, "{workers} workers");
            assert_eq!(o.test_hits, oracle.test_hits);
            assert_eq!(o.ping_hits, oracle.ping_hits);
            assert_eq!(o.rdns_hits, oracle.rdns_hits);
            assert_eq!(o.overall, oracle.overall);
            assert_eq!(o.new_slash64, oracle.new_slash64);
        }
    }

    #[test]
    fn adherence_counts_hits_and_fresh_prefixes() {
        let population: AddressSet = (0..100u128).map(base).collect();
        // 2 hits, 3 candidates in the population's single /64, 2
        // distinct fresh /64s (one probed twice).
        let fresh_a = Ip6((0x2001_0db8_0000_0001u128 << 64) | 1);
        let fresh_a2 = Ip6((0x2001_0db8_0000_0001u128 << 64) | 2);
        let fresh_b = Ip6((0x2001_0db8_0000_0002u128 << 64) | 1);
        let candidates = vec![base(1), base(2), base(5000), fresh_a, fresh_a2, fresh_b];
        for workers in [1usize, 2, 5] {
            let a = population_adherence(&candidates, &population, &Scheduler::new(workers));
            assert_eq!(a.hits, 2, "{workers} workers");
            // base(1), base(2), base(5000) all live in the
            // population's /64 even though base(5000) misses exactly.
            assert_eq!(a.slash64_hits, 3);
            assert_eq!(a.new_slash64, 2);
        }
        assert_eq!(
            population_adherence(&[], &population, &Scheduler::default()),
            Adherence::default()
        );
    }
}
