//! Scanning-campaign evaluation (the bookkeeping behind Tables 4–6).
//!
//! §5.5's protocol: train a model on 1K addresses, generate 1M
//! candidates, then count
//!
//! * **Test set** — candidates present in the held-out remainder of
//!   the dataset;
//! * **Ping** — candidates answering an ICMPv6 echo;
//! * **rDNS** — candidates with a genuine reverse-DNS record;
//! * **Overall** — candidates passing at least one of the three
//!   tests, and the success rate = overall / generated;
//! * **New /64s** — /64 prefixes among the hits that were absent from
//!   the training sample.

use std::collections::HashSet;

use eip_addr::{AddressSet, Ip6};

use crate::responder::Responder;

/// The counters of one scanning evaluation (one row of Table 4).
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Candidates generated.
    pub generated: usize,
    /// Hits against the held-out test set.
    pub test_hits: usize,
    /// Candidates answering ping.
    pub ping_hits: usize,
    /// Candidates with reverse DNS.
    pub rdns_hits: usize,
    /// Candidates passing at least one test.
    pub overall: usize,
    /// Distinct /64s among overall hits that were not in training.
    pub new_slash64: usize,
}

impl ScanOutcome {
    /// Success rate = overall / generated (0 if nothing generated).
    pub fn success_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.overall as f64 / self.generated as f64
        }
    }
}

/// Evaluates a candidate list against the held-out test set and the
/// responder, counting new /64s relative to the training sample.
pub fn evaluate_scan(
    candidates: &[Ip6],
    training: &AddressSet,
    test: &AddressSet,
    responder: &Responder,
) -> ScanOutcome {
    let train64: HashSet<Ip6> = training.iter().map(|ip| ip.slash64()).collect();
    let mut out = ScanOutcome {
        generated: candidates.len(),
        ..Default::default()
    };
    let mut new64: HashSet<Ip6> = HashSet::new();
    for &ip in candidates {
        let in_test = test.contains(ip);
        let ping = responder.ping(ip);
        let rdns = responder.rdns(ip);
        if in_test {
            out.test_hits += 1;
        }
        if ping {
            out.ping_hits += 1;
        }
        if rdns {
            out.rdns_hits += 1;
        }
        if in_test || ping || rdns {
            out.overall += 1;
            let p64 = ip.slash64();
            if !train64.contains(&p64) {
                new64.insert(p64);
            }
        }
    }
    out.new_slash64 = new64.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(i: u128) -> Ip6 {
        Ip6((0x2001_0db8u128 << 96) | i)
    }

    #[test]
    fn counts_each_test_independently() {
        let training: AddressSet = (0..10u128).map(base).collect();
        let test: AddressSet = (10..20u128).map(base).collect();
        // Active = training + test (the usual situation).
        let responder = Responder::new(training.union(&test), 1.0, 1);
        let candidates = vec![base(11), base(5000), base(12)];
        let o = evaluate_scan(&candidates, &training, &test, &responder);
        assert_eq!(o.generated, 3);
        assert_eq!(o.test_hits, 2);
        assert_eq!(o.ping_hits, 2);
        assert_eq!(o.rdns_hits, 2);
        assert_eq!(o.overall, 2);
        assert!((o.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn new_slash64_excludes_training_prefixes() {
        let training: AddressSet = vec![base(1)].into_iter().collect();
        // Test addresses in a *different* /64.
        let other = Ip6((0x2001_0db8_0000_0001u128 << 64) | 7);
        let test: AddressSet = vec![other].into_iter().collect();
        let responder = Responder::new(test.clone(), 0.0, 1);
        let o = evaluate_scan(&[other, base(1)], &training, &test, &responder);
        assert_eq!(o.new_slash64, 1);
    }

    #[test]
    fn misses_score_zero() {
        let training: AddressSet = (0..5u128).map(base).collect();
        let test: AddressSet = (5..10u128).map(base).collect();
        let responder = Responder::new(test.clone(), 0.5, 1);
        let o = evaluate_scan(&[base(100), base(200)], &training, &test, &responder);
        assert_eq!(o.overall, 0);
        assert_eq!(o.success_rate(), 0.0);
        assert_eq!(o.new_slash64, 0);
    }
}
