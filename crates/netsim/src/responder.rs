//! The simulated probe responder: ICMPv6 ping + reverse DNS oracle.
//!
//! Stands in for the paper's active measurement (§5.5): the paper
//! pinged 1M generated candidates and looked up reverse DNS. Our
//! responder holds the ground-truth active population and answers
//! probes deterministically, with the fault modes the paper itself
//! warns about:
//!
//! * **probe loss** — "we might get a number of false negatives due
//!   to … networks blocking our ping requests";
//! * **prefix echo** — "part of the positive responses … might have
//!   been generated automatically (e.g. replying to any ping request
//!   destined to a certain prefix, causing false positives)".
//!
//! Both are hash-deterministic in the probed address, so a repeated
//! probe gives a repeated answer (as a real firewall would), and
//! whole experiments are reproducible from the seed.

use std::sync::atomic::{AtomicU64, Ordering};

use eip_addr::set::SplitMix64;
use eip_addr::{AddressSet, Ip6, Prefix};

/// Fault-injection settings.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Probability that a probe to a genuinely active host goes
    /// unanswered.
    pub probe_loss: f64,
    /// Prefixes that answer *every* probe (false-positive echo).
    pub echo_prefixes: Vec<Prefix>,
    /// Seed for the deterministic per-address fault decisions.
    pub seed: u64,
}

/// The measurement oracle for one simulated network.
///
/// Probing is `&self` and thread-safe (the probe counter is atomic),
/// so one responder can serve every shard of a parallel evaluation —
/// see [`evaluate_scan`](crate::eval::evaluate_scan).
#[derive(Debug)]
pub struct Responder {
    active: AddressSet,
    rdns: AddressSet,
    faults: FaultConfig,
    probes: AtomicU64,
}

impl Clone for Responder {
    fn clone(&self) -> Self {
        Responder {
            active: self.active.clone(),
            rdns: self.rdns.clone(),
            faults: self.faults.clone(),
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

impl Responder {
    /// A perfect responder over a ground-truth population, with a
    /// fraction of hosts carrying reverse-DNS records (selected
    /// deterministically from `seed`).
    pub fn new(active: AddressSet, rdns_fraction: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let k = ((active.len() as f64) * rdns_fraction).round() as usize;
        let (rdns, _) = active.split_sample(k, &mut rng);
        Responder {
            active,
            rdns,
            faults: FaultConfig::default(),
            probes: AtomicU64::new(0),
        }
    }

    /// Adds fault injection.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The ground-truth active population.
    pub fn active(&self) -> &AddressSet {
        &self.active
    }

    /// Number of probes served so far.
    pub fn probes_sent(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// ICMPv6 echo: does this address answer a ping?
    pub fn ping(&self, ip: Ip6) -> bool {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if self.faults.echo_prefixes.iter().any(|p| p.contains(ip)) {
            return true;
        }
        if !self.active.contains(ip) {
            return false;
        }
        if self.faults.probe_loss > 0.0 {
            // Hash-deterministic loss: same address, same verdict.
            let mut h = SplitMix64::new(
                self.faults.seed ^ (ip.value() as u64) ^ ((ip.value() >> 64) as u64),
            );
            let u = h.next_u64() as f64 / u64::MAX as f64;
            if u < self.faults.probe_loss {
                return false;
            }
        }
        true
    }

    /// Reverse DNS: does this address have a (non-generated) PTR
    /// record? The paper "manually removed records that appeared
    /// dynamically generated"; our rDNS set contains only genuine
    /// records by construction.
    pub fn rdns(&self, ip: Ip6) -> bool {
        self.rdns.contains(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actives() -> AddressSet {
        (0..1000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | i))
            .collect()
    }

    #[test]
    fn perfect_responder_answers_exactly_actives() {
        let r = Responder::new(actives(), 0.5, 1);
        assert!(r.ping(Ip6((0x2001_0db8u128 << 96) | 5)));
        assert!(!r.ping(Ip6((0x2001_0db8u128 << 96) | 5000)));
        assert_eq!(r.probes_sent(), 2);
    }

    #[test]
    fn rdns_fraction_is_respected_and_subset() {
        let r = Responder::new(actives(), 0.3, 2);
        let hits = (0..1000u128)
            .filter(|&i| r.rdns(Ip6((0x2001_0db8u128 << 96) | i)))
            .count();
        assert!((hits as f64 - 300.0).abs() < 20.0, "{hits}");
        // rDNS implies active.
        for i in 0..1000u128 {
            let ip = Ip6((0x2001_0db8u128 << 96) | i);
            if r.rdns(ip) {
                assert!(r.active().contains(ip));
            }
        }
    }

    #[test]
    fn probe_loss_is_deterministic_and_roughly_calibrated() {
        let faults = FaultConfig {
            probe_loss: 0.2,
            echo_prefixes: vec![],
            seed: 3,
        };
        let r = Responder::new(actives(), 0.0, 1).with_faults(faults);
        let mut answered = 0;
        for i in 0..1000u128 {
            let ip = Ip6((0x2001_0db8u128 << 96) | i);
            let first = r.ping(ip);
            assert_eq!(first, r.ping(ip), "non-deterministic verdict for {ip}");
            if first {
                answered += 1;
            }
        }
        assert!((answered as f64 - 800.0).abs() < 40.0, "{answered}");
    }

    #[test]
    fn echo_prefix_answers_everything() {
        let faults = FaultConfig {
            probe_loss: 0.0,
            echo_prefixes: vec!["2001:db8:ffff::/48".parse().unwrap()],
            seed: 0,
        };
        let r = Responder::new(actives(), 0.0, 1).with_faults(faults);
        assert!(r.ping("2001:db8:ffff::1234".parse().unwrap()));
        assert!(!r.ping("2001:db8:fffe::1234".parse().unwrap()));
    }
}
