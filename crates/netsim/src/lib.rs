//! A simulated IPv6 Internet for the Entropy/IP reproduction.
//!
//! The paper trains and evaluates on 3.5 billion addresses from
//! proprietary sources (CDN logs, DNSDB, Rapid7 forward DNS,
//! large-scale traceroute, a BitTorrent crawl) and actively scans 1M
//! candidates per network with ICMPv6 and reverse DNS. None of that
//! is available here, so this crate builds the closest synthetic
//! equivalent (see DESIGN.md, "Substitutions"):
//!
//! * [`plan`] — an address-plan DSL: weighted *variants* of bit-field
//!   layouts (constants, weighted choices, uniform ranges, sequential
//!   pools, Modified EUI-64 IIDs, embedded IPv4 in hex or decimal).
//!   Each of the paper's structural observations (§5.2–5.4) maps to a
//!   plan construct.
//! * [`catalog`] — the 16 dataset families of the paper's Table 1
//!   (S1–S5, R1–R5, C1–C5, AS, AR, AC, AT), each parameterized to
//!   match the *published structural description* of that network,
//!   with populations scaled ~1:1000 for laptop-scale runs.
//! * [`responder`] — a membership oracle playing the role of the
//!   ICMPv6 ping + rDNS measurement: it knows the ground-truth active
//!   population and answers probes, with optional fault injection
//!   (probe loss, false-positive "respond to anything in my prefix"
//!   networks — the very caveats §5.5 lists).
//! * [`eval`] — the scanning-campaign bookkeeping of Tables 4–6:
//!   test-set hits, ping hits, rDNS hits, overall success rate, and
//!   newly discovered /64s.
//! * [`temporal`] — day-indexed client /64 pools for the §5.6
//!   one-day-vs-one-week prefix prediction experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod eval;
pub mod plan;
pub mod responder;
pub mod temporal;

pub use catalog::{dataset, Category, DatasetSpec, ALL_DATASETS};
pub use eval::{
    evaluate_scan, evaluate_scan_reference, evaluate_scan_sharded, population_adherence, Adherence,
    ScanOutcome,
};
pub use plan::{AddressPlan, FieldKind, PlanField, Variant};
pub use responder::{FaultConfig, Responder};
pub use temporal::TemporalPool;
