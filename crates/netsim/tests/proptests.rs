//! Property-based equivalence tests for the sort-join evaluation and
//! the sharded population synthesis: the fast paths must reproduce
//! their serial/hashing oracles exactly, at every worker count.

use eip_addr::{AddressSet, Ip6};
use eip_exec::Scheduler;
use eip_netsim::{
    evaluate_scan_reference, evaluate_scan_sharded, population_adherence, AddressPlan, FieldKind,
    PlanField, Responder,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A base address inside the documentation prefix with structured
/// /64 variety: `sub` picks the /64, `host` the IID.
fn addr(sub: u128, host: u128) -> Ip6 {
    Ip6((0x2001_0db8u128 << 96) | ((sub & 0xffff) << 64) | (host & 0xffff))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sort-join `evaluate_scan` ≡ the `HashSet` reference: same
    /// counters, field for field, on random populations, candidate
    /// mixes (hits, same-/64 misses, fresh /64s, duplicates) and
    /// worker counts.
    #[test]
    fn sort_join_scan_matches_hashset_reference(
        pop_seed in 0u128..1000,
        pop_size in 1usize..300,
        cand in prop::collection::vec((0u128..40, 0u128..400), 0..400),
        rdns_frac in 0.0f64..1.0,
        workers in 1usize..=8,
    ) {
        let population: AddressSet = (0..pop_size as u128)
            .map(|i| addr((i * 7 + pop_seed) % 30, i % 200))
            .collect();
        let mut rng = eip_addr::set::SplitMix64::new(pop_seed as u64);
        let (training, test) = population.split_sample(pop_size / 3, &mut rng);
        let responder = Responder::new(population.clone(), rdns_frac, pop_seed as u64);
        let candidates: Vec<Ip6> = cand.iter().map(|&(s, h)| addr(s, h)).collect();
        let oracle = evaluate_scan_reference(&candidates, &training, &test, &responder);
        let fast = evaluate_scan_sharded(
            &candidates,
            &training,
            &test,
            &responder,
            &Scheduler::new(workers),
        );
        prop_assert_eq!(fast.generated, oracle.generated);
        prop_assert_eq!(fast.test_hits, oracle.test_hits);
        prop_assert_eq!(fast.ping_hits, oracle.ping_hits);
        prop_assert_eq!(fast.rdns_hits, oracle.rdns_hits);
        prop_assert_eq!(fast.overall, oracle.overall);
        prop_assert_eq!(fast.new_slash64, oracle.new_slash64);
    }

    /// Merge-join `population_adherence` ≡ a naive hashing reference
    /// on random candidate batches, at every worker count.
    #[test]
    fn adherence_matches_hashing_reference(
        pop_size in 1usize..300,
        cand in prop::collection::vec((0u128..40, 0u128..400), 0..400),
        workers in 1usize..=8,
    ) {
        let population: AddressSet = (0..pop_size as u128)
            .map(|i| addr(i % 25, i * 3))
            .collect();
        let candidates: Vec<Ip6> = cand.iter().map(|&(s, h)| addr(s, h)).collect();
        let hits = candidates.iter().filter(|&&ip| population.contains(ip)).count();
        let pop64: std::collections::HashSet<Ip6> =
            population.iter().map(|ip| ip.slash64()).collect();
        let hits64 = candidates
            .iter()
            .filter(|ip| pop64.contains(&ip.slash64()))
            .count();
        let new64 = candidates
            .iter()
            .map(|ip| ip.slash64())
            .filter(|p| !pop64.contains(p))
            .collect::<std::collections::HashSet<Ip6>>()
            .len();
        let a = population_adherence(&candidates, &population, &Scheduler::new(workers));
        prop_assert_eq!(a.hits, hits);
        prop_assert_eq!(a.slash64_hits, hits64);
        prop_assert_eq!(a.new_slash64, new64);
    }

    /// Sharded population synthesis ≡ the serial oracle: for random
    /// plans (mixing dense sequential pools with sparse uniforms —
    /// i.e. duplicate-heavy and duplicate-light streams), sizes
    /// around the round boundaries, seeds, and worker counts, the
    /// generated [`AddressSet`] is byte-identical.
    #[test]
    fn sharded_synthesis_matches_serial_oracle(
        pool in 1u128..600,
        span in 0u128..2000,
        n in 0usize..1500,
        k0 in 0u64..50,
        seed in any::<u64>(),
        workers in 1usize..=8,
    ) {
        let plan = AddressPlan::single(
            "t",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(
                    48,
                    16,
                    FieldKind::Sequential { base: 0, step: 1, modulo: pool },
                ),
                PlanField::new(112, 16, FieldKind::Uniform { lo: 0, hi: span }),
            ],
        );
        let mut oracle_rng = StdRng::seed_from_u64(seed);
        let oracle = plan.generate_from(n, k0, &mut oracle_rng);
        let mut rng = StdRng::seed_from_u64(seed);
        let sharded = plan.generate_from_sharded(n, k0, &mut rng, &Scheduler::new(workers));
        prop_assert_eq!(sharded, oracle);
    }

    /// Keyed sharded synthesis ≡ the straight-line keyed serial loop
    /// on random plans: identical [`AddressSet`]s at every worker
    /// count and shard geometry, including the non-power-of-two ones
    /// the chunk-based engines never had to face.
    #[test]
    fn keyed_synthesis_matches_straight_line_loop(
        pool in 1u128..600,
        span in 0u128..2000,
        n in 0usize..1500,
        k0 in 0u64..50,
        seed in any::<u64>(),
        workers in 1usize..=8,
    ) {
        let plan = AddressPlan::single(
            "t",
            vec![
                PlanField::new(0, 32, FieldKind::Const(0x2001_0db8)),
                PlanField::new(
                    48,
                    16,
                    FieldKind::Sequential { base: 0, step: 1, modulo: pool },
                ),
                PlanField::new(112, 16, FieldKind::Uniform { lo: 0, hi: span }),
            ],
        );
        let oracle = plan.generate_keyed(n, k0, seed);
        let sharded = plan.generate_keyed_sharded(n, k0, seed, &Scheduler::new(workers));
        prop_assert_eq!(sharded, oracle);
    }
}
