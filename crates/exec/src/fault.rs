//! Deterministic fault injection for `Read`/`Write` streams.
//!
//! Chaos testing usually trades reproducibility for coverage: a test
//! that randomly tears reads finds real bugs, then cannot reproduce
//! them. This workspace already solved the same problem for sampling
//! — every hot-path draw is a pure function of a `(seed, stream,
//! index)` coordinate ([`crate::rng`]) — so fault injection rides the
//! identical discipline: a [`FaultPlan`] decides the fault (if any)
//! for I/O operation `index` purely from `(seed, stream, index)`.
//! Same seed → same failure sequence, byte for byte, at any worker
//! count, which is what lets the chaos suites assert *equality* (the
//! surviving output must match a fault-free oracle, and two runs must
//! log identical fault sequences) instead of mere survival.
//!
//! [`FaultyRead`] and [`FaultyWrite`] wrap any `Read`/`Write` and
//! consult the plan once per operation:
//!
//! * **Short reads/writes** — the inner call sees a truncated buffer
//!   (length drawn from the same coordinate), exercising every
//!   partial-progress loop.
//! * **`Interrupted` / `WouldBlock`** — transient errors; correct
//!   callers retry the former and treat the latter as a deadline
//!   (socket timeouts surface as `WouldBlock`/`TimedOut`).
//! * **Injected delays** — a short sleep before the operation, for
//!   slow-peer and timeout testing.
//! * **Hard failure at the Nth operation** — sticky from `fail_at`
//!   on; a write op at the trigger index first writes *half* its
//!   buffer (a torn write, as a crash mid-write leaves on disk).
//!
//! Every injected fault is appended to a shared [`FaultLog`], so a
//! test can move the wrapper into a consumer and still assert the
//! exact fault sequence afterwards.
//!
//! ```
//! use eip_exec::fault::{Fault, FaultPlan};
//! use std::io::Read;
//!
//! let plan = FaultPlan::new(42, 0).with_short_reads(500).with_interrupts(200);
//! let data = vec![7u8; 4096];
//! let mut out = Vec::new();
//! let mut reader = plan.wrap_read(&data[..]);
//! let log = reader.log();
//! // `read_to_end` retries Interrupted, so only recoverable faults
//! // fire here — and the bytes always survive intact.
//! reader.read_to_end(&mut out).unwrap();
//! assert_eq!(out, data);
//! assert!(!log.snapshot().is_empty(), "plan injected faults");
//! // Replay: the same plan logs the identical fault sequence.
//! let mut again = plan.wrap_read(&data[..]);
//! let log2 = again.log();
//! again.read_to_end(&mut Vec::new()).unwrap();
//! assert_eq!(log.snapshot(), log2.snapshot());
//! ```

use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

use rand::RngCore;

use crate::rng::KeyedRng;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The inner call saw a truncated buffer (partial progress).
    Short,
    /// The operation returned [`std::io::ErrorKind::Interrupted`].
    Interrupted,
    /// The operation returned [`std::io::ErrorKind::WouldBlock`].
    WouldBlock,
    /// The operation was delayed by the plan's `delay_micros`.
    Delay,
    /// Sticky hard failure (from `fail_at` on); on a write, the
    /// trigger operation first tears the buffer in half.
    Hard,
}

/// A record of the injected faults, shared between the wrapper (which
/// appends) and the test (which snapshots after the consumer is done
/// with the wrapper). Cloning shares the same underlying log.
#[derive(Clone, Debug, Default)]
pub struct FaultLog(Arc<Mutex<Vec<(u64, Fault)>>>);

impl FaultLog {
    /// The `(operation index, fault)` pairs injected so far.
    pub fn snapshot(&self) -> Vec<(u64, Fault)> {
        self.0.lock().expect("fault log lock").clone()
    }

    /// Number of faults injected so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("fault log lock").len()
    }

    /// True when no fault has fired yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, index: u64, fault: Fault) {
        self.0.lock().expect("fault log lock").push((index, fault));
    }
}

/// A deterministic fault schedule keyed by `(seed, stream, index)`.
///
/// Rates are per-mille (0–1000) of I/O operations; the decision for
/// operation `index` is a pure function of the coordinate, so wrapping
/// the same stream twice with the same plan injects the identical
/// sequence. Rates are checked in declaration order against one draw,
/// so their sum must stay ≤ 1000 (asserted by the builders).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    stream: u64,
    short_pm: u16,
    interrupt_pm: u16,
    would_block_pm: u16,
    delay_pm: u16,
    delay_micros: u64,
    fail_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing until rates are added. `stream`
    /// separates wrappers sharing one seed (reader vs writer, worker
    /// 3 vs worker 4) exactly like [`crate::rng::stream_key`] streams.
    pub fn new(seed: u64, stream: u64) -> Self {
        FaultPlan {
            seed,
            stream,
            short_pm: 0,
            interrupt_pm: 0,
            would_block_pm: 0,
            delay_pm: 0,
            delay_micros: 0,
            fail_at: None,
        }
    }

    /// Injects short reads/writes on `per_mille`‰ of operations.
    pub fn with_short_reads(mut self, per_mille: u16) -> Self {
        self.short_pm = per_mille;
        self.check_rates()
    }

    /// Injects `Interrupted` on `per_mille`‰ of operations.
    pub fn with_interrupts(mut self, per_mille: u16) -> Self {
        self.interrupt_pm = per_mille;
        self.check_rates()
    }

    /// Injects `WouldBlock` on `per_mille`‰ of operations.
    pub fn with_would_block(mut self, per_mille: u16) -> Self {
        self.would_block_pm = per_mille;
        self.check_rates()
    }

    /// Sleeps `micros` before `per_mille`‰ of operations.
    pub fn with_delays(mut self, per_mille: u16, micros: u64) -> Self {
        self.delay_pm = per_mille;
        self.delay_micros = micros;
        self.check_rates()
    }

    /// Hard-fails every operation from index `op` on (0-based); the
    /// triggering *write* first lands half its buffer — a torn write.
    pub fn failing_at(mut self, op: u64) -> Self {
        self.fail_at = Some(op);
        self
    }

    fn check_rates(self) -> Self {
        let total = u32::from(self.short_pm)
            + u32::from(self.interrupt_pm)
            + u32::from(self.would_block_pm)
            + u32::from(self.delay_pm);
        assert!(total <= 1000, "fault rates sum to {total}‰ (> 1000)");
        self
    }

    /// The fault (if any) for operation `index` — pure in
    /// `(seed, stream, index)`.
    pub fn decide(&self, index: u64) -> Option<Fault> {
        if self.fail_at.is_some_and(|n| index >= n) {
            return Some(Fault::Hard);
        }
        let draw = (KeyedRng::new(self.seed, self.stream, index).next_u64() % 1000) as u16;
        let mut edge = self.short_pm;
        if draw < edge {
            return Some(Fault::Short);
        }
        edge += self.interrupt_pm;
        if draw < edge {
            return Some(Fault::Interrupted);
        }
        edge += self.would_block_pm;
        if draw < edge {
            return Some(Fault::WouldBlock);
        }
        edge += self.delay_pm;
        if draw < edge {
            return Some(Fault::Delay);
        }
        None
    }

    /// The truncated length a `Short` fault leaves of a `len`-byte
    /// buffer: 1..=len, drawn from the same coordinate's second word.
    fn short_len(&self, index: u64, len: usize) -> usize {
        if len <= 1 {
            return len;
        }
        let mut rng = KeyedRng::new(self.seed, self.stream, index);
        rng.next_u64(); // word 0 decided the fault kind
        1 + (rng.next_u64() as usize) % len
    }

    /// Wraps a reader with this plan.
    pub fn wrap_read<R: Read>(&self, inner: R) -> FaultyRead<R> {
        FaultyRead {
            inner,
            plan: *self,
            op: 0,
            log: FaultLog::default(),
        }
    }

    /// Wraps a writer with this plan.
    pub fn wrap_write<W: Write>(&self, inner: W) -> FaultyWrite<W> {
        FaultyWrite {
            inner,
            plan: *self,
            op: 0,
            log: FaultLog::default(),
        }
    }
}

fn interrupted() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::Interrupted, "injected: interrupted")
}

fn would_block() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::WouldBlock, "injected: would block")
}

fn hard(op: u64) -> std::io::Error {
    std::io::Error::other(format!("injected: hard fault at operation {op}"))
}

/// A `Read` that injects the plan's faults; see the [module
/// docs](self).
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    plan: FaultPlan,
    op: u64,
    log: FaultLog,
}

impl<R> FaultyRead<R> {
    /// A handle to the shared fault log (clone it before moving the
    /// wrapper into a consumer).
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// Operations attempted so far (faulted or not).
    pub fn operations(&self) -> u64 {
        self.op
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let index = self.op;
        self.op += 1;
        match self.plan.decide(index) {
            None => self.inner.read(buf),
            Some(Fault::Short) => {
                self.log.push(index, Fault::Short);
                let cap = self.plan.short_len(index, buf.len());
                self.inner.read(&mut buf[..cap])
            }
            Some(Fault::Interrupted) => {
                self.log.push(index, Fault::Interrupted);
                Err(interrupted())
            }
            Some(Fault::WouldBlock) => {
                self.log.push(index, Fault::WouldBlock);
                Err(would_block())
            }
            Some(Fault::Delay) => {
                self.log.push(index, Fault::Delay);
                std::thread::sleep(std::time::Duration::from_micros(self.plan.delay_micros));
                self.inner.read(buf)
            }
            Some(Fault::Hard) => {
                self.log.push(index, Fault::Hard);
                Err(hard(index))
            }
        }
    }
}

/// A `Write` that injects the plan's faults; the `fail_at` trigger
/// tears the buffer (half lands, then the error), and every later
/// operation — including `flush` — stays failed, like a device that
/// died mid-write. See the [module docs](self).
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
    op: u64,
    log: FaultLog,
}

impl<W> FaultyWrite<W> {
    /// A handle to the shared fault log.
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// Operations attempted so far (faulted or not).
    pub fn operations(&self) -> u64 {
        self.op
    }

    /// Unwraps the inner writer (tests inspect what actually landed).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let index = self.op;
        self.op += 1;
        match self.plan.decide(index) {
            None => self.inner.write(buf),
            Some(Fault::Short) => {
                self.log.push(index, Fault::Short);
                let cap = self.plan.short_len(index, buf.len());
                self.inner.write(&buf[..cap])
            }
            Some(Fault::Interrupted) => {
                self.log.push(index, Fault::Interrupted);
                Err(interrupted())
            }
            Some(Fault::WouldBlock) => {
                self.log.push(index, Fault::WouldBlock);
                Err(would_block())
            }
            Some(Fault::Delay) => {
                self.log.push(index, Fault::Delay);
                std::thread::sleep(std::time::Duration::from_micros(self.plan.delay_micros));
                self.inner.write(buf)
            }
            Some(Fault::Hard) => {
                self.log.push(index, Fault::Hard);
                // The trigger op tears the write: half the bytes land
                // before the "crash". Later ops land nothing.
                if self.plan.fail_at == Some(index) && !buf.is_empty() {
                    let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                    let _ = self.inner.flush();
                }
                Err(hard(index))
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let index = self.op;
        if self.plan.fail_at.is_some_and(|n| index >= n) {
            self.op += 1;
            self.log.push(index, Fault::Hard);
            return Err(hard(index));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_is_transparent() {
        let plan = FaultPlan::new(1, 0);
        let data: Vec<u8> = (0..255u8).collect();
        let mut out = Vec::new();
        plan.wrap_read(&data[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        let mut w = plan.wrap_write(Vec::new());
        w.write_all(&data).unwrap();
        w.flush().unwrap();
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn decisions_are_pure_in_the_coordinate() {
        let plan = FaultPlan::new(9, 3)
            .with_short_reads(300)
            .with_interrupts(100)
            .with_would_block(50);
        for index in 0..4096u64 {
            assert_eq!(plan.decide(index), plan.decide(index), "index {index}");
        }
        // Distinct streams schedule differently somewhere.
        let other = FaultPlan::new(9, 4)
            .with_short_reads(300)
            .with_interrupts(100)
            .with_would_block(50);
        assert!(
            (0..4096u64).any(|i| plan.decide(i) != other.decide(i)),
            "streams alias"
        );
    }

    #[test]
    fn rates_shape_the_schedule() {
        let plan = FaultPlan::new(7, 0).with_short_reads(250);
        let shorts = (0..100_000u64)
            .filter(|&i| plan.decide(i) == Some(Fault::Short))
            .count();
        assert!(
            (23_000..=27_000).contains(&shorts),
            "250‰ drew {shorts} shorts in 100k ops"
        );
    }

    #[test]
    #[should_panic(expected = "fault rates sum")]
    fn rates_over_1000_panic() {
        let _ = FaultPlan::new(0, 0)
            .with_short_reads(900)
            .with_interrupts(200);
    }

    #[test]
    fn recoverable_faults_never_lose_bytes() {
        let plan = FaultPlan::new(5, 1)
            .with_short_reads(400)
            .with_interrupts(300);
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut out = Vec::new();
        let mut r = plan.wrap_read(&data[..]);
        let log = r.log();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(log.len() > 10, "only {} faults injected", log.len());
        // Same plan, same stream → identical fault sequence.
        let mut r2 = plan.wrap_read(&data[..]);
        let log2 = r2.log();
        r2.read_to_end(&mut Vec::new()).unwrap();
        assert_eq!(log.snapshot(), log2.snapshot());
    }

    #[test]
    fn short_writes_make_progress_under_write_all() {
        let plan = FaultPlan::new(6, 2)
            .with_short_reads(500)
            .with_interrupts(200);
        let data = vec![0xabu8; 8192];
        let mut w = plan.wrap_write(Vec::new());
        w.write_all(&data).unwrap();
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn hard_fault_is_sticky_and_tears_the_write() {
        let plan = FaultPlan::new(0, 0).failing_at(1);
        let mut w = plan.wrap_write(Vec::new());
        assert_eq!(w.write(&[1, 2, 3, 4]).unwrap(), 4);
        // Op 1 is the trigger: half of this buffer lands, then error.
        assert!(w.write(&[5, 6, 7, 8]).is_err());
        assert!(w.write(&[9]).is_err(), "hard fault must stay failed");
        assert!(w.flush().is_err());
        assert_eq!(w.into_inner(), vec![1, 2, 3, 4, 5, 6], "torn: half landed");

        let plan = FaultPlan::new(0, 0).failing_at(2);
        let mut r = plan.wrap_read(&b"abcdefgh"[..]);
        let mut buf = [0u8; 3];
        assert!(r.read(&mut buf).is_ok());
        assert!(r.read(&mut buf).is_ok());
        let err = r.read(&mut buf).unwrap_err();
        assert!(err.to_string().contains("operation 2"), "{err}");
        assert!(r.read(&mut buf).is_err());
    }

    #[test]
    fn would_block_surfaces_as_timeout_kind() {
        let plan = FaultPlan::new(3, 0).with_would_block(1000);
        let mut r = plan.wrap_read(&b"xyz"[..]);
        let err = r.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn delays_pass_the_bytes_through() {
        let plan = FaultPlan::new(4, 0).with_delays(1000, 1);
        let mut out = Vec::new();
        let mut r = plan.wrap_read(&b"slow"[..]);
        let log = r.log();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"slow");
        assert!(log.snapshot().iter().all(|&(_, f)| f == Fault::Delay));
    }
}
