//! # eip_exec — deterministic chunked execution
//!
//! The shared execution core behind every parallel hot path of the
//! Entropy/IP workspace: sharded profiling (`NybbleCounts` merges),
//! intra-segment mining (per-shard value histograms merged before
//! thresholding), batched candidate generation, and chunked-source
//! streaming ingestion ([`Scheduler::par_map_feed`]: a sequential
//! producer fanned out in worker-sized batches with bounded
//! lookahead, results consumed in production order).
//!
//! The design contract is **determinism at any worker count**:
//!
//! * work is split into *stable, contiguous* chunks ([`shard_ranges`])
//!   whose order never depends on thread scheduling;
//! * mapped results are joined **in chunk order**, so order-sensitive
//!   consumers observe the serial sequence;
//! * reductions fold shard results left-to-right in shard order, so
//!   any *associative* reduction (all of ours merge exact integer
//!   counts) produces the same value at every worker count.
//!
//! Threads come from [`std::thread::scope`] by default — no global
//! state, no unsafe code. A [`Scheduler`] with one worker runs
//! everything inline on the calling thread, which keeps the serial
//! paths allocation- and thread-free and makes them the reference
//! implementations the sharded paths are verified against (see the
//! shard-equivalence proptests in `entropy-ip`). For fleet-scale
//! workloads — many concurrent pipeline jobs on one box — a scheduler
//! can instead be attached to a shared work-stealing worker pool
//! ([`pool::StealPool`], [`Scheduler::shared`]): the `_shared`
//! primitives then submit their worker-keyed shards as `'static`
//! tasks to the pool, so an idle pipeline donates its workers to its
//! neighbors, while the shard geometry (and therefore every result)
//! stays exactly what the scoped path produces.
//!
//! The worker count is a *geometry* parameter, not a thread count:
//! it fixes the shard decomposition (and therefore the output), while
//! the number of OS threads actually spawned is clamped to the host's
//! [`available_parallelism`](std::thread::available_parallelism).
//! Oversubscribing a small box — `--jobs 4` in a one-CPU container —
//! therefore costs nothing: the four shards run inline, back to back,
//! producing bit-identical results to the same four shards fanned out
//! over four real cores. [`Scheduler::pinned`] overrides the clamp so
//! tests can exercise the spawning paths on any host.
//!
//! ```
//! use eip_exec::Scheduler;
//!
//! let exec = Scheduler::new(4);
//! // Order-preserving map: same output as the serial iterator.
//! let squares = exec.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Shard-count-then-merge: sum 0..100 in contiguous shards.
//! let total = exec
//!     .par_map_reduce(
//!         100,
//!         |range| range.map(|i| i as u64).sum::<u64>(),
//!         |acc, part| *acc += part,
//!     )
//!     .unwrap();
//! assert_eq!(total, 4950);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;
use std::thread;

pub mod fault;
pub mod pool;
pub mod rng;

use pool::StealPool;

/// Splits `0..len` into at most `shards` stable, contiguous,
/// near-equal ranges (the first `len % shards` ranges are one element
/// longer). Returns fewer ranges when `len < shards` — never an empty
/// range — and an empty vector when `len == 0`.
///
/// The boundaries are a pure function of `(len, shards)`, which is
/// what makes sharded work repeatable run to run.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A deterministic chunked scheduler: a worker budget (the shard
/// geometry, which fixes the output) plus the fan-out/join primitives
/// the hot paths share. See the [module docs](self) for the
/// determinism contract and for how OS threads relate to workers.
///
/// Three orthogonal knobs, only the first of which affects output:
///
/// * **workers** — the shard geometry. Fixes the decomposition and
///   therefore every result.
/// * **threads** — the scoped-spawn budget ([`Scheduler::new`] clamps
///   it to `available_parallelism`; [`Scheduler::pinned`] overrides).
///   Pure speed.
/// * **pool** — an optional shared [`StealPool`]
///   ([`Scheduler::shared`]). When attached, the `_shared` primitives
///   submit their shards to the pool instead of scoped threads, and
///   the scoped budget drops to 1 so a fleet of concurrent jobs never
///   oversubscribes the box. Pure speed: the pool's size is invisible
///   in the output.
#[derive(Clone, Debug)]
pub struct Scheduler {
    workers: usize,
    threads: usize,
    pool: Option<Arc<StealPool>>,
}

impl PartialEq for Scheduler {
    /// Equality is over the *deterministic* configuration — the shard
    /// geometry and thread budget. The attached pool is an execution
    /// venue, not a parameter of the output, so two schedulers that
    /// differ only in pool attachment (or pool identity) compare
    /// equal, exactly as their results do.
    fn eq(&self, other: &Self) -> bool {
        self.workers == other.workers && self.threads == other.threads
    }
}

impl Eq for Scheduler {}

impl Default for Scheduler {
    /// A serial scheduler (one worker).
    fn default() -> Self {
        Scheduler::new(1)
    }
}

/// The host's usable CPU count (respects cgroup quotas and CPU
/// affinity masks); 1 if it cannot be determined.
fn hardware_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

impl Scheduler {
    /// A scheduler with the given worker budget (clamped to ≥ 1).
    /// Spawns at most `min(workers, available_parallelism)` OS
    /// threads — the worker count only fixes the shard geometry, so
    /// requesting more workers than the host has CPUs changes nothing
    /// but how the same shards are interleaved.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Scheduler {
            workers,
            threads: workers.min(hardware_threads()),
            pool: None,
        }
    }

    /// A scheduler with an explicit OS-thread budget, bypassing the
    /// [`available_parallelism`](std::thread::available_parallelism)
    /// clamp of [`Scheduler::new`]. For tests and benchmarks that
    /// must exercise the spawning paths regardless of host size;
    /// production call sites should use `new`.
    pub fn pinned(workers: usize, threads: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            threads: threads.max(1),
            pool: None,
        }
    }

    /// A scheduler with the given worker budget (shard geometry)
    /// attached to a shared work-stealing pool. The scoped thread
    /// budget is pinned to 1: non-pool primitives run inline on the
    /// calling job thread (concurrency across jobs comes from the
    /// jobs themselves), while the `_shared` primitives submit their
    /// shards to the pool — so N concurrent jobs never spawn
    /// N × `threads` scoped workers on top of the pool. Composes with
    /// the clamp contract of [`Scheduler::new`]: `workers` still
    /// fixes the output, and neither the pool's size nor its
    /// scheduling order can change any result.
    pub fn shared(workers: usize, pool: Arc<StealPool>) -> Self {
        Scheduler {
            workers: workers.max(1),
            threads: 1,
            pool: Some(pool),
        }
    }

    /// Whether a shared pool is attached (the `_shared` primitives
    /// fall back to the scoped/inline path when it is not).
    #[inline]
    pub fn has_pool(&self) -> bool {
        self.pool.is_some()
    }

    /// The attached shared pool, if any.
    #[inline]
    pub fn pool(&self) -> Option<&Arc<StealPool>> {
        self.pool.as_ref()
    }

    /// The worker budget (the shard geometry).
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The OS-thread budget actually used when fanning out.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this scheduler was requested with a single worker —
    /// the signal the pipeline stages use to select their serial
    /// reference implementations over the sharded engines. (Distinct
    /// from [`threads`](Scheduler::threads) `== 1`, which only means
    /// the shards of a multi-worker scheduler happen to run inline.)
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// The stable shard decomposition this scheduler uses for `len`
    /// work items (one shard per worker, fewer for tiny inputs).
    pub fn shards(&self, len: usize) -> Vec<Range<usize>> {
        shard_ranges(len, self.workers)
    }

    /// Maps `f` over `0..len`, returning results in index order.
    /// Indices are fanned out in contiguous chunks, one per OS
    /// thread; with one thread the loop runs inline. (The chunking
    /// here is pure load distribution — each index is mapped
    /// independently and results land in index order — so this uses
    /// the thread budget, not the worker-shard geometry.)
    pub fn par_map_indexed<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }
        let ranges = shard_ranges(len, self.threads);
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(len, || None);
        let f = &f;
        thread::scope(|s| {
            let mut rest = out.as_mut_slice();
            for range in &ranges {
                let (slots, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let start = range.start;
                s.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(start + j));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("shard filled"))
            .collect()
    }

    /// Maps `f` over a slice, returning results in input order. The
    /// parallel equivalent of `items.iter().map(f).collect()`.
    pub fn par_map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Maps `f` over an owned vector, *consuming* the items, and
    /// returns results in input order — the parallel equivalent of
    /// `items.into_iter().map(f).collect()`. Use this when the mapped
    /// values are expensive to clone (e.g. a merged histogram handed
    /// to a consuming stage).
    pub fn par_map_owned<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.into_iter().map(&f).collect();
        }
        let ranges = shard_ranges(items.len(), self.threads);
        // Carve the vector into one owned chunk per OS thread
        // (splitting from the tail avoids any element shifting), then
        // map each chunk on its own thread and flatten in chunk order.
        let mut tail = items;
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(ranges.len());
        for range in ranges.iter().skip(1).rev() {
            chunks.push(tail.split_off(range.start));
        }
        chunks.push(tail);
        chunks.reverse();
        let f = &f;
        let mut results: Vec<Option<Vec<T>>> = Vec::new();
        results.resize_with(chunks.len(), || None);
        thread::scope(|s| {
            for (slot, chunk) in results.iter_mut().zip(chunks) {
                s.spawn(move || *slot = Some(chunk.into_iter().map(f).collect()));
            }
        });
        results
            .into_iter()
            .flat_map(|v| v.expect("chunk mapped"))
            .collect()
    }

    /// Sorts a vector by sorting one contiguous run per OS thread,
    /// then merging adjacent sorted runs bottom-up (taking from the
    /// left run on ties). Like
    /// [`sort_unstable`](slice::sort_unstable), the relative order of
    /// *equal* elements is unspecified — so the result is guaranteed
    /// identical to `sort_unstable`, and independent of the worker
    /// and thread counts, for types whose equal elements are
    /// indistinguishable (all the key types this workspace sorts:
    /// `u128`, `Ip6`, lexicographic tuples of them). With one thread
    /// this is plain `sort_unstable`.
    ///
    /// The sorted-key hot paths (candidate evaluation, sharded
    /// population synthesis) sort a million `u128`-keyed items per
    /// run; `Copy` keeps the merge a pair of cursor walks.
    pub fn par_sort_unstable<T>(&self, items: &mut Vec<T>)
    where
        T: Ord + Send + Copy,
    {
        if self.threads == 1 || items.len() <= 1 {
            items.sort_unstable();
            return;
        }
        let ranges = shard_ranges(items.len(), self.threads);
        thread::scope(|s| {
            let mut rest = items.as_mut_slice();
            for range in &ranges {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                s.spawn(move || chunk.sort_unstable());
            }
        });
        // Bottom-up merge of the contiguous sorted runs, ping-ponging
        // through one scratch buffer.
        let mut runs: Vec<(usize, usize)> = ranges.iter().map(|r| (r.start, r.end)).collect();
        let mut scratch: Vec<T> = Vec::with_capacity(items.len());
        while runs.len() > 1 {
            scratch.clear();
            let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
            for pair in runs.chunks(2) {
                let start = scratch.len();
                if let [a, b] = *pair {
                    let (mut i, mut j) = (a.0, b.0);
                    while i < a.1 && j < b.1 {
                        if items[j] < items[i] {
                            scratch.push(items[j]);
                            j += 1;
                        } else {
                            scratch.push(items[i]);
                            i += 1;
                        }
                    }
                    scratch.extend_from_slice(&items[i..a.1]);
                    scratch.extend_from_slice(&items[j..b.1]);
                } else {
                    scratch.extend_from_slice(&items[pair[0].0..pair[0].1]);
                }
                next_runs.push((start, scratch.len()));
            }
            std::mem::swap(items, &mut scratch);
            runs = next_runs;
        }
    }

    /// Feeds a *sequential* source through parallel mapping with
    /// bounded lookahead: repeatedly pulls up to
    /// [`workers`](Scheduler::workers) items from `produce`, maps the
    /// batch on the scheduler
    /// ([`par_map_owned`](Scheduler::par_map_owned)), and hands each
    /// result to
    /// `consume` **in production order**. At most one batch of items
    /// (plus its mapped results) is alive at a time, so memory stays
    /// O(item size × workers) no matter how long the source runs —
    /// this is the chunked-source contract the streaming ingestion
    /// engine builds on.
    ///
    /// `produce` returns `Ok(Some(item))` to feed one more item,
    /// `Ok(None)` at end of source; an `Err` from `produce` or
    /// `consume` aborts the feed immediately and is returned.
    /// Determinism: batch boundaries are a pure function of the
    /// worker budget and the item sequence, results are consumed in
    /// item order, and `map` runs per item — so any fold `consume`
    /// performs observes the exact serial sequence at every worker
    /// and thread count.
    pub fn par_map_feed<I, T, E, P, M, C>(
        &self,
        mut produce: P,
        map: M,
        mut consume: C,
    ) -> Result<(), E>
    where
        I: Send,
        T: Send,
        P: FnMut() -> Result<Option<I>, E>,
        M: Fn(I) -> T + Sync,
        C: FnMut(T) -> Result<(), E>,
    {
        loop {
            let mut batch: Vec<I> = Vec::with_capacity(self.workers);
            let mut done = false;
            while batch.len() < self.workers {
                match produce()? {
                    Some(item) => batch.push(item),
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            if batch.is_empty() {
                return Ok(());
            }
            for out in self.par_map_owned(batch, &map) {
                consume(out)?;
            }
            if done {
                return Ok(());
            }
        }
    }

    /// Shard-count-then-merge: splits `0..len` into this scheduler's
    /// stable shards, maps every shard with `map`, and folds the
    /// shard results **in shard order** with `reduce`. Returns `None`
    /// for empty input.
    ///
    /// The fold order is fixed, so the result is independent of the
    /// worker count whenever `reduce` is associative — which holds
    /// exactly for the count-merging reductions this workspace uses
    /// (`eip_stats`' `Histogram::merge` / `NybbleCounts::merge`).
    ///
    /// The shard decomposition always follows the *worker* budget —
    /// `map` sees exactly the same ranges at any thread count — while
    /// the shards are executed on at most
    /// [`threads`](Scheduler::threads) OS threads (inline when that
    /// is 1).
    pub fn par_map_reduce<T, M, R>(&self, len: usize, map: M, mut reduce: R) -> Option<T>
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: FnMut(&mut T, T),
    {
        let parts = if self.threads == 1 {
            self.shards(len).into_iter().map(&map).collect()
        } else {
            let ranges = self.shards(len);
            self.par_map(&ranges, |r| map(r.clone()))
        };
        let mut parts = parts.into_iter();
        let mut acc = parts.next()?;
        for part in parts {
            reduce(&mut acc, part);
        }
        Some(acc)
    }

    /// [`Scheduler::par_map_reduce`] for schedulers attached to a
    /// shared [`StealPool`]: the same worker-keyed shard
    /// decomposition, but each shard is submitted to the pool as a
    /// `'static` task (hence the `Send + 'static` bounds — callers
    /// capture their inputs behind `Arc`s) and the shard results are
    /// folded **in shard order** on the calling thread. Without an
    /// attached pool this *is* `par_map_reduce`: same closure, same
    /// shards, same fold — so call sites can use this form
    /// unconditionally and stay byte-identical either way. A
    /// single-shard decomposition runs inline in both cases.
    pub fn par_map_reduce_shared<T, M, R>(&self, len: usize, map: M, mut reduce: R) -> Option<T>
    where
        T: Send + 'static,
        M: Fn(Range<usize>) -> T + Send + Sync + 'static,
        R: FnMut(&mut T, T),
    {
        let Some(pool) = self.pool.as_ref() else {
            return self.par_map_reduce(len, map, reduce);
        };
        if len == 0 {
            return None;
        }
        let ranges = self.shards(len);
        if ranges.len() == 1 {
            return Some(map(ranges.into_iter().next().expect("one shard")));
        }
        let map = Arc::new(map);
        let tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>> = ranges
            .into_iter()
            .map(|range| {
                let map = Arc::clone(&map);
                Box::new(move || map(range)) as Box<dyn FnOnce() -> T + Send + 'static>
            })
            .collect();
        let mut parts = pool.run_tasks(tasks).into_iter();
        let mut acc = parts.next()?;
        for part in parts {
            reduce(&mut acc, part);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for shards in 1..=9 {
                let ranges = shard_ranges(len, shards);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= shards);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                // Near-equal sizes: max - min <= 1, none empty.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                assert!(sizes.iter().all(|&s| s > 0));
                assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
            }
        }
    }

    #[test]
    fn shard_ranges_are_stable() {
        assert_eq!(shard_ranges(10, 3), shard_ranges(10, 3));
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
    }

    #[test]
    fn par_map_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in 1..=8 {
            let exec = Scheduler::new(workers);
            assert_eq!(exec.par_map(&items, |&x| x * 3 + 1), expect);
            let indexed = exec.par_map_indexed(items.len(), |i| items[i] * 3 + 1);
            assert_eq!(indexed, expect);
        }
    }

    #[test]
    fn par_map_owned_consumes_in_order() {
        // Non-Clone payloads prove items are moved, not copied.
        struct NoClone(u64);
        let expect: Vec<u64> = (0..101).map(|x| x * 2).collect();
        for workers in 1..=8 {
            let items: Vec<NoClone> = (0..101).map(NoClone).collect();
            let out = Scheduler::new(workers).par_map_owned(items, |i| i.0 * 2);
            assert_eq!(out, expect, "{workers} workers");
        }
        assert!(Scheduler::new(3)
            .par_map_owned(Vec::<u8>::new(), |x| x)
            .is_empty());
    }

    #[test]
    fn par_map_reduce_is_worker_count_independent() {
        let serial = Scheduler::new(1)
            .par_map_reduce(1000, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| *a += b)
            .unwrap();
        for workers in 2..=8 {
            let parallel = Scheduler::new(workers)
                .par_map_reduce(1000, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| *a += b)
                .unwrap();
            assert_eq!(parallel, serial);
        }
    }

    #[test]
    fn par_sort_matches_sort_unstable() {
        // Pseudo-random, duplicate-heavy input at sizes around shard
        // boundaries.
        for len in [0usize, 1, 2, 3, 7, 64, 1000, 4097] {
            let mut expect: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % 97)
                .collect();
            expect.sort_unstable();
            for workers in 1..=8 {
                let mut v: Vec<u64> = (0..len as u64)
                    .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % 97)
                    .collect();
                Scheduler::new(workers).par_sort_unstable(&mut v);
                assert_eq!(v, expect, "len {len}, {workers} workers");
            }
        }
    }

    #[test]
    fn par_map_feed_consumes_in_order_at_any_worker_count() {
        for workers in 1..=8 {
            let mut next = 0u64;
            let mut seen: Vec<u64> = Vec::new();
            Scheduler::new(workers)
                .par_map_feed(
                    || {
                        next += 1;
                        Ok::<_, ()>(if next <= 23 { Some(next) } else { None })
                    },
                    |x| x * 10,
                    |out| {
                        seen.push(out);
                        Ok(())
                    },
                )
                .unwrap();
            let expect: Vec<u64> = (1..=23).map(|x| x * 10).collect();
            assert_eq!(seen, expect, "{workers} workers");
        }
    }

    #[test]
    fn par_map_feed_bounds_lookahead_and_propagates_errors() {
        // Producer error surfaces immediately.
        let err: Result<(), &str> =
            Scheduler::new(4).par_map_feed(|| Err::<Option<u8>, _>("boom"), |x| x, |_| Ok(()));
        assert_eq!(err, Err("boom"));
        // Consumer error aborts mid-feed; the producer is never asked
        // for more than one extra batch of lookahead.
        let mut produced = 0u32;
        let err: Result<(), &str> = Scheduler::new(2).par_map_feed(
            || {
                produced += 1;
                Ok(Some(produced))
            },
            |x| x,
            |x| if x >= 2 { Err("stop") } else { Ok(()) },
        );
        assert_eq!(err, Err("stop"));
        assert!(produced <= 4, "unbounded lookahead: produced {produced}");
        // Empty source is fine.
        let ok: Result<(), ()> =
            Scheduler::new(3).par_map_feed(|| Ok(None::<u8>), |x| x, |_| panic!("no items"));
        assert_eq!(ok, Ok(()));
    }

    #[test]
    fn empty_inputs() {
        let exec = Scheduler::new(4);
        assert!(exec.par_map(&[] as &[u8], |_| 0u8).is_empty());
        assert!(exec.par_map_indexed(0, |i| i).is_empty());
        assert_eq!(exec.par_map_reduce(0, |_| 0u64, |a, b| *a += b), None);
    }

    #[test]
    fn worker_budget_clamps_to_one() {
        assert_eq!(Scheduler::new(0).workers(), 1);
        assert!(Scheduler::new(0).is_serial());
        assert!(!Scheduler::new(2).is_serial());
        assert_eq!(Scheduler::default(), Scheduler::new(1));
    }

    #[test]
    fn thread_budget_clamps_to_hardware_but_keeps_geometry() {
        let exec = Scheduler::new(64);
        assert_eq!(exec.workers(), 64);
        assert!(exec.threads() <= 64);
        assert!(exec.threads() >= 1);
        // The shard geometry ignores the thread clamp entirely.
        assert_eq!(exec.shards(1024).len(), 64);
        assert_eq!(Scheduler::pinned(4, 9).threads(), 9);
    }

    #[test]
    fn pinned_threads_match_inline_results() {
        // Force real spawning (even on a one-CPU host) at thread
        // counts below, equal to, and above the worker count; every
        // primitive must match its inline result exactly.
        let items: Vec<u64> = (0..1013).collect();
        let expect_map: Vec<u64> = items.iter().map(|&x| x ^ 0x5a).collect();
        let mut expect_sorted: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) % 251).collect();
        expect_sorted.sort_unstable();
        let expect_reduce = Scheduler::new(4)
            .par_map_reduce(1013, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| *a += b)
            .unwrap();
        for threads in [2usize, 4, 7] {
            let exec = Scheduler::pinned(4, threads);
            assert_eq!(exec.par_map(&items, |&x| x ^ 0x5a), expect_map);
            let owned: Vec<u64> = items.clone();
            assert_eq!(exec.par_map_owned(owned, |x| x ^ 0x5a), expect_map);
            let mut v: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) % 251).collect();
            exec.par_sort_unstable(&mut v);
            assert_eq!(v, expect_sorted);
            assert_eq!(
                exec.par_map_reduce(1013, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| *a += b),
                Some(expect_reduce),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn shared_scheduler_composes_with_clamp_and_pinning() {
        // Worker budget = shard geometry (output); pool size and the
        // thread clamp are speed-only. A pool-attached scheduler pins
        // its scoped budget to 1 so concurrent jobs never stack
        // scoped fan-outs on top of the pool.
        let pool = Arc::new(StealPool::new(3));
        let exec = Scheduler::shared(4, Arc::clone(&pool));
        assert_eq!(exec.workers(), 4);
        assert_eq!(exec.threads(), 1, "scoped budget pinned to 1");
        assert!(exec.has_pool());
        assert!(!Scheduler::new(4).has_pool());
        // Geometry ignores both the pool size and the clamp.
        assert_eq!(exec.shards(1024).len(), 4);
        assert_eq!(exec.shards(1024), Scheduler::new(4).shards(1024));
        assert_eq!(exec.shards(1024), Scheduler::pinned(4, 9).shards(1024));
        // Equality is over the deterministic configuration only.
        assert_eq!(exec, Scheduler::shared(4, Arc::new(StealPool::new(1))));
        assert_eq!(exec.clone(), exec);
    }

    #[test]
    fn par_map_reduce_shared_matches_scoped_at_any_pool_size() {
        let expect = Scheduler::new(1)
            .par_map_reduce(1000, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| *a += b)
            .unwrap();
        for pool_size in [1usize, 2, 7, 8] {
            let pool = Arc::new(StealPool::new(pool_size));
            for workers in [1usize, 3, 8] {
                let exec = Scheduler::shared(workers, Arc::clone(&pool));
                let got = exec
                    .par_map_reduce_shared(
                        1000,
                        |r| r.map(|i| i as u64).sum::<u64>(),
                        |a, b| *a += b,
                    )
                    .unwrap();
                assert_eq!(got, expect, "pool {pool_size}, workers {workers}");
            }
        }
        // Fallback without a pool is the scoped path.
        let got = Scheduler::new(5)
            .par_map_reduce_shared(1000, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| *a += b)
            .unwrap();
        assert_eq!(got, expect);
        assert_eq!(
            Scheduler::shared(3, Arc::new(StealPool::new(2))).par_map_reduce_shared(
                0,
                |_| 0u64,
                |a, b| *a += b
            ),
            None
        );
    }

    #[test]
    fn tiny_inputs_use_fewer_shards_than_workers() {
        let exec = Scheduler::new(8);
        assert_eq!(exec.shards(3).len(), 3);
        assert_eq!(exec.par_map(&[5u8, 6, 7], |&x| x + 1), vec![6, 7, 8]);
    }
}
