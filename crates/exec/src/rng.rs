//! Counter-based splittable random numbers: keyed per-index draws.
//!
//! The sequential generators in `rand` (and our shim's xoshiro
//! `StdRng`) produce a *consumed stream*: draw `i` depends on having
//! drawn `0..i` first, so parallel consumers need chunk bookkeeping —
//! split the stream into chunks, seed each chunk, merge in chunk
//! order, top up when chunks collide. That machinery works, but every
//! hot path has to re-implement it, the chunk geometry leaks into the
//! output (`--jobs 1` and `--jobs 4` used to produce *different*
//! candidate batches), and a future `eip serve` daemon would have to
//! coordinate stream positions across connections.
//!
//! This module replaces the stream with a *function*: a
//! SplitMix64-style stateless mixer over a `(seed, stream, index)`
//! coordinate. Draw `index` of logical stream `stream` is
//! [`mix`]`(seed, stream, index)` — no state, no order, no
//! bookkeeping. Work sharded over any worker count, in any shard
//! geometry, reads exactly the same values *by construction*, because
//! nothing is consumed. [`KeyedRng`] wraps one coordinate as a
//! [`rand::RngCore`] for draws that need a variable number of words
//! (rejection sampling, per-row ancestral sampling): it is SplitMix64
//! whose starting state is the keyed coordinate, so two distinct
//! coordinates yield statistically independent streams.
//!
//! The keyed-draw contract the hot paths build on:
//!
//! * **Per-index purity** — the value(s) drawn for index `i` are a
//!   pure function of `(seed, stream, i)`, never of which worker
//!   computed `i` or what was computed before it.
//! * **Stream separation** — distinct `stream` ids give unrelated
//!   sequences for the same seed, so one seed can feed many
//!   independent consumers (population synthesis, candidate
//!   generation, …) without coordination.
//! * **Stability** — the mixing constants are part of the output
//!   contract (golden tests pin known-answer vectors); changing them
//!   is a documented, golden-regenerating event.
//!
//! ```
//! use eip_exec::rng::{mix, KeyedRng};
//! use rand::Rng;
//!
//! // Stateless per-index draw: same value from any worker.
//! assert_eq!(mix(42, 0, 7), mix(42, 0, 7));
//! assert_ne!(mix(42, 0, 7), mix(42, 1, 7));
//!
//! // A full Rng for index 7 of stream 1.
//! let mut rng = KeyedRng::new(42, 1, 7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

use rand::RngCore;

/// The SplitMix64 finalizer (Steele, Lea & Flood; also murmur3's
/// `fmix64` family): a bijective avalanche over one 64-bit word.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Golden-ratio increment used by SplitMix64 (2^64 / φ, odd).
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
/// A second odd constant (from Pelle Evensen's rrmxmx searches) to
/// keep the stream axis from aliasing the index axis.
const STREAM_MUL: u64 = 0xd134_2543_de82_ef95;

/// Derives the 64-bit key of logical stream `stream` under `seed`.
/// Pure; two finalizer rounds separate nearby seeds and streams.
#[inline]
pub fn stream_key(seed: u64, stream: u64) -> u64 {
    mix64(mix64(seed ^ PHI) ^ stream.wrapping_mul(STREAM_MUL))
}

/// The headline keyed draw: one uniform `u64` for the coordinate
/// `(seed, stream, index)`. Equals the first
/// [`next_u64`](rand::RngCore::next_u64) of
/// [`KeyedRng::new`]`(seed, stream, index)`.
#[inline]
pub fn mix(seed: u64, stream: u64, index: u64) -> u64 {
    KeyedRng::new(seed, stream, index).next_u64()
}

/// A counter-based generator for one `(seed, stream, index)`
/// coordinate: SplitMix64 whose initial state is the keyed
/// coordinate. Construction is two multiplies and a handful of
/// xor-shifts — cheap enough to build one per drawn item — and
/// consuming words never affects any other coordinate's draws.
#[derive(Clone, Debug)]
pub struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    /// The generator for draw `index` of logical stream `stream`
    /// under `seed`.
    #[inline]
    pub fn new(seed: u64, stream: u64, index: u64) -> Self {
        KeyedRng {
            state: mix64(stream_key(seed, stream) ^ index.wrapping_mul(PHI)),
        }
    }

    /// The generator for `index` under a precomputed
    /// [`stream_key`] — hoists the per-stream derivation out of
    /// per-index loops.
    #[inline]
    pub fn for_index(key: u64, index: u64) -> Self {
        KeyedRng {
            state: mix64(key ^ index.wrapping_mul(PHI)),
        }
    }
}

impl RngCore for KeyedRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64: golden-ratio counter + finalizer.
        self.state = self.state.wrapping_add(PHI);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Known-answer vectors: these values are part of the output
    /// contract (every keyed hot path derives from them). A change
    /// here is a breaking, golden-regenerating event — see the module
    /// docs.
    #[test]
    fn known_answer_vectors() {
        let kat: [(u64, u64, u64, u64); 6] = [
            (0, 0, 0, KAT_0_0_0),
            (0, 0, 1, KAT_0_0_1),
            (0, 1, 0, KAT_0_1_0),
            (1, 0, 0, KAT_1_0_0),
            (42, 7, 123_456_789, KAT_42_7_B),
            (u64::MAX, u64::MAX, u64::MAX, KAT_MAX),
        ];
        for (seed, stream, index, expect) in kat {
            assert_eq!(
                mix(seed, stream, index),
                expect,
                "mix({seed}, {stream}, {index})"
            );
        }
    }
    // Pinned with this module's first release (PR 6).
    const KAT_0_0_0: u64 = 0x2ce8_09ae_01ca_b7d7;
    const KAT_0_0_1: u64 = 0x7a10_8e0c_0486_98ee;
    const KAT_0_1_0: u64 = 0x161c_750e_b23b_cc20;
    const KAT_1_0_0: u64 = 0x1eb5_1e50_dc56_952a;
    const KAT_42_7_B: u64 = 0xe375_cdcb_43f3_6699;
    const KAT_MAX: u64 = 0xb43d_f157_d063_bc43;

    #[test]
    fn mix_is_first_keyed_draw() {
        for (seed, stream, index) in [(0u64, 0u64, 0u64), (3, 9, 27), (u64::MAX, 1, 2)] {
            let mut rng = KeyedRng::new(seed, stream, index);
            assert_eq!(rng.next_u64(), mix(seed, stream, index));
        }
    }

    #[test]
    fn for_index_matches_new() {
        let key = stream_key(99, 4);
        for index in [0u64, 1, 77, u64::MAX] {
            let mut a = KeyedRng::new(99, 4, index);
            let mut b = KeyedRng::for_index(key, index);
            for _ in 0..8 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn coordinates_do_not_collide() {
        // Distinct (stream, index) coordinates must give distinct
        // first draws: with 64-bit outputs over 60K coordinates a
        // birthday collision has probability ~1e-10, so any collision
        // indicates a structural flaw (e.g. stream/index aliasing).
        let mut seen = std::collections::HashSet::new();
        for stream in 0..20u64 {
            for index in 0..3000u64 {
                assert!(
                    seen.insert(mix(5, stream, index)),
                    "collision at ({stream}, {index})"
                );
            }
        }
        // Adjacent seeds must also diverge.
        assert_ne!(mix(1, 0, 0), mix(2, 0, 0));
        assert_ne!(stream_key(1, 0), stream_key(0, 1));
    }

    #[test]
    fn nybble_equidistribution() {
        // Statistical smoke: every nybble of the keyed output is
        // uniform over 0..16. 64K draws × 16 nybbles, expect 65536
        // per bucket; allow ±5%.
        let mut counts = [[0u32; 16]; 16];
        for index in 0..65_536u64 {
            let mut v = mix(11, 3, index);
            for slot in &mut counts {
                slot[(v & 0xf) as usize] += 1;
                v >>= 4;
            }
        }
        for (pos, slot) in counts.iter().enumerate() {
            for (nyb, &c) in slot.iter().enumerate() {
                assert!(
                    (3891..=4301).contains(&c),
                    "nybble {nyb} at position {pos}: {c} far from 4096"
                );
            }
        }
    }

    #[test]
    fn keyed_rng_feeds_rand_adapters() {
        let mut rng = KeyedRng::new(7, 0, 0);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            lo += usize::from(f < 0.5);
            let v: u32 = rng.gen_range(0..10);
            assert!(v < 10);
        }
        assert!((4_500..=5_500).contains(&lo), "f64 draws skewed: {lo}");
    }

    #[test]
    fn streams_are_independent() {
        // The same index range on two streams shares no values and
        // is uncorrelated at the bit level (quick parity check).
        let mut same = 0usize;
        for index in 0..10_000u64 {
            let a = mix(1, 0, index);
            let b = mix(1, 1, index);
            assert_ne!(a, b, "index {index}");
            same += usize::from((a ^ b).count_ones() >= 24 && (a ^ b).count_ones() <= 40);
        }
        assert!(same > 8_000, "xor popcount rarely near 32: {same}");
    }
}
