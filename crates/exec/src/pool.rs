//! A shared work-stealing worker pool for concurrent pipeline jobs.
//!
//! The scoped fan-out primitives of [`Scheduler`](crate::Scheduler)
//! load-balance *within* one stage of one pipeline: they spawn, join,
//! and tear down per call. Running many pipelines concurrently on
//! them either serializes the pipelines or oversubscribes the box —
//! each job would clamp its own thread budget as if it were alone.
//! [`StealPool`] is the fleet-scale answer: one fixed set of OS
//! workers, owned for the life of the pool, onto which any number of
//! concurrent jobs submit shard tasks. A skewed or I/O-stalled job
//! donates its idle workers to its neighbors instead of leaving
//! cores dark.
//!
//! ## Topology
//!
//! Each worker owns a deque. A job's tasks are dealt round-robin
//! across the deques at submit time; a worker pops from the *front*
//! of its own deque, and when that runs dry it steals from the *back*
//! of a sibling's deque, then drains the shared injector. The
//! submitting thread is not idle either: while its job is in flight
//! it executes queued tasks *of its own job* (caller-help), which
//! guarantees progress — and therefore freedom from deadlock — even
//! on a one-worker pool servicing sixteen jobs.
//!
//! ## Determinism
//!
//! Scheduling here is deliberately *non*-deterministic — that is the
//! point of stealing — but results are not: [`StealPool::run_tasks`]
//! returns results **in submission order**, each task writes only its
//! own pre-assigned slot, and the [`Scheduler`](crate::Scheduler)
//! primitives built on top submit one task per worker-keyed shard and
//! fold in shard order. Which worker (or which thief) materializes a
//! shard can never change what the shard computes, so every consumer
//! stays byte-identical to its solo serial run at any pool size — the
//! same contract the scoped primitives honor, extended across jobs
//! (pinned by the multi-job determinism suite and the steal-storm
//! proptest).
//!
//! A panicking task is contained per job: the submitting
//! [`run_tasks`](StealPool::run_tasks) call re-raises the payload on
//! the caller after the rest of the batch settles, and the worker
//! thread survives to serve other jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};

/// A queued unit of work: the owning job's id plus the boxed closure.
struct QueuedTask {
    job: u64,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// Pool state guarded by one mutex: the queued-task count that gates
/// worker parking, and the shutdown flag.
struct PoolState {
    queued: usize,
    shutdown: bool,
}

/// Lifetime counters for the pool, each monotonic. Snapshot via
/// [`StealPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted over the pool's lifetime.
    pub jobs: u64,
    /// Tasks executed by pool workers (own deque or injector).
    pub executed: u64,
    /// Tasks a worker stole from a sibling's deque.
    pub stolen: u64,
    /// Tasks the submitting thread ran itself while waiting
    /// (caller-help).
    pub caller_ran: u64,
}

struct Shared {
    /// One deque per worker; tasks are dealt round-robin at submit.
    deques: Vec<Mutex<VecDeque<QueuedTask>>>,
    /// Overflow queue drained after own-deque and steal attempts.
    injector: Mutex<VecDeque<QueuedTask>>,
    state: Mutex<PoolState>,
    work_ready: Condvar,
    next_job: AtomicU64,
    jobs: AtomicU64,
    executed: AtomicU64,
    stolen: AtomicU64,
    caller_ran: AtomicU64,
}

/// Recover a mutex guard even if a holder panicked: every critical
/// section here is a handful of queue/counter operations that cannot
/// leave the structure inconsistent mid-flight.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    /// Takes one task for worker `me`: own deque front, then a steal
    /// scan over siblings' backs (starting after `me`, so thieves
    /// spread out), then the injector.
    fn grab(&self, me: usize) -> Option<QueuedTask> {
        if let Some(task) = lock(&self.deques[me]).pop_front() {
            self.note_taken();
            self.executed.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
        let n = self.deques.len();
        for step in 1..n {
            let victim = (me + step) % n;
            if let Some(task) = lock(&self.deques[victim]).pop_back() {
                self.note_taken();
                self.executed.fetch_add(1, Ordering::Relaxed);
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        if let Some(task) = lock(&self.injector).pop_front() {
            self.note_taken();
            self.executed.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
        None
    }

    /// Takes one queued task belonging to `job`, from any deque or
    /// the injector — the caller-help path.
    fn grab_for_job(&self, job: u64) -> Option<QueuedTask> {
        for deque in &self.deques {
            let mut q = lock(deque);
            if let Some(pos) = q.iter().position(|t| t.job == job) {
                let task = q.remove(pos).expect("position just found");
                drop(q);
                self.note_taken();
                self.caller_ran.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        let mut q = lock(&self.injector);
        if let Some(pos) = q.iter().position(|t| t.job == job) {
            let task = q.remove(pos).expect("position just found");
            drop(q);
            self.note_taken();
            self.caller_ran.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
        None
    }

    fn note_taken(&self) {
        lock(&self.state).queued -= 1;
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if let Some(task) = self.grab(me) {
                // Panics are caught at the slot-writing wrapper built
                // in `run_tasks`; a bare task reaching here panicking
                // would abort via unwind-in-drop, so the wrapper is
                // the only submission path.
                (task.run)();
                continue;
            }
            let state = lock(&self.state);
            if state.shutdown {
                return;
            }
            if state.queued == 0 {
                // Parked until a submit or shutdown notifies; spurious
                // wakeups just re-run the grab scan.
                let _unused = self
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }
}

/// A fixed-size work-stealing worker pool shared by concurrent jobs.
/// See the [module docs](self) for topology and the determinism
/// contract. Workers are joined on drop.
pub struct StealPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for StealPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealPool")
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish()
    }
}

impl StealPool {
    /// A pool with exactly `workers` OS threads (clamped to ≥ 1).
    /// Unlike [`Scheduler::new`](crate::Scheduler::new) this is not
    /// clamped to `available_parallelism`: the pool is an explicit
    /// machine-level resource its owner sizes once, and tests must be
    /// able to build oversized pools on small hosts.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            state: Mutex::new(PoolState {
                queued: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            next_job: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            caller_ran: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("eip-steal-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("spawn pool worker")
            })
            .collect();
        StealPool {
            shared,
            workers,
            handles,
        }
    }

    /// The fixed worker count.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            caller_ran: self.shared.caller_ran.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of tasks as one job and returns their results
    /// **in submission order**. Blocks until every task has settled;
    /// while blocked, the calling thread executes still-queued tasks
    /// of this job itself (caller-help), so a job always makes
    /// progress no matter how busy the pool is. If any task panicked,
    /// the first panic (in submission order) is re-raised here after
    /// the whole batch has settled.
    pub fn run_tasks<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let job = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        self.shared.jobs.fetch_add(1, Ordering::Relaxed);
        let mut slots: Vec<Option<thread::Result<T>>> = Vec::new();
        slots.resize_with(n, || None);
        let slots = Arc::new(Mutex::new(slots));
        let done = Arc::new((Mutex::new(n), Condvar::new()));
        // Deal the wrapped tasks round-robin across the worker deques,
        // then wake everyone once. The wrapper is infallible: the
        // payload runs under `catch_unwind`, and slot write + counter
        // decrement always happen, so a panicking task can never hang
        // its job.
        {
            let mut queued_total = 0usize;
            for (i, task) in tasks.into_iter().enumerate() {
                let slots = Arc::clone(&slots);
                let done = Arc::clone(&done);
                let run = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    lock(&slots)[i] = Some(outcome);
                    let (remaining, settled) = &*done;
                    let mut left = lock(remaining);
                    *left -= 1;
                    if *left == 0 {
                        settled.notify_all();
                    }
                });
                lock(&self.shared.deques[(job as usize + i) % self.workers])
                    .push_back(QueuedTask { job, run });
                queued_total += 1;
            }
            lock(&self.shared.state).queued += queued_total;
            self.shared.work_ready.notify_all();
        }
        // Caller-help: drain this job's still-queued tasks, then park
        // until the in-flight ones settle. Tasks are queued exactly
        // once (above, before this loop), so once the scan comes up
        // empty every remaining task is in flight on a worker — and
        // the settle counter is decremented and notified under the
        // same lock the wait releases, so the park cannot miss the
        // last decrement.
        loop {
            while let Some(task) = self.shared.grab_for_job(job) {
                (task.run)();
            }
            let (remaining, settled) = &*done;
            let left = lock(remaining);
            if *left == 0 {
                break;
            }
            let left = settled
                .wait(left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if *left == 0 {
                break;
            }
        }
        // Take the slots under the lock rather than unwrapping the
        // Arc: the final task notifies settlement *before* its
        // closure (and its Arc clone) is dropped, so strong-count 1
        // is not guaranteed here — but every write is, because each
        // decrement happens after its slot write under these locks.
        let slots = std::mem::take(&mut *lock(&slots));
        let mut out = Vec::with_capacity(n);
        let mut panic_payload = None;
        for slot in slots {
            match slot.expect("settled job filled every slot") {
                Ok(v) => out.push(v),
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        out
    }
}

impl Drop for StealPool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _unused = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1usize, 2, 7, 8] {
            let pool = StealPool::new(workers);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..100usize)
                .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = pool.run_tasks(tasks);
            assert_eq!(
                out,
                (0..100usize).map(|i| i * 3).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn empty_job_returns_immediately() {
        let pool = StealPool::new(2);
        let out: Vec<u8> = pool.run_tasks(Vec::new());
        assert!(out.is_empty());
        assert_eq!(pool.stats().jobs, 0);
    }

    #[test]
    fn concurrent_jobs_share_the_pool_without_cross_talk() {
        // Eight jobs on a two-worker pool, each summing its own
        // shards; every job must see exactly its own results.
        let pool = Arc::new(StealPool::new(2));
        thread::scope(|s| {
            for job in 0..8u64 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..40u64)
                        .map(|i| {
                            Box::new(move || job * 1000 + i) as Box<dyn FnOnce() -> u64 + Send>
                        })
                        .collect();
                    let out = pool.run_tasks(tasks);
                    assert_eq!(out, (0..40u64).map(|i| job * 1000 + i).collect::<Vec<_>>());
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.jobs, 8);
        assert_eq!(
            stats.executed + stats.caller_ran,
            8 * 40,
            "every task ran exactly once: {stats:?}"
        );
    }

    #[test]
    fn caller_help_makes_progress_on_a_saturated_pool() {
        // One worker, pinned down by a slow task from another job:
        // the second job must still complete promptly via caller-help.
        let pool = Arc::new(StealPool::new(1));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let slow_gate = Arc::clone(&gate);
        let slow_pool = Arc::clone(&pool);
        let slow = thread::spawn(move || {
            let task: Box<dyn FnOnce() -> u8 + Send> = Box::new(move || {
                let (released, cv) = &*slow_gate;
                let mut go = lock(released);
                while !*go {
                    go = cv.wait(go).unwrap_or_else(|p| p.into_inner());
                }
                1
            });
            slow_pool.run_tasks(vec![task])
        });
        // Give the worker time to pick up the blocking task.
        thread::sleep(Duration::from_millis(50));
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..10u64)
            .map(|i| Box::new(move || i) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let out = pool.run_tasks(tasks);
        assert_eq!(out, (0..10u64).collect::<Vec<_>>());
        assert!(pool.stats().caller_ran >= 1, "{:?}", pool.stats());
        let (released, cv) = &*gate;
        *lock(released) = true;
        cv.notify_all();
        assert_eq!(slow.join().unwrap(), vec![1]);
    }

    #[test]
    fn panicking_task_is_contained_and_reraised() {
        let pool = Arc::new(StealPool::new(2));
        let ran_after = Arc::new(AtomicUsize::new(0));
        let outcome = {
            let ran_after = Arc::clone(&ran_after);
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let tasks: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
                    Box::new(|| 1),
                    Box::new(|| panic!("shard exploded")),
                    Box::new(move || {
                        ran_after.fetch_add(1, Ordering::Relaxed);
                        3
                    }),
                ];
                pool.run_tasks(tasks)
            })
            .join()
        };
        let payload = outcome.expect_err("panic must reach the submitting caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("shard exploded"), "{msg}");
        // The batch settled fully before re-raising, and the pool
        // survives for the next job.
        assert_eq!(ran_after.load(Ordering::Relaxed), 1);
        let ok: Vec<u8> = pool.run_tasks(vec![Box::new(|| 7)]);
        assert_eq!(ok, vec![7]);
    }

    #[test]
    fn oversized_pools_are_allowed() {
        // Unlike Scheduler::new, the pool is not clamped to the host:
        // a 9-worker pool on a 1-CPU box must still work.
        let pool = StealPool::new(9);
        assert_eq!(pool.workers(), 9);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..30usize)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(pool.run_tasks(tasks), (1..=30).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = StealPool::new(0);
        assert_eq!(pool.workers(), 1);
        let out: Vec<u8> = pool.run_tasks(vec![Box::new(|| 42)]);
        assert_eq!(out, vec![42]);
    }
}
