//! Steal-storm proptest: concurrent jobs with randomized task
//! durations on randomized pool shapes must never lose or duplicate a
//! shard, and every job's results must come back complete and in
//! submission order.
//!
//! Task durations are randomized via the deterministic fault plan
//! ([`eip_exec::fault::FaultPlan`]): each task consults the plan at
//! its own global index and sleeps when the plan injects a delay, so
//! a given proptest case replays the same storm every run while still
//! covering slow-task skew, stealing, and caller-help interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use eip_exec::fault::FaultPlan;
use eip_exec::pool::StealPool;
use eip_exec::Scheduler;
use proptest::prelude::*;

/// Stream id for the storm's delay draws (see `eip_exec::rng`).
const STORM_STREAM: u64 = 0x0073_746d; // "stm"

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No lost or duplicated shards under a steal storm: every task
    /// of every concurrent job runs exactly once, and each job's
    /// result vector is its own complete sequence in order.
    #[test]
    fn storm_loses_nothing(
        pool_size in 1usize..8,
        jobs in 2usize..5,
        tasks_per_job in 1usize..40,
        seed in 0u64..1000,
    ) {
        let plan = FaultPlan::new(seed, STORM_STREAM).with_delays(300, 200);
        let pool = Arc::new(StealPool::new(pool_size));
        let ran = Arc::new(AtomicU64::new(0));
        thread::scope(|s| {
            for job in 0..jobs {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..tasks_per_job)
                        .map(|i| {
                            let ran = Arc::clone(&ran);
                            let index = (job * tasks_per_job + i) as u64;
                            Box::new(move || {
                                if plan.decide(index).is_some() {
                                    thread::sleep(Duration::from_micros(200));
                                }
                                ran.fetch_add(1, Ordering::Relaxed);
                                index
                            }) as Box<dyn FnOnce() -> u64 + Send>
                        })
                        .collect();
                    let out = pool.run_tasks(tasks);
                    let expect: Vec<u64> = (0..tasks_per_job)
                        .map(|i| (job * tasks_per_job + i) as u64)
                        .collect();
                    assert_eq!(out, expect, "job {job} results corrupted");
                });
            }
        });
        prop_assert_eq!(ran.load(Ordering::Relaxed), (jobs * tasks_per_job) as u64);
        let stats = pool.stats();
        prop_assert_eq!(stats.executed + stats.caller_ran, (jobs * tasks_per_job) as u64);
        prop_assert_eq!(stats.jobs, jobs as u64);
    }

    /// The shared reduction primitive under the same storm: random
    /// geometry, random pool shape, injected delays — the fold must
    /// equal the serial reference every time.
    #[test]
    fn storm_reductions_match_serial(
        pool_size in 1usize..8,
        workers in 1usize..16,
        len in 0usize..5000,
        seed in 0u64..1000,
    ) {
        let plan = FaultPlan::new(seed, STORM_STREAM).with_delays(250, 150);
        let expect = Scheduler::new(1).par_map_reduce(
            len,
            |r| r.map(|i| (i as u64).wrapping_mul(0x9e37)).sum::<u64>(),
            |a, b| *a = a.wrapping_add(b),
        );
        let pool = Arc::new(StealPool::new(pool_size));
        let exec = Scheduler::shared(workers, pool);
        let got = exec.par_map_reduce_shared(
            len,
            move |r| {
                if plan.decide(r.start as u64).is_some() {
                    thread::sleep(Duration::from_micros(150));
                }
                r.map(|i| (i as u64).wrapping_mul(0x9e37)).sum::<u64>()
            },
            |a, b| *a = a.wrapping_add(b),
        );
        prop_assert_eq!(got, expect);
    }
}
