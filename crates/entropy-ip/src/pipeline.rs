//! The staged pipeline API: typed, independently re-runnable stages.
//!
//! Entropy/IP is a five-stage pipeline (profile → segment → mine →
//! train → generate), but callers rarely need all of it at once: the
//! figures want only the entropy profile, parameter sweeps want to
//! re-mine with new options without re-counting entropy, and a saved
//! profile wants to retrain the BN without touching the raw
//! addresses. [`Pipeline`] exposes each stage as a typed artifact:
//!
//! ```text
//! Pipeline::new(Config)
//!     .profile(ips)?      -> Profiled    entropy + ACR counters
//!     .segment()          -> Segmented   + lettered segments (§4.2)
//!     .mine()             -> Mined       + value dictionaries (§4.3)
//!     .train()?           -> Trained     + Bayesian network (§4.4)
//!     .into_model()       -> IpModel     browse / generate (§5)
//! ```
//!
//! Every stage is `Clone` and borrows nothing, so intermediate
//! artifacts can be kept, compared, and re-run: [`Segmented::mine_with`]
//! re-mines under different [`MiningOptions`] without recomputing the
//! entropy profile, and [`Mined::train_with`] retrains the BN without
//! re-mining. The address set is shared behind an [`Arc`], so cloning
//! a stage is cheap.
//!
//! **Streaming ingestion.** [`Pipeline::profile`] accepts any
//! `IntoIterator<Item = Ip6>` and feeds an
//! [`AddressSetBuilder`] plus
//! counter-based entropy ([`eip_stats::NybbleCounts`]) — no
//! intermediate `Vec<Ip6>` is materialized beyond the deduplicated
//! set itself. [`Pipeline::profile_lines`] does the same from a line
//! reader (one address per line, `#` comments allowed) on one thread
//! with a reused line buffer — it is the tested serial oracle for
//! [`Pipeline::profile_reader_streaming`]/[`Pipeline::profile_path`],
//! the chunked parallel engine ([`crate::ingest`]) that profiles
//! 100M+-line files in O(chunk size × workers) memory beyond the
//! distinct set, byte-identically at any chunk size and worker
//! count.
//!
//! **Parallelism.** [`Config::parallelism`] > 1 routes the hot
//! stages onto the [`eip_exec::Scheduler`], uniformly across
//! `Profiled → Segmented → Mined → Trained`: profiling shards the
//! address stream and merges per-shard [`NybbleCounts`]; mining runs
//! the sharded engine (one pass builds every segment's value
//! histogram per input shard, merges them, then thresholds each
//! segment — see `mine_all`) so even one heavy segment parallelizes
//! *internally* instead of serializing the whole stage; training
//! encodes the addresses shard-wise into per-segment byte columns
//! (see `encode_dataset`) and learns the BN on the count-reuse
//! engine ([`eip_bayes::learn_structure_sharded`]), which counts each
//! child's candidate families in one sharded column pass and fits
//! CPTs from the same tables. Every merge is an exact integer-count
//! reduction, so the model is identical at any worker count (see the
//! stage-equivalence and shard-equivalence tests); at `parallelism
//! == 1` the stages run the simple serial reference implementations
//! the sharded engine is verified against. Batched candidate
//! generation rides the same scheduler through
//! [`Generator::run_seeded`](crate::Generator::run_seeded).
//!
//! The one-shot [`EntropyIp::analyze`](crate::EntropyIp::analyze) is
//! now a thin convenience over these stages and produces
//! byte-identical models (via [`crate::profile::export`]).

use std::io::{BufRead, Read};
use std::sync::Arc;

use eip_addr::{AddressSet, AddressSetBuilder, Ip6};
use eip_bayes::{learn_structure, Dataset, LearnOptions};
use eip_exec::Scheduler;
use eip_stats::{acr4, Histogram, NybbleCounts};

use crate::analysis::Analysis;
use crate::error::EipError;
use crate::ingest::{IngestOptions, IngestReport};
use crate::mining::{mine_segment, mine_segment_histogram, MinedSegment, MiningOptions};
use crate::model::{IpModel, Options};
use crate::segments::{Segment, SegmentationOptions};

/// Full pipeline configuration: the per-stage options plus the
/// worker-thread budget for the parallel hot paths.
#[derive(Clone, Debug)]
pub struct Config {
    /// Segmentation parameters (§4.2).
    pub segmentation: SegmentationOptions,
    /// Mining parameters (§4.3).
    pub mining: MiningOptions,
    /// Structure-learning parameters (§4.4).
    pub learning: LearnOptions,
    /// Worker threads for per-segment mining (1 = serial). The model
    /// produced is identical at any setting; only wall-clock changes.
    pub parallelism: usize,
    /// Optional shared work-stealing pool ([`Config::with_pool`]).
    /// When set, the sharded hot stages submit their shards to this
    /// pool instead of scoped threads, so many concurrent pipeline
    /// jobs share one fixed set of OS workers. Speed only: the shard
    /// geometry stays [`Config::parallelism`], so the model is
    /// byte-identical with or without a pool, at any pool size.
    pub pool: Option<Arc<eip_exec::pool::StealPool>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            segmentation: SegmentationOptions::default(),
            mining: MiningOptions::default(),
            learning: LearnOptions::default(),
            parallelism: 1,
            pool: None,
        }
    }
}

impl Config {
    /// Configuration for /64-prefix prediction (§5.6): analysis
    /// constrained to the top 64 bits.
    pub fn top64() -> Self {
        Config {
            segmentation: SegmentationOptions::top64(),
            ..Default::default()
        }
    }

    /// Sets the worker-thread budget (clamped to at least 1).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Attaches a shared work-stealing pool: the sharded hot stages
    /// will submit their shards to it instead of spawning scoped
    /// threads. See [`Config::pool`].
    pub fn with_pool(mut self, pool: Arc<eip_exec::pool::StealPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The scheduler this configuration implies: worker budget =
    /// [`Config::parallelism`] (the shard geometry), attached to the
    /// shared pool when one is configured.
    pub fn scheduler(&self) -> Scheduler {
        match &self.pool {
            Some(pool) => Scheduler::shared(self.parallelism, Arc::clone(pool)),
            None => Scheduler::new(self.parallelism),
        }
    }
}

impl From<Options> for Config {
    fn from(opts: Options) -> Self {
        Config {
            segmentation: opts.segmentation,
            mining: opts.mining,
            learning: opts.learning,
            parallelism: 1,
            pool: None,
        }
    }
}

/// The staged Entropy/IP pipeline. See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    cfg: Config,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(cfg: Config) -> Self {
        Pipeline { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Stage 1 — streaming ingestion and profiling. Deduplicates the
    /// addresses (reducing them to their /64 networks first in top-64
    /// mode, as §5.6 trains on prefixes) and accumulates the entropy
    /// and ACR profiles.
    ///
    /// Fails with [`EipError::EmptySet`] if the iterator yields
    /// nothing.
    pub fn profile<I>(&self, ips: I) -> Result<Profiled, EipError>
    where
        I: IntoIterator<Item = Ip6>,
    {
        let top64 = self.cfg.segmentation.width <= 16;
        let mut builder = AddressSetBuilder::new();
        for ip in ips {
            builder.push(if top64 { ip.slash64() } else { ip });
        }
        self.profile_working(builder.finish())
    }

    /// Profiles an already-ingested working set (top-64 reduction and
    /// deduplication must have happened during ingestion). With
    /// `parallelism > 1` the nybble counting shards the address
    /// stream and merges per-shard [`NybbleCounts`] — an exact
    /// reduction, so the profile is identical at any worker count.
    fn profile_working(&self, working: AddressSet) -> Result<Profiled, EipError> {
        if working.is_empty() {
            return Err(EipError::EmptySet);
        }
        let exec = self.cfg.scheduler();
        // Both paths count through the wide slice kernel
        // ([`NybbleCounts::observe_slice`]: two independent u64
        // half-walks per address instead of one serialized u128
        // chain); per-shard counts merge exactly, so the profile is
        // identical at any worker count and to the scalar
        // `observe` oracle. The set moves behind an `Arc` up front so
        // the sharded closure can be handed to a shared pool as a
        // `'static` task (scoped fallback uses the same closure).
        let working = Arc::new(working);
        let counts = if exec.is_serial() {
            let mut counts = NybbleCounts::new();
            counts.observe_slice(working.as_slice());
            counts
        } else {
            let addrs = Arc::clone(&working);
            exec.par_map_reduce_shared(
                working.len(),
                move |range| {
                    let mut counts = NybbleCounts::new();
                    counts.observe_slice(&addrs.as_slice()[range]);
                    counts
                },
                |acc, part| acc.merge(&part),
            )
            .expect("non-empty working set")
        };
        let entropy = counts.entropy();
        let acr = acr4(&working);
        Ok(Profiled {
            cfg: self.cfg.clone(),
            working,
            entropy,
            acr,
        })
    }

    /// Stage 1 from a line reader: one address per line (colon or
    /// fixed-width hex format), blank lines and `#` comments skipped.
    ///
    /// This is the **serial ingestion oracle**: one thread, one
    /// reused line buffer ([`BufRead::read_until`] — no per-line
    /// `String` allocation, and the allocation-free
    /// [`eip_addr::set::parse_address_bytes`] classifier shared with
    /// the chunked engine), feeding an [`AddressSetBuilder`]. The
    /// streaming engine below is verified byte-identical against it;
    /// use [`Pipeline::profile_reader_streaming`] or
    /// [`Pipeline::profile_path`] when the input is large.
    pub fn profile_lines<R: BufRead>(&self, mut reader: R) -> Result<Profiled, EipError> {
        let top64 = self.cfg.segmentation.width <= 16;
        let mut builder = AddressSetBuilder::new();
        let mut buf: Vec<u8> = Vec::with_capacity(128);
        let mut no = 0usize;
        loop {
            buf.clear();
            no += 1;
            let n = reader
                .read_until(b'\n', &mut buf)
                .map_err(|e| EipError::io(format!("line {no}"), e))?;
            if n == 0 {
                break;
            }
            if let Some(ip) = eip_addr::set::parse_address_bytes(no, &buf)? {
                builder.push(if top64 { ip.slash64() } else { ip });
            }
        }
        self.profile_working(builder.finish())
    }

    /// Stage 1 from any [`Read`] through the **bounded-memory
    /// parallel streaming engine** ([`crate::ingest`]): newline-
    /// aligned chunks fan out on the scheduler, per-chunk sorted runs
    /// merge into the working set, and peak memory stays
    /// O(chunk size × workers) plus the distinct set — independent of
    /// the raw stream length. The `Profiled` artifact is
    /// byte-identical to [`Pipeline::profile_lines`] at every chunk
    /// size and worker count (pinned by the chunk-boundary torture
    /// suite). Also returns the [`IngestReport`] with line/byte
    /// throughput and the peak working-set estimate.
    pub fn profile_reader_streaming<R: Read>(
        &self,
        reader: R,
        opts: &IngestOptions,
    ) -> Result<(Profiled, IngestReport), EipError> {
        let top64 = self.cfg.segmentation.width <= 16;
        let (set, report) =
            crate::ingest::ingest_reader(reader, top64, &self.cfg.scheduler(), opts)?;
        Ok((self.profile_working(set)?, report))
    }

    /// Stage 1 from a file path via the streaming engine with default
    /// [`IngestOptions`] — the `eip analyze ips.txt` ingestion path.
    pub fn profile_path(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Profiled, IngestReport), EipError> {
        self.profile_path_with(path, &IngestOptions::default())
    }

    /// [`Pipeline::profile_path`] with explicit [`IngestOptions`]
    /// (the CLI `--chunk-mb` knob lands here).
    pub fn profile_path_with(
        &self,
        path: impl AsRef<std::path::Path>,
        opts: &IngestOptions,
    ) -> Result<(Profiled, IngestReport), EipError> {
        let path = path.as_ref();
        let file =
            std::fs::File::open(path).map_err(|e| EipError::io(path.display().to_string(), e))?;
        self.profile_reader_streaming(file, opts)
    }

    /// All four stages in one call (the staged equivalent of
    /// [`EntropyIp::analyze`](crate::EntropyIp::analyze)).
    pub fn run<I>(&self, ips: I) -> Result<IpModel, EipError>
    where
        I: IntoIterator<Item = Ip6>,
    {
        Ok(self.profile(ips)?.segment().mine().train()?.into_model())
    }
}

/// Stage-1 artifact: the deduplicated working set with its entropy
/// and ACR profiles.
#[derive(Clone, Debug)]
pub struct Profiled {
    cfg: Config,
    working: Arc<AddressSet>,
    entropy: [f64; 32],
    acr: [f64; 32],
}

impl Profiled {
    /// The configuration this artifact was produced under.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The deduplicated working set (already /64-reduced in top-64
    /// mode).
    pub fn addresses(&self) -> &AddressSet {
        &self.working
    }

    /// Normalized per-nybble entropy Ĥ(X₁)…Ĥ(X₃₂).
    pub fn entropy(&self) -> &[f64; 32] {
        &self.entropy
    }

    /// Normalized 4-bit aggregate count ratios.
    pub fn acr(&self) -> &[f64; 32] {
        &self.acr
    }

    /// Total entropy Ĥ_S over the analyzed width.
    pub fn total_entropy(&self) -> f64 {
        self.entropy[..self.cfg.segmentation.width].iter().sum()
    }

    /// Number of distinct addresses profiled.
    pub fn num_addresses(&self) -> usize {
        self.working.len()
    }

    /// Stage 2 — segmentation of the entropy profile (§4.2).
    pub fn segment(&self) -> Segmented {
        let analysis = Analysis::from_profile(
            self.entropy,
            self.acr,
            self.working.len(),
            &self.cfg.segmentation,
        );
        Segmented {
            profiled: self.clone(),
            analysis,
        }
    }
}

/// Stage-2 artifact: the profile plus its lettered segments, packaged
/// as the [`Analysis`] the figures and the model display.
#[derive(Clone, Debug)]
pub struct Segmented {
    profiled: Profiled,
    analysis: Analysis,
}

impl Segmented {
    /// The configuration this artifact was produced under.
    pub fn config(&self) -> &Config {
        &self.profiled.cfg
    }

    /// The deduplicated working set.
    pub fn addresses(&self) -> &AddressSet {
        self.profiled.addresses()
    }

    /// The full analysis (entropy, ACR, Ĥ_S, segments).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The discovered segments, left to right.
    pub fn segments(&self) -> &[Segment] {
        &self.analysis.segments
    }

    /// Stage 3 — mines every segment's value dictionary with the
    /// configured [`MiningOptions`].
    pub fn mine(&self) -> Mined {
        self.mine_with(&self.profiled.cfg.mining)
    }

    /// Stage 3 with explicit options: re-mines this artifact without
    /// recomputing the entropy profile or segmentation. With
    /// `config().parallelism > 1` mining runs the sharded engine
    /// (per-shard histograms for every segment in one pass over the
    /// addresses, merged and then thresholded); the result is
    /// identical at any worker count.
    pub fn mine_with(&self, opts: &MiningOptions) -> Mined {
        let mined = mine_all(
            &self.profiled.working,
            &self.analysis.segments,
            opts,
            &self.profiled.cfg.scheduler(),
        );
        Mined {
            segmented: self.clone(),
            mined,
        }
    }
}

/// Stage-3 artifact: the segmentation plus one mined value dictionary
/// per segment.
#[derive(Clone, Debug)]
pub struct Mined {
    segmented: Segmented,
    mined: Vec<MinedSegment>,
}

impl Mined {
    /// The configuration this artifact was produced under.
    pub fn config(&self) -> &Config {
        self.segmented.config()
    }

    /// The deduplicated working set.
    pub fn addresses(&self) -> &AddressSet {
        self.segmented.addresses()
    }

    /// The analysis this mining was based on.
    pub fn analysis(&self) -> &Analysis {
        self.segmented.analysis()
    }

    /// Mined value dictionaries, one per segment.
    pub fn mined(&self) -> &[MinedSegment] {
        &self.mined
    }

    /// Stage 4 — encodes the working set as categorical rows and
    /// learns the Bayesian network with the configured
    /// [`LearnOptions`].
    pub fn train(&self) -> Result<Trained, EipError> {
        self.train_with(&self.config().learning)
    }

    /// Stage 4 with explicit options: retrains the BN on this
    /// artifact without re-mining. Variable names are always the
    /// segment letters, and the worker budget is always
    /// [`Config::parallelism`] (overriding
    /// [`LearnOptions::parallelism`]): the encode loop shards the
    /// address stream into per-segment byte columns on the scheduler,
    /// and structure learning runs the count-reuse engine at
    /// `parallelism > 1` — identical network at any worker count.
    ///
    /// The mining stop rule ("if there is <=0.1% of values left, we
    /// finish") can leave a sliver of rare segment values outside
    /// every dictionary; those addresses are dropped from BN
    /// training, exactly as the paper's V_k construction implies. If
    /// *no* address encodes, this fails with [`EipError::EmptySet`].
    pub fn train_with(&self, opts: &LearnOptions) -> Result<Trained, EipError> {
        // The columnar dataset stores codes as bytes; a dictionary
        // past 256 values (possible only with extreme MiningOptions)
        // must fail cleanly here, not panic inside the encoder.
        if let Some(m) = self.mined.iter().find(|m| m.cardinality() > 256) {
            return Err(EipError::Unsupported(format!(
                "segment {} mined {} dictionary values; BN training supports at most 256",
                m.segment.label,
                m.cardinality()
            )));
        }
        let exec = self.config().scheduler();
        let dataset = encode_dataset(&self.segmented.profiled.working, &self.mined, &exec);
        if dataset.is_empty() {
            return Err(EipError::EmptySet);
        }
        let mut learn_opts = opts.clone();
        learn_opts.parallelism = self.config().parallelism;
        learn_opts.names = self
            .analysis()
            .segments
            .iter()
            .map(|s| s.label.clone())
            .collect();
        // Hand the configured scheduler to the sharded learner
        // directly (rather than letting it build its own from
        // `parallelism`) so a pool-attached pipeline keeps its
        // counting passes on the job thread instead of stacking a
        // scoped fan-out on top of the shared pool. Same worker
        // geometry either way — the learned network is identical.
        let bn = if learn_opts.parallelism > 1 {
            eip_bayes::learn_structure_sharded(&dataset, &learn_opts, &exec)
        } else {
            learn_structure(&dataset, &learn_opts)
        };
        Ok(Trained {
            model: IpModel::from_parts(self.analysis().clone(), self.mined.clone(), bn),
        })
    }
}

/// Stage-4 artifact: the trained model.
#[derive(Clone, Debug)]
pub struct Trained {
    model: IpModel,
}

impl Trained {
    /// The trained model.
    pub fn model(&self) -> &IpModel {
        &self.model
    }

    /// Consumes the artifact into the model.
    pub fn into_model(self) -> IpModel {
        self.model
    }
}

/// Mines every segment. Two implementations, one result:
///
/// * **Serial reference** (one worker): one pass per segment, exactly
///   the original per-segment [`mine_segment`] loop. Simple, and the
///   oracle the sharded engine is verified against.
/// * **Sharded engine** (`workers > 1`): the §4.3 counting phase is
///   restructured as shard-count-then-merge. One pass over each
///   input shard expands every address's nybbles *once* and pushes
///   all segment values, each shard run-length-encodes its own
///   [`Histogram`] per segment, shard histograms merge in shard
///   order (exact integer counts), and the thresholding core then
///   runs per segment on the scheduler. This parallelizes *within*
///   every segment, so a single heavy segment (e.g. a pseudo-random
///   IID segment with a huge histogram) no longer owns the critical
///   path the way per-segment fan-out left it.
///
/// Both paths are deterministic and produce identical dictionaries at
/// any worker count — no RNG is involved, and the merge is exact.
fn mine_all(
    working: &Arc<AddressSet>,
    segments: &[Segment],
    opts: &MiningOptions,
    exec: &Scheduler,
) -> Vec<MinedSegment> {
    if exec.is_serial() {
        return segments
            .iter()
            .map(|seg| {
                let values: Vec<u128> = working
                    .iter()
                    .map(|ip| ip.segment(seg.start, seg.end))
                    .collect();
                mine_segment(seg, &values, opts)
            })
            .collect();
    }
    // The histogram pass captures `Arc`s (not borrows) so its shards
    // can run as `'static` tasks on a shared pool; without a pool the
    // same closure runs on the scoped path, shard for shard.
    let addrs = Arc::clone(working);
    let segs: Arc<Vec<Segment>> = Arc::new(segments.to_vec());
    let merged: Vec<Histogram> = exec
        .par_map_reduce_shared(
            working.len(),
            move |range| shard_histograms(&addrs.as_slice()[range], &segs),
            |acc, part| {
                for (a, b) in acc.iter_mut().zip(&part) {
                    a.merge(b);
                }
            },
        )
        .unwrap_or_else(|| vec![Histogram::default(); segments.len()]);
    let items: Vec<(&Segment, Histogram)> = segments.iter().zip(merged).collect();
    exec.par_map_owned(items, |(seg, hist)| mine_segment_histogram(seg, hist, opts))
}

/// One mining shard: a single pass over `addrs` that slices every
/// segment's value straight off each address's `u128`
/// ([`Ip6::segment`]: one shift + one mask, no nybble expansion),
/// then run-length-encodes one histogram per segment.
///
/// The shard is processed in fixed-size sub-blocks so the transient
/// value buffers stay at `segments × BLOCK × 16 B` (a few MB) instead
/// of `segments × shard_len` — at paper scale (1M addresses, ~8
/// segments) the naive all-at-once buffers would transiently hold
/// over 100 MB. Sub-block histograms merge exactly, so the result is
/// byte-identical to a single-block pass.
fn shard_histograms(addrs: &[Ip6], segments: &[Segment]) -> Vec<Histogram> {
    /// Addresses per sub-block (65 536 × 16 B = 1 MiB per segment).
    const BLOCK: usize = 1 << 16;
    let mut hists: Vec<Histogram> = vec![Histogram::default(); segments.len()];
    for block in addrs.chunks(BLOCK) {
        let mut values: Vec<Vec<u128>> = segments
            .iter()
            .map(|_| Vec::with_capacity(block.len()))
            .collect();
        for &ip in block {
            for (vs, seg) in values.iter_mut().zip(segments) {
                vs.push(ip.segment(seg.start, seg.end));
            }
        }
        for (h, vs) in hists.iter_mut().zip(values) {
            h.merge(&Histogram::from_values_owned(vs));
        }
    }
    hists
}

/// Encodes the working set as a columnar [`Dataset`]: one byte column
/// per mined segment, built shard-wise on the scheduler with no
/// intermediate row `Vec`s.
///
/// Each shard slices segment values directly off each address
/// ([`Ip6::segment`]), encodes them into a fixed on-stack buffer,
/// and appends the row
/// to its per-segment columns only if **every** segment encodes
/// (addresses outside the dictionaries are dropped, as in the serial
/// reference). Shard columns concatenate in shard order, so the row
/// order — and therefore the dataset — is identical at any worker
/// count; with one worker the single shard runs inline and *is* the
/// serial reference.
fn encode_dataset(working: &Arc<AddressSet>, mined: &[MinedSegment], exec: &Scheduler) -> Dataset {
    let cardinalities: Vec<usize> = mined.iter().map(|m| m.cardinality()).collect();
    // `Arc`-captured inputs, for the same reason as `mine_all`: the
    // shard closure must be `'static` to ride a shared pool.
    let addrs = Arc::clone(working);
    let dicts: Arc<Vec<MinedSegment>> = Arc::new(mined.to_vec());
    let columns = exec
        .par_map_reduce_shared(
            working.len(),
            move |range| {
                let mut cols: Vec<Vec<u8>> = dicts.iter().map(|_| Vec::new()).collect();
                // Segments partition at most 32 nybbles, so a row
                // always fits this stack buffer.
                let mut row = [0u8; 32];
                'rows: for ip in &addrs.as_slice()[range] {
                    for (slot, m) in row.iter_mut().zip(dicts.iter()) {
                        match m.encode(ip.segment(m.segment.start, m.segment.end)) {
                            Some(code) => *slot = code as u8,
                            None => continue 'rows,
                        }
                    }
                    for (col, &code) in cols.iter_mut().zip(&row[..dicts.len()]) {
                        col.push(code);
                    }
                }
                cols
            },
            |acc, part| {
                for (a, p) in acc.iter_mut().zip(part) {
                    a.extend_from_slice(&p);
                }
            },
        )
        .unwrap_or_else(|| mined.iter().map(|_| Vec::new()).collect());
    Dataset::from_columns(cardinalities, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use crate::profile;

    fn training_set() -> AddressSet {
        (0..900u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 8) << 80) | (i % 120)))
            .collect()
    }

    #[test]
    fn staged_matches_one_shot_exactly() {
        let set = training_set();
        let staged = Pipeline::new(Config::default())
            .profile(set.iter())
            .unwrap()
            .segment()
            .mine()
            .train()
            .unwrap()
            .into_model();
        let one_shot = EntropyIp::new().analyze(&set).unwrap();
        assert_eq!(profile::export(&staged), profile::export(&one_shot));
    }

    #[test]
    fn stages_expose_their_artifacts() {
        let set = training_set();
        let profiled = Pipeline::new(Config::default())
            .profile(set.iter())
            .unwrap();
        assert_eq!(profiled.num_addresses(), set.len());
        assert!(profiled.total_entropy() > 0.0);
        assert_eq!(profiled.entropy()[0], 0.0, "constant top nybble");
        let segmented = profiled.segment();
        assert!(segmented.segments().len() >= 3);
        assert_eq!(segmented.analysis().width, 32);
        let mined = segmented.mine();
        assert_eq!(mined.mined().len(), segmented.segments().len());
        let trained = mined.train().unwrap();
        assert_eq!(trained.model().mined().len(), mined.mined().len());
    }

    #[test]
    fn remine_without_reprofiling() {
        // Last byte: dominant value 7 plus three stragglers — the
        // stragglers are enumerated verbatim by the default miner but
        // collapse into one range when enumeration is disabled.
        let base = 0x2001_0db8u128 << 96;
        let mut v: Vec<Ip6> = (0..500u128).map(|i| Ip6(base | (i << 8) | 7)).collect();
        v.extend(
            [100u128, 200, 300]
                .iter()
                .map(|&x| Ip6(base | (600 << 8) | x)),
        );
        let segmented = Pipeline::new(Config::default())
            .profile(v)
            .unwrap()
            .segment();
        let default = segmented.mine();
        let coarse = segmented.mine_with(&MiningOptions {
            enumerate_limit: 0,
            ..MiningOptions::default()
        });
        // Same segmentation, different dictionaries.
        assert_eq!(default.analysis(), coarse.analysis());
        assert_ne!(
            default
                .mined()
                .iter()
                .map(|m| m.cardinality())
                .sum::<usize>(),
            coarse
                .mined()
                .iter()
                .map(|m| m.cardinality())
                .sum::<usize>(),
        );
        // Both still train.
        assert!(coarse.train().is_ok());
    }

    #[test]
    fn retrain_without_remining() {
        let mined = Pipeline::new(Config::default())
            .profile(training_set().iter())
            .unwrap()
            .segment()
            .mine();
        let dense = mined.train().unwrap();
        let edgeless = mined
            .train_with(&LearnOptions {
                max_parents: 0,
                ..LearnOptions::default()
            })
            .unwrap();
        assert!(edgeless.model().bn().edges().is_empty());
        // Dictionaries are shared; only the BN differs.
        assert_eq!(dense.model().mined(), edgeless.model().mined());
    }

    #[test]
    fn oversized_dictionary_is_a_clean_error() {
        // Extreme MiningOptions can enumerate a dictionary past the
        // 256 codes the byte-columnar trainer stores; training must
        // fail with Unsupported, not panic inside the encoder.
        let set: AddressSet = (0..400u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | (i.wrapping_mul(2654435761) % 65536)))
            .collect();
        let segmented = Pipeline::new(Config::default())
            .profile(set.iter())
            .unwrap()
            .segment();
        let mined = segmented.mine_with(&MiningOptions {
            top_per_step: 0,
            enumerate_limit: 1000,
            ..MiningOptions::default()
        });
        let max_card = mined.mined().iter().map(|m| m.cardinality()).max().unwrap();
        assert!(max_card > 256, "setup should over-mine (got {max_card})");
        match mined.train() {
            Err(EipError::Unsupported(msg)) => {
                assert!(msg.contains("256"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert_eq!(
            Pipeline::new(Config::default())
                .profile(std::iter::empty())
                .unwrap_err(),
            EipError::EmptySet
        );
    }

    #[test]
    fn profile_lines_streams_and_reports_errors() {
        let p = Pipeline::new(Config::default());
        let good = "# header\n2001:db8::1\n\n20010db8000000000000000000000002\n";
        let profiled = p.profile_lines(good.as_bytes()).unwrap();
        assert_eq!(profiled.num_addresses(), 2);
        let bad = "2001:db8::1\nbogus\n";
        match p.profile_lines(bad.as_bytes()) {
            Err(EipError::Parse(msg)) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn streaming_profile_matches_serial_oracle() {
        // The chunked parallel engine must reproduce the serial
        // profile bit for bit, at clamped-tiny and huge chunk sizes,
        // serial and sharded, in both width modes.
        let mut text = String::from("# corpus\n");
        for ip in training_set().iter() {
            text.push_str(&ip.to_hex32());
            text.push('\n');
        }
        for cfg in [Config::default(), Config::top64()] {
            let serial = Pipeline::new(cfg.clone())
                .profile_lines(text.as_bytes())
                .unwrap();
            for (chunk, workers) in [(1usize, 2usize), (64, 4), (1 << 22, 1)] {
                let p = Pipeline::new(cfg.clone().with_parallelism(workers));
                let (streamed, report) = p
                    .profile_reader_streaming(
                        text.as_bytes(),
                        &IngestOptions {
                            chunk_bytes: chunk,
                            ..IngestOptions::default()
                        },
                    )
                    .unwrap();
                assert_eq!(streamed.entropy(), serial.entropy(), "chunk={chunk}");
                assert_eq!(streamed.acr(), serial.acr());
                assert_eq!(streamed.addresses(), serial.addresses());
                assert_eq!(report.distinct, serial.num_addresses());
                assert_eq!(report.bytes, text.len() as u64);
            }
        }
    }

    #[test]
    fn top64_config_reduces_to_prefixes() {
        let profiled = Pipeline::new(Config::top64())
            .profile(training_set().iter())
            .unwrap();
        assert_eq!(profiled.num_addresses(), 8, "8 distinct /64s");
        for ip in profiled.addresses().iter() {
            assert_eq!(ip.value() & u128::from(u64::MAX), 0);
        }
    }

    #[test]
    fn parallel_mining_matches_serial() {
        let set = training_set();
        let serial = Pipeline::new(Config::default()).run(set.iter()).unwrap();
        let parallel = Pipeline::new(Config::default().with_parallelism(4))
            .run(set.iter())
            .unwrap();
        assert_eq!(profile::export(&serial), profile::export(&parallel));
    }

    #[test]
    fn pool_attached_pipeline_matches_scoped() {
        // Attaching a shared work-stealing pool is a pure execution-
        // venue change: the full staged model must be byte-identical
        // to the scoped run at every pool size and worker geometry.
        let set = training_set();
        let serial = Pipeline::new(Config::default()).run(set.iter()).unwrap();
        let expect = profile::export(&serial);
        for pool_size in [1usize, 2, 7, 8] {
            let pool = Arc::new(eip_exec::pool::StealPool::new(pool_size));
            for workers in [2usize, 5] {
                let cfg = Config::default()
                    .with_parallelism(workers)
                    .with_pool(Arc::clone(&pool));
                assert!(cfg.scheduler().has_pool());
                assert_eq!(cfg.scheduler().threads(), 1, "scoped budget pinned");
                let model = Pipeline::new(cfg).run(set.iter()).unwrap();
                assert_eq!(
                    profile::export(&model),
                    expect,
                    "pool {pool_size}, workers {workers}"
                );
            }
        }
    }

    #[test]
    fn sharded_engine_is_worker_count_independent() {
        // Profiling and mining both shard when parallelism > 1; the
        // model (and every intermediate artifact) must be identical
        // at every worker count, including counts that exceed the
        // input size.
        let set = training_set();
        let serial = Pipeline::new(Config::default())
            .profile(set.iter())
            .unwrap();
        for workers in [2usize, 3, 5, 16] {
            let parallel = Pipeline::new(Config::default().with_parallelism(workers))
                .profile(set.iter())
                .unwrap();
            assert_eq!(parallel.entropy(), serial.entropy(), "{workers} workers");
            assert_eq!(parallel.acr(), serial.acr());
            let mined = parallel.segment().mine();
            assert_eq!(mined.mined(), serial.segment().mine().mined());
        }
    }
}
