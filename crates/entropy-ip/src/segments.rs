//! Address segmentation (§4.2).
//!
//! Entropy exposes which parts of the address vary; segmentation
//! groups adjacent nybbles of similar entropy into contiguous blocks.
//! The paper's rule, quoted:
//!
//! > "Start a new segment at nybble i whenever Ĥ(X_i) compared with
//! > Ĥ(X_{i−1}) passes through any of the thresholds
//! > T = {0.025, 0.1, 0.3, 0.5, 0.9}. We also employ a hysteresis of
//! > T_h = 0.05 […]. For example, if Ĥ(X_{i−1}) = 0.49, then in
//! > order to start the next segment Ĥ(X_i) has to be either less
//! > than 0.3 or greater than 0.54, with 0.3 being the lower
//! > threshold for Ĥ(X_{i−1}) in T (without hysteresis) and 0.54
//! > being Ĥ(X_{i−1}) + T_h (with hysteresis)."
//!
//! So with `prev = Ĥ(X_{i−1})`, a new segment starts at `i` iff
//!
//! * `Ĥ(X_i) > max(next_threshold_above(prev), prev + T_h)`, or
//! * `Ĥ(X_i) < min(next_threshold_below(prev), prev − T_h)`.
//!
//! (In the worked example the upward bound is `max(0.5, 0.54) = 0.54`
//! and the downward bound `min(0.3, 0.44) = 0.3`, matching the quote.)
//!
//! Two *hard* rules are always applied: "we always make the bits
//! 1-32 a separate segment" (RIRs allocate /32s to operators), which
//! both forces a boundary after nybble 8 and suppresses any
//! threshold-derived boundary inside nybbles 1–8; and "we always put
//! a boundary after the 64th bit", the customary network/interface
//! split.

use std::fmt;

/// One address segment: a contiguous, inclusive run of 1-based
/// nybble positions with a letter label ("A", "B", …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Label: "A", "B", …, "Z", "AA", … in left-to-right order.
    pub label: String,
    /// First nybble position (1-based, inclusive).
    pub start: usize,
    /// Last nybble position (1-based, inclusive).
    pub end: usize,
}

impl Segment {
    /// Width of the segment in nybbles.
    pub fn len_nybbles(&self) -> usize {
        self.end - self.start + 1
    }

    /// Bit range `[start_bit, end_bit)` covered by the segment,
    /// 0-based from the top of the address (the paper labels its
    /// Table 3 segments this way, e.g. "G (64-116)").
    pub fn bit_range(&self) -> (usize, usize) {
        ((self.start - 1) * 4, self.end * 4)
    }

    /// Number of possible values of this segment.
    pub fn value_space(&self) -> u128 {
        if self.len_nybbles() >= 32 {
            u128::MAX
        } else {
            1u128 << (4 * self.len_nybbles())
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.bit_range();
        write!(f, "{} (bits {lo}-{hi})", self.label)
    }
}

/// Parameters of the segmentation algorithm.
#[derive(Clone, Debug)]
pub struct SegmentationOptions {
    /// The threshold set T. Must be sorted ascending.
    pub thresholds: Vec<f64>,
    /// Hysteresis T_h.
    pub hysteresis: f64,
    /// 1-based nybble positions *after which* a boundary is forced.
    /// Default `[8, 16]` (bits 32 and 64). Positions beyond the
    /// analysis width are ignored.
    pub hard_boundaries: Vec<usize>,
    /// Nybbles `1..=fixed_prefix` are always one segment: threshold
    /// boundaries inside this span are suppressed ("we always make
    /// the bits 1-32 a separate segment"). Default 8; set to 0 to
    /// disable.
    pub fixed_prefix: usize,
    /// Analysis width in nybbles (32 for full addresses, 16 when
    /// predicting /64 prefixes as in §5.6).
    pub width: usize,
}

impl Default for SegmentationOptions {
    fn default() -> Self {
        SegmentationOptions {
            thresholds: vec![0.025, 0.1, 0.3, 0.5, 0.9],
            hysteresis: 0.05,
            hard_boundaries: vec![8, 16],
            fixed_prefix: 8,
            width: 32,
        }
    }
}

impl SegmentationOptions {
    /// Variant for top-64-bit (prefix) analysis: width 16, hard
    /// boundary only at /32.
    pub fn top64() -> Self {
        SegmentationOptions {
            width: 16,
            hard_boundaries: vec![8],
            ..Default::default()
        }
    }
}

/// Converts a 0-based segment index to its letter label:
/// 0 → "A", 25 → "Z", 26 → "AA".
pub fn label_for(index: usize) -> String {
    let mut n = index;
    let mut out = String::new();
    loop {
        out.insert(0, (b'A' + (n % 26) as u8) as char);
        if n < 26 {
            break;
        }
        n = n / 26 - 1;
    }
    out
}

/// Segments the entropy profile. `entropy[i]` is the normalized
/// entropy of 1-based nybble `i + 1`; only the first `opts.width`
/// entries are used.
///
/// # Panics
/// Panics if `opts.width` is 0 or exceeds `entropy.len()`, or the
/// threshold list is empty/unsorted.
pub fn segment_entropy_profile(entropy: &[f64], opts: &SegmentationOptions) -> Vec<Segment> {
    assert!(
        opts.width >= 1 && opts.width <= entropy.len(),
        "bad segmentation width"
    );
    assert!(!opts.thresholds.is_empty(), "empty threshold set");
    assert!(
        opts.thresholds.windows(2).all(|w| w[0] < w[1]),
        "thresholds must be sorted ascending"
    );

    let mut boundaries: Vec<usize> = Vec::new(); // positions i where a NEW segment starts
    for i in 2..=opts.width {
        if i <= opts.fixed_prefix {
            continue; // bits 1-32 are always one segment
        }
        let prev = entropy[i - 2];
        let cur = entropy[i - 1];
        let above = opts
            .thresholds
            .iter()
            .copied()
            .find(|&t| t > prev)
            .unwrap_or(f64::INFINITY);
        let below = opts
            .thresholds
            .iter()
            .copied()
            .rev()
            .find(|&t| t < prev)
            .unwrap_or(f64::NEG_INFINITY);
        let up_bound = above.max(prev + opts.hysteresis);
        let down_bound = below.min(prev - opts.hysteresis);
        if cur > up_bound || cur < down_bound {
            boundaries.push(i);
        }
    }
    for &pos in &opts.hard_boundaries {
        if pos < opts.width && !boundaries.contains(&(pos + 1)) {
            boundaries.push(pos + 1);
        }
    }
    boundaries.sort_unstable();

    let mut segments = Vec::new();
    let mut start = 1usize;
    for &b in &boundaries {
        segments.push(Segment {
            label: label_for(segments.len()),
            start,
            end: b - 1,
        });
        start = b;
    }
    segments.push(Segment {
        label: label_for(segments.len()),
        start,
        end: opts.width,
    });
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SegmentationOptions {
        SegmentationOptions::default()
    }

    #[test]
    fn worked_example_bounds() {
        // prev = 0.49: new segment iff cur < 0.3 or cur > 0.54.
        let mut e = [0.49f64; 32];
        e[9] = 0.53; // within bounds: no boundary at nybble 10
        let segs = segment_entropy_profile(&e, &opts());
        // Only hard boundaries at 9 and 17 remain.
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].start, segs[0].end), (1, 8));
        assert_eq!((segs[1].start, segs[1].end), (9, 16));
        assert_eq!((segs[2].start, segs[2].end), (17, 32));
    }

    #[test]
    fn upward_crossing_starts_segment() {
        let mut e = [0.49f64; 32];
        e[19] = 0.55; // > 0.54 -> boundary at nybble 20
        for x in &mut e[20..] {
            *x = 0.55;
        }
        let segs = segment_entropy_profile(&e, &opts());
        assert!(segs.iter().any(|s| s.start == 20), "{segs:?}");
    }

    #[test]
    fn downward_crossing_starts_segment() {
        let mut e = [0.49f64; 32];
        for x in &mut e[19..] {
            *x = 0.29; // < 0.3 -> boundary at nybble 20
        }
        let segs = segment_entropy_profile(&e, &opts());
        assert!(segs.iter().any(|s| s.start == 20));
    }

    #[test]
    fn hysteresis_blocks_small_threshold_crossings() {
        // prev = 0.49, cur = 0.51 crosses threshold 0.5 but the jump
        // (0.02) is below the hysteresis: no segment.
        let mut e = [0.49f64; 32];
        for x in &mut e[19..] {
            *x = 0.51;
        }
        let segs = segment_entropy_profile(&e, &opts());
        assert!(!segs.iter().any(|s| s.start == 20), "{segs:?}");
    }

    #[test]
    fn big_jump_without_threshold_crossing_is_no_boundary() {
        // 0.31 -> 0.45: jump 0.14 > Th but no threshold in (0.31,
        // 0.45]: the pair does not pass through any threshold.
        let mut e = [0.31f64; 32];
        for x in &mut e[19..] {
            *x = 0.45;
        }
        let segs = segment_entropy_profile(&e, &opts());
        assert!(!segs.iter().any(|s| s.start == 20), "{segs:?}");
    }

    #[test]
    fn constant_profile_gives_hard_boundaries_only() {
        let e = [0.0f64; 32];
        let segs = segment_entropy_profile(&e, &opts());
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].label, "A");
        assert_eq!(segs[1].label, "B");
        assert_eq!(segs[2].label, "C");
    }

    #[test]
    fn segments_partition_positions() {
        // Irregular profile: verify exact cover of 1..=32 regardless.
        let e: Vec<f64> = (0..32).map(|i| ((i * 7) % 10) as f64 / 10.0).collect();
        let segs = segment_entropy_profile(&e, &opts());
        assert_eq!(segs[0].start, 1);
        assert_eq!(segs.last().unwrap().end, 32);
        for w in segs.windows(2) {
            assert_eq!(w[0].end + 1, w[1].start);
        }
    }

    #[test]
    fn top64_mode_covers_16_nybbles() {
        let e = [0.5f64; 32];
        let segs = segment_entropy_profile(&e, &SegmentationOptions::top64());
        assert_eq!(segs.last().unwrap().end, 16);
        assert_eq!(segs.len(), 2); // hard /32 boundary only
    }

    #[test]
    fn labels_extend_past_z() {
        assert_eq!(label_for(0), "A");
        assert_eq!(label_for(10), "K");
        assert_eq!(label_for(25), "Z");
        assert_eq!(label_for(26), "AA");
        assert_eq!(label_for(27), "AB");
    }

    #[test]
    fn bit_ranges_match_paper_convention() {
        let s = Segment {
            label: "G".into(),
            start: 17,
            end: 29,
        };
        assert_eq!(s.bit_range(), (64, 116)); // Table 3: "G (64-116)"
        assert_eq!(s.len_nybbles(), 13);
    }

    #[test]
    fn fig1_like_profile_produces_many_segments() {
        // A profile oscillating across thresholds: should cut several
        // segments, not just the hard ones.
        let mut e = [0.0f64; 32];
        for (i, x) in e.iter_mut().enumerate() {
            *x = match i % 4 {
                0 => 0.05,
                1 => 0.4,
                2 => 0.95,
                _ => 0.2,
            };
        }
        let segs = segment_entropy_profile(&e, &opts());
        assert!(segs.len() > 5);
    }
}
