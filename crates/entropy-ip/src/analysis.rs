//! The measurement half of the pipeline: entropy profile, ACR
//! profile, total entropy, and the resulting segmentation.
//!
//! An [`Analysis`] is everything the paper's Fig. 7(a)/9(a)/10(a)
//! panels display — the solid entropy line, the dashed ACR line, the
//! Ĥ_S value in the legend, and the lettered segment boundaries.

use eip_addr::AddressSet;
use eip_stats::{acr4, NybbleCounts};

use crate::segments::{segment_entropy_profile, Segment, SegmentationOptions};

/// Entropy + ACR profiles and segmentation of an address set.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Normalized per-nybble entropy, Ĥ(X₁)…Ĥ(X₃₂). Entries past
    /// `width` are zero in top-64 mode.
    pub entropy: [f64; 32],
    /// Normalized 4-bit aggregate count ratios.
    pub acr: [f64; 32],
    /// Total entropy Ĥ_S (sum over the analyzed width).
    pub total_entropy: f64,
    /// The discovered segments, left to right.
    pub segments: Vec<Segment>,
    /// Number of (distinct) addresses analyzed.
    pub num_addresses: usize,
    /// Analysis width in nybbles (32, or 16 in top-64 mode).
    pub width: usize,
}

impl Analysis {
    /// Runs entropy analysis + segmentation on a set.
    ///
    /// In top-64 mode (`opts.width == 16`) the caller should already
    /// have reduced the set to /64 networks; the profile is computed
    /// on the addresses as given, but only the first 16 nybbles are
    /// segmented and summed into Ĥ_S.
    pub fn compute(ips: &AddressSet, opts: &SegmentationOptions) -> Analysis {
        let mut counts = NybbleCounts::new();
        counts.observe_all(ips.iter());
        Analysis::from_profile(counts.entropy(), acr4(ips), ips.len(), opts)
    }

    /// Assembles an analysis from already-computed entropy and ACR
    /// profiles (the segmentation and Ĥ_S are derived here). This is
    /// the single construction path shared by [`Analysis::compute`]
    /// and the staged pipeline's segment stage.
    pub fn from_profile(
        entropy: [f64; 32],
        acr: [f64; 32],
        num_addresses: usize,
        opts: &SegmentationOptions,
    ) -> Analysis {
        let total_entropy = entropy[..opts.width].iter().sum();
        let segments = segment_entropy_profile(&entropy, opts);
        Analysis {
            entropy,
            acr,
            total_entropy,
            segments,
            num_addresses,
            width: opts.width,
        }
    }

    /// The segment containing 1-based nybble `pos`, if any.
    pub fn segment_at(&self, pos: usize) -> Option<&Segment> {
        self.segments
            .iter()
            .find(|s| (s.start..=s.end).contains(&pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_addr::Ip6;

    fn structured_set() -> AddressSet {
        // One /48, 16 subnets in nybble 13..16, tiny IID counter.
        let mut v = Vec::new();
        for subnet in 0..16u128 {
            for host in 1..=8u128 {
                v.push(Ip6((0x2001_0db8_0001u128 << 80) | (subnet << 64) | host));
            }
        }
        AddressSet::from_iter(v)
    }

    #[test]
    fn profile_shapes() {
        let a = Analysis::compute(&structured_set(), &SegmentationOptions::default());
        assert_eq!(a.num_addresses, 128);
        assert_eq!(a.width, 32);
        // Constant prefix nybbles: zero entropy.
        for pos in 1..=12 {
            assert_eq!(a.entropy[pos - 1], 0.0, "pos {pos}");
        }
        // Subnet nybble (16) fully uniform.
        assert!((a.entropy[15] - 1.0).abs() < 1e-9);
        // ACR flags the subnet nybble as discriminating.
        assert!(a.acr[15] > 0.9);
        // Ĥ_S equals the profile sum.
        let sum: f64 = a.entropy.iter().sum();
        assert!((a.total_entropy - sum).abs() < 1e-12);
    }

    #[test]
    fn segments_cover_width_and_lookup_works() {
        let a = Analysis::compute(&structured_set(), &SegmentationOptions::default());
        assert_eq!(a.segments.first().unwrap().start, 1);
        assert_eq!(a.segments.last().unwrap().end, 32);
        let s = a.segment_at(16).unwrap();
        assert!((s.start..=s.end).contains(&16));
        assert!(a.segment_at(33).is_none());
    }

    #[test]
    fn top64_mode_sums_only_prefix_entropy() {
        let set = structured_set();
        let prefixes: AddressSet = set.iter().map(|ip| ip.slash64()).collect();
        let a = Analysis::compute(&prefixes, &SegmentationOptions::top64());
        assert_eq!(a.width, 16);
        assert_eq!(a.segments.last().unwrap().end, 16);
        // All IID nybbles are zero in the truncated set.
        for pos in 17..=32 {
            assert_eq!(a.entropy[pos - 1], 0.0);
        }
    }
}
