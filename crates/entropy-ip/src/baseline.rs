//! Baseline generative models for ablation against the Bayesian
//! network (§4.5).
//!
//! The paper justifies BNs over two alternatives it considered:
//! Probability Trees ("require information on virtually every
//! possible combination of the segment values") and Markov Models
//! ("assume that a given segment depends only on the previous
//! segment"). We implement the two tractable baselines to let the
//! ablation benches quantify the gap:
//!
//! * [`IndependentModel`] — every segment sampled independently from
//!   its marginal (a BN with no edges);
//! * [`MarkovModel`] — first-order chain: each segment conditioned on
//!   its immediate predecessor only.
//!
//! Both train on the same encoded dataset as the BN and reuse the
//! model's segment dictionaries for decoding, so hit-rate differences
//! are attributable purely to the dependency structure.

use std::collections::HashSet;

use eip_addr::Ip6;
use eip_bayes::{Cpt, Dataset};
use rand::Rng;

use crate::error::EipError;
use crate::model::IpModel;

/// Independent per-segment sampler (BN with no edges).
#[derive(Clone, Debug)]
pub struct IndependentModel {
    marginals: Vec<Vec<f64>>,
}

impl IndependentModel {
    /// Fits marginals from an encoded dataset.
    pub fn fit(data: &Dataset) -> Self {
        let mut marginals = Vec::with_capacity(data.num_vars());
        for v in 0..data.num_vars() {
            let mut counts = vec![0u64; data.cardinality(v)];
            for &code in data.column(v) {
                counts[code as usize] += 1;
            }
            let cpt = Cpt::from_counts(data.cardinality(v), vec![], &counts, 0.5);
            marginals.push(cpt.row(&[]).to_vec());
        }
        IndependentModel { marginals }
    }

    /// Samples one code row.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        self.marginals
            .iter()
            .map(|m| eip_bayes::sample::sample_index(m, rng))
            .collect()
    }
}

/// First-order Markov chain over segments.
#[derive(Clone, Debug)]
pub struct MarkovModel {
    initial: Vec<f64>,
    transitions: Vec<Cpt>, // transitions[i]: P(X_{i+1} | X_i)
}

impl MarkovModel {
    /// Fits the chain from an encoded dataset.
    ///
    /// An empty dataset (or one with no variables) cannot anchor the
    /// initial distribution and yields
    /// [`EipError::InsufficientData`].
    pub fn fit(data: &Dataset) -> Result<Self, EipError> {
        if data.is_empty() || data.num_vars() == 0 {
            return Err(EipError::InsufficientData(
                "Markov baseline needs a non-empty encoded dataset".into(),
            ));
        }
        let mut counts0 = vec![0u64; data.cardinality(0)];
        for &code in data.column(0) {
            counts0[code as usize] += 1;
        }
        let initial = Cpt::from_counts(data.cardinality(0), vec![], &counts0, 0.5)
            .row(&[])
            .to_vec();
        let mut transitions = Vec::new();
        for v in 1..data.num_vars() {
            let prev_card = data.cardinality(v - 1);
            let card = data.cardinality(v);
            let mut counts = vec![0u64; prev_card * card];
            for (&prev, &cur) in data.column(v - 1).iter().zip(data.column(v)) {
                counts[prev as usize * card + cur as usize] += 1;
            }
            transitions.push(Cpt::from_counts(card, vec![prev_card], &counts, 0.5));
        }
        Ok(MarkovModel {
            initial,
            transitions,
        })
    }

    /// Samples one code row.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let mut row = Vec::with_capacity(self.transitions.len() + 1);
        row.push(eip_bayes::sample::sample_index(&self.initial, rng));
        for t in &self.transitions {
            let prev = *row.last().unwrap();
            row.push(eip_bayes::sample::sample_index(t.row(&[prev]), rng));
        }
        row
    }
}

/// Re-encodes the training set of `model` (helper for fitting
/// baselines on exactly the data the BN saw).
pub fn encoded_dataset(model: &IpModel, ips: &eip_addr::AddressSet) -> Dataset {
    let cards: Vec<usize> = model.mined().iter().map(|m| m.cardinality()).collect();
    let rows: Vec<Vec<usize>> = ips.iter().filter_map(|ip| model.encode(ip)).collect();
    Dataset::new(cards, rows)
}

/// Generates unique candidates from any row sampler, decoding with
/// the model's dictionaries (so all three model classes share the
/// same decoder).
pub fn generate_with<R, F>(
    model: &IpModel,
    mut sample: F,
    n: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Vec<Ip6>
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> Vec<usize>,
{
    let mut seen: HashSet<Ip6> = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    for _ in 0..max_attempts {
        if out.len() >= n {
            break;
        }
        let row = sample(rng);
        let ip = model.decode(&row, rng);
        if seen.insert(ip) {
            out.push(ip);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use eip_addr::AddressSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Segment A determines the IID style; a Markov chain loses this
    /// across the intervening independent segment, the BN keeps it.
    fn correlated_set() -> AddressSet {
        let mut v = Vec::new();
        for subnet in 0..16u128 {
            for host in 0..40u128 {
                v.push(Ip6((0x2001_0db8u128 << 96) | (subnet << 80) | host));
            }
        }
        for subnet in 0..16u128 {
            for host in 0..24u128 {
                v.push(Ip6((0x3001_0db8u128 << 96)
                    | (subnet << 80)
                    | (0xff00 + host)));
            }
        }
        AddressSet::from_iter(v)
    }

    #[test]
    fn baselines_fit_and_sample() {
        let set = correlated_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let data = encoded_dataset(&model, &set);
        let ind = IndependentModel::fit(&data);
        let mm = MarkovModel::fit(&data).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let r1 = ind.sample_row(&mut rng);
            let r2 = mm.sample_row(&mut rng);
            assert_eq!(r1.len(), data.num_vars());
            assert_eq!(r2.len(), data.num_vars());
            for (v, (&a, &b)) in r1.iter().zip(r2.iter()).enumerate() {
                assert!(a < data.cardinality(v) && b < data.cardinality(v));
            }
        }
    }

    #[test]
    fn bn_beats_independent_on_correlated_structure() {
        let set = correlated_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let data = encoded_dataset(&model, &set);
        let ind = IndependentModel::fit(&data);
        let mut rng = StdRng::seed_from_u64(7);

        // Valid = combinations that exist in the ground truth: the
        // /32 value must agree with the IID marker.
        let valid = |ip: Ip6| {
            let top = ip.bits(0, 32);
            let marker = ip.bits(112, 120); // nybbles 29-30: 00 vs ff
            (top == 0x2001_0db8 && marker == 0) || (top == 0x3001_0db8 && marker == 0xff)
        };

        let bn_out = generate_with(
            &model,
            |r| eip_bayes::sample_row(model.bn(), r),
            400,
            40_000,
            &mut rng,
        );
        let ind_out = generate_with(&model, |r| ind.sample_row(r), 400, 40_000, &mut rng);
        let bn_ok = bn_out.iter().filter(|&&ip| valid(ip)).count() as f64 / bn_out.len() as f64;
        let ind_ok = ind_out.iter().filter(|&&ip| valid(ip)).count() as f64 / ind_out.len() as f64;
        assert!(
            bn_ok > ind_ok + 0.1,
            "BN validity {bn_ok:.2} should clearly beat independent {ind_ok:.2}"
        );
    }

    #[test]
    fn markov_matches_adjacent_dependencies() {
        // When the dependency is between adjacent segments, the
        // Markov chain should capture it too.
        let set = correlated_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let data = encoded_dataset(&model, &set);
        let mm = MarkovModel::fit(&data).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let out = generate_with(&model, |r| mm.sample_row(r), 200, 20_000, &mut rng);
        assert!(out.len() >= 100);
    }

    #[test]
    fn markov_rejects_empty() {
        assert!(matches!(
            MarkovModel::fit(&Dataset::new(vec![2], vec![])),
            Err(EipError::InsufficientData(_))
        ));
    }
}
