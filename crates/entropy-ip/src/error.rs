//! The workspace-wide error type (re-export).
//!
//! [`EipError`] is defined in [`eip_addr::error`] — the substrate
//! crate everything depends on — so that even low-level ingestion
//! like [`eip_addr::AddressSet::parse_lines`] reports typed errors
//! instead of `String`s. This module re-exports it under the name
//! most callers use, `entropy_ip::EipError`; the variants, exit-code
//! mapping, and trait impls are documented there.
//!
//! ```
//! use eip_addr::AddressSet;
//! use entropy_ip::{EipError, EntropyIp};
//!
//! let err = EntropyIp::new().analyze(&AddressSet::new()).unwrap_err();
//! assert_eq!(err, EipError::EmptySet);
//! // The same type flows out of substrate-level parsing.
//! assert!(matches!(
//!     AddressSet::parse_lines("bogus").unwrap_err(),
//!     EipError::Parse(_)
//! ));
//! ```

pub use eip_addr::error::EipError;
