//! Batch candidate generation with bookkeeping (§5.5).
//!
//! [`IpModel::generate`] is the raw sampler; [`Generator`] adds the
//! bookkeeping an evaluation campaign needs: exclusion of the
//! training set (the paper counts hits against the *testing* set and
//! "New /64s" not seen in training), duplicate accounting, and a
//! configurable attempt budget.

use std::collections::HashSet;

use eip_addr::{AddressSet, Ip6};
use rand::Rng;

use crate::model::IpModel;

/// Outcome of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationReport {
    /// The unique candidates, in generation order.
    pub candidates: Vec<Ip6>,
    /// Raw sampling attempts spent.
    pub attempts: usize,
    /// Draws discarded as duplicates of earlier candidates.
    pub duplicates: usize,
    /// Draws discarded because they were in the exclusion set.
    pub excluded: usize,
}

/// Configurable batch generator over a trained model.
pub struct Generator<'m> {
    model: &'m IpModel,
    exclude: Option<&'m AddressSet>,
    attempts_per_candidate: usize,
}

impl<'m> Generator<'m> {
    /// A generator with no exclusions and a 10× attempt budget.
    pub fn new(model: &'m IpModel) -> Self {
        Generator {
            model,
            exclude: None,
            attempts_per_candidate: 10,
        }
    }

    /// Never emit addresses from `set` (typically the training
    /// sample: the paper's evaluation wants *new* addresses).
    pub fn excluding(mut self, set: &'m AddressSet) -> Self {
        self.exclude = Some(set);
        self
    }

    /// Attempt budget as a multiple of the requested candidate count.
    pub fn attempts_per_candidate(mut self, k: usize) -> Self {
        self.attempts_per_candidate = k.max(1);
        self
    }

    /// Generates up to `n` unique candidates.
    pub fn run<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> GenerationReport {
        let budget = n.saturating_mul(self.attempts_per_candidate);
        let mut seen: HashSet<Ip6> = HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let mut duplicates = 0usize;
        let mut excluded = 0usize;
        while out.len() < n && attempts < budget {
            attempts += 1;
            let row = eip_bayes::sample_row(self.model.bn(), rng);
            let ip = self.model.decode(&row, rng);
            if let Some(ex) = self.exclude {
                if ex.contains(ip) {
                    excluded += 1;
                    continue;
                }
            }
            if !seen.insert(ip) {
                duplicates += 1;
                continue;
            }
            out.push(ip);
        }
        GenerationReport {
            candidates: out,
            attempts,
            duplicates,
            excluded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn training_set() -> AddressSet {
        (0..1000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 16) << 80) | (i % 200)))
            .collect()
    }

    #[test]
    fn excludes_training_addresses() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let report = Generator::new(&model).excluding(&set).run(200, &mut rng);
        for ip in &report.candidates {
            assert!(!set.contains(*ip), "{ip} is a training address");
        }
        assert!(report.attempts >= report.candidates.len());
    }

    #[test]
    fn respects_attempt_budget() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let report = Generator::new(&model)
            .attempts_per_candidate(1)
            .run(1000, &mut rng);
        assert!(report.attempts <= 1000);
        // With a tiny effective space, duplicates are inevitable and
        // must be counted, not returned.
        let uniq: HashSet<Ip6> = report.candidates.iter().copied().collect();
        assert_eq!(uniq.len(), report.candidates.len());
    }

    #[test]
    fn accounting_adds_up() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let r = Generator::new(&model).excluding(&set).run(300, &mut rng);
        assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
    }
}
