//! Batch candidate generation with bookkeeping (§5.5).
//!
//! [`IpModel::generate`] is the raw sampler; [`Generator`] adds the
//! bookkeeping an evaluation campaign needs: exclusion of the
//! training set (the paper counts hits against the *testing* set and
//! "New /64s" not seen in training), duplicate accounting, and a
//! configurable attempt budget.

use eip_addr::{AddressSet, DedupSet, Ip6};
use eip_exec::Scheduler;
use rand::Rng;

use crate::model::IpModel;

/// Outcome of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationReport {
    /// The unique candidates, in generation order.
    pub candidates: Vec<Ip6>,
    /// Raw sampling attempts spent.
    pub attempts: usize,
    /// Draws discarded as duplicates of earlier candidates.
    pub duplicates: usize,
    /// Draws discarded because they were in the exclusion set.
    pub excluded: usize,
}

/// Configurable batch generator over a trained model.
pub struct Generator<'m> {
    model: &'m IpModel,
    exclude: Option<&'m AddressSet>,
    attempts_per_candidate: usize,
    exec: Scheduler,
}

impl<'m> Generator<'m> {
    /// A generator with no exclusions, a 10× attempt budget, and
    /// serial sampling.
    pub fn new(model: &'m IpModel) -> Self {
        Generator {
            model,
            exclude: None,
            attempts_per_candidate: 10,
            exec: Scheduler::default(),
        }
    }

    /// Never emit addresses from `set` (typically the training
    /// sample: the paper's evaluation wants *new* addresses).
    pub fn excluding(mut self, set: &'m AddressSet) -> Self {
        self.exclude = Some(set);
        self
    }

    /// Attempt budget as a multiple of the requested candidate count.
    pub fn attempts_per_candidate(mut self, k: usize) -> Self {
        self.attempts_per_candidate = k.max(1);
        self
    }

    /// Worker threads for [`Generator::run_seeded`] (clamped to at
    /// least 1). The batched output is identical at any setting.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.exec = Scheduler::new(n);
        self
    }

    /// Generates up to `n` unique candidates with the serial
    /// reference sampler ([`eip_bayes::sample_row`]) — the oracle the
    /// compiled-plan path of [`Generator::run_seeded`] is verified
    /// against (their candidate streams are byte-identical on the
    /// same RNG stream; see the equivalence proptests).
    pub fn run<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> GenerationReport {
        self.run_sampling(n, rng, |rng, row| {
            let sampled = eip_bayes::sample_row(self.model.bn(), rng);
            for (slot, &code) in row.iter_mut().zip(&sampled) {
                *slot = code as u8;
            }
        })
    }

    /// Like [`Generator::run`], but sampling rows through the model's
    /// compiled [`SamplingPlan`](eip_bayes::SamplingPlan) into a
    /// reusable buffer — zero allocation per draw, byte-identical
    /// candidates.
    fn run_compiled<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> GenerationReport {
        let plan = self.model.plan();
        self.run_sampling(n, rng, |rng, row| plan.sample_into(row, rng))
    }

    /// The shared generation loop over any row sampler.
    fn run_sampling<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        mut sample: impl FnMut(&mut R, &mut [u8]),
    ) -> GenerationReport {
        let budget = n.saturating_mul(self.attempts_per_candidate);
        let mut seen = DedupSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let mut duplicates = 0usize;
        let mut excluded = 0usize;
        let mut row = vec![0u8; self.model.bn().num_vars()];
        while out.len() < n && attempts < budget {
            attempts += 1;
            sample(rng, &mut row);
            let ip = self.model.decode_codes(&row, rng);
            if let Some(ex) = self.exclude {
                if ex.contains(ip) {
                    excluded += 1;
                    continue;
                }
            }
            if !seen.insert(ip) {
                duplicates += 1;
                continue;
            }
            out.push(ip);
        }
        GenerationReport {
            candidates: out,
            attempts,
            duplicates,
            excluded,
        }
    }

    /// Generates up to `n` unique candidates in deterministic batched
    /// chunks, fanned out over the configured
    /// [`parallelism`](Generator::parallelism) on the
    /// [`eip_exec::Scheduler`].
    ///
    /// Each round splits the outstanding request into fixed-size
    /// chunks (a function of the shortfall only), samples every chunk
    /// with an RNG derived from `seed` and a global chunk counter,
    /// and merges in chunk order (the scheduler's
    /// [`par_map_indexed`](Scheduler::par_map_indexed) preserves
    /// chunk order); candidates already produced by an earlier chunk
    /// are dropped at the merge (counted in
    /// [`GenerationReport::duplicates`]) and re-requested in a
    /// top-up round, so cross-chunk collisions do not starve the
    /// request. Rounds stop at `n` candidates, or when a whole round
    /// yields nothing new (candidate space exhausted). The report is
    /// a pure function of `(model, options, n, seed)` — independent
    /// of the worker count — and the accounting identity `attempts =
    /// candidates + duplicates + excluded` holds.
    ///
    /// Chunks sample through the model's compiled
    /// [`SamplingPlan`](eip_bayes::SamplingPlan) (one uniform draw +
    /// one binary search per node into a reusable row buffer), whose
    /// rows are byte-identical to the [`Generator::run`] oracle on
    /// the same RNG stream — so this switch is invisible in the
    /// output.
    pub fn run_seeded(&self, n: usize, seed: u64) -> GenerationReport {
        /// Candidates per chunk: small enough to load-balance, large
        /// enough that per-chunk dedup sets stay effective.
        const CHUNK: usize = 8_192;
        let mut seen = DedupSet::with_capacity(n);
        let mut merged = GenerationReport {
            candidates: Vec::with_capacity(n),
            attempts: 0,
            duplicates: 0,
            excluded: 0,
        };
        let mut next_chunk_id = 0u64;
        while merged.candidates.len() < n {
            let shortfall = n - merged.candidates.len();
            let chunks = shortfall.div_ceil(CHUNK);
            let quota = |c: usize| shortfall / chunks + usize::from(c < shortfall % chunks);
            let base = next_chunk_id;
            next_chunk_id += chunks as u64;
            let locals = self.run_chunks(base, chunks, &quota, seed);

            // Merge in chunk order, deduplicating across chunks and
            // rounds.
            let before = merged.candidates.len();
            for local in locals {
                merged.attempts += local.attempts;
                merged.duplicates += local.duplicates;
                merged.excluded += local.excluded;
                for ip in local.candidates {
                    if merged.candidates.len() < n && seen.insert(ip) {
                        merged.candidates.push(ip);
                    } else {
                        merged.duplicates += 1;
                    }
                }
            }
            if merged.candidates.len() == before {
                break; // nothing new this round: space is exhausted
            }
        }
        merged
    }

    /// Runs one round of `chunks` independent chunk samplers (chunk
    /// `c` gets global id `base + c`, which seeds its RNG) on the
    /// scheduler, in chunk order.
    fn run_chunks(
        &self,
        base: u64,
        chunks: usize,
        quota: &(dyn Fn(usize) -> usize + Sync),
        seed: u64,
    ) -> Vec<GenerationReport> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let rng_for = |c: usize| {
            let id = base + c as u64;
            StdRng::seed_from_u64(seed ^ (id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        };
        self.exec
            .par_map_indexed(chunks, |c| self.run_compiled(quota(c), &mut rng_for(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn training_set() -> AddressSet {
        (0..1000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 16) << 80) | (i % 200)))
            .collect()
    }

    #[test]
    fn excludes_training_addresses() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let report = Generator::new(&model).excluding(&set).run(200, &mut rng);
        for ip in &report.candidates {
            assert!(!set.contains(*ip), "{ip} is a training address");
        }
        assert!(report.attempts >= report.candidates.len());
    }

    #[test]
    fn respects_attempt_budget() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let report = Generator::new(&model)
            .attempts_per_candidate(1)
            .run(1000, &mut rng);
        assert!(report.attempts <= 1000);
        // With a tiny effective space, duplicates are inevitable and
        // must be counted, not returned.
        let uniq: HashSet<Ip6> = report.candidates.iter().copied().collect();
        assert_eq!(uniq.len(), report.candidates.len());
    }

    #[test]
    fn run_seeded_is_independent_of_worker_count() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let serial = Generator::new(&model)
            .excluding(&set)
            .parallelism(1)
            .run_seeded(20_000, 99);
        let parallel = Generator::new(&model)
            .excluding(&set)
            .parallelism(4)
            .run_seeded(20_000, 99);
        assert_eq!(serial.candidates, parallel.candidates);
        assert_eq!(serial.attempts, parallel.attempts);
        assert_eq!(serial.duplicates, parallel.duplicates);
        assert_eq!(serial.excluded, parallel.excluded);
        assert!(!serial.candidates.is_empty());
        // Different seeds give different batches.
        let other = Generator::new(&model)
            .excluding(&set)
            .run_seeded(20_000, 100);
        assert_ne!(serial.candidates, other.candidates);
    }

    #[test]
    fn run_seeded_accounting_and_uniqueness() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let r = Generator::new(&model)
            .excluding(&set)
            .parallelism(3)
            .run_seeded(30_000, 5);
        assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
        let uniq: HashSet<Ip6> = r.candidates.iter().copied().collect();
        assert_eq!(uniq.len(), r.candidates.len());
        for ip in &r.candidates {
            assert!(!set.contains(*ip));
        }
        // Degenerate sizes don't wedge.
        assert!(Generator::new(&model)
            .run_seeded(0, 1)
            .candidates
            .is_empty());
    }

    #[test]
    fn run_seeded_tops_up_cross_chunk_duplicates() {
        // A model whose space (~16 * 50K) comfortably exceeds the
        // request: multi-chunk batching must deliver the full n even
        // though chunks collide on the distribution's head, exactly
        // like the serial path would.
        let set: AddressSet = (0..2000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 16) << 80) | ((i * 7) % 50_000)))
            .collect();
        let model = EntropyIp::new().analyze(&set).unwrap();
        for par in [1usize, 4] {
            let r = Generator::new(&model)
                .parallelism(par)
                .run_seeded(20_000, 3);
            assert_eq!(r.candidates.len(), 20_000, "parallelism {par}");
            assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
        }
        // Exhaustible space: stops cleanly short of n instead of
        // spinning (the space here is only ~3200 decodable addresses).
        let tiny = training_set();
        let tiny_model = EntropyIp::new().analyze(&tiny).unwrap();
        let r = Generator::new(&tiny_model)
            .attempts_per_candidate(2)
            .run_seeded(20_000, 3);
        assert!(r.candidates.len() < 20_000);
        assert!(!r.candidates.is_empty());
    }

    #[test]
    fn accounting_adds_up() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let r = Generator::new(&model).excluding(&set).run(300, &mut rng);
        assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
    }
}
