//! Batch candidate generation with bookkeeping (§5.5).
//!
//! [`IpModel::generate`] is the raw sampler; [`Generator`] adds the
//! bookkeeping an evaluation campaign needs: exclusion of the
//! training set (the paper counts hits against the *testing* set and
//! "New /64s" not seen in training), duplicate accounting, and a
//! configurable attempt budget.

use std::sync::Arc;

use eip_addr::{AddressSet, DedupSet, Ip6};
use eip_bayes::Evidence;
use eip_exec::rng::{stream_key, KeyedRng};
use eip_exec::Scheduler;
use rand::Rng;

use crate::model::IpModel;

/// Stream id separating keyed candidate generation from every other
/// keyed consumer of the same seed (see [`eip_exec::rng`]).
const GEN_STREAM: u64 = 0x0067_656e; // "gen"

/// Stream id for keyed *evidence-conditioned* generation
/// ([`Generator::run_keyed_constrained`]): a distinct stream so
/// constrained and unconstrained batches under the same seed never
/// share draws.
const GEN_EVIDENCE_STREAM: u64 = 0x0067_6576; // "gev"

/// Outcome of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationReport {
    /// The unique candidates, in generation order.
    pub candidates: Vec<Ip6>,
    /// Raw sampling attempts spent.
    pub attempts: usize,
    /// Draws discarded as duplicates of earlier candidates.
    pub duplicates: usize,
    /// Draws discarded because they were in the exclusion set.
    pub excluded: usize,
}

/// How a [`Generator`] holds its model: borrowed for the common
/// single-job case, or behind an [`Arc`] ([`Generator::shared`]) so
/// the batched sampler's shard closures can be `'static` and run on a
/// shared work-stealing pool. The held model is identical either way,
/// so every output is too.
enum ModelRef<'m> {
    Borrowed(&'m IpModel),
    Shared(Arc<IpModel>),
}

impl ModelRef<'_> {
    #[inline]
    fn get(&self) -> &IpModel {
        match self {
            ModelRef::Borrowed(m) => m,
            ModelRef::Shared(m) => m,
        }
    }
}

/// Configurable batch generator over a trained model.
pub struct Generator<'m> {
    model: ModelRef<'m>,
    exclude: Option<&'m AddressSet>,
    attempts_per_candidate: usize,
    exec: Scheduler,
}

impl<'m> Generator<'m> {
    /// A generator with no exclusions, a 10× attempt budget, and
    /// serial sampling.
    pub fn new(model: &'m IpModel) -> Self {
        Generator {
            model: ModelRef::Borrowed(model),
            exclude: None,
            attempts_per_candidate: 10,
            exec: Scheduler::default(),
        }
    }

    /// A generator over a shared (`Arc`-held) model: required for
    /// [`Generator::run_seeded`] to submit its sampling shards to a
    /// shared work-stealing pool (see [`Generator::with_scheduler`]),
    /// and byte-identical to [`Generator::new`] over the same model
    /// in every mode.
    pub fn shared(model: Arc<IpModel>) -> Self {
        Generator {
            model: ModelRef::Shared(model),
            exclude: None,
            attempts_per_candidate: 10,
            exec: Scheduler::default(),
        }
    }

    /// The model being sampled.
    #[inline]
    fn model(&self) -> &IpModel {
        self.model.get()
    }

    /// Never emit addresses from `set` (typically the training
    /// sample: the paper's evaluation wants *new* addresses).
    pub fn excluding(mut self, set: &'m AddressSet) -> Self {
        self.exclude = Some(set);
        self
    }

    /// Attempt budget as a multiple of the requested candidate count.
    pub fn attempts_per_candidate(mut self, k: usize) -> Self {
        self.attempts_per_candidate = k.max(1);
        self
    }

    /// Worker threads for [`Generator::run_seeded`] (clamped to at
    /// least 1). The batched output is identical at any setting.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.exec = Scheduler::new(n);
        self
    }

    /// An explicit scheduler for [`Generator::run_seeded`] — the way
    /// a fleet job hands the generator its pool-attached scheduler
    /// ([`eip_exec::Scheduler::shared`]). As with
    /// [`parallelism`](Generator::parallelism), only wall-clock
    /// changes: the scheduler's worker geometry fixes the round
    /// shards and the keyed draws fix their contents. The pool path
    /// additionally requires a [`Generator::shared`] model and no
    /// exclusion set (both non-`'static` borrows otherwise); when
    /// either is absent, rounds fall back to the scoped engine with
    /// identical output.
    pub fn with_scheduler(mut self, exec: Scheduler) -> Self {
        self.exec = exec;
        self
    }

    /// Generates up to `n` unique candidates with the serial
    /// reference sampler ([`eip_bayes::sample_row`]) — the oracle the
    /// compiled-plan path of [`Generator::run_seeded`] is verified
    /// against (their candidate streams are byte-identical on the
    /// same RNG stream; see the equivalence proptests).
    pub fn run<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> GenerationReport {
        self.run_sampling(n, rng, |rng, row| {
            let sampled = eip_bayes::sample_row(self.model().bn(), rng);
            for (slot, &code) in row.iter_mut().zip(&sampled) {
                *slot = code as u8;
            }
        })
    }

    /// The shared generation loop over any row sampler.
    fn run_sampling<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        mut sample: impl FnMut(&mut R, &mut [u8]),
    ) -> GenerationReport {
        let budget = n.saturating_mul(self.attempts_per_candidate);
        let mut seen = DedupSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let mut duplicates = 0usize;
        let mut excluded = 0usize;
        let mut row = vec![0u8; self.model().bn().num_vars()];
        while out.len() < n && attempts < budget {
            attempts += 1;
            sample(rng, &mut row);
            let ip = self.model().decode_codes(&row, rng);
            if let Some(ex) = self.exclude {
                if ex.contains(ip) {
                    excluded += 1;
                    continue;
                }
            }
            if !seen.insert(ip) {
                duplicates += 1;
                continue;
            }
            out.push(ip);
        }
        GenerationReport {
            candidates: out,
            attempts,
            duplicates,
            excluded,
        }
    }

    /// One keyed attempt: materializes attempt `index`'s candidate
    /// and whether the exclusion set rejects it. A pure function of
    /// `(model, options, seed, index)`: the attempt's own
    /// [`KeyedRng`] covers the row draw (through the compiled
    /// [`SamplingPlan`](eip_bayes::SamplingPlan)) and the decode
    /// draws, so no RNG stream is shared between attempts.
    #[inline]
    fn keyed_attempt(&self, key: u64, index: u64, row: &mut [u8]) -> (Ip6, bool) {
        keyed_attempt(self.model(), self.exclude, key, index, row)
    }

    /// The straight-line serial oracle for [`Generator::run_seeded`]:
    /// walks keyed attempt indices `0, 1, 2, …` one at a time,
    /// classifying each draw (excluded / duplicate / accepted) until
    /// `n` candidates or the `n ×`
    /// [`attempts_per_candidate`](Generator::attempts_per_candidate)
    /// budget is spent. No scheduler, no rounds — the simplest
    /// possible statement of what the batched engine must produce.
    pub fn run_keyed_reference(&self, n: usize, seed: u64) -> GenerationReport {
        let key = stream_key(seed, GEN_STREAM);
        let budget = n.saturating_mul(self.attempts_per_candidate);
        let mut seen = DedupSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let mut duplicates = 0usize;
        let mut excluded = 0usize;
        let mut row = vec![0u8; self.model().bn().num_vars()];
        while out.len() < n && attempts < budget {
            let (ip, ex) = self.keyed_attempt(key, attempts as u64, &mut row);
            attempts += 1;
            if ex {
                excluded += 1;
            } else if !seen.insert(ip) {
                duplicates += 1;
            } else {
                out.push(ip);
            }
        }
        GenerationReport {
            candidates: out,
            attempts,
            duplicates,
            excluded,
        }
    }

    /// Keyed evidence-conditioned generation: up to `n` unique
    /// candidates with some segments clamped to dictionary codes
    /// (§4.4's "optionally constrained to certain segment values"),
    /// drawn from per-attempt [`KeyedRng`] streams so attempt `i`'s
    /// candidate is a pure function of `(model, evidence, seed, i)`.
    /// Any consumer — an in-process caller or an `eip serve`
    /// connection — issuing the same `(evidence, n, seed)` request
    /// against the same model receives a byte-identical batch,
    /// regardless of which connection or interleaving produced it.
    /// Draws ride the dedicated `GEN_EVIDENCE_STREAM`, so constrained
    /// and unconstrained batches under one seed never share draws.
    pub fn run_keyed_constrained(
        &self,
        evidence: &Evidence,
        n: usize,
        seed: u64,
    ) -> GenerationReport {
        let key = stream_key(seed, GEN_EVIDENCE_STREAM);
        let budget = n.saturating_mul(self.attempts_per_candidate);
        let mut seen = DedupSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let mut duplicates = 0usize;
        let mut excluded = 0usize;
        while out.len() < n && attempts < budget {
            let mut rng = KeyedRng::for_index(key, attempts as u64);
            let row = eip_bayes::sample_conditional(self.model().bn(), evidence, &mut rng);
            let ip = self.model().decode(&row, &mut rng);
            attempts += 1;
            if self.exclude.is_some_and(|ex| ex.contains(ip)) {
                excluded += 1;
            } else if !seen.insert(ip) {
                duplicates += 1;
            } else {
                out.push(ip);
            }
        }
        GenerationReport {
            candidates: out,
            attempts,
            duplicates,
            excluded,
        }
    }

    /// Generates up to `n` unique candidates from keyed per-attempt
    /// draws, fanned out over the configured
    /// [`parallelism`](Generator::parallelism) on the
    /// [`eip_exec::Scheduler`].
    ///
    /// Attempt `i`'s candidate is a pure function of
    /// `(model, options, seed, i)` ([`eip_exec::rng`]), so any worker
    /// can materialize any attempt: each round shards the next slice
    /// of attempt indices, computes every attempt's `(address,
    /// excluded)` pair in parallel (the exclusion probe is read-only),
    /// and a serial walk then classifies the draws *in index order* —
    /// excluded, duplicate, or accepted — stopping exactly at the
    /// `n`-th acceptance or the exhausted attempt budget, precisely
    /// where [`Generator::run_keyed_reference`] stops. Round geometry
    /// only decides which indices are materialized eagerly, never
    /// what they contain, so the report is byte-identical to the
    /// straight-line oracle at **any** worker count and shard
    /// geometry, by construction — including `parallelism(1)`, which
    /// older stream-splitting engines could not offer. The accounting
    /// identity `attempts = candidates + duplicates + excluded`
    /// holds.
    pub fn run_seeded(&self, n: usize, seed: u64) -> GenerationReport {
        let key = stream_key(seed, GEN_STREAM);
        let budget = n.saturating_mul(self.attempts_per_candidate);
        let mut seen = DedupSet::with_capacity(n);
        let mut candidates = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let mut duplicates = 0usize;
        let mut excluded = 0usize;
        let mut consumed = 0usize; // attempt indices materialized so far
        while candidates.len() < n && consumed < budget {
            let shortfall = n - candidates.len();
            // Shortfall plus headroom for the expected duplicate
            // tail; purely cosmetic for the output (see above), it
            // only tunes how much speculative work a round does.
            let round = (shortfall + shortfall / 16 + 1024).min(budget - consumed);
            let base = consumed as u64;
            // Two execution venues, one result: a shared-model
            // generator with a pool-attached scheduler (and no
            // borrowed exclusion set) submits its round shards to the
            // pool as `'static` tasks; every other configuration fans
            // out scoped. The shard geometry and the keyed draws are
            // identical, so which branch ran is invisible in the
            // report.
            let pool_model = match (&self.model, self.exclude) {
                (ModelRef::Shared(m), None) if self.exec.has_pool() => Some(Arc::clone(m)),
                _ => None,
            };
            let drawn: Vec<(Ip6, bool)> = if let Some(model) = pool_model {
                self.exec
                    .par_map_reduce_shared(
                        round,
                        move |range| {
                            let mut row = vec![0u8; model.bn().num_vars()];
                            range
                                .map(|i| {
                                    keyed_attempt(&model, None, key, base + i as u64, &mut row)
                                })
                                .collect::<Vec<_>>()
                        },
                        |acc, part| acc.extend_from_slice(&part),
                    )
                    .unwrap_or_default()
            } else {
                self.exec
                    .par_map_reduce(
                        round,
                        |range| {
                            let mut row = vec![0u8; self.model().bn().num_vars()];
                            range
                                .map(|i| self.keyed_attempt(key, base + i as u64, &mut row))
                                .collect::<Vec<_>>()
                        },
                        |acc, part| acc.extend_from_slice(&part),
                    )
                    .unwrap_or_default()
            };
            consumed += round;
            for &(ip, ex) in &drawn {
                attempts += 1;
                if ex {
                    excluded += 1;
                } else if !seen.insert(ip) {
                    duplicates += 1;
                } else {
                    candidates.push(ip);
                    if candidates.len() >= n {
                        break;
                    }
                }
            }
        }
        GenerationReport {
            candidates,
            attempts,
            duplicates,
            excluded,
        }
    }
}

/// One keyed attempt: materializes attempt `index`'s candidate and
/// whether `exclude` rejects it. A pure function of
/// `(model, exclude, key, index)`: the attempt's own [`KeyedRng`]
/// covers the row draw (through the compiled
/// [`SamplingPlan`](eip_bayes::SamplingPlan)) and the decode draws,
/// so no RNG stream is shared between attempts — which is exactly why
/// any worker, any thief, or the caller itself can materialize any
/// attempt without changing it. A free function (not a method) so
/// pool-submitted shard tasks can call it through an `Arc`'d model
/// without borrowing the generator.
#[inline]
fn keyed_attempt(
    model: &IpModel,
    exclude: Option<&AddressSet>,
    key: u64,
    index: u64,
    row: &mut [u8],
) -> (Ip6, bool) {
    let mut rng = KeyedRng::for_index(key, index);
    model.plan().sample_into(row, &mut rng);
    let ip = model.decode_codes(row, &mut rng);
    let excluded = exclude.is_some_and(|ex| ex.contains(ip));
    (ip, excluded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn training_set() -> AddressSet {
        (0..1000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 16) << 80) | (i % 200)))
            .collect()
    }

    #[test]
    fn excludes_training_addresses() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let report = Generator::new(&model).excluding(&set).run(200, &mut rng);
        for ip in &report.candidates {
            assert!(!set.contains(*ip), "{ip} is a training address");
        }
        assert!(report.attempts >= report.candidates.len());
    }

    #[test]
    fn respects_attempt_budget() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let report = Generator::new(&model)
            .attempts_per_candidate(1)
            .run(1000, &mut rng);
        assert!(report.attempts <= 1000);
        // With a tiny effective space, duplicates are inevitable and
        // must be counted, not returned.
        let uniq: HashSet<Ip6> = report.candidates.iter().copied().collect();
        assert_eq!(uniq.len(), report.candidates.len());
    }

    #[test]
    fn run_seeded_is_independent_of_worker_count() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let oracle = Generator::new(&model)
            .excluding(&set)
            .run_keyed_reference(20_000, 99);
        assert!(!oracle.candidates.is_empty());
        for workers in [1usize, 2, 4, 7, 8] {
            let batched = Generator::new(&model)
                .excluding(&set)
                .parallelism(workers)
                .run_seeded(20_000, 99);
            assert_eq!(batched.candidates, oracle.candidates, "{workers} workers");
            assert_eq!(batched.attempts, oracle.attempts, "{workers} workers");
            assert_eq!(batched.duplicates, oracle.duplicates, "{workers} workers");
            assert_eq!(batched.excluded, oracle.excluded, "{workers} workers");
        }
        // Different seeds give different batches.
        let other = Generator::new(&model)
            .excluding(&set)
            .run_seeded(20_000, 100);
        assert_ne!(oracle.candidates, other.candidates);
    }

    #[test]
    fn shared_generator_on_pool_matches_oracle() {
        // The pool path (shared model, pool-attached scheduler, no
        // exclusion) and the scoped fallback must both equal the
        // straight-line keyed oracle, at several pool sizes.
        let set = training_set();
        let model = Arc::new(EntropyIp::new().analyze(&set).unwrap());
        let oracle = Generator::new(&model).run_keyed_reference(5_000, 42);
        assert!(!oracle.candidates.is_empty());
        for pool_size in [1usize, 2, 7, 8] {
            let pool = Arc::new(eip_exec::pool::StealPool::new(pool_size));
            for workers in [1usize, 4, 7] {
                let exec = Scheduler::shared(workers, Arc::clone(&pool));
                let batched = Generator::shared(Arc::clone(&model))
                    .with_scheduler(exec)
                    .run_seeded(5_000, 42);
                assert_eq!(
                    batched.candidates, oracle.candidates,
                    "pool {pool_size}, workers {workers}"
                );
                assert_eq!(batched.attempts, oracle.attempts);
            }
            // Exclusion forces the scoped fallback; output unchanged.
            let excl_oracle = Generator::new(&model)
                .excluding(&set)
                .run_keyed_reference(2_000, 42);
            let excl = Generator::shared(Arc::clone(&model))
                .excluding(&set)
                .with_scheduler(Scheduler::shared(4, Arc::clone(&pool)))
                .run_seeded(2_000, 42);
            assert_eq!(excl.candidates, excl_oracle.candidates);
        }
    }

    #[test]
    fn run_seeded_accounting_and_uniqueness() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let r = Generator::new(&model)
            .excluding(&set)
            .parallelism(3)
            .run_seeded(30_000, 5);
        assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
        let uniq: HashSet<Ip6> = r.candidates.iter().copied().collect();
        assert_eq!(uniq.len(), r.candidates.len());
        for ip in &r.candidates {
            assert!(!set.contains(*ip));
        }
        // Degenerate sizes don't wedge.
        assert!(Generator::new(&model)
            .run_seeded(0, 1)
            .candidates
            .is_empty());
    }

    #[test]
    fn run_seeded_tops_up_duplicate_heavy_rounds() {
        // A model whose space (~16 * 50K) comfortably exceeds the
        // request: the round loop must top up through duplicate
        // collisions on the distribution's head and deliver the full
        // n, exactly like the straight-line oracle would.
        let set: AddressSet = (0..2000u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 16) << 80) | ((i * 7) % 50_000)))
            .collect();
        let model = EntropyIp::new().analyze(&set).unwrap();
        for par in [1usize, 4] {
            let r = Generator::new(&model)
                .parallelism(par)
                .run_seeded(20_000, 3);
            assert_eq!(r.candidates.len(), 20_000, "parallelism {par}");
            assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
        }
        // Exhaustible space: stops cleanly short of n instead of
        // spinning (the space here is only ~3200 decodable addresses).
        let tiny = training_set();
        let tiny_model = EntropyIp::new().analyze(&tiny).unwrap();
        let r = Generator::new(&tiny_model)
            .attempts_per_candidate(2)
            .run_seeded(20_000, 3);
        assert!(r.candidates.len() < 20_000);
        assert!(!r.candidates.is_empty());
    }

    #[test]
    fn run_keyed_constrained_is_deterministic_and_respects_evidence() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let a_idx = model.segment_index("A").unwrap();
        let evidence = vec![(a_idx, 0usize)];
        let gen = Generator::new(&model).excluding(&set);
        let a = gen.run_keyed_constrained(&evidence, 300, 21);
        let b = gen.run_keyed_constrained(&evidence, 300, 21);
        assert_eq!(a.candidates, b.candidates, "same key, same batch");
        assert!(!a.candidates.is_empty());
        assert_eq!(a.attempts, a.candidates.len() + a.duplicates + a.excluded);
        // Evidence is honored: every candidate carries segment A's
        // first dictionary value.
        let m = &model.mined()[a_idx];
        for ip in &a.candidates {
            let v = ip.segment(m.segment.start, m.segment.end);
            assert!(m.values[0].kind.matches(v), "{ip} violates evidence");
        }
        // A different seed gives a different batch, and the evidence
        // stream is separate from the unconstrained stream.
        let c = gen.run_keyed_constrained(&evidence, 300, 22);
        assert_ne!(a.candidates, c.candidates);
        let unconstrained = gen.run_keyed_reference(300, 21);
        assert_ne!(a.candidates, unconstrained.candidates);
    }

    #[test]
    fn accounting_adds_up() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let r = Generator::new(&model).excluding(&set).run(300, &mut rng);
        assert_eq!(r.attempts, r.candidates.len() + r.duplicates + r.excluded);
    }
}
