//! # Entropy/IP — uncovering structure in IPv6 addresses
//!
//! A from-scratch reproduction of *Entropy/IP: Uncovering Structure
//! in IPv6 Addresses* (Foremski, Plonka & Berger, IMC 2016). Given a
//! set of active IPv6 addresses, the pipeline:
//!
//! 1. computes the normalized entropy of each of the 32 hex-character
//!    positions ([`eip_stats::nybble_entropy`], §4.1);
//! 2. groups adjacent nybbles of similar entropy into *segments*
//!    ([`segments`], §4.2 — threshold set `{0.025, 0.1, 0.3, 0.5,
//!    0.9}` with 0.05 hysteresis, hard boundaries after bits 32/64);
//! 3. mines each segment for popular values and dense ranges
//!    ([`mining`], §4.3 — IQR outliers, then two DBSCAN passes);
//! 4. re-codes every address as a categorical vector and learns a
//!    Bayesian network over the segments ([`model`], §4.4);
//! 5. serves exploration and generation: the conditional probability
//!    browser ([`browser`]) and the candidate target generator
//!    ([`generate`], §5.5–5.6).
//!
//! ## Quickstart — the staged pipeline
//!
//! The canonical entry point is [`Pipeline`]: each stage is a typed,
//! `Clone`-able artifact that can be inspected and re-run on its own
//! (re-mine with different [`MiningOptions`] without recomputing the
//! entropy profile; retrain the BN without re-mining). Ingestion is
//! streaming: [`Pipeline::profile`] takes any `Iterator<Item = Ip6>`.
//!
//! ```
//! use eip_addr::Ip6;
//! use entropy_ip::{Config, Pipeline};
//!
//! // A toy "network": one /64, IIDs counting upward — streamed
//! // straight from the iterator, no intermediate Vec.
//! let pipeline = Pipeline::new(Config::default());
//! let profiled = pipeline
//!     .profile((0..512u128).map(|i| Ip6((0x2001_0db8_0001_0000u128 << 64) | i)))
//!     .unwrap();
//! assert!(profiled.total_entropy() < 4.0); // highly structured
//!
//! // Segment, mine, and train — each artifact is inspectable.
//! let segmented = profiled.segment();
//! let mined = segmented.mine();
//! assert_eq!(mined.mined().len(), segmented.segments().len());
//! let model = mined.train().unwrap().into_model();
//!
//! // Generate fresh candidates that match the discovered structure.
//! let mut rng = rand::thread_rng();
//! let candidates = model.generate(100, 10_000, &mut rng);
//! assert!(!candidates.is_empty());
//! ```
//!
//! The one-shot convenience is still there — `EntropyIp::analyze`
//! runs all four stages and returns the same model byte-for-byte:
//!
//! ```
//! use eip_addr::{AddressSet, Ip6};
//! use entropy_ip::EntropyIp;
//!
//! let ips: AddressSet = (0..512u128)
//!     .map(|i| Ip6((0x2001_0db8_0001_0000u128 << 64) | i))
//!     .collect();
//! let model = EntropyIp::new().analyze(&ips).unwrap();
//! assert!(model.analysis().total_entropy < 4.0);
//! ```
//!
//! All fallible operations report the unified [`EipError`].
//! [`Config::parallelism`] routes profiling and mining onto the
//! deterministic chunked scheduler ([`eip_exec::Scheduler`]):
//! profiling shards the address stream and merges per-shard nybble
//! counts, and mining builds per-shard value histograms for every
//! segment in one pass, merges them, and thresholds — so even a
//! single heavy segment parallelizes internally.
//! [`Generator::run_seeded`] batches candidate generation on the same
//! scheduler. Every result is identical at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod browser;
pub mod error;
pub mod generate;
pub mod ingest;
pub mod mining;
pub mod model;
pub mod pipeline;
pub mod profile;
pub mod segments;
pub mod store;

pub use analysis::Analysis;
pub use browser::{Browser, SegmentDistribution};
pub use error::EipError;
pub use generate::Generator;
pub use ingest::{IngestOptions, IngestReport};
pub use mining::{MinedSegment, MiningOptions, SegmentValue, ValueKind};
pub use model::{EntropyIp, IpModel, ModelError, Options};
pub use pipeline::{Config, Mined, Pipeline, Profiled, Segmented, Trained};
pub use segments::{segment_entropy_profile, Segment, SegmentationOptions};
