//! # Entropy/IP — uncovering structure in IPv6 addresses
//!
//! A from-scratch reproduction of *Entropy/IP: Uncovering Structure
//! in IPv6 Addresses* (Foremski, Plonka & Berger, IMC 2016). Given a
//! set of active IPv6 addresses, the pipeline:
//!
//! 1. computes the normalized entropy of each of the 32 hex-character
//!    positions ([`eip_stats::nybble_entropy`], §4.1);
//! 2. groups adjacent nybbles of similar entropy into *segments*
//!    ([`segments`], §4.2 — threshold set `{0.025, 0.1, 0.3, 0.5,
//!    0.9}` with 0.05 hysteresis, hard boundaries after bits 32/64);
//! 3. mines each segment for popular values and dense ranges
//!    ([`mining`], §4.3 — IQR outliers, then two DBSCAN passes);
//! 4. re-codes every address as a categorical vector and learns a
//!    Bayesian network over the segments ([`model`], §4.4);
//! 5. serves exploration and generation: the conditional probability
//!    browser ([`browser`]) and the candidate target generator
//!    ([`generate`], §5.5–5.6).
//!
//! ## Quickstart
//!
//! ```
//! use eip_addr::{AddressSet, Ip6};
//! use entropy_ip::{EntropyIp, Options};
//!
//! // A toy "network": one /64, IIDs counting upward.
//! let ips: AddressSet = (0..512u128)
//!     .map(|i| Ip6((0x2001_0db8_0001_0000u128 << 64) | i))
//!     .collect();
//!
//! let model = EntropyIp::with_options(Options::default()).analyze(&ips).unwrap();
//! assert!(model.analysis().total_entropy < 4.0); // highly structured
//!
//! // Generate fresh candidates that match the discovered structure.
//! let mut rng = rand::thread_rng();
//! let candidates = model.generate(100, 10_000, &mut rng);
//! assert!(!candidates.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod browser;
pub mod generate;
pub mod mining;
pub mod model;
pub mod profile;
pub mod segments;

pub use analysis::Analysis;
pub use browser::{Browser, SegmentDistribution};
pub use generate::Generator;
pub use mining::{MinedSegment, MiningOptions, SegmentValue, ValueKind};
pub use model::{EntropyIp, IpModel, ModelError, Options};
pub use segments::{segment_entropy_profile, Segment, SegmentationOptions};
