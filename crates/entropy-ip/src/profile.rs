//! Model export/import as a line-oriented text profile.
//!
//! The original Entropy/IP tool saved analysis profiles so the web UI
//! could reload them. We keep the dependency surface minimal (no
//! serde), so the format is a simple, documented, line-oriented text
//! file that round-trips every part of an [`IpModel`]:
//!
//! ```text
//! entropy-ip-profile v1
//! width 32
//! addresses 1000
//! entropy <32 hex-float values>
//! acr <32 hex-float values>
//! segments <n>
//! segment <label> <start> <end>
//! values <label> <count> <total>
//! v <code> exact <hex-value> <count> <freq>
//! v <code> range <hex-lo> <hex-hi> <count> <freq>
//! bn <n>
//! node <i> <name> <cardinality> parents [p...]
//! cpt <hex-float probabilities, one config row per line>
//! end
//! ```
//!
//! Floats are serialized as hex floats (`f64::to_bits` in hex) so the
//! round trip is exact.

use eip_bayes::{BayesNet, Cpt, Node};

use crate::analysis::Analysis;
use crate::error::EipError;
use crate::mining::{MinedSegment, SegmentValue, ValueKind};
use crate::model::IpModel;
use crate::segments::Segment;

/// Serializes a model to the profile text format.
pub fn export(model: &IpModel) -> String {
    let mut out = String::new();
    let a = model.analysis();
    out.push_str("entropy-ip-profile v1\n");
    out.push_str(&format!("width {}\n", a.width));
    out.push_str(&format!("addresses {}\n", a.num_addresses));
    out.push_str("entropy");
    for h in &a.entropy {
        out.push_str(&format!(" {:016x}", h.to_bits()));
    }
    out.push('\n');
    out.push_str("acr");
    for h in &a.acr {
        out.push_str(&format!(" {:016x}", h.to_bits()));
    }
    out.push('\n');
    out.push_str(&format!("segments {}\n", a.segments.len()));
    for s in &a.segments {
        out.push_str(&format!("segment {} {} {}\n", s.label, s.start, s.end));
    }
    for m in model.mined() {
        out.push_str(&format!(
            "values {} {} {}\n",
            m.segment.label,
            m.values.len(),
            m.total
        ));
        for v in &m.values {
            match v.kind {
                ValueKind::Exact(x) => out.push_str(&format!(
                    "v {} exact {:x} {} {:016x}\n",
                    v.code,
                    x,
                    v.count,
                    v.freq.to_bits()
                )),
                ValueKind::Range { lo, hi } => out.push_str(&format!(
                    "v {} range {:x} {:x} {} {:016x}\n",
                    v.code,
                    lo,
                    hi,
                    v.count,
                    v.freq.to_bits()
                )),
            }
        }
    }
    let bn = model.bn();
    out.push_str(&format!("bn {}\n", bn.num_vars()));
    for (i, node) in bn.nodes().iter().enumerate() {
        out.push_str(&format!(
            "node {} {} {} parents",
            i, node.name, node.cardinality
        ));
        for &p in &node.parents {
            out.push_str(&format!(" {p}"));
        }
        out.push('\n');
        out.push_str("cpt");
        for p in node.cpt.flat() {
            out.push_str(&format!(" {:016x}", p.to_bits()));
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Parses a profile back into a model.
///
/// Format violations are reported as [`EipError::Profile`] with the
/// offending line's context.
pub fn import(text: &str) -> Result<IpModel, EipError> {
    import_inner(text).map_err(EipError::Profile)
}

fn import_inner(text: &str) -> Result<IpModel, String> {
    let mut lines = text.lines().peekable();
    let mut expect = |prefix: &str| -> Result<Vec<String>, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("missing line: {prefix}"))?;
        let toks: Vec<String> = line.split_whitespace().map(String::from).collect();
        if toks.first().map(String::as_str) != Some(prefix) {
            return Err(format!("expected '{prefix}', got '{line}'"));
        }
        Ok(toks)
    };

    let header = expect("entropy-ip-profile")?;
    if header.get(1).map(String::as_str) != Some("v1") {
        return Err("unsupported profile version".into());
    }
    let width: usize = field(&expect("width")?, 1)?;
    let num_addresses: usize = field(&expect("addresses")?, 1)?;
    let entropy = float_array(&expect("entropy")?)?;
    let acr = float_array(&expect("acr")?)?;
    let nseg: usize = field(&expect("segments")?, 1)?;
    let mut segments = Vec::with_capacity(nseg);
    for _ in 0..nseg {
        let t = expect("segment")?;
        segments.push(Segment {
            label: t.get(1).ok_or("segment label")?.clone(),
            start: field(&t, 2)?,
            end: field(&t, 3)?,
        });
    }
    let total_entropy: f64 = entropy[..width].iter().sum();
    let analysis = Analysis {
        entropy,
        acr,
        total_entropy,
        segments: segments.clone(),
        num_addresses,
        width,
    };

    let mut mined = Vec::with_capacity(nseg);
    for seg in &segments {
        let t = expect("values")?;
        if t.get(1) != Some(&seg.label) {
            return Err(format!("values block out of order at {}", seg.label));
        }
        let nvals: usize = field(&t, 2)?;
        let total: u64 = field(&t, 3)?;
        let mut values = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            let v = expect("v")?;
            let code = v.get(1).ok_or("value code")?.clone();
            let kind = match v.get(2).map(String::as_str) {
                Some("exact") => {
                    let x = u128::from_str_radix(v.get(3).ok_or("exact value")?, 16)
                        .map_err(|e| e.to_string())?;
                    ValueKind::Exact(x)
                }
                Some("range") => {
                    let lo = u128::from_str_radix(v.get(3).ok_or("range lo")?, 16)
                        .map_err(|e| e.to_string())?;
                    let hi = u128::from_str_radix(v.get(4).ok_or("range hi")?, 16)
                        .map_err(|e| e.to_string())?;
                    ValueKind::Range { lo, hi }
                }
                other => return Err(format!("bad value kind {other:?}")),
            };
            let tail_at = if matches!(kind, ValueKind::Exact(_)) {
                4
            } else {
                5
            };
            let count: u64 = field(&v, tail_at)?;
            let freq = hex_float(v.get(tail_at + 1).ok_or("freq")?)?;
            values.push(SegmentValue {
                code,
                kind,
                count,
                freq,
            });
        }
        mined.push(MinedSegment {
            segment: seg.clone(),
            values,
            total,
        });
    }

    let nvars: usize = field(&expect("bn")?, 1)?;
    if nvars != nseg {
        return Err("BN variable count disagrees with segments".into());
    }
    let mut nodes = Vec::with_capacity(nvars);
    for i in 0..nvars {
        let t = expect("node")?;
        let idx: usize = field(&t, 1)?;
        if idx != i {
            return Err("node out of order".into());
        }
        let name = t.get(2).ok_or("node name")?.clone();
        let cardinality: usize = field(&t, 3)?;
        let pword = t.get(4).map(String::as_str);
        if pword != Some("parents") {
            return Err("expected 'parents'".into());
        }
        let parents: Vec<usize> = t[5..]
            .iter()
            .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        let c = expect("cpt")?;
        let probs: Vec<f64> = c[1..]
            .iter()
            .map(|s| hex_float(s))
            .collect::<Result<_, _>>()?;
        let parent_cards: Vec<usize> = parents.iter().map(|&p| mined[p].cardinality()).collect();
        let expected: usize = parent_cards.iter().product::<usize>().max(1) * cardinality;
        if probs.len() != expected {
            return Err(format!(
                "node {i}: CPT length {} != {expected}",
                probs.len()
            ));
        }
        let cpt = Cpt::from_probs(cardinality, parent_cards, probs);
        nodes.push(Node {
            name,
            cardinality,
            parents,
            cpt,
        });
    }
    expect("end")?;
    let bn = BayesNet::new(nodes);
    Ok(IpModel::from_parts(analysis, mined, bn))
}

fn field<T: std::str::FromStr>(toks: &[String], i: usize) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    toks.get(i)
        .ok_or_else(|| format!("missing field {i}"))?
        .parse::<T>()
        .map_err(|e| e.to_string())
}

fn float_array(toks: &[String]) -> Result<[f64; 32], String> {
    if toks.len() != 33 {
        return Err(format!("expected 32 values, got {}", toks.len() - 1));
    }
    let mut out = [0.0f64; 32];
    for (i, s) in toks[1..].iter().enumerate() {
        out[i] = hex_float(s)?;
    }
    Ok(out)
}

fn hex_float(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use eip_addr::{AddressSet, Ip6};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> IpModel {
        let set: AddressSet = (0..800u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 8) << 80) | (i % 100)))
            .collect();
        EntropyIp::new().analyze(&set).unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let text = export(&m);
        let back = import(&text).expect("import");
        // Analysis fields.
        assert_eq!(back.analysis().width, m.analysis().width);
        assert_eq!(back.analysis().num_addresses, m.analysis().num_addresses);
        assert_eq!(back.analysis().entropy, m.analysis().entropy);
        assert_eq!(back.analysis().acr, m.analysis().acr);
        assert_eq!(back.analysis().segments, m.analysis().segments);
        // Dictionaries.
        assert_eq!(back.mined(), m.mined());
        // BN structure + parameters.
        assert_eq!(back.bn(), m.bn());
    }

    #[test]
    fn round_tripped_model_generates_identically() {
        let m = model();
        let back = import(&export(&m)).unwrap();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = m.generate(50, 5000, &mut r1);
        let b = back.generate(50, 5000, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(import("").is_err());
        assert!(import("entropy-ip-profile v2\n").is_err());
        assert!(import("nonsense\n").is_err());
        // Truncated file.
        let m = model();
        let text = export(&m);
        let cut = &text[..text.len() / 2];
        assert!(import(cut).is_err());
    }

    #[test]
    fn export_is_line_oriented_and_versioned() {
        let text = export(&model());
        assert!(text.starts_with("entropy-ip-profile v1\n"));
        assert!(text.ends_with("end\n"));
    }
}
