//! Versioned binary model persistence — train once, serve millions.
//!
//! A trained [`IpModel`] is a read-only artifact: after PR 5/6 it is
//! cheap to share in-process, but every consumer still had to re-run
//! profile → mine → train because nothing persisted it. This module
//! is the persistence layer of the model service: a versioned,
//! endian-stable binary container (`.eipm`) that the `eip` CLI writes
//! (`--model-out`) and the `eip_serve` registry loads.
//!
//! ## On-disk layout (format version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"EIPM"
//! 4       4     format version (u32 LE) = 1
//! 8       8     fingerprint (u64 LE) — caller-supplied identity of
//!               the training run (seed/config hash, see
//!               [`fingerprint`]); load returns it for callers to
//!               verify against their expectations
//! 16      8     payload length (u64 LE)
//! 24      n     payload (analysis + dictionaries + BN; see below)
//! 24+n    8     checksum (u64 LE): FNV-1a over header + payload
//! ```
//!
//! The payload serializes, in order: width, address count, the
//! entropy and ACR profiles (f64 bit patterns), the segments, the
//! mined dictionaries (codes, value kinds, counts, frequencies), and
//! the Bayesian network via [`eip_bayes::serial::write_net`]. Every
//! float travels as its IEEE-754 bits, so save → load reproduces the
//! model **bit for bit** — and because [`IpModel::from_parts`]
//! recompiles the [`SamplingPlan`](eip_bayes::SamplingPlan)
//! deterministically from the CPTs, the loaded model's plan draws
//! rows byte-identical to the original's (pinned by the round-trip
//! proptests and the golden fixture).
//!
//! ## Version-bump path
//!
//! The format version is checked on load; readers reject anything but
//! the versions they know. To evolve the format: bump
//! [`FORMAT_VERSION`], keep a reader arm for every released version,
//! regenerate the golden fixture
//! (`UPDATE_GOLDENS=1 cargo test -p entropy_ip --test store_format`),
//! and review the fixture diff like code. The committed golden pins
//! the bytes of version 1, so accidental drift fails CI.

use std::path::Path;

use eip_bayes::serial::{self, Reader};

use crate::analysis::Analysis;
use crate::error::EipError;
use crate::mining::{MinedSegment, SegmentValue, ValueKind};
use crate::model::IpModel;
use crate::segments::Segment;

/// File magic: "EIPM" (Entropy/IP model).
pub const MAGIC: [u8; 4] = *b"EIPM";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Conventional file extension for saved models.
pub const EXTENSION: &str = "eipm";

/// Size of the fixed header (magic + version + fingerprint + length).
const HEADER_LEN: usize = 24;

/// FNV-1a over a byte slice: the container checksum. Not
/// cryptographic — it catches truncation and bit rot, not tampering.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A stable fingerprint of a training run's identity: FNV-1a over the
/// caller's summary string (seed, config knobs, input name — whatever
/// distinguishes one training run from another). Stored in the header
/// and returned by [`load`], so a service can refuse a model whose
/// provenance does not match what it expects.
pub fn fingerprint(summary: &str) -> u64 {
    fnv1a(summary.as_bytes())
}

/// Serializes a model into the versioned container format.
pub fn save(model: &IpModel, fingerprint: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4096);
    let a = model.analysis();
    serial::put_u32(&mut payload, a.width as u32);
    serial::put_u64(&mut payload, a.num_addresses as u64);
    for h in &a.entropy {
        serial::put_f64(&mut payload, *h);
    }
    for h in &a.acr {
        serial::put_f64(&mut payload, *h);
    }
    serial::put_u32(&mut payload, a.segments.len() as u32);
    for s in &a.segments {
        serial::put_str(&mut payload, &s.label);
        serial::put_u32(&mut payload, s.start as u32);
        serial::put_u32(&mut payload, s.end as u32);
    }
    for m in model.mined() {
        serial::put_u64(&mut payload, m.total);
        serial::put_u32(&mut payload, m.values.len() as u32);
        for v in &m.values {
            serial::put_str(&mut payload, &v.code);
            match v.kind {
                ValueKind::Exact(x) => {
                    payload.push(0);
                    serial::put_u128(&mut payload, x);
                }
                ValueKind::Range { lo, hi } => {
                    payload.push(1);
                    serial::put_u128(&mut payload, lo);
                    serial::put_u128(&mut payload, hi);
                }
            }
            serial::put_u64(&mut payload, v.count);
            serial::put_f64(&mut payload, v.freq);
        }
    }
    serial::write_net(model.bn(), &mut payload);

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    serial::put_u32(&mut out, FORMAT_VERSION);
    serial::put_u64(&mut out, fingerprint);
    serial::put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let sum = fnv1a(&out);
    serial::put_u64(&mut out, sum);
    out
}

/// Deserializes a model container, returning the model and the stored
/// fingerprint. The [`SamplingPlan`](eip_bayes::SamplingPlan) and the
/// O(1) label/code lookup maps are rebuilt deterministically by
/// [`IpModel::from_parts`], so they never travel on disk.
pub fn load(bytes: &[u8]) -> Result<(IpModel, u64), EipError> {
    load_inner(bytes).map_err(EipError::Profile)
}

fn load_inner(bytes: &[u8]) -> Result<(IpModel, u64), String> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(format!(
            "file too short ({} bytes) for a model",
            bytes.len()
        ));
    }
    if bytes[..4] != MAGIC {
        return Err("bad magic: not an Entropy/IP model file".into());
    }
    let mut r = Reader::new(&bytes[4..]);
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "unsupported model format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let fingerprint = r.u64("fingerprint")?;
    let payload_len = r.u64("payload length")? as usize;
    let body_end = HEADER_LEN + payload_len;
    if bytes.len() != body_end + 8 {
        return Err(format!(
            "length mismatch: header claims {payload_len}-byte payload, file has {} bytes",
            bytes.len()
        ));
    }
    let stored_sum = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
    let computed = fnv1a(&bytes[..body_end]);
    if stored_sum != computed {
        return Err(format!(
            "checksum mismatch: stored {stored_sum:#018x}, computed {computed:#018x}"
        ));
    }

    let mut r = Reader::new(&bytes[HEADER_LEN..body_end]);
    let width = r.len(32, "width")?;
    let num_addresses = r.u64("address count")? as usize;
    let mut entropy = [0.0f64; 32];
    for h in &mut entropy {
        *h = r.f64("entropy")?;
    }
    let mut acr = [0.0f64; 32];
    for h in &mut acr {
        *h = r.f64("acr")?;
    }
    let nseg = r.len(32, "segment count")?;
    let mut segments = Vec::with_capacity(nseg);
    for _ in 0..nseg {
        let label = r.str("segment label")?;
        let start = r.len(32, "segment start")?;
        let end = r.len(32, "segment end")?;
        // Positions are 1-based inclusive; downstream arithmetic
        // (`end - start + 1`, nybble slicing) must never see an
        // inverted or out-of-width range.
        if start == 0 || start > end || end > width {
            return Err(format!(
                "segment {label:?} range {start}-{end} invalid for width {width}"
            ));
        }
        segments.push(Segment { label, start, end });
    }
    let total_entropy: f64 = entropy[..width].iter().sum();
    let analysis = Analysis {
        entropy,
        acr,
        total_entropy,
        segments: segments.clone(),
        num_addresses,
        width,
    };

    let mut mined = Vec::with_capacity(nseg);
    for seg in &segments {
        let total = r.u64("dictionary total")?;
        let nvals = r.len(1 << 16, "dictionary size")?;
        let mut values = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            let code = r.str("value code")?;
            let kind = match r.u8("value kind")? {
                0 => ValueKind::Exact(r.u128("exact value")?),
                1 => ValueKind::Range {
                    lo: r.u128("range lo")?,
                    hi: r.u128("range hi")?,
                },
                k => return Err(format!("unknown value kind tag {k}")),
            };
            let count = r.u64("value count")?;
            let freq = r.f64("value freq")?;
            values.push(SegmentValue {
                code,
                kind,
                count,
                freq,
            });
        }
        mined.push(MinedSegment {
            segment: seg.clone(),
            values,
            total,
        });
    }

    let bn = serial::read_net(&mut r)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after model", r.remaining()));
    }
    if bn.num_vars() != nseg {
        return Err("BN variable count disagrees with segments".into());
    }
    for (i, m) in mined.iter().enumerate() {
        if bn.node(i).cardinality != m.cardinality() {
            return Err(format!("cardinality mismatch at segment {i}"));
        }
    }
    Ok((IpModel::from_parts(analysis, mined, bn), fingerprint))
}

/// Writes a model container to `path` **atomically**: the bytes land
/// in a `<name>.tmp` sibling first (flushed with `sync_all`) and are
/// renamed over the target only once complete. A crash — power loss,
/// SIGKILL, a full disk mid-write — therefore never leaves a torn
/// container at `path`: readers see either the old model or the new
/// one, and a stale `.tmp` leftover is invisible to
/// `ModelStore::list` (wrong extension) and overwritten by the next
/// save.
pub fn save_file(path: impl AsRef<Path>, model: &IpModel, fp: u64) -> Result<(), EipError> {
    let path = path.as_ref();
    write_atomic(path, &save(model, fp))
}

/// The temp-file + rename discipline behind [`save_file`], exposed so
/// tests (and the chaos suite) can exercise crash points directly.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), EipError> {
    use std::io::Write;
    let err = |e: std::io::Error| EipError::io(path.display().to_string(), e);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| EipError::Usage(format!("{} has no file name", path.display())))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Durability before visibility: the rename must never expose
        // bytes still sitting in the page cache of a dying machine.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(err)
}

/// Reads a model container from `path`.
pub fn load_file(path: impl AsRef<Path>) -> Result<(IpModel, u64), EipError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| EipError::io(path.display().to_string(), e))?;
    load(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use crate::profile;
    use eip_addr::{AddressSet, Ip6};

    fn model() -> IpModel {
        let set: AddressSet = (0..800u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 8) << 80) | (i % 100)))
            .collect();
        EntropyIp::new().analyze(&set).unwrap()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let m = model();
        let bytes = save(&m, 0xdead_beef);
        let (back, fp) = load(&bytes).expect("load");
        assert_eq!(fp, 0xdead_beef);
        // The text exporter covers every model field bit-for-bit, so
        // equal exports mean equal models.
        assert_eq!(profile::export(&back), profile::export(&m));
    }

    #[test]
    fn loaded_plan_draws_identical_rows() {
        let m = model();
        let (back, _) = load(&save(&m, 1)).unwrap();
        let mut a = vec![0u8; m.plan().num_vars()];
        let mut b = vec![0u8; back.plan().num_vars()];
        for index in 0..500u64 {
            m.plan().sample_keyed_into(&mut a, 7, 3, index);
            back.plan().sample_keyed_into(&mut b, 7, 3, index);
            assert_eq!(a, b, "plan rows diverge at index {index}");
        }
    }

    #[test]
    fn header_fields_are_checked() {
        let m = model();
        let good = save(&m, 5);
        // Magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(load(&bad), Err(EipError::Profile(msg)) if msg.contains("magic")));
        // Version.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(load(&bad), Err(EipError::Profile(msg)) if msg.contains("version 99")));
        // Checksum (flip one payload byte).
        let mut bad = good.clone();
        let mid = HEADER_LEN + 10;
        bad[mid] ^= 0xff;
        assert!(matches!(load(&bad), Err(EipError::Profile(msg)) if msg.contains("checksum")));
        // Truncation.
        assert!(load(&good[..good.len() - 9]).is_err());
        assert!(load(&[]).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(load(&bad).is_err());
    }

    /// Rewrites the trailing checksum after byte surgery, so the
    /// corruption reaches the decoder instead of the checksum check
    /// (FNV-1a is not cryptographic — crafted files can do the same).
    fn reseal(bytes: &mut [u8]) {
        let body_end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn crafted_payloads_error_instead_of_panicking() {
        let m = model();
        let good = save(&m, 5);

        // Non-normalized CPT row: the payload ends with the last BN
        // node's probabilities; poison the final one with NaN.
        let mut bad = good.clone();
        let body_end = bad.len() - 8;
        bad[body_end - 8..body_end].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        reseal(&mut bad);
        assert!(matches!(load(&bad), Err(EipError::Profile(msg)) if msg.contains("sums to")));

        // Inverted segment range (start > end): the first segment's
        // start field sits after width, address count, both profiles,
        // and the segment count + label.
        let mut off = HEADER_LEN + 4 + 8 + 32 * 8 + 32 * 8 + 4;
        let label_len = u32::from_le_bytes(good[off..off + 4].try_into().unwrap()) as usize;
        off += 4 + label_len;
        let mut bad = good.clone();
        bad[off..off + 4].copy_from_slice(&31u32.to_le_bytes());
        reseal(&mut bad);
        assert!(matches!(load(&bad), Err(EipError::Profile(msg)) if msg.contains("range")));

        // Zero segment start (positions are 1-based).
        let mut bad = good;
        bad[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
        reseal(&mut bad);
        assert!(load(&bad).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("eip_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.eipm");
        let m = model();
        save_file(&path, &m, 42).unwrap();
        let (back, fp) = load_file(&path).unwrap();
        assert_eq!(fp, 42);
        assert_eq!(profile::export(&back), profile::export(&m));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_file(dir.join("missing.eipm")),
            Err(EipError::Io { .. })
        ));
    }

    #[test]
    fn atomic_save_survives_crash_leftovers() {
        let dir = std::env::temp_dir().join("eip_store_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.eipm");
        let m = model();
        save_file(&path, &m, 1).unwrap();

        // Simulate a writer that crashed mid-write: a torn temp file
        // (what FaultyWrite's fail_at leaves of a container) next to
        // the good target. The target must stay readable.
        let tmp = dir.join("net.eipm.tmp");
        let mut torn = eip_exec::fault::FaultPlan::new(3, 0)
            .failing_at(0)
            .wrap_write(std::fs::File::create(&tmp).unwrap());
        assert!(std::io::Write::write(&mut torn, &save(&m, 2)).is_err());
        drop(torn);
        assert!(tmp.exists(), "torn temp file left behind");
        let (_, fp) = load_file(&path).expect("crash leftover must not corrupt the target");
        assert_eq!(fp, 1, "old model still served");

        // The next save overwrites the leftover and completes.
        save_file(&path, &m, 3).unwrap();
        assert!(!tmp.exists(), "successful save cleans the temp name");
        assert_eq!(load_file(&path).unwrap().1, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_rejects_pathless_targets() {
        assert!(matches!(
            write_atomic(Path::new("/"), b"x"),
            Err(EipError::Usage(_))
        ));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(
            fingerprint("seed=1 top64=false"),
            fingerprint("seed=1 top64=false")
        );
        assert_ne!(
            fingerprint("seed=1 top64=false"),
            fingerprint("seed=2 top64=false")
        );
    }
}
