//! The conditional probability browser (§4, Fig. 1b–c).
//!
//! The paper's web UI shows, for every segment, the distribution over
//! its dictionary values as a colored heat map; clicking a value
//! conditions the Bayesian network on it and refreshes all columns.
//! [`Browser`] is that interaction model without the pixels: it holds
//! the current evidence set and serves per-segment posterior
//! distributions ready for rendering (which `eip-viz` does).

use eip_bayes::Evidence;

use crate::mining::ValueKind;
use crate::model::IpModel;

/// One segment's posterior distribution over its dictionary values.
#[derive(Clone, Debug)]
pub struct SegmentDistribution {
    /// Segment letter label.
    pub label: String,
    /// `(code, kind, probability)` per dictionary element, in
    /// dictionary order.
    pub entries: Vec<(String, ValueKind, f64)>,
    /// Whether this segment is currently clamped by evidence.
    pub observed: bool,
}

/// Interactive conditioning session over a model.
#[derive(Clone, Debug)]
pub struct Browser<'m> {
    model: &'m IpModel,
    evidence: Evidence,
}

impl<'m> Browser<'m> {
    /// Opens a browser with no evidence.
    pub fn new(model: &'m IpModel) -> Self {
        Browser {
            model,
            evidence: Vec::new(),
        }
    }

    /// Clamps a segment (by label) to a dictionary code (e.g. "J1").
    /// Replaces any previous evidence on the same segment. Returns
    /// `false` if the label or code does not exist.
    pub fn select(&mut self, label: &str, code: &str) -> bool {
        let Some((seg, val)) = self.model.evidence_for(label, code) else {
            return false;
        };
        self.evidence.retain(|&(v, _)| v != seg);
        self.evidence.push((seg, val));
        true
    }

    /// Removes evidence from a segment. Returns `false` if none was
    /// set.
    pub fn deselect(&mut self, label: &str) -> bool {
        let Some(seg) = self.model.segment_index(label) else {
            return false;
        };
        let before = self.evidence.len();
        self.evidence.retain(|&(v, _)| v != seg);
        self.evidence.len() != before
    }

    /// Clears all evidence.
    pub fn clear(&mut self) {
        self.evidence.clear();
    }

    /// Current evidence (segment index, code index) pairs.
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// Posterior distributions of all segments under the current
    /// evidence — the full browser state (Fig. 1b/c).
    pub fn distributions(&self) -> Vec<SegmentDistribution> {
        let post = self.model.posterior(&self.evidence);
        self.model
            .mined()
            .iter()
            .enumerate()
            .map(|(i, m)| SegmentDistribution {
                label: m.segment.label.clone(),
                entries: m
                    .values
                    .iter()
                    .zip(&post[i])
                    .map(|(sv, &p)| (sv.code.clone(), sv.kind, p))
                    .collect(),
                observed: self.evidence.iter().any(|&(v, _)| v == i),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntropyIp;
    use eip_addr::{AddressSet, Ip6};

    /// Two /32s with *different* subnet nybble distributions, so
    /// evidence on the subnet segment shifts the /32 posterior.
    fn model() -> IpModel {
        let mut v = Vec::new();
        for i in 0..600u128 {
            // 2001:db8: subnets 0..4
            v.push(Ip6((0x2001_0db8u128 << 96) | ((i % 4) << 80) | (i + 1)));
        }
        for i in 0..400u128 {
            // 3001:db8: subnets 8..16
            v.push(Ip6((0x3001_0db8u128 << 96) | ((8 + i % 8) << 80) | (i + 1)));
        }
        EntropyIp::new().analyze(&AddressSet::from_iter(v)).unwrap()
    }

    #[test]
    fn distributions_sum_to_one() {
        let m = model();
        let b = Browser::new(&m);
        for d in b.distributions() {
            let s: f64 = d.entries.iter().map(|&(_, _, p)| p).sum();
            assert!((s - 1.0).abs() < 1e-6, "segment {} sums to {s}", d.label);
            assert!(!d.observed);
        }
    }

    #[test]
    fn select_conditions_and_flags_segment() {
        let m = model();
        let mut b = Browser::new(&m);
        assert!(b.select("A", "A1"));
        let dists = b.distributions();
        let a = dists.iter().find(|d| d.label == "A").unwrap();
        assert!(a.observed);
        // The observed segment's distribution is deterministic.
        let ones: Vec<f64> = a.entries.iter().map(|&(_, _, p)| p).collect();
        assert!((ones.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(ones.iter().any(|&p| (p - 1.0).abs() < 1e-9));
    }

    #[test]
    fn evidence_moves_other_segments() {
        let m = model();
        let mut b = Browser::new(&m);
        let before = b.distributions();
        // Clamp A to the second /32 (code order follows frequency;
        // find the code whose posterior then forces things).
        assert!(b.select("A", "A2"));
        let after = b.distributions();
        // Find the subnet segment (the one covering nybble 12) and
        // check its distribution moved.
        let idx = m
            .segment_index(&m.analysis().segment_at(12).unwrap().label)
            .unwrap();
        let delta: f64 = before[idx]
            .entries
            .iter()
            .zip(&after[idx].entries)
            .map(|(x, y)| (x.2 - y.2).abs())
            .sum();
        assert!(delta > 0.05, "subnet distribution barely moved: {delta}");
    }

    #[test]
    fn deselect_restores_prior() {
        let m = model();
        let mut b = Browser::new(&m);
        let prior = b.distributions();
        b.select("A", "A1");
        assert!(b.deselect("A"));
        let back = b.distributions();
        for (x, y) in prior.iter().zip(&back) {
            for (e1, e2) in x.entries.iter().zip(&y.entries) {
                assert!((e1.2 - e2.2).abs() < 1e-12);
            }
        }
        assert!(!b.deselect("A"), "nothing left to deselect");
    }

    #[test]
    fn selecting_same_segment_replaces_evidence() {
        let m = model();
        let mut b = Browser::new(&m);
        b.select("A", "A1");
        b.select("A", "A2");
        assert_eq!(b.evidence().len(), 1);
        b.clear();
        assert!(b.evidence().is_empty());
    }

    #[test]
    fn unknown_labels_rejected() {
        let m = model();
        let mut b = Browser::new(&m);
        assert!(!b.select("Q9", "Q91"));
        assert!(!b.select("A", "A999"));
        assert!(!b.deselect("Q9"));
    }
}
