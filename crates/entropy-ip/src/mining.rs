//! Segment mining (§4.3): discovering each segment's popular values
//! and dense ranges.
//!
//! For segment `k`, reduce the dataset to the segment's values `D_k`
//! and build the ordered value dictionary `V_k` in three steps, each
//! nominating at most the top 10 elements and removing them from
//! `D_k`; stop as soon as ≤0.1% of the original observations remain:
//!
//! * **(a) frequencies** — values more common than `Q3 + 1.5·IQR`
//!   over the count distribution (outlier rule);
//! * **(b) values** — DBSCAN over the values, "parametrized to find
//!   highly dense ranges", nominated as `(min, max)` ranges;
//! * **(c) both** — DBSCAN over the histogram (value vs. count),
//!   tuned for ranges that are "uniformly distributed and relatively
//!   continuous".
//!
//! Whatever remains is closed with a `(min D_k, max D_k)` range — or,
//! if only a handful of observations remain, they are enumerated
//! verbatim. Codes are the segment letter plus a 1-based index
//! ("C3"), and every element keeps its empirical frequency, exactly
//! like the paper's Table 3.
//!
//! ## Shard-count-then-merge
//!
//! Mining splits into two phases: *counting* (reduce the raw segment
//! values to a value histogram) and *thresholding* (the three
//! nomination steps above, which only ever look at the histogram).
//! The counting phase shards: [`mine_segment_sharded`] builds one
//! histogram per input shard on an [`eip_exec::Scheduler`], merges
//! them (exact integer-count merge, so the merged histogram is
//! identical at any shard count), and hands the result to the same
//! thresholding core [`mine_segment_histogram`] the serial
//! [`mine_segment`] uses. The serial path is the reference
//! implementation the sharded engine is verified against — see the
//! shard-equivalence proptests in `tests/proptests.rs`.

use eip_cluster::{Dbscan1D, Dbscan2D};
use eip_exec::Scheduler;
use eip_stats::Histogram;

use crate::segments::Segment;

/// What a dictionary element denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// A single exact segment value.
    Exact(u128),
    /// A closed range of values `[lo, hi]`. Encoding a value into a
    /// range code loses the low-order detail, "acceptable for our
    /// purposes" per the paper.
    Range {
        /// Low bound (inclusive).
        lo: u128,
        /// High bound (inclusive).
        hi: u128,
    },
}

impl ValueKind {
    /// Whether this element matches a concrete segment value.
    pub fn matches(&self, v: u128) -> bool {
        match *self {
            ValueKind::Exact(x) => v == x,
            ValueKind::Range { lo, hi } => (lo..=hi).contains(&v),
        }
    }
}

/// One dictionary element of `V_k`, with its empirical frequency.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentValue {
    /// Code, e.g. "C3": segment letter + 1-based element index.
    pub code: String,
    /// The value or range.
    pub kind: ValueKind,
    /// Number of training observations this element claimed when it
    /// was nominated.
    pub count: u64,
    /// `count` over the total observations of the segment.
    pub freq: f64,
}

/// The mining result for one segment: the ordered dictionary `V_k`.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedSegment {
    /// The segment this dictionary describes.
    pub segment: Segment,
    /// Ordered dictionary (insertion order = nomination order).
    pub values: Vec<SegmentValue>,
    /// Total observations mined.
    pub total: u64,
}

impl MinedSegment {
    /// Encodes a segment value as the index of the first matching
    /// dictionary element (exact values are nominated before the
    /// ranges that might also cover them). `None` if nothing matches
    /// — possible only for values never seen in training.
    pub fn encode(&self, v: u128) -> Option<usize> {
        self.values.iter().position(|sv| sv.kind.matches(v))
    }

    /// Number of dictionary elements (the BN variable's cardinality).
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }
}

/// Mining parameters. The defaults mirror the paper's description and
/// its published examples; DESIGN.md discusses the two DBSCAN
/// parameterizations.
#[derive(Clone, Debug)]
pub struct MiningOptions {
    /// Elements nominated per step ("at most the top 10").
    pub top_per_step: usize,
    /// Stop when at most this fraction of observations remains
    /// ("≤0.1% of values left").
    pub leftover_frac: f64,
    /// Enumerate the remainder verbatim when it has at most this many
    /// distinct values ("if |D_k| ≤ 10 we take the whole D_k").
    pub enumerate_limit: usize,
    /// Step (b): DBSCAN ε as a fraction of the remaining value span.
    pub value_eps_frac: f64,
    /// Step (b): core-point weight as a fraction of the segment's
    /// total observations.
    pub value_min_frac: f64,
    /// Step (c): DBSCAN ε in the normalized (value, count) space.
    pub hist_eps: f64,
    /// Step (c): DBSCAN minPts.
    pub hist_min_pts: usize,
}

impl Default for MiningOptions {
    fn default() -> Self {
        MiningOptions {
            top_per_step: 10,
            leftover_frac: 0.001,
            enumerate_limit: 10,
            value_eps_frac: 0.02,
            value_min_frac: 0.02,
            hist_eps: 0.05,
            hist_min_pts: 5,
        }
    }
}

/// Mines one segment's value dictionary from the raw segment values
/// (one entry per training address). This is the serial reference
/// path: one pass builds the histogram, then
/// [`mine_segment_histogram`] thresholds it.
pub fn mine_segment(segment: &Segment, values: &[u128], opts: &MiningOptions) -> MinedSegment {
    mine_segment_histogram(segment, Histogram::from_values(values), opts)
}

/// Mines one segment's value dictionary with sharded counting: the
/// value stream is split into the scheduler's stable shards, each
/// shard builds its own histogram, and the shard histograms are
/// merged before thresholding. Produces a [`MinedSegment`] identical
/// to [`mine_segment`] at **any** shard/worker count — the merge is
/// an exact integer-count reduction and the thresholding core is
/// shared.
pub fn mine_segment_sharded(
    segment: &Segment,
    values: &[u128],
    opts: &MiningOptions,
    exec: &Scheduler,
) -> MinedSegment {
    let hist = exec
        .par_map_reduce(
            values.len(),
            |range| Histogram::from_values_owned(values[range].to_vec()),
            |acc, part| acc.merge(&part),
        )
        .unwrap_or_default();
    mine_segment_histogram(segment, hist, opts)
}

/// The thresholding core of mining: nominates dictionary elements
/// from a pre-built value histogram (steps (a)–(c) plus the closing
/// rule), consuming the histogram (it is whittled down step by step).
/// Both [`mine_segment`] and the sharded counting paths feed this, so
/// a histogram built in shards yields exactly the serial dictionary.
pub fn mine_segment_histogram(
    segment: &Segment,
    mut hist: Histogram,
    opts: &MiningOptions,
) -> MinedSegment {
    let total = hist.total();
    let mut dict: Vec<SegmentValue> = Vec::new();
    if total == 0 {
        return MinedSegment {
            segment: segment.clone(),
            values: dict,
            total,
        };
    }
    let threshold = (total as f64 * opts.leftover_frac).max(0.0);

    let push = |dict: &mut Vec<SegmentValue>, label: &str, kind: ValueKind, count: u64| {
        let code = format!("{}{}", label, dict.len() + 1);
        dict.push(SegmentValue {
            code,
            kind,
            count,
            freq: count as f64 / total as f64,
        });
    };

    // Step (a): frequency outliers. A value must also carry at least
    // the stop-rule's share of observations (0.1% by default):
    // in a near-uniform segment the Q3+1.5·IQR rule degenerates
    // (IQR = 0) and would otherwise nominate count-2 noise.
    let floor = (total as f64 * opts.leftover_frac).ceil().max(2.0) as u64;
    let outliers = hist.frequency_outliers();
    for &(v, c) in outliers
        .iter()
        .filter(|&&(_, c)| c >= floor)
        .take(opts.top_per_step)
    {
        push(&mut dict, &segment.label, ValueKind::Exact(v), c);
        hist.remove_values(&[v]);
    }

    // Step (b): dense value ranges.
    if hist.total() as f64 > threshold && hist.distinct() > 1 {
        let span = hist.max().unwrap() - hist.min().unwrap();
        let eps = ((span as f64 * opts.value_eps_frac) as u128).max(1);
        let min_weight = ((total as f64 * opts.value_min_frac) as u64).max(2);
        let mut clusters = Dbscan1D::new(eps, min_weight).run(hist.entries());
        clusters.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.min.cmp(&b.min)));
        for c in clusters.into_iter().take(opts.top_per_step) {
            let kind = if c.min == c.max {
                ValueKind::Exact(c.min)
            } else {
                ValueKind::Range {
                    lo: c.min,
                    hi: c.max,
                }
            };
            push(&mut dict, &segment.label, kind, c.weight);
            hist.remove_range(c.min, c.max);
        }
    }

    // Step (c): uniform continuous histogram ranges.
    if hist.total() as f64 > threshold && hist.distinct() > 1 {
        let ranges = Dbscan2D::new(opts.hist_eps, opts.hist_min_pts).ranges(hist.entries());
        let mut with_weight: Vec<(u128, u128, u64)> = ranges
            .into_iter()
            .map(|(lo, hi, _)| {
                let w: u64 = hist
                    .entries()
                    .iter()
                    .filter(|&&(v, _)| (lo..=hi).contains(&v))
                    .map(|&(_, c)| c)
                    .sum();
                (lo, hi, w)
            })
            .collect();
        with_weight.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        for (lo, hi, w) in with_weight.into_iter().take(opts.top_per_step) {
            let kind = if lo == hi {
                ValueKind::Exact(lo)
            } else {
                ValueKind::Range { lo, hi }
            };
            push(&mut dict, &segment.label, kind, w);
            hist.remove_range(lo, hi);
        }
    }

    // Close the dictionary.
    if hist.total() as f64 > threshold && !hist.is_empty() {
        if hist.distinct() <= opts.enumerate_limit {
            let leftovers: Vec<(u128, u64)> = hist.entries().to_vec();
            for (v, c) in leftovers {
                push(&mut dict, &segment.label, ValueKind::Exact(v), c);
            }
        } else {
            let (lo, hi) = (hist.min().unwrap(), hist.max().unwrap());
            push(
                &mut dict,
                &segment.label,
                ValueKind::Range { lo, hi },
                hist.total(),
            );
        }
    } else if dict.is_empty() && !hist.is_empty() {
        // Degenerate guard: tiny leftover below the stop threshold
        // but nothing nominated yet (can happen for single-value
        // segments with pathological options). Never return an empty
        // dictionary for a non-empty segment.
        let (lo, hi) = (hist.min().unwrap(), hist.max().unwrap());
        let kind = if lo == hi {
            ValueKind::Exact(lo)
        } else {
            ValueKind::Range { lo, hi }
        };
        push(&mut dict, &segment.label, kind, hist.total());
    }

    MinedSegment {
        segment: segment.clone(),
        values: dict,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment {
            label: "C".into(),
            start: 9,
            end: 10,
        }
    }

    #[test]
    fn constant_segment_single_exact_value() {
        let values = vec![0x10u128; 100];
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        assert_eq!(m.values.len(), 1);
        assert_eq!(m.values[0].kind, ValueKind::Exact(0x10));
        assert_eq!(m.values[0].code, "C1");
        assert!((m.values[0].freq - 1.0).abs() < 1e-12);
    }

    #[test]
    fn popular_values_nominated_first() {
        // Value 0x10 dominates (60%), a few uniform stragglers.
        let mut values = vec![0x10u128; 600];
        for i in 0..400u128 {
            values.push(i % 100 + 0x20);
        }
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        assert_eq!(m.values[0].kind, ValueKind::Exact(0x10));
        assert!((m.values[0].freq - 0.6).abs() < 0.01);
        // Every training value must encode.
        for &v in &values {
            assert!(m.encode(v).is_some(), "value {v:#x} did not encode");
        }
    }

    #[test]
    fn uniform_random_segment_becomes_range() {
        // Pseudo-uniform over 0..=255: no frequency outliers; DBSCAN
        // should produce one covering range (the paper's G14-style
        // element).
        let values: Vec<u128> = (0..2000u128).map(|i| (i * 37) % 256).collect();
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        assert!(!m.values.is_empty());
        let covered: u64 = m.values.iter().map(|v| v.count).sum();
        assert!(covered as f64 >= 0.999 * values.len() as f64);
        let has_range = m
            .values
            .iter()
            .any(|v| matches!(v.kind, ValueKind::Range { .. }));
        assert!(has_range, "{:?}", m.values);
        for &v in &values {
            assert!(m.encode(v).is_some());
        }
    }

    #[test]
    fn mixed_structure_yields_exacts_and_ranges() {
        // 40% value 0, 30% value 0x80, rest uniform in 0x20..0x60.
        let mut values = vec![0u128; 400];
        values.extend(std::iter::repeat_n(0x80u128, 300));
        for i in 0..300u128 {
            values.push(0x20 + (i * 7) % 0x40);
        }
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        assert_eq!(m.values[0].kind, ValueKind::Exact(0));
        assert_eq!(m.values[1].kind, ValueKind::Exact(0x80));
        for &v in &values {
            assert!(m.encode(v).is_some());
        }
        // Exact codes win over any covering range.
        assert_eq!(m.encode(0), Some(0));
        assert_eq!(m.encode(0x80), Some(1));
    }

    #[test]
    fn tiny_remainder_enumerated_verbatim() {
        // Dominant value + 3 stragglers: the stragglers are few
        // enough to be enumerated.
        let mut values = vec![7u128; 500];
        values.extend([100u128, 200, 300]);
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        for &v in &[100u128, 200, 300] {
            let idx = m.encode(v).unwrap();
            assert_eq!(m.values[idx].kind, ValueKind::Exact(v));
        }
    }

    #[test]
    fn empty_input_yields_empty_dictionary() {
        let m = mine_segment(&seg(), &[], &MiningOptions::default());
        assert!(m.values.is_empty());
        assert_eq!(m.total, 0);
        assert_eq!(m.encode(0), None);
    }

    #[test]
    fn codes_are_sequential() {
        let values: Vec<u128> = (0..100u128).map(|i| i % 5).collect();
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        for (i, sv) in m.values.iter().enumerate() {
            assert_eq!(sv.code, format!("C{}", i + 1));
        }
    }

    #[test]
    fn counts_never_exceed_total() {
        let values: Vec<u128> = (0..1000u128).map(|i| (i * 13) % 64).collect();
        let m = mine_segment(&seg(), &values, &MiningOptions::default());
        let sum: u64 = m.values.iter().map(|v| v.count).sum();
        assert!(sum <= m.total);
        for v in &m.values {
            assert!(v.freq <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn sharded_mining_matches_serial_at_any_shard_count() {
        // A mixed-structure segment: dominant exacts + a dense range +
        // a pseudo-random tail, exercising all three mining steps.
        let mut values = vec![0u128; 400];
        values.extend(std::iter::repeat_n(0x80u128, 250));
        for i in 0..250u128 {
            values.push(0x20 + (i * 7) % 0x40);
        }
        for i in 0..300u128 {
            values.push(0x1000 + (i * 2654435761) % 0x10000);
        }
        let serial = mine_segment(&seg(), &values, &MiningOptions::default());
        for shards in 1..=8 {
            let sharded = mine_segment_sharded(
                &seg(),
                &values,
                &MiningOptions::default(),
                &Scheduler::new(shards),
            );
            assert_eq!(sharded, serial, "{shards} shards");
        }
    }

    #[test]
    fn histogram_core_matches_value_path() {
        let values: Vec<u128> = (0..1000u128).map(|i| (i * 13) % 64).collect();
        let via_values = mine_segment(&seg(), &values, &MiningOptions::default());
        let via_hist = mine_segment_histogram(
            &seg(),
            Histogram::from_values(&values),
            &MiningOptions::default(),
        );
        assert_eq!(via_values, via_hist);
        // Empty histogram yields the empty dictionary.
        let empty = mine_segment_histogram(&seg(), Histogram::default(), &MiningOptions::default());
        assert!(empty.values.is_empty());
        assert_eq!(empty.total, 0);
    }

    #[test]
    fn range_matching_is_inclusive() {
        let k = ValueKind::Range { lo: 10, hi: 20 };
        assert!(k.matches(10));
        assert!(k.matches(20));
        assert!(!k.matches(9));
        assert!(!k.matches(21));
        assert!(ValueKind::Exact(5).matches(5));
        assert!(!ValueKind::Exact(5).matches(6));
    }
}
