//! The end-to-end Entropy/IP model: analysis → mining → Bayesian
//! network → encoding/decoding/generation.

use std::collections::{HashMap, HashSet};

use eip_addr::{AddressSet, Ip6};
use eip_bayes::{BayesNet, Evidence, LearnOptions, SamplingPlan};
use rand::Rng;

use crate::analysis::Analysis;
use crate::mining::{MinedSegment, MiningOptions, ValueKind};
use crate::segments::SegmentationOptions;

/// Pipeline configuration.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Segmentation parameters (§4.2).
    pub segmentation: SegmentationOptions,
    /// Mining parameters (§4.3).
    pub mining: MiningOptions,
    /// Structure-learning parameters (§4.4).
    pub learning: LearnOptions,
}

impl Options {
    /// Configuration for /64-prefix prediction (§5.6): the paper
    /// "constrained Entropy/IP to the top 64 bits, without any other
    /// modification".
    pub fn top64() -> Self {
        Options {
            segmentation: SegmentationOptions::top64(),
            ..Default::default()
        }
    }
}

/// Errors from model construction.
///
/// Historical alias: model construction now reports the unified
/// [`EipError`](crate::error::EipError) (`ModelError::EmptySet` still
/// matches).
pub type ModelError = crate::error::EipError;

/// The Entropy/IP system: builds [`IpModel`]s from address sets.
#[derive(Clone, Debug, Default)]
pub struct EntropyIp {
    opts: Options,
}

impl EntropyIp {
    /// System with default (paper) parameters.
    pub fn new() -> Self {
        EntropyIp::default()
    }

    /// System with explicit parameters.
    pub fn with_options(opts: Options) -> Self {
        EntropyIp { opts }
    }

    /// Runs the full pipeline on a training set — a thin convenience
    /// over the staged [`Pipeline`](crate::Pipeline) API (the staged
    /// path produces a byte-identical model; see
    /// [`crate::pipeline`]).
    ///
    /// In top-64 mode the set is first reduced to its distinct /64
    /// networks, as §5.6 trains on prefixes.
    pub fn analyze(&self, ips: &AddressSet) -> Result<IpModel, ModelError> {
        crate::Pipeline::new(crate::Config::from(self.opts.clone())).run(ips.iter())
    }
}

/// A trained Entropy/IP model for one network.
///
/// Construction ([`IpModel::from_parts`]) precomputes the hot-path
/// lookups: the Bayesian network is compiled into a flat
/// [`SamplingPlan`] (zero-allocation ancestral sampling, see
/// [`eip_bayes::compile`]), and the segment-label and dictionary-code
/// indices go into hash maps so [`IpModel::segment_index`] and
/// [`IpModel::evidence_for`] are O(1) instead of linear scans.
#[derive(Clone, Debug)]
pub struct IpModel {
    pub(crate) analysis: Analysis,
    pub(crate) mined: Vec<MinedSegment>,
    pub(crate) bn: BayesNet,
    /// The BN compiled for zero-allocation sampling.
    plan: SamplingPlan,
    /// Segment label → segment index.
    label_index: HashMap<String, usize>,
    /// Per segment: dictionary code string → value index.
    code_index: Vec<HashMap<String, usize>>,
}

impl IpModel {
    /// Assembles a model from parts (used by profile import; the
    /// pieces must be mutually consistent). Compiles the sampling
    /// plan and the label/code lookup maps.
    pub fn from_parts(analysis: Analysis, mined: Vec<MinedSegment>, bn: BayesNet) -> Self {
        assert_eq!(
            analysis.segments.len(),
            mined.len(),
            "segment count mismatch"
        );
        assert_eq!(bn.num_vars(), mined.len(), "BN variable count mismatch");
        for (i, m) in mined.iter().enumerate() {
            assert_eq!(
                bn.node(i).cardinality,
                m.cardinality(),
                "cardinality mismatch at {i}"
            );
        }
        let plan = bn.compile();
        let label_index = analysis
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| (s.label.clone(), i))
            .collect();
        let code_index = mined
            .iter()
            .map(|m| {
                m.values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.code.clone(), i))
                    .collect()
            })
            .collect();
        IpModel {
            analysis,
            mined,
            bn,
            plan,
            label_index,
            code_index,
        }
    }

    /// The entropy/ACR/segmentation analysis.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Mined value dictionaries, one per segment.
    pub fn mined(&self) -> &[MinedSegment] {
        &self.mined
    }

    /// The learned Bayesian network.
    pub fn bn(&self) -> &BayesNet {
        &self.bn
    }

    /// The compiled sampling plan (flat cumulative-weight tables; see
    /// [`eip_bayes::compile`]). Draws rows byte-identical to
    /// [`eip_bayes::sample_row`] on the same RNG stream, with zero
    /// allocation.
    pub fn plan(&self) -> &SamplingPlan {
        &self.plan
    }

    /// Analysis width in nybbles (32 full / 16 top-64).
    pub fn width(&self) -> usize {
        self.analysis.width
    }

    /// Index of the segment with the given letter label (O(1): the
    /// lookup map is built at model construction).
    pub fn segment_index(&self, label: &str) -> Option<usize> {
        self.label_index.get(label).copied()
    }

    /// Encodes an address as its categorical code vector; `None` if
    /// some segment value was never seen in training. Segment values
    /// are sliced straight off the `u128` ([`Ip6::segment`]).
    pub fn encode(&self, ip: Ip6) -> Option<Vec<usize>> {
        self.mined
            .iter()
            .map(|m| m.encode(ip.segment(m.segment.start, m.segment.end)))
            .collect()
    }

    /// Decodes a code vector into a concrete address, sampling range
    /// codes uniformly within their bounds. Positions outside the
    /// analysis width are zero (top-64 mode yields /64 network
    /// addresses).
    ///
    /// # Panics
    /// Panics if the row width or any code is out of range.
    pub fn decode<R: Rng + ?Sized>(&self, row: &[usize], rng: &mut R) -> Ip6 {
        assert_eq!(row.len(), self.mined.len(), "row width mismatch");
        self.decode_at(|i| row[i], rng)
    }

    /// Decodes a byte-coded row as produced by the compiled
    /// [`plan`](IpModel::plan)'s
    /// [`sample_into`](SamplingPlan::sample_into). Identical to
    /// [`IpModel::decode`] (same RNG consumption, same address) for
    /// the same codes.
    ///
    /// # Panics
    /// Panics if the row width or any code is out of range.
    pub fn decode_codes<R: Rng + ?Sized>(&self, row: &[u8], rng: &mut R) -> Ip6 {
        assert_eq!(row.len(), self.mined.len(), "row width mismatch");
        self.decode_at(|i| row[i] as usize, rng)
    }

    /// Shared decode core over any code accessor. Segments are
    /// disjoint nybble runs, so each value ORs straight into the
    /// `u128` at its bit offset — equivalent to the
    /// [`eip_addr::Nybbles::set_segment_value`] walk (including its
    /// "value too wide for segment" panic, which catches corrupt
    /// imported profiles), without expanding and recombining 32
    /// nybbles per address.
    fn decode_at<R: Rng + ?Sized>(&self, code_at: impl Fn(usize) -> usize, rng: &mut R) -> Ip6 {
        let mut out: u128 = 0;
        for (i, m) in self.mined.iter().enumerate() {
            let value = match m.values[code_at(i)].kind {
                ValueKind::Exact(v) => v,
                ValueKind::Range { lo, hi } => sample_u128_inclusive(lo, hi, rng),
            };
            // 1-based inclusive nybble positions → bit shift from the
            // low end of the address.
            let width_bits = (m.segment.end - m.segment.start + 1) * 4;
            let mask = if width_bits == 128 {
                u128::MAX
            } else {
                (1u128 << width_bits) - 1
            };
            assert!(value <= mask, "value too wide for segment");
            out |= value << (128 - (m.segment.start - 1) * 4 - width_bits);
        }
        Ip6(out)
    }

    /// Generates up to `n` *unique* candidate addresses by ancestral
    /// sampling (§5.5 trains on 1K and generates 1M candidates this
    /// way), giving up after `max_attempts` draws. Sampling runs on
    /// the compiled [`plan`](IpModel::plan) with a reusable row
    /// buffer — byte-identical output to the `sample_row` oracle.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        max_attempts: usize,
        rng: &mut R,
    ) -> Vec<Ip6> {
        let mut seen = eip_addr::DedupSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut row = vec![0u8; self.plan.num_vars()];
        for _ in 0..max_attempts {
            if out.len() >= n {
                break;
            }
            self.plan.sample_into(&mut row, rng);
            let ip = self.decode_codes(&row, rng);
            if seen.insert(ip) {
                out.push(ip);
            }
        }
        out
    }

    /// Generates up to `n` unique candidates with some segments
    /// clamped to given dictionary codes (exact conditional
    /// sampling; §4.4's "optionally constrained to certain segment
    /// values").
    pub fn generate_constrained<R: Rng + ?Sized>(
        &self,
        evidence: &Evidence,
        n: usize,
        max_attempts: usize,
        rng: &mut R,
    ) -> Vec<Ip6> {
        let mut seen: HashSet<Ip6> = HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        for _ in 0..max_attempts {
            if out.len() >= n {
                break;
            }
            let row = eip_bayes::sample_conditional(&self.bn, evidence, rng);
            let ip = self.decode(&row, rng);
            if seen.insert(ip) {
                out.push(ip);
            }
        }
        out
    }

    /// Looks up evidence `(segment index, code index)` from a segment
    /// label and dictionary code string, e.g. `("J", "J1")` — O(1)
    /// via the lookup maps built at model construction.
    pub fn evidence_for(&self, label: &str, code: &str) -> Option<(usize, usize)> {
        let seg = self.segment_index(label)?;
        let val = *self.code_index[seg].get(code)?;
        Some((seg, val))
    }

    /// Posterior distributions of every segment given evidence — the
    /// data behind the conditional probability browser.
    pub fn posterior(&self, evidence: &Evidence) -> Vec<Vec<f64>> {
        eip_bayes::posterior_marginals(&self.bn, evidence)
    }
}

/// Uniform sample in the inclusive range `[lo, hi]` without overflow
/// at the `u128` extremes.
fn sample_u128_inclusive<R: Rng + ?Sized>(lo: u128, hi: u128, rng: &mut R) -> u128 {
    debug_assert!(lo <= hi);
    if lo == hi {
        return lo;
    }
    let span = hi - lo;
    if span == u128::MAX {
        return rng.gen();
    }
    lo + rng.gen_range(0..=span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A structured network: 2 /32s (70/30), 8 subnets, two IID
    /// styles (low counters and a dependent constant).
    fn training_set() -> AddressSet {
        let mut v = Vec::new();
        for i in 0..700u128 {
            let subnet = i % 8;
            v.push(Ip6((0x2001_0db8u128 << 96) | (subnet << 80) | (i % 50 + 1)));
        }
        for i in 0..300u128 {
            let subnet = i % 8;
            v.push(Ip6((0x3001_0db8u128 << 96)
                | (subnet << 80)
                | (0x1000 + (i % 40))));
        }
        AddressSet::from_iter(v)
    }

    #[test]
    fn pipeline_builds_model() {
        let model = EntropyIp::new().analyze(&training_set()).unwrap();
        assert!(model.analysis().segments.len() >= 3);
        assert_eq!(model.mined().len(), model.analysis().segments.len());
        assert_eq!(model.bn().num_vars(), model.mined().len());
        // Segment A (first 8 nybbles) must expose the two /32 values.
        assert_eq!(model.mined()[0].cardinality(), 2);
    }

    #[test]
    fn empty_set_errors() {
        assert!(matches!(
            EntropyIp::new().analyze(&AddressSet::new()),
            Err(ModelError::EmptySet)
        ));
    }

    #[test]
    fn training_addresses_encode() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        for ip in set.iter() {
            assert!(model.encode(ip).is_some(), "{ip} failed to encode");
        }
    }

    #[test]
    fn decode_round_trips_exact_codes() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Encoding then decoding must land in the same code vector
        // (ranges may change the concrete value but not its code).
        for ip in set.iter().take(100) {
            let row = model.encode(ip).unwrap();
            let back = model.decode(&row, &mut rng);
            assert_eq!(model.encode(back).unwrap(), row, "{ip} vs {back}");
        }
    }

    #[test]
    fn generation_produces_unique_plausible_addresses() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let out = model.generate(500, 50_000, &mut rng);
        assert!(out.len() >= 400, "got {}", out.len());
        let uniq: HashSet<Ip6> = out.iter().copied().collect();
        assert_eq!(uniq.len(), out.len(), "candidates must be unique");
        // Every candidate must re-encode (it matches the model).
        for ip in &out {
            assert!(model.encode(*ip).is_some());
        }
        // And stay within the two known /32s.
        for ip in &out {
            let top = ip.bits(0, 32);
            assert!(top == 0x2001_0db8 || top == 0x3001_0db8, "{ip}");
        }
    }

    #[test]
    fn constrained_generation_respects_evidence() {
        let set = training_set();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        // Clamp segment A to its second /32 code.
        let a_idx = model.segment_index("A").unwrap();
        let code_3001 = model.mined()[a_idx]
            .values
            .iter()
            .position(|v| v.kind.matches(0x3001_0db8))
            .unwrap();
        let evidence = vec![(a_idx, code_3001)];
        let out = model.generate_constrained(&evidence, 50, 5_000, &mut rng);
        assert!(!out.is_empty());
        for ip in &out {
            assert_eq!(ip.bits(0, 32), 0x3001_0db8, "{ip}");
        }
    }

    #[test]
    fn top64_mode_generates_prefixes() {
        let set = training_set();
        let model = EntropyIp::with_options(Options::top64())
            .analyze(&set)
            .unwrap();
        assert_eq!(model.width(), 16);
        let mut rng = StdRng::seed_from_u64(3);
        let out = model.generate(20, 2_000, &mut rng);
        assert!(!out.is_empty());
        for ip in &out {
            assert_eq!(
                ip.value() & u128::from(u64::MAX),
                0,
                "{ip} is not a /64 network"
            );
        }
    }

    #[test]
    fn evidence_lookup_by_code() {
        let model = EntropyIp::new().analyze(&training_set()).unwrap();
        let (seg, val) = model.evidence_for("A", "A1").unwrap();
        assert_eq!(seg, 0);
        assert_eq!(val, 0);
        assert!(model.evidence_for("A", "A99").is_none());
        assert!(model.evidence_for("ZZ", "ZZ1").is_none());
    }

    #[test]
    fn posterior_reacts_to_evidence() {
        // Two /32s with a distinctive IID marker: 2001:db8 hosts use
        // low IIDs (nybbles 29-30 = 00), 3001:db8 hosts use 0xff00+
        // (nybbles 29-30 = ff). Evidence on the marker segment must
        // flow backwards into segment A.
        let mut v = Vec::new();
        for subnet in 0..8u128 {
            for host in 0..88u128 {
                v.push(Ip6((0x2001_0db8u128 << 96) | (subnet << 80) | host));
            }
        }
        for subnet in 0..8u128 {
            for host in 0..38u128 {
                v.push(Ip6((0x3001_0db8u128 << 96)
                    | (subnet << 80)
                    | (0xff00 + host)));
            }
        }
        let model = EntropyIp::new().analyze(&AddressSet::from_iter(v)).unwrap();
        let marker = model.analysis().segment_at(29).unwrap().label.clone();
        let mseg = model.segment_index(&marker).unwrap();
        // Find the code that matches the 0xff-side marker value.
        let seg = &model.mined()[mseg];
        let probe = seg
            .encode(
                seg.values
                    .iter()
                    .find_map(|sv| match sv.kind {
                        ValueKind::Exact(x) if x != 0 => Some(x),
                        ValueKind::Range { lo, hi } if lo > 0 => Some((lo + hi) / 2),
                        _ => None,
                    })
                    .expect("marker segment should have a nonzero code"),
            )
            .unwrap();
        let prior = model.posterior(&vec![]);
        let post = model.posterior(&vec![(mseg, probe)]);
        let a_idx = model.segment_index("A").unwrap();
        let delta: f64 = prior[a_idx]
            .iter()
            .zip(&post[a_idx])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            delta > 0.1,
            "evidence on {marker} should move segment A, delta {delta}"
        );
    }

    #[test]
    #[should_panic(expected = "value too wide for segment")]
    fn decode_rejects_overwide_values() {
        // A corrupt (e.g. hand-edited) profile can carry an Exact
        // value wider than its segment; decode must fail loudly, as
        // the Nybbles-based decoder did, not emit truncated garbage.
        let mut model = EntropyIp::new().analyze(&training_set()).unwrap();
        let seg_width = {
            let m = &model.mined[0];
            m.segment.end - m.segment.start + 1
        };
        assert!(seg_width < 32, "test needs a partial-width segment");
        model.mined[0].values[0].kind = ValueKind::Exact(1u128 << (4 * seg_width));
        let row = vec![0usize; model.mined().len()];
        let mut rng = StdRng::seed_from_u64(1);
        model.decode(&row, &mut rng);
    }

    #[test]
    fn sample_u128_inclusive_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = sample_u128_inclusive(10, 20, &mut rng);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(sample_u128_inclusive(7, 7, &mut rng), 7);
        // Full-space range must not overflow.
        let _ = sample_u128_inclusive(0, u128::MAX, &mut rng);
    }
}
