//! Bounded-memory parallel streaming ingestion (stage 1 at scale).
//!
//! [`Pipeline::profile_lines`](crate::Pipeline::profile_lines) is the
//! serial stage-1 oracle: one thread walks the reader line by line
//! and feeds an `AddressSetBuilder`. That is correct and simple, but
//! at Internet-scan scale (100M+ observed addresses) it leaves the
//! one stage every other PR already parallelized pinned to a single
//! core. This module is the scaled engine behind
//! [`Pipeline::profile_reader_streaming`](crate::Pipeline::profile_reader_streaming):
//!
//! 1. **Chunk** — [`eip_addr::ChunkReader`] reads the input in
//!    fixed-size byte chunks split at newline boundaries, so a chunk
//!    is a self-contained batch of whole lines.
//! 2. **Fan out** — chunks feed
//!    [`Scheduler::par_map_feed`](eip_exec::Scheduler::par_map_feed):
//!    up to `workers` chunks are parsed concurrently (the
//!    allocation-free [`eip_addr::set::parse_address_slice`]
//!    classifier, optional /64 reduction in top-64 mode), and each
//!    chunk sorts and dedups its own addresses into a sorted run.
//! 3. **Merge** — runs are consumed *in chunk order* by a run
//!    accumulator: staged sorted runs fold together through a
//!    pairwise linear merge tree and into the accumulated distinct
//!    set by a final two-pointer merge
//!    ([`eip_addr::set::merge_sorted_dedup`]) — cursor walks over
//!    already-sorted data, never a re-sort — with geometric staging
//!    so total merge work stays O(n log n).
//!
//! Peak memory is O(chunk size × workers) for the in-flight text
//! plus O(distinct addresses) for the working set itself —
//! independent of the raw stream length, so a 100M-line file with
//! heavy duplication profiles in the footprint of its distinct set.
//!
//! **Determinism contract.** The final [`AddressSet`] — and therefore
//! the entire `Profiled` artifact (entropy, ACR, working set) — is
//! byte-identical to the serial oracle at *every* chunk size and
//! worker count: equality of sorted deduplicated sets does not depend
//! on how the stream was partitioned, and a malformed line aborts
//! with the same [`EipError::Parse`] message (same 1-based line
//! number, same rendering) the serial reader produces. The
//! chunk-boundary torture suite (`tests/ingest_torture.rs`) pins this
//! across chunk sizes from 1 B up, worker counts 1/2/7/8, CRLF
//! endings, missing trailing newlines, and comments straddling chunk
//! edges.

use std::io::Read;
use std::time::Instant;

use eip_addr::chunk::find_byte;
use eip_addr::set::{invalid_line_error, merge_sorted_dedup, parse_address_slice};
use eip_addr::{AddressSet, ChunkReader, Ip6};
use eip_exec::Scheduler;

use crate::error::EipError;

/// Default chunk size: 4 MiB of text per chunk (~100k lines), large
/// enough to amortize per-chunk sort/merge overhead, small enough
/// that a full worker batch stays comfortably in memory.
pub const DEFAULT_CHUNK_BYTES: usize = 4 << 20;

/// Knobs for the streaming ingestion engine. The settings change
/// wall-clock and peak memory only — never the profiled result (an
/// input rejected by the line cap is rejected at every setting that
/// shares the cap).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestOptions {
    /// Bytes per chunk (clamped to ≥ 1; the `--chunk-mb` CLI knob).
    /// Peak in-flight text is roughly `chunk_bytes × workers`.
    pub chunk_bytes: usize,
    /// Cap on a single input line (clamped to ≥ `chunk_bytes`; the
    /// `--max-line-mb` CLI knob). A longer line aborts ingestion with
    /// a clear [`EipError::Parse`] instead of growing the chunk
    /// buffer without bound.
    pub max_line_bytes: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            max_line_bytes: eip_addr::chunk::DEFAULT_MAX_LINE_BYTES,
        }
    }
}

impl IngestOptions {
    /// Options with the given chunk size in MiB (0 clamps to 1 MiB —
    /// CLI front-ends use literal 0 to select the serial oracle
    /// before this type is ever constructed).
    pub fn chunk_mib(mib: usize) -> Self {
        IngestOptions {
            chunk_bytes: mib.max(1) << 20,
            ..IngestOptions::default()
        }
    }

    /// The same options with the line cap set in MiB (clamped to
    /// ≥ 1 MiB).
    pub fn with_max_line_mib(mut self, mib: usize) -> Self {
        self.max_line_bytes = mib.max(1) << 20;
        self
    }
}

/// Throughput and accounting for one streaming ingestion run. All
/// counters are exact; `elapsed_secs` and the derived rates are
/// wall-clock and vary run to run (everything else is deterministic).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestReport {
    /// Total input lines seen (including blanks and comments).
    pub lines: u64,
    /// Lines that parsed as addresses (before deduplication).
    pub addresses: u64,
    /// Blank and `#`-comment lines skipped.
    pub skipped: u64,
    /// Distinct addresses after deduplication (the working set).
    pub distinct: usize,
    /// Raw bytes consumed from the reader.
    pub bytes: u64,
    /// Newline-aligned chunks the input split into.
    pub chunks: u64,
    /// Worker budget the chunks were parsed under.
    pub workers: usize,
    /// Chunk size the reader was configured with.
    pub chunk_bytes: usize,
    /// Estimated peak working-set bytes of the ingestion engine:
    /// in-flight chunk text plus the distinct-set accumulator at its
    /// largest (an estimate — allocator slack is not modeled).
    pub peak_bytes: usize,
    /// Wall-clock seconds spent ingesting.
    pub elapsed_secs: f64,
}

impl IngestReport {
    /// Lines per second (0 for an instantaneous run).
    pub fn lines_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.lines as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Input megabytes (1e6 bytes) per second.
    pub fn mb_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.bytes as f64 / 1e6 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// One-line human summary, the form the CLIs print.
    pub fn summary(&self) -> String {
        format!(
            "ingested {} lines ({} addresses, {} distinct) in {:.3} s — \
             {:.2} Mlines/s, {:.1} MB/s, peak ~{:.1} MB ({} chunks × {} workers)",
            self.lines,
            self.addresses,
            self.distinct,
            self.elapsed_secs,
            self.lines_per_sec() / 1e6,
            self.mb_per_sec(),
            self.peak_bytes as f64 / 1e6,
            self.chunks,
            self.workers,
        )
    }
}

/// One parsed chunk: its sorted, deduplicated addresses, its line
/// count, and (if a line failed) the offset and raw bytes of the
/// first bad line. The absolute line number is only known once every
/// earlier chunk's count is folded in, so the error is *rendered* by
/// the sequential consumer, not the worker.
struct ParsedChunk {
    run: Vec<Ip6>,
    lines: u64,
    parsed: u64,
    bad: Option<(u64, Vec<u8>)>,
}

/// Parses one newline-aligned chunk: split into lines, classify each
/// with the allocation-free slice parser, /64-reduce in top-64 mode,
/// then sort + dedup into a run. Parsing stops at the first bad line
/// (its chunk-local 0-based index and bytes are recorded) — the whole
/// ingestion aborts there, so later values are never observable.
fn parse_chunk(bytes: &[u8], top64: bool) -> ParsedChunk {
    let mut run: Vec<Ip6> = Vec::with_capacity(bytes.len() / 16);
    let mut lines = 0u64;
    let mut parsed = 0u64;
    let mut bad = None;
    let mut rest = bytes;
    while !rest.is_empty() {
        let (line, next) = match find_byte(rest, b'\n') {
            Some(p) => (&rest[..p], &rest[p + 1..]),
            None => (rest, &rest[rest.len()..]),
        };
        match parse_address_slice(line) {
            Ok(Some(ip)) => {
                parsed += 1;
                run.push(if top64 { ip.slash64() } else { ip });
            }
            Ok(None) => {}
            Err(_) => {
                bad = Some((lines, line.to_vec()));
                lines += 1;
                break;
            }
        }
        lines += 1;
        rest = next;
    }
    run.sort_unstable();
    run.dedup();
    ParsedChunk {
        run,
        lines,
        parsed,
        bad,
    }
}

/// Accumulates sorted, deduplicated runs into one distinct set with
/// geometric staging: runs are *staged* until their combined size
/// outgrows the accumulated set, then folded together by a pairwise
/// [`merge_sorted_dedup`] tree — every pass is a linear cursor walk
/// over already-sorted data, never a re-sort — and merged into the
/// accumulator with one more linear walk. Total work over n ingested
/// addresses is O(n log n) — the same bound as the serial builder —
/// and the buffers never exceed ~2× the distinct count plus one
/// stage.
struct RunAccumulator {
    acc: Vec<Ip6>,
    /// Staged sorted runs awaiting a flush, plus their total length.
    staged: Vec<Vec<Ip6>>,
    staged_len: usize,
    peak: usize,
}

/// Flush threshold floor: below this many staged addresses a flush
/// is all fixed overhead, so tiny runs batch up first.
const MIN_STAGE: usize = 64 * 1024;

impl RunAccumulator {
    fn new() -> Self {
        RunAccumulator {
            acc: Vec::new(),
            staged: Vec::new(),
            staged_len: 0,
            peak: 0,
        }
    }

    fn push_run(&mut self, run: Vec<Ip6>) {
        if run.is_empty() {
            return;
        }
        if self.staged.is_empty() && self.acc.is_empty() {
            // First run: already sorted+deduped, adopt it directly.
            self.acc = run;
            return;
        }
        self.staged_len += run.len();
        self.staged.push(run);
        if self.staged_len >= self.acc.len().max(MIN_STAGE) {
            self.flush();
        }
    }

    /// Folds the staged runs into one (pairwise linear merges), then
    /// into the accumulator.
    fn flush(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        self.note_peak(self.acc.len() + 2 * self.staged_len);
        let mut runs = std::mem::take(&mut self.staged);
        self.staged_len = 0;
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(merge_sorted_dedup(&a, &b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        let merged = runs.pop().expect("non-empty staged runs");
        if self.acc.is_empty() {
            self.acc = merged;
        } else {
            self.note_peak(2 * (self.acc.len() + merged.len()));
            self.acc = merge_sorted_dedup(&self.acc, &merged);
        }
    }

    fn note_peak(&mut self, addrs: usize) {
        self.peak = self.peak.max(addrs * std::mem::size_of::<Ip6>());
    }

    fn finish(mut self) -> (AddressSet, usize) {
        self.flush();
        self.note_peak(self.acc.len());
        let peak = self.peak;
        (AddressSet::from_sorted(self.acc), peak)
    }
}

/// Streams `reader` into a deduplicated [`AddressSet`] (reduced to
/// /64 networks first when `top64` is set, matching the serial
/// profiling paths) using the chunked parallel engine. Returns the
/// set plus the throughput report.
///
/// The result is identical to feeding the same bytes through
/// [`AddressSet::parse_lines`] / the serial
/// [`Pipeline::profile_lines`](crate::Pipeline::profile_lines) at
/// any `opts.chunk_bytes` and any scheduler worker count, including
/// the error for a malformed line.
pub fn ingest_reader<R: Read>(
    reader: R,
    top64: bool,
    exec: &Scheduler,
    opts: &IngestOptions,
) -> Result<(AddressSet, IngestReport), EipError> {
    let start = Instant::now();
    let mut chunker = ChunkReader::with_max_line(reader, opts.chunk_bytes, opts.max_line_bytes);
    let mut acc = RunAccumulator::new();
    let mut lines = 0u64;
    let mut parsed = 0u64;
    // In-flight chunk text, tracked through `Cell`s because the
    // producer (increments) and the consumer (decrements) are two
    // closures living across the same `par_map_feed` call; both run
    // on the calling thread, only the mapper runs on workers.
    let in_flight = std::cell::Cell::new(0usize);
    let in_flight_peak = std::cell::Cell::new(0usize);

    exec.par_map_feed(
        || match chunker.next_chunk() {
            Ok(Some(chunk)) => {
                in_flight.set(in_flight.get() + chunk.len());
                in_flight_peak.set(in_flight_peak.get().max(in_flight.get()));
                Ok(Some(chunk))
            }
            Ok(None) => Ok(None),
            // The line cap reports InvalidData: that is a property of
            // the *input*, not of the stream, so surface it as the
            // parse error it is.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                Err(EipError::Parse(e.to_string()))
            }
            Err(e) => Err(EipError::io("<stream>", e)),
        },
        |chunk: Vec<u8>| {
            let parsed = parse_chunk(&chunk, top64);
            (chunk.len(), parsed)
        },
        |(chunk_len, chunk): (usize, ParsedChunk)| {
            if let Some((local, line)) = chunk.bad {
                let no = lines + local + 1;
                return Err(invalid_line_error(no as usize, &line));
            }
            lines += chunk.lines;
            parsed += chunk.parsed;
            in_flight.set(in_flight.get().saturating_sub(chunk_len));
            acc.push_run(chunk.run);
            Ok(())
        },
    )?;

    let (bytes, chunks) = (chunker.bytes_read(), chunker.chunks());
    let (set, acc_peak) = acc.finish();
    let report = IngestReport {
        lines,
        addresses: parsed,
        skipped: lines - parsed,
        distinct: set.len(),
        bytes,
        chunks,
        workers: exec.workers(),
        chunk_bytes: opts.chunk_bytes.max(1),
        peak_bytes: acc_peak + in_flight_peak.get(),
        elapsed_secs: start.elapsed().as_secs_f64(),
    };
    Ok((set, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ingest(
        text: &str,
        chunk: usize,
        workers: usize,
    ) -> Result<(AddressSet, IngestReport), EipError> {
        ingest_reader(
            text.as_bytes(),
            false,
            &Scheduler::new(workers),
            &IngestOptions {
                chunk_bytes: chunk,
                ..IngestOptions::default()
            },
        )
    }

    #[test]
    fn matches_parse_lines_on_mixed_input() {
        let text = "# header\n2001:db8::1\n\n20010db8000000000000000000000002\n2001:db8::1\n";
        let oracle = AddressSet::parse_lines(text).unwrap();
        for chunk in [1usize, 3, 8, 64, 1 << 20] {
            for workers in [1usize, 2, 7] {
                let (set, report) = ingest(text, chunk, workers).unwrap();
                assert_eq!(set, oracle, "chunk={chunk} workers={workers}");
                assert_eq!(report.lines, 5);
                assert_eq!(report.addresses, 3);
                assert_eq!(report.skipped, 2);
                assert_eq!(report.distinct, 2);
                assert_eq!(report.bytes, text.len() as u64);
            }
        }
    }

    #[test]
    fn error_line_number_matches_serial_oracle() {
        let text = "2001:db8::1\n# fine\nbogus\n2001:db8::2\n";
        let oracle = AddressSet::parse_lines(text).unwrap_err();
        for chunk in [1usize, 4, 7, 1024] {
            for workers in [1usize, 2, 8] {
                let err = ingest(text, chunk, workers).unwrap_err();
                assert_eq!(err, oracle, "chunk={chunk} workers={workers}");
            }
        }
        assert_eq!(
            oracle,
            EipError::Parse("line 3: invalid address: bogus".into())
        );
    }

    #[test]
    fn top64_reduces_before_dedup() {
        let text = "2001:db8::1\n2001:db8::2\n2001:db8:0:1::1\n";
        let (set, report) = ingest_reader(
            text.as_bytes(),
            true,
            &Scheduler::new(2),
            &IngestOptions {
                chunk_bytes: 8,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(set.len(), 2, "two distinct /64s");
        assert_eq!(report.addresses, 3);
        for ip in set.iter() {
            assert_eq!(ip.value() & u128::from(u64::MAX), 0);
        }
    }

    #[test]
    fn empty_and_comment_only_inputs_yield_empty_sets() {
        let (set, report) = ingest("", 1024, 4).unwrap();
        assert!(set.is_empty());
        assert_eq!(report.lines, 0);
        let (set, report) = ingest("# a\n\n# b\n", 2, 3).unwrap();
        assert!(set.is_empty());
        assert_eq!(report.lines, 3);
        assert_eq!(report.skipped, 3);
    }

    #[test]
    fn accumulator_stays_near_distinct_count() {
        // 200k ingested lines over 512 distinct addresses: the
        // engine's peak estimate must track the distinct set (plus
        // one chunk batch), not the stream length.
        let mut text = String::new();
        for i in 0..200_000u128 {
            text.push_str(&Ip6((0x2001_0db8u128 << 96) | (i % 512)).to_hex32());
            text.push('\n');
        }
        let (set, report) = ingest(&text, 64 * 1024, 4).unwrap();
        assert_eq!(set.len(), 512);
        assert!(
            report.peak_bytes < 8 * 1024 * 1024,
            "peak estimate ballooned: {} bytes",
            report.peak_bytes
        );
        assert_eq!(report.lines, 200_000);
    }

    #[test]
    fn oversized_line_aborts_with_a_parse_error() {
        // One pathological line past the cap: ingestion must fail
        // with a clear EipError::Parse, not balloon the chunk buffer.
        let mut text = String::from("2001:db8::1\n");
        text.push_str(&"f".repeat(4096));
        text.push('\n');
        let err = ingest_reader(
            text.as_bytes(),
            false,
            &Scheduler::new(2),
            &IngestOptions {
                chunk_bytes: 16,
                max_line_bytes: 64,
            },
        )
        .unwrap_err();
        let EipError::Parse(msg) = err else {
            panic!("expected a parse error, got {err:?}");
        };
        assert!(msg.contains("maximum line length"), "{msg}");
    }

    #[test]
    fn report_summary_mentions_throughput() {
        let (_, report) = ingest("2001:db8::1\n", 1024, 2).unwrap();
        let s = report.summary();
        assert!(s.contains("1 distinct"), "{s}");
        assert!(s.contains("Mlines/s"), "{s}");
    }
}
