//! Property-based tests for the pipeline invariants.

use eip_addr::{AddressSet, Ip6};
use eip_exec::Scheduler;
use entropy_ip::mining::{mine_segment, mine_segment_sharded, MiningOptions};
use entropy_ip::segments::{segment_entropy_profile, Segment, SegmentationOptions};
use entropy_ip::{Config, EntropyIp, Pipeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Segmentation always partitions 1..=width, regardless of the
    /// entropy profile.
    #[test]
    fn segmentation_partitions(profile in prop::collection::vec(0.0f64..=1.0, 32)) {
        let segs = segment_entropy_profile(&profile, &SegmentationOptions::default());
        prop_assert_eq!(segs[0].start, 1);
        prop_assert_eq!(segs.last().unwrap().end, 32);
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end + 1, w[1].start);
        }
        // Bits 1-32 stay one segment; a boundary follows bit 64.
        prop_assert_eq!(segs[0].end, 8);
        prop_assert!(segs.iter().any(|s| s.start == 17));
        // Labels are A, B, C, ... in order.
        for (i, s) in segs.iter().enumerate() {
            prop_assert_eq!(&s.label, &entropy_ip::segments::label_for(i));
        }
    }

    /// Mining never produces overlapping *exact* codes, covers every
    /// input value unless below the leftover threshold, and keeps
    /// count accounting consistent.
    #[test]
    fn mining_invariants(raw in prop::collection::vec(0u128..4096, 1..600)) {
        let seg = Segment { label: "T".into(), start: 20, end: 22 };
        let m = mine_segment(&seg, &raw, &MiningOptions::default());
        prop_assert_eq!(m.total, raw.len() as u64);
        prop_assert!(!m.values.is_empty());
        // No duplicate exact values.
        let exacts: Vec<u128> = m
            .values
            .iter()
            .filter_map(|v| match v.kind {
                entropy_ip::ValueKind::Exact(x) => Some(x),
                _ => None,
            })
            .collect();
        let uniq: std::collections::HashSet<&u128> = exacts.iter().collect();
        prop_assert_eq!(uniq.len(), exacts.len());
        // Coverage: at most 0.1% of observations may fail to encode.
        let misses = raw.iter().filter(|&&v| m.encode(v).is_none()).count();
        prop_assert!(misses as f64 <= (raw.len() as f64 * 0.001).ceil() + 1e-9,
            "{} of {} observations unencodable", misses, raw.len());
        // Frequencies are consistent with counts.
        for sv in &m.values {
            prop_assert!((sv.freq - sv.count as f64 / m.total as f64).abs() < 1e-9);
        }
    }

    /// Shard-count-then-merge mining is exact: for arbitrary raw
    /// values and any shard count 1..=8, the sharded path produces a
    /// `MinedSegment` identical to the serial reference — same codes,
    /// same kinds, same counts, same frequencies.
    #[test]
    fn sharded_mining_matches_serial(
        raw in prop::collection::vec(0u128..4096, 1..600),
        shards in 1usize..=8,
    ) {
        let seg = Segment { label: "T".into(), start: 20, end: 22 };
        let serial = mine_segment(&seg, &raw, &MiningOptions::default());
        let sharded = mine_segment_sharded(
            &seg,
            &raw,
            &MiningOptions::default(),
            &Scheduler::new(shards),
        );
        prop_assert_eq!(sharded, serial);
    }

    /// The whole staged pipeline is worker-count independent: models
    /// built with the sharded engine export byte-identically to the
    /// serial reference for arbitrary structured populations.
    #[test]
    fn pipeline_sharded_equals_serial(
        prefix in 0u128..0xff,
        subnets in 1u128..8,
        hosts in 2u128..50,
        workers in 2usize..=8,
    ) {
        let set: AddressSet = (0..subnets)
            .flat_map(|s| {
                (0..hosts).map(move |h| {
                    Ip6((0x2001_0db8u128 << 96) | (prefix << 80) | (s << 16) | (h * 3))
                })
            })
            .collect();
        let serial = Pipeline::new(Config::default()).run(set.iter()).unwrap();
        let parallel = Pipeline::new(Config::default().with_parallelism(workers))
            .run(set.iter())
            .unwrap();
        prop_assert_eq!(
            entropy_ip::profile::export(&parallel),
            entropy_ip::profile::export(&serial)
        );
    }

    /// Candidate generation through the compiled sampling plan ≡ the
    /// `sample_row` oracle: for arbitrary structured populations and
    /// seeds, [`entropy_ip::IpModel::generate`] (plan + reusable byte
    /// row) reproduces a hand-rolled `sample_row` + `decode` loop
    /// draw for draw on the same RNG stream.
    #[test]
    fn compiled_generation_matches_oracle(
        prefix in 0u128..0xff,
        subnets in 1u128..8,
        hosts in 2u128..50,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let set: AddressSet = (0..subnets)
            .flat_map(|s| {
                (0..hosts).map(move |h| {
                    Ip6((0x2001_0db8u128 << 96) | (prefix << 80) | (s << 16) | (h * 3))
                })
            })
            .collect();
        let model = Pipeline::new(Config::default()).run(set.iter()).unwrap();
        let (n, attempts) = (100usize, 500usize);
        let mut a = StdRng::seed_from_u64(seed);
        let mut oracle: Vec<Ip6> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..attempts {
            if oracle.len() >= n {
                break;
            }
            let row = eip_bayes::sample_row(model.bn(), &mut a);
            let ip = model.decode(&row, &mut a);
            if seen.insert(ip) {
                oracle.push(ip);
            }
        }
        let mut b = StdRng::seed_from_u64(seed);
        prop_assert_eq!(model.generate(n, attempts, &mut b), oracle);
    }

    /// Sharded BN training is exact: retraining the *same* mined
    /// artifact at any worker count 1..=8 yields a network identical
    /// to the serial oracle — same parents, same CPT bytes (the
    /// count-reuse engine fits from the same integer counts).
    #[test]
    fn sharded_training_matches_serial(
        prefix in 0u128..0xff,
        subnets in 1u128..8,
        hosts in 2u128..50,
    ) {
        let set: AddressSet = (0..subnets)
            .flat_map(|s| {
                (0..hosts).map(move |h| {
                    Ip6((0x2001_0db8u128 << 96) | (prefix << 80) | (s << 16) | (h * 3))
                })
            })
            .collect();
        let serial = Pipeline::new(Config::default())
            .profile(set.iter())
            .unwrap()
            .segment()
            .mine();
        let oracle = serial.train().unwrap();
        for workers in 2usize..=8 {
            let mined = Pipeline::new(Config::default().with_parallelism(workers))
                .profile(set.iter())
                .unwrap()
                .segment()
                .mine();
            let trained = mined.train().unwrap();
            prop_assert_eq!(trained.model().bn(), oracle.model().bn(),
                "{} workers", workers);
        }
    }

    /// Encode is stable: the same value always maps to the same code.
    #[test]
    fn encode_deterministic(raw in prop::collection::vec(0u128..512, 1..300)) {
        let seg = Segment { label: "T".into(), start: 25, end: 27 };
        let m = mine_segment(&seg, &raw, &MiningOptions::default());
        for &v in raw.iter().take(50) {
            prop_assert_eq!(m.encode(v), m.encode(v));
        }
    }

    /// Every generated candidate re-encodes into the model, for
    /// arbitrary structured populations.
    #[test]
    fn generation_is_model_consistent(
        prefix in 0u128..0xffff,
        subnets in 1u128..12,
        hosts in 1u128..40,
        seed in any::<u64>(),
    ) {
        let set: AddressSet = (0..subnets)
            .flat_map(|s| {
                (0..hosts).map(move |h| {
                    Ip6((0x2001_0db8u128 << 96) | (prefix << 64) | (s << 16) | h)
                })
            })
            .collect();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for ip in model.generate(30, 3_000, &mut rng) {
            prop_assert!(model.encode(ip).is_some(), "{} does not re-encode", ip);
        }
    }

    /// Profile export/import round-trips for arbitrary structured
    /// populations.
    #[test]
    fn profile_round_trip(
        prefix in 0u128..0xff,
        hosts in 2u128..60,
    ) {
        let set: AddressSet = (0..hosts)
            .map(|h| Ip6((0x2001_0db8u128 << 96) | (prefix << 80) | (h * h)))
            .collect();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let back = entropy_ip::profile::import(&entropy_ip::profile::export(&model)).unwrap();
        prop_assert_eq!(back.mined(), model.mined());
        prop_assert_eq!(back.bn(), model.bn());
    }

    /// The binary model container round-trips bit-exactly for
    /// arbitrary structured populations: identical dictionaries,
    /// identical CPT *bit patterns* (not just `==`, which would let
    /// `-0.0` drift through), and the recompiled sampling plan draws
    /// identical keyed rows in lockstep with the original.
    #[test]
    fn store_round_trip_bit_exact(
        prefix in 0u128..0xff,
        subnets in 1u128..8,
        hosts in 2u128..50,
        seed in any::<u64>(),
    ) {
        let set: AddressSet = (0..subnets)
            .flat_map(|s| {
                (0..hosts).map(move |h| {
                    Ip6((0x2001_0db8u128 << 96) | (prefix << 80) | (s << 16) | (h * 3))
                })
            })
            .collect();
        let model = EntropyIp::new().analyze(&set).unwrap();
        let fp = entropy_ip::store::fingerprint("proptest network");
        let bytes = entropy_ip::store::save(&model, fp);
        let (back, fp_back) = entropy_ip::store::load(&bytes).unwrap();
        prop_assert_eq!(fp_back, fp);
        prop_assert_eq!(back.analysis(), model.analysis());
        prop_assert_eq!(back.mined(), model.mined());
        prop_assert_eq!(back.bn(), model.bn());
        for i in 0..model.bn().num_vars() {
            let (a, b) = (model.bn().node(i), back.bn().node(i));
            let bits = |cpt: &eip_bayes::Cpt| -> Vec<u64> {
                cpt.flat().iter().map(|p| p.to_bits()).collect()
            };
            prop_assert_eq!(bits(&a.cpt), bits(&b.cpt), "CPT bits differ at node {}", i);
        }
        // The loaded model recompiles its sampling plan; it must walk
        // in lockstep with the original for any keyed draw.
        let mut row_a = vec![0u8; model.plan().num_vars()];
        let mut row_b = vec![0u8; back.plan().num_vars()];
        for index in 0..200u64 {
            model.plan().sample_keyed_into(&mut row_a, seed, 7, index);
            back.plan().sample_keyed_into(&mut row_b, seed, 7, index);
            prop_assert_eq!(&row_a, &row_b, "plan diverged at index {}", index);
        }
    }

    /// Models built through the staged pipeline round-trip through
    /// the profile format exactly, and re-exporting the re-imported
    /// model is a fixed point — for arbitrary structured populations
    /// streamed through the ingestion path.
    #[test]
    fn staged_profile_round_trip(
        prefix in 0u128..0xff,
        subnets in 1u128..8,
        hosts in 2u128..50,
        parallelism in 1usize..5,
    ) {
        let cfg = Config::default().with_parallelism(parallelism);
        let trained = Pipeline::new(cfg)
            .profile((0..subnets).flat_map(|s| {
                (0..hosts).map(move |h| {
                    Ip6((0x2001_0db8u128 << 96) | (prefix << 80) | (s << 16) | (h * 3))
                })
            }))
            .unwrap()
            .segment()
            .mine()
            .train()
            .unwrap();
        let text = entropy_ip::profile::export(trained.model());
        let back = entropy_ip::profile::import(&text).unwrap();
        prop_assert_eq!(back.analysis(), trained.model().analysis());
        prop_assert_eq!(back.mined(), trained.model().mined());
        prop_assert_eq!(back.bn(), trained.model().bn());
        prop_assert_eq!(entropy_ip::profile::export(&back), text);
    }
}
