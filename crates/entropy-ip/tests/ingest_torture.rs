//! Chunk-boundary torture suite for the streaming ingestion engine.
//!
//! The contract under test: [`Pipeline::profile_reader_streaming`]
//! (and the underlying [`entropy_ip::ingest::ingest_reader`]) is
//! **byte-identical** to the serial oracles —
//! [`AddressSet::parse_lines`] for the deduplicated set and
//! [`Pipeline::profile_lines`] for the whole `Profiled` artifact — at
//! every chunk size from 1 byte up and every worker count, over
//! inputs engineered so that chunk boundaries land in the middle of
//! everything: addresses, CRLF pairs, comments, blank runs, and the
//! final unterminated line. Errors must also match, down to the line
//! number and rendering of the first bad line.

use eip_addr::{AddressSet, Ip6};
use eip_exec::Scheduler;
use entropy_ip::ingest::{ingest_reader, IngestOptions};
use entropy_ip::{Config, EipError, Pipeline};
use proptest::prelude::*;

/// Chunk sizes that exercise the boundary machinery: single-byte
/// (every boundary mid-line), primes near typical line lengths, and
/// big-enough-to-hold-everything.
const CHUNKS: &[usize] = &[1, 2, 3, 7, 16, 33, 61, 256, 4096, 64 * 1024];
const WORKERS: &[usize] = &[1, 2, 7, 8];

fn stream(text: &str, chunk: usize, workers: usize) -> Result<AddressSet, EipError> {
    ingest_reader(
        text.as_bytes(),
        false,
        &Scheduler::new(workers),
        &IngestOptions {
            chunk_bytes: chunk,
            ..IngestOptions::default()
        },
    )
    .map(|(set, _)| set)
}

/// Asserts the streaming engine matches `AddressSet::parse_lines` —
/// value or error — across the full chunk/worker grid.
fn assert_matches_oracle(text: &str) {
    let oracle = AddressSet::parse_lines(text);
    for &chunk in CHUNKS {
        for &workers in WORKERS {
            let got = stream(text, chunk, workers);
            assert_eq!(got, oracle, "chunk={chunk} workers={workers} text={text:?}");
        }
    }
}

#[test]
fn addresses_straddling_every_boundary() {
    assert_matches_oracle(
        "2001:db8::1\n20010db8000000000000000000000002\n2001:db8:ffff:eeee:dddd:cccc:bbbb:aaaa\n",
    );
}

#[test]
fn crlf_endings_match_serial() {
    assert_matches_oracle("2001:db8::1\r\n2001:db8::2\r\n# c\r\n\r\n2001:db8::1\r\n");
}

#[test]
fn missing_trailing_newline_matches_serial() {
    assert_matches_oracle("2001:db8::1\n2001:db8::2");
    assert_matches_oracle("2001:db8::2");
}

#[test]
fn comments_and_blanks_straddling_chunk_edges() {
    assert_matches_oracle(
        "# a long leading comment line that certainly spans several tiny chunks\n\
         \n\n\n2001:db8::1\n   \t \n# trailing comment, no newline",
    );
}

#[test]
fn whitespace_padded_addresses_match_serial() {
    assert_matches_oracle("  2001:db8::1  \n\t20010db8000000000000000000000002\t\n");
}

#[test]
fn error_reports_first_bad_line_with_serial_line_number() {
    // Line numbers count ALL lines (comments and blanks included);
    // the bad line is line 6. Later lines are bad too — only the
    // first may be reported, at every partitioning.
    let text = "# one\n\n2001:db8::1\n# four\n\n bogus \nalso-bad\n2001:db8::2\n";
    let oracle = AddressSet::parse_lines(text).unwrap_err();
    assert_eq!(
        oracle,
        EipError::Parse("line 6: invalid address: bogus".into())
    );
    assert_matches_oracle(text);
}

#[test]
fn invalid_utf8_line_matches_serial() {
    // Non-UTF-8 bytes cannot be an address; both paths must render
    // the same lossy error message.
    let text = b"2001:db8::1\n\xff\xfe\n".to_vec();
    let oracle = AddressSet::parse_lines(&String::from_utf8_lossy(&text)).unwrap_err();
    for &chunk in CHUNKS {
        let got = ingest_reader(
            &text[..],
            false,
            &Scheduler::new(3),
            &IngestOptions {
                chunk_bytes: chunk,
                ..IngestOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(got, oracle, "chunk={chunk}");
    }
}

/// The full `Profiled` artifact — entropy, ACR, working set — from
/// the streaming path equals the serial `profile_lines` oracle, in
/// both full-width and top-64 modes.
#[test]
fn profiled_artifact_matches_profile_lines() {
    let mut text = String::new();
    for i in 0..700u128 {
        let ip = Ip6((0x2001_0db8_0000_0000u128 << 64) | ((i % 350) << 32) | (i % 97));
        if i % 3 == 0 {
            text.push_str(&ip.to_hex32());
        } else {
            text.push_str(&ip.to_string());
        }
        text.push('\n');
        if i % 40 == 0 {
            text.push_str("# filler\n\n");
        }
    }
    text.push_str("2001:db8::beef"); // no trailing newline
    for cfg in [Config::default(), Config::top64()] {
        let serial = Pipeline::new(cfg.clone())
            .profile_lines(text.as_bytes())
            .unwrap();
        for &(chunk, workers) in &[(1usize, 2usize), (37, 7), (512, 4), (1 << 20, 1)] {
            let pipeline = Pipeline::new(cfg.clone().with_parallelism(workers));
            let (streamed, report) = pipeline
                .profile_reader_streaming(
                    text.as_bytes(),
                    &IngestOptions {
                        chunk_bytes: chunk,
                        ..IngestOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(streamed.addresses(), serial.addresses(), "chunk={chunk}");
            assert_eq!(streamed.entropy(), serial.entropy(), "chunk={chunk}");
            assert_eq!(streamed.acr(), serial.acr(), "chunk={chunk}");
            assert_eq!(report.distinct, serial.addresses().len());
            assert_eq!(report.bytes, text.len() as u64);
        }
    }
}

/// A line far longer than the chunk size (forces the ChunkReader's
/// grow-until-newline path) parses identically — and a long *bad*
/// line reports identically.
#[test]
fn oversized_lines_match_serial() {
    let long_comment = format!("# {}\n2001:db8::1\n", "x".repeat(5000));
    assert_matches_oracle(&long_comment);
    let long_bad = format!("2001:db8::1\n{}\n", "y".repeat(5000));
    assert_matches_oracle(&long_bad);
}

proptest! {
    /// Random address soup (valid colon/hex32 lines, duplicates,
    /// comments, blanks, stray whitespace, optional trailing newline)
    /// ingests identically to `AddressSet::parse_lines` at random
    /// chunk sizes and worker counts.
    #[test]
    fn random_soup_matches_parse_lines(
        vals in prop::collection::vec(0u128..1u128 << 40, 1..80),
        hex_mask in any::<u64>(),
        comment_mask in any::<u64>(),
        crlf in any::<bool>(),
        trailing in any::<bool>(),
        chunk in 1usize..200,
        workers in 1usize..8,
    ) {
        let eol = if crlf { "\r\n" } else { "\n" };
        let mut text = String::new();
        for (i, v) in vals.iter().enumerate() {
            let ip = Ip6((0x2001_0db8u128 << 96) | v);
            if comment_mask >> (i % 64) & 1 == 1 {
                text.push_str("# noise");
                text.push_str(eol);
            }
            if hex_mask >> (i % 64) & 1 == 1 {
                text.push_str(&ip.to_hex32());
            } else {
                text.push_str(&ip.to_string());
            }
            text.push_str(eol);
        }
        if !trailing {
            while text.ends_with('\n') || text.ends_with('\r') {
                text.pop();
            }
        }
        let oracle = AddressSet::parse_lines(&text);
        let got = stream(&text, chunk, workers);
        prop_assert_eq!(got, oracle, "chunk={} workers={}", chunk, workers);
    }

    /// With a bad line planted at a random position, the streaming
    /// error equals the serial error — same line number — at any
    /// partitioning.
    #[test]
    fn random_bad_line_position_matches_serial(
        good in prop::collection::vec(0u128..1u128 << 32, 0..40),
        bad_at_ratio in 0.0f64..1.0,
        chunk in 1usize..100,
        workers in 1usize..8,
    ) {
        let mut lines: Vec<String> = good
            .iter()
            .map(|&v| Ip6((0x2001_0db8u128 << 96) | v).to_string())
            .collect();
        let at = ((lines.len() as f64) * bad_at_ratio) as usize;
        lines.insert(at.min(lines.len()), "not-an-address".to_string());
        let text = lines.join("\n");
        let oracle = AddressSet::parse_lines(&text).unwrap_err();
        let got = stream(&text, chunk, workers).unwrap_err();
        prop_assert_eq!(got, oracle);
    }
}
