//! Fault-injection suite for the streaming ingestion engine.
//!
//! The contract: ingestion over a *misbehaving* reader — short reads,
//! `Interrupted` storms, injected delays, all scheduled
//! deterministically by [`eip_exec::fault::FaultPlan`] — produces the
//! byte-identical result of a clean serial run whenever the schedule
//! lets the stream complete, at every chunk size and worker count.
//! And because the fault schedule is pure in `(seed, stream, index)`,
//! two runs under the same plan must log the *identical* fault
//! sequence — chaos that reproduces.

use eip_addr::{AddressSet, Ip6};
use eip_exec::fault::FaultPlan;
use eip_exec::Scheduler;
use entropy_ip::ingest::{ingest_reader, IngestOptions};
use entropy_ip::{Config, EipError, Pipeline};
use proptest::prelude::*;

const WORKERS: &[usize] = &[1, 2, 7, 8];

/// A recoverable-fault plan: ~60% of read operations misbehave, but
/// nothing is fatal — `ChunkReader` retries `Interrupted` and loops
/// over short reads, so the bytes always arrive.
fn recoverable(seed: u64, stream: u64) -> FaultPlan {
    FaultPlan::new(seed, stream)
        .with_short_reads(400)
        .with_interrupts(150)
        .with_delays(50, 1)
}

/// A mixed corpus: colon and hex32 forms, duplicates, comments,
/// blanks, and no trailing newline.
fn corpus(lines: u128) -> String {
    let mut text = String::new();
    for i in 0..lines {
        let ip = Ip6((0x2001_0db8u128 << 96) | ((i % 61) << 32) | (i % 257));
        if i % 2 == 0 {
            text.push_str(&ip.to_string());
        } else {
            text.push_str(&ip.to_hex32());
        }
        text.push('\n');
        if i % 53 == 0 {
            text.push_str("# interleaved comment\n\n");
        }
    }
    text.push_str("2001:db8::fade"); // final line, no newline
    text
}

#[test]
fn faulted_reads_match_the_clean_oracle_at_every_worker_count() {
    let text = corpus(800);
    let oracle = AddressSet::parse_lines(&text).unwrap();
    for &workers in WORKERS {
        for chunk in [7usize, 64, 4096] {
            let plan = recoverable(42, workers as u64);
            let reader = plan.wrap_read(text.as_bytes());
            let log = reader.log();
            let (set, report) = ingest_reader(
                reader,
                false,
                &Scheduler::new(workers),
                &IngestOptions {
                    chunk_bytes: chunk,
                    ..IngestOptions::default()
                },
            )
            .unwrap();
            assert_eq!(set, oracle, "workers={workers} chunk={chunk}");
            assert_eq!(report.bytes, text.len() as u64);
            assert!(
                !log.snapshot().is_empty(),
                "workers={workers} chunk={chunk}: the plan injected nothing"
            );
        }
    }
}

#[test]
fn same_seed_replays_the_identical_fault_sequence_and_result() {
    let text = corpus(400);
    let run = |seed: u64| {
        let plan = recoverable(seed, 3);
        let reader = plan.wrap_read(text.as_bytes());
        let log = reader.log();
        let (set, _) = ingest_reader(
            reader,
            false,
            &Scheduler::new(7),
            &IngestOptions {
                chunk_bytes: 33,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        (set, log.snapshot())
    };
    let (set_a, log_a) = run(7);
    let (set_b, log_b) = run(7);
    assert_eq!(set_a, set_b);
    assert_eq!(log_a, log_b, "same seed must schedule identical faults");
    assert!(!log_a.is_empty());
    // A different seed schedules differently (same surviving bytes).
    let (set_c, log_c) = run(8);
    assert_eq!(set_a, set_c, "faults never change the surviving output");
    assert_ne!(log_a, log_c, "distinct seeds alias");
}

#[test]
fn profiled_artifact_survives_a_faulty_reader() {
    let text = corpus(600);
    let serial = Pipeline::new(Config::default())
        .profile_lines(text.as_bytes())
        .unwrap();
    for &workers in WORKERS {
        let pipeline = Pipeline::new(Config::default().with_parallelism(workers));
        let plan = recoverable(11, workers as u64);
        let (streamed, report) = pipeline
            .profile_reader_streaming(
                plan.wrap_read(text.as_bytes()),
                &IngestOptions {
                    chunk_bytes: 61,
                    ..IngestOptions::default()
                },
            )
            .unwrap();
        assert_eq!(
            streamed.addresses(),
            serial.addresses(),
            "workers={workers}"
        );
        assert_eq!(streamed.entropy(), serial.entropy(), "workers={workers}");
        assert_eq!(streamed.acr(), serial.acr(), "workers={workers}");
        assert_eq!(report.bytes, text.len() as u64);
    }
}

#[test]
fn unrecoverable_faults_abort_with_the_same_error_everywhere() {
    let text = corpus(300);
    // A hard fault at read op 5: the stream dies mid-file. Every
    // chunk size and worker count must surface the same EipError.
    let mut seen = Vec::new();
    for &workers in WORKERS {
        for chunk in [8usize, 128] {
            let plan = FaultPlan::new(1, 0).failing_at(5);
            let err = ingest_reader(
                plan.wrap_read(text.as_bytes()),
                false,
                &Scheduler::new(workers),
                &IngestOptions {
                    chunk_bytes: chunk,
                    ..IngestOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, EipError::Io { .. }),
                "workers={workers} chunk={chunk}: {err:?}"
            );
            seen.push(err);
        }
    }
    for e in &seen[1..] {
        // Same plan coordinates → same failing operation index, so
        // the rendered error is identical across the whole grid.
        assert_eq!(e, &seen[0]);
    }
    // WouldBlock (a socket deadline) aborts too, but as a distinct,
    // clearly-labeled error.
    let plan = FaultPlan::new(2, 0).with_would_block(1000);
    let err = ingest_reader(
        plan.wrap_read(text.as_bytes()),
        false,
        &Scheduler::new(2),
        &IngestOptions::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("would block"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any recoverable fault schedule over any chunk/worker geometry
    /// yields the clean oracle's exact set.
    #[test]
    fn any_recoverable_schedule_preserves_the_profile(
        seed in any::<u64>(),
        chunk in 1usize..200,
        workers in 1usize..8,
        short_pm in 0u16..500,
        interrupt_pm in 0u16..400,
    ) {
        let text = corpus(120);
        let oracle = AddressSet::parse_lines(&text).unwrap();
        let plan = FaultPlan::new(seed, 0)
            .with_short_reads(short_pm)
            .with_interrupts(interrupt_pm);
        let (set, report) = ingest_reader(
            plan.wrap_read(text.as_bytes()),
            false,
            &Scheduler::new(workers),
            &IngestOptions { chunk_bytes: chunk, ..IngestOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(set, oracle, "seed={} chunk={} workers={}", seed, chunk, workers);
        prop_assert_eq!(report.bytes, text.len() as u64);
    }
}
