//! Format-drift guard for the binary model container: a model built
//! from a fixed training set must serialize to *exactly* the
//! committed fixture bytes. Any diff here means the on-disk format
//! changed — deployed `.eipm` fleets would stop loading.
//!
//! When a format change is intentional:
//!
//! 1. bump [`store::FORMAT_VERSION`] (keep a reader arm for the old
//!    version if fleets must migrate in place),
//! 2. regenerate the fixture with
//!    `UPDATE_GOLDENS=1 cargo test -p entropy_ip --test store_format`,
//! 3. review the fixture diff like code and note the bump in
//!    CHANGES.md.

use std::path::PathBuf;

use eip_addr::{AddressSet, Ip6};
use entropy_ip::{store, EntropyIp};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/model_v1.eipm")
}

/// The pinned training set: deterministic, structured, small.
fn fixture_model() -> entropy_ip::IpModel {
    let set: AddressSet = (0..400u128)
        .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 8) << 80) | (i * 3 + 1)))
        .collect();
    EntropyIp::new().analyze(&set).unwrap()
}

#[test]
fn on_disk_bytes_are_pinned() {
    let model = fixture_model();
    let fp = store::fingerprint("store_format fixture v1");
    let bytes = store::save(&model, fp);

    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with \
             UPDATE_GOLDENS=1 cargo test -p entropy_ip --test store_format",
            path.display()
        )
    });
    assert_eq!(
        bytes, expected,
        "the .eipm container format drifted; if intentional, bump \
         store::FORMAT_VERSION and refresh the fixture with \
         UPDATE_GOLDENS=1 cargo test -p entropy_ip --test store_format"
    );
}

#[test]
fn fixture_still_loads_and_samples() {
    let expected = std::fs::read(fixture_path()).expect("fixture exists");
    let (model, fp) = store::load(&expected).expect("fixture loads");
    assert_eq!(fp, store::fingerprint("store_format fixture v1"));

    // The loaded model must be the fixture model, bit for bit, and
    // its recompiled plan must draw the same keyed rows.
    let fresh = fixture_model();
    assert_eq!(model.mined(), fresh.mined());
    assert_eq!(model.bn(), fresh.bn());
    let mut a = vec![0u8; fresh.plan().num_vars()];
    let mut b = vec![0u8; model.plan().num_vars()];
    for index in 0..100 {
        fresh.plan().sample_keyed_into(&mut a, 42, 3, index);
        model.plan().sample_keyed_into(&mut b, 42, 3, index);
        assert_eq!(a, b, "plan diverged at index {index}");
    }
}

#[test]
fn header_layout_is_stable() {
    let expected = std::fs::read(fixture_path()).expect("fixture exists");
    assert_eq!(&expected[0..4], b"EIPM", "magic");
    let version = u32::from_le_bytes(expected[4..8].try_into().unwrap());
    assert_eq!(version, store::FORMAT_VERSION);
    assert_eq!(version, 1, "bumping FORMAT_VERSION requires a new fixture");
}
