//! The conditional probability browser rendering (Fig. 1b/c).
//!
//! One column per segment; each column lists the segment's dictionary
//! values with their (posterior) probabilities, shaded by a coarse
//! block ramp. Clamped segments are marked with `[*]`, matching the
//! paper's "mouse click" interaction.

use entropy_ip::{SegmentDistribution, ValueKind};

/// Probability → shading character, a 5-step ramp.
fn shade(p: f64) -> char {
    match p {
        p if p >= 0.75 => '█',
        p if p >= 0.50 => '▓',
        p if p >= 0.25 => '▒',
        p if p >= 0.01 => '░',
        _ => ' ',
    }
}

/// Formats a dictionary value compactly: exact values as hex, ranges
/// as `lo-hi` (abbreviated to the first 12 hex chars each).
fn fmt_kind(kind: &ValueKind) -> String {
    fn hex(v: u128) -> String {
        let s = format!("{v:x}");
        if s.len() > 12 {
            format!("{}…", &s[..12])
        } else {
            s
        }
    }
    match kind {
        ValueKind::Exact(v) => hex(*v),
        ValueKind::Range { lo, hi } => format!("{}-{}", hex(*lo), hex(*hi)),
    }
}

/// Renders the browser state as a text table.
///
/// `min_prob` suppresses rows below the given probability (the paper
/// also skips "<0.1%" rows "for brevity" in Fig. 7b).
pub fn render_browser(dists: &[SegmentDistribution], min_prob: f64) -> String {
    let mut out = String::new();
    out.push_str("Conditional Probability Browser\n");
    for d in dists {
        let flag = if d.observed { " [*]" } else { "" };
        out.push_str(&format!("── segment {}{}\n", d.label, flag));
        for (code, kind, p) in &d.entries {
            if *p < min_prob {
                continue;
            }
            out.push_str(&format!(
                "   {} {:<6} {:>6.1}%  {}\n",
                shade(*p),
                code,
                p * 100.0,
                fmt_kind(kind)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> Vec<SegmentDistribution> {
        vec![
            SegmentDistribution {
                label: "A".into(),
                entries: vec![
                    ("A1".into(), ValueKind::Exact(0x2001_0db8), 0.8),
                    ("A2".into(), ValueKind::Exact(0x3001_0db8), 0.2),
                ],
                observed: false,
            },
            SegmentDistribution {
                label: "J".into(),
                entries: vec![
                    ("J1".into(), ValueKind::Exact(0), 1.0),
                    (
                        "J2".into(),
                        ValueKind::Range {
                            lo: 0xed18068,
                            hi: 0xfffb2bc655b,
                        },
                        0.0,
                    ),
                ],
                observed: true,
            },
        ]
    }

    #[test]
    fn renders_all_segments_and_flags_evidence() {
        let s = render_browser(&dist(), 0.0);
        assert!(s.contains("segment A"));
        assert!(s.contains("segment J [*]"));
        assert!(s.contains("A1"));
        assert!(s.contains("80.0%"));
    }

    #[test]
    fn min_prob_suppresses_rows() {
        let s = render_browser(&dist(), 0.001);
        assert!(!s.contains("J2"));
        let s_all = render_browser(&dist(), 0.0);
        assert!(s_all.contains("J2"));
    }

    #[test]
    fn ranges_render_with_dash() {
        let s = render_browser(&dist(), 0.0);
        assert!(s.contains("ed18068-fffb2bc655b"));
    }

    #[test]
    fn shade_ramp_is_monotone() {
        assert_eq!(shade(0.9), '█');
        assert_eq!(shade(0.6), '▓');
        assert_eq!(shade(0.3), '▒');
        assert_eq!(shade(0.05), '░');
        assert_eq!(shade(0.001), ' ');
    }

    #[test]
    fn long_hex_values_are_abbreviated() {
        let k = ValueKind::Exact(u128::MAX);
        let s = fmt_kind(&k);
        assert!(s.len() <= 16, "{s}");
        assert!(s.contains('…'));
    }
}
