//! Entropy + ACR line plots (the paper's Figs. 1a, 7a, 8, 9a, 10a).
//!
//! The solid line is per-nybble normalized entropy, the dashed line
//! 4-bit ACR, vertical bars mark segment boundaries, and the header
//! carries the Ĥ_S value — everything the paper's "(a)" panels show.

use entropy_ip::Analysis;

/// Renders the analysis as an ASCII chart of `height` rows.
///
/// Entropy is drawn with `*`, ACR with `.` (where both fall in the
/// same cell, `#`). Segment boundaries appear as `|` columns in a
/// header row carrying segment letters.
pub fn render_entropy_ascii(analysis: &Analysis, height: usize) -> String {
    let height = height.max(4);
    let width = analysis.width;
    let mut out = String::new();
    out.push_str(&format!(
        "Entropy (*) vs 4-bit ACR (.)   H_S = {:.1}   n = {}\n",
        analysis.total_entropy, analysis.num_addresses
    ));

    // Segment label row: letter at each segment start.
    let mut labels = vec![b' '; width * 2];
    for seg in &analysis.segments {
        let col = (seg.start - 1) * 2;
        for (i, b) in seg.label.bytes().enumerate() {
            if col + i < labels.len() {
                labels[col + i] = b;
            }
        }
    }
    out.push_str("      ");
    out.push_str(std::str::from_utf8(&labels).unwrap());
    out.push('\n');

    // Chart body, top row = 1.0.
    for row in 0..height {
        let upper = 1.0 - row as f64 / height as f64;
        let lower = 1.0 - (row + 1) as f64 / height as f64;
        out.push_str(&format!("{:4.2} |", (upper + lower) / 2.0));
        for pos in 0..width {
            let h = analysis.entropy[pos];
            let a = analysis.acr[pos];
            let h_in = h > lower && h <= upper || (row == height - 1 && h <= lower + 1e-12);
            let a_in = a > lower && a <= upper || (row == height - 1 && a <= lower + 1e-12);
            let cell = match (h_in, a_in) {
                (true, true) => '#',
                (true, false) => '*',
                (false, true) => '.',
                (false, false) => {
                    if analysis
                        .segments
                        .iter()
                        .any(|s| s.start == pos + 1 && s.start > 1)
                    {
                        '|'
                    } else {
                        ' '
                    }
                }
            };
            out.push(cell);
            out.push(' ');
        }
        out.push('\n');
    }

    // X axis in bits.
    out.push_str("     +");
    out.push_str(&"-".repeat(width * 2));
    out.push('\n');
    out.push_str("      bits: 0");
    let tail = format!("{}", width * 4);
    let pad = width * 2usize - 1 - tail.len();
    out.push_str(&" ".repeat(pad));
    out.push_str(&tail);
    out.push('\n');
    out
}

/// Renders the analysis as a standalone SVG document (solid entropy
/// polyline, dashed ACR polyline, segment boundary rules and labels).
pub fn render_entropy_svg(analysis: &Analysis, width_px: usize, height_px: usize) -> String {
    let w = width_px.max(200) as f64;
    let h = height_px.max(120) as f64;
    let ml = 40.0; // margins
    let mb = 30.0;
    let mt = 20.0;
    let plot_w = w - ml - 10.0;
    let plot_h = h - mt - mb;
    let n = analysis.width;
    let x = |i: usize| ml + plot_w * i as f64 / (n - 1).max(1) as f64;
    let y = |v: f64| mt + plot_h * (1.0 - v.clamp(0.0, 1.0));

    let polyline = |series: &[f64]| -> String {
        series
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", x(i), y(v)))
            .collect::<Vec<_>>()
            .join(" ")
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    ));
    svg.push_str(&format!(r#"<rect width="{w}" height="{h}" fill="white"/>"#));
    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        y(0.0),
        ml + plot_w,
        y(0.0)
    ));
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{}" x2="{ml}" y2="{}" stroke="black"/>"#,
        y(0.0),
        y(1.0)
    ));
    // Segment boundaries + labels.
    for seg in &analysis.segments {
        let bx = x(seg.start - 1);
        if seg.start > 1 {
            svg.push_str(&format!(
                r##"<line x1="{bx:.1}" y1="{}" x2="{bx:.1}" y2="{}" stroke="#bbb" stroke-dasharray="2,3"/>"##,
                y(0.0), y(1.0)
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-size="10" font-family="monospace">{}</text>"#,
            bx + 2.0,
            mt - 6.0,
            seg.label
        ));
    }
    // Series.
    svg.push_str(&format!(
        r##"<polyline points="{}" fill="none" stroke="#1f77b4" stroke-width="1.5"/>"##,
        polyline(&analysis.entropy)
    ));
    svg.push_str(&format!(
        r##"<polyline points="{}" fill="none" stroke="#d62728" stroke-width="1.2" stroke-dasharray="4,3"/>"##,
        polyline(&analysis.acr)
    ));
    // Caption.
    svg.push_str(&format!(
        r#"<text x="{ml}" y="{:.1}" font-size="11" font-family="monospace">entropy (blue) vs 4-bit ACR (red dashed), H_S={:.1}, n={}</text>"#,
        h - 8.0, analysis.total_entropy, analysis.num_addresses
    ));
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_addr::{AddressSet, Ip6};
    use entropy_ip::{Analysis, SegmentationOptions};

    fn analysis() -> Analysis {
        let set: AddressSet = (0..256u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | ((i % 16) << 64) | (i % 32)))
            .collect();
        Analysis::compute(&set, &SegmentationOptions::default())
    }

    #[test]
    fn ascii_contains_header_and_axis() {
        let s = render_entropy_ascii(&analysis(), 12);
        assert!(s.contains("H_S ="));
        assert!(s.contains("bits: 0"));
        assert!(s.contains('A'));
        // 12 chart rows plus header/labels/axis.
        assert!(s.lines().count() >= 15);
    }

    #[test]
    fn ascii_marks_entropy_cells() {
        let s = render_entropy_ascii(&analysis(), 10);
        assert!(s.contains('*') || s.contains('#'), "no entropy marks:\n{s}");
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let s = render_entropy_svg(&analysis(), 640, 240);
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>"));
        assert_eq!(s.matches("<polyline").count(), 2);
        assert!(s.contains("H_S="));
    }

    #[test]
    fn svg_respects_minimum_size() {
        let s = render_entropy_svg(&analysis(), 1, 1);
        assert!(s.contains("width=\"200\""));
    }
}
