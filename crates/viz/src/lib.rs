//! Renderers for Entropy/IP analyses — the paper's web UI re-imagined
//! as terminal text, SVG, and Graphviz DOT output.
//!
//! | Module | Paper element |
//! |---|---|
//! | [`plot`] | Fig. 1(a)/7(a)/8/9(a)/10(a): entropy + ACR line plot with segment boundaries |
//! | [`heatmap`] | Fig. 1(b,c): the conditional probability browser's value columns |
//! | [`dot`] | Fig. 2: the BN dependency graph |
//! | [`windowmap`] | Fig. 5: the windowing-entropy heat map |
//!
//! Everything returns `String`s; callers decide where to write them.
//! ASCII output is deliberate (works in CI logs and SSH sessions);
//! SVG output is available for every plot as well.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod heatmap;
pub mod plot;
pub mod windowmap;

pub use dot::bn_to_dot;
pub use heatmap::render_browser;
pub use plot::{render_entropy_ascii, render_entropy_svg};
pub use windowmap::{render_window_ascii, render_window_svg};
