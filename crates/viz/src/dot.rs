//! Graphviz DOT export of the learned Bayesian network (Fig. 2).
//!
//! Nodes are segments; an edge `C -> J` means segment J's CPT is
//! conditioned on C. Optionally a focus node's incoming edges are
//! highlighted red, matching the paper's Fig. 2 ("red edges show that
//! the segment J is directly dependent on segments C and H").

use eip_bayes::BayesNet;

/// Renders the network as a DOT digraph. `focus` highlights the
/// incoming edges of the named node in red.
pub fn bn_to_dot(bn: &BayesNet, focus: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("digraph entropy_ip {\n");
    out.push_str("  rankdir=LR;\n  node [shape=circle, fontname=\"monospace\"];\n");
    for node in bn.nodes() {
        out.push_str(&format!("  \"{}\";\n", node.name));
    }
    for (parent, child) in bn.edges() {
        let p = &bn.node(parent).name;
        let c = &bn.node(child).name;
        let attr = match focus {
            Some(f) if f == c => " [color=red, penwidth=2]",
            _ => "",
        };
        out.push_str(&format!("  \"{p}\" -> \"{c}\"{attr};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_bayes::{BayesNet, Cpt, Node};

    fn bn() -> BayesNet {
        let n0 = Node {
            name: "C".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(2, vec![], vec![0.5, 0.5]),
        };
        let n1 = Node {
            name: "H".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(2, vec![], vec![0.5, 0.5]),
        };
        let n2 = Node {
            name: "J".into(),
            cardinality: 2,
            parents: vec![0, 1],
            cpt: Cpt::from_probs(2, vec![2, 2], vec![0.5; 8]),
        };
        BayesNet::new(vec![n0, n1, n2])
    }

    #[test]
    fn dot_lists_nodes_and_edges() {
        let s = bn_to_dot(&bn(), None);
        assert!(s.starts_with("digraph"));
        assert!(s.contains("\"C\";"));
        assert!(s.contains("\"C\" -> \"J\";"));
        assert!(s.contains("\"H\" -> \"J\";"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn focus_highlights_incoming_edges() {
        let s = bn_to_dot(&bn(), Some("J"));
        assert!(s.contains("\"C\" -> \"J\" [color=red, penwidth=2];"));
        let unfocused = bn_to_dot(&bn(), Some("C"));
        assert!(!unfocused.contains("color=red"));
    }
}
