//! The windowing-entropy heat map (Fig. 5).
//!
//! X axis: window length; Y axis: window position (both in bits in
//! the paper, nybbles here — same picture at 4× coarser ticks).
//! Cell intensity: unnormalized entropy of the windowed values.

use eip_stats::WindowGrid;

const RAMP: &[char] = &[' ', '░', '▒', '▓', '█'];

/// Renders the grid as ASCII: rows are window start positions 1..=32,
/// columns are lengths 1..=32, intensity scaled to the grid maximum.
pub fn render_window_ascii(grid: &WindowGrid) -> String {
    let max = grid
        .iter()
        .map(|(_, _, h)| h)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    out.push_str(&format!(
        "Windowing entropy (max {:.1} bits, n = {})\n",
        max,
        grid.population()
    ));
    out.push_str("pos\\len 1       8        16       24       32\n");
    for start in 1..=32usize {
        out.push_str(&format!("{start:>5} | "));
        for len in 1..=32usize {
            match grid.get(start, len) {
                Some(h) => {
                    let idx = ((h / max) * (RAMP.len() - 1) as f64).round() as usize;
                    out.push(RAMP[idx.min(RAMP.len() - 1)]);
                }
                None => out.push('·'),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the grid as an SVG heat map with a blue→red color ramp.
pub fn render_window_svg(grid: &WindowGrid, cell_px: usize) -> String {
    let c = cell_px.max(4) as f64;
    let ml = 30.0;
    let mt = 20.0;
    let w = ml + 32.0 * c + 10.0;
    let h = mt + 32.0 * c + 30.0;
    let max = grid
        .iter()
        .map(|(_, _, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    ));
    svg.push_str(&format!(r#"<rect width="{w}" height="{h}" fill="white"/>"#));
    for (start, len, v) in grid.iter() {
        let t = (v / max).clamp(0.0, 1.0);
        // Blue (cold) to red (hot).
        let r = (255.0 * t) as u8;
        let b = (255.0 * (1.0 - t)) as u8;
        let x = ml + (len - 1) as f64 * c;
        let y = mt + (start - 1) as f64 * c;
        svg.push_str(&format!(
            r#"<rect x="{x:.1}" y="{y:.1}" width="{c:.1}" height="{c:.1}" fill="rgb({r},64,{b})"/>"#
        ));
    }
    svg.push_str(&format!(
        r#"<text x="{ml}" y="{:.1}" font-size="11" font-family="monospace">window length (nybbles) vs position; max {max:.1} bits</text>"#,
        h - 8.0
    ));
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_addr::Ip6;

    fn grid() -> WindowGrid {
        let addrs: Vec<Ip6> = (0..64u128)
            .map(|i| Ip6((0x2001_0db8u128 << 96) | i))
            .collect();
        WindowGrid::compute(&addrs)
    }

    #[test]
    fn ascii_has_32_rows() {
        let s = render_window_ascii(&grid());
        let rows = s.lines().filter(|l| l.contains('|')).count();
        assert_eq!(rows, 32);
        // Out-of-range cells are dotted.
        assert!(s.contains('·'));
    }

    #[test]
    fn hot_cells_only_in_varying_region() {
        let s = render_window_ascii(&grid());
        // Row for position 1 (constant prefix region at short
        // lengths) should start blank; the full-width window picks up
        // the variation.
        let row1 = s
            .lines()
            .find(|l| l.trim_start().starts_with("1 |"))
            .unwrap();
        assert!(row1.contains('█') || row1.contains('▓'), "{row1}");
    }

    #[test]
    fn svg_has_cells_and_caption() {
        let s = render_window_svg(&grid(), 6);
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>"));
        // 32+31+…+1 = 528 cells + background rect.
        assert_eq!(s.matches("<rect").count(), 529);
        assert!(s.contains("window length"));
    }
}
