//! `eip` — the Entropy/IP command-line tool.
//!
//! Mirrors the original project's workflow: feed it a file of IPv6
//! addresses, get the analysis, and optionally a model profile or
//! generated scan targets.
//!
//! ```text
//! eip analyze ips.txt                  # entropy plot + dictionaries + BN
//! eip analyze ips.txt --top64          # prefix (top-64-bit) mode
//! eip generate ips.txt -n 10000        # candidate targets, one per line
//! eip export ips.txt > model.eip       # train and save a profile
//! eip generate --profile model.eip -n 1000
//! eip dot ips.txt > bn.dot             # BN graph for Graphviz
//! ```

use std::process::exit;

use eip_addr::AddressSet;
use entropy_ip::{profile, Browser, EntropyIp, IpModel, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    match cmd.as_str() {
        "analyze" => analyze(&args[1..]),
        "generate" => generate(&args[1..]),
        "export" => export(&args[1..]),
        "dot" => dot(&args[1..]),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("error: unknown command {other}");
            usage();
            exit(2);
        }
    }
}

/// Shared option bag for all subcommands.
struct Cli {
    input: Option<String>,
    profile: Option<String>,
    top64: bool,
    n: usize,
    seed: u64,
    min_prob: f64,
}

fn parse(args: &[String]) -> Cli {
    let mut cli = Cli {
        input: None,
        profile: None,
        top64: false,
        n: 1000,
        seed: 1,
        min_prob: 0.005,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top64" => cli.top64 = true,
            "--profile" => {
                i += 1;
                cli.profile = Some(args[i].clone());
            }
            "-n" | "--count" => {
                i += 1;
                cli.n = args[i].parse().unwrap_or_else(|_| die("-n needs a number"));
            }
            "--seed" => {
                i += 1;
                cli.seed = args[i]
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs a number"));
            }
            "--min-prob" => {
                i += 1;
                cli.min_prob = args[i]
                    .parse()
                    .unwrap_or_else(|_| die("--min-prob needs a float"));
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag {flag}")),
            path => {
                if cli.input.replace(path.to_string()).is_some() {
                    die("multiple input files");
                }
            }
        }
        i += 1;
    }
    cli
}

/// Loads a model either from a profile or by training on the input.
fn load_model(cli: &Cli) -> IpModel {
    if let Some(path) = &cli.profile {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        return profile::import(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    }
    let path = cli
        .input
        .as_ref()
        .unwrap_or_else(|| die("need an address file or --profile"));
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let ips = AddressSet::parse_lines(&text).unwrap_or_else(|e| die(&e));
    if ips.is_empty() {
        die("input contains no addresses");
    }
    let opts = if cli.top64 {
        Options::top64()
    } else {
        Options::default()
    };
    EntropyIp::with_options(opts)
        .analyze(&ips)
        .unwrap_or_else(|e| die(&e.to_string()))
}

fn analyze(args: &[String]) {
    let cli = parse(args);
    let model = load_model(&cli);
    println!("{}", eip_viz::render_entropy_ascii(model.analysis(), 12));
    let browser = Browser::new(&model);
    println!(
        "{}",
        eip_viz::render_browser(&browser.distributions(), cli.min_prob)
    );
    let edges: Vec<String> = model
        .bn()
        .edges()
        .iter()
        .map(|&(p, c)| format!("{}->{}", model.bn().node(p).name, model.bn().node(c).name))
        .collect();
    println!(
        "BN dependencies: {}",
        if edges.is_empty() {
            "none".into()
        } else {
            edges.join(", ")
        }
    );
}

fn generate(args: &[String]) {
    let cli = parse(args);
    let model = load_model(&cli);
    let mut rng = StdRng::seed_from_u64(cli.seed);
    for ip in model.generate(cli.n, cli.n.saturating_mul(10), &mut rng) {
        println!("{ip}");
    }
}

fn export(args: &[String]) {
    let cli = parse(args);
    let model = load_model(&cli);
    print!("{}", profile::export(&model));
}

fn dot(args: &[String]) {
    let cli = parse(args);
    let model = load_model(&cli);
    print!("{}", eip_viz::bn_to_dot(model.bn(), None));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

fn usage() {
    println!(
        "eip — Entropy/IP: discover structure in IPv6 address sets (IMC 2016)\n\n\
         usage: eip <command> [file] [flags]\n\n\
         commands:\n\
           analyze <file>     entropy/ACR plot, dictionaries, browser, BN\n\
           generate <file>    print candidate scan targets\n\
           export <file>      train and print a model profile\n\
           dot <file>         print the BN as Graphviz DOT\n\n\
         flags:\n\
           --top64            analyze only the top 64 bits (prefix mode)\n\
           --profile <path>   load a saved profile instead of training\n\
           -n, --count <N>    number of candidates to generate (default 1000)\n\
           --seed <N>         RNG seed (default 1)\n\
           --min-prob <F>     hide dictionary rows below this probability"
    );
}
