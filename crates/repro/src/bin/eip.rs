//! `eip` — the Entropy/IP command-line tool.
//!
//! Mirrors the original project's workflow: feed it a file of IPv6
//! addresses, get the analysis, and optionally a model profile or
//! generated scan targets.
//!
//! ```text
//! eip analyze ips.txt                  # entropy plot + dictionaries + BN
//! eip analyze ips.txt --top64          # prefix (top-64-bit) mode
//! eip generate ips.txt -n 10000        # candidate targets, one per line
//! eip generate ips.txt -n 1000000 --jobs 8   # parallel batched sampling
//! eip export ips.txt > model.eip       # train and save a profile
//! eip generate --profile model.eip -n 1000
//! eip dot ips.txt > bn.dot             # BN graph for Graphviz
//!
//! # Train once, serve millions (binary .eipm containers + daemon):
//! eip analyze ips.txt --model-out models/S1.eipm   # train and persist
//! eip generate --model-in models/S1.eipm -n 1000   # reuse, no retraining
//! eip serve models --port 3164                     # daemon over the fleet
//! eip query 127.0.0.1:3164 GEN S1 100 seed=7       # one protocol request
//! ```
//!
//! Input files are ingested through the bounded-memory parallel
//! streaming engine ([`Pipeline::profile_path_with`]): the file is
//! read in fixed-size newline-aligned chunks that fan out across the
//! worker threads, so peak memory stays O(chunk size × workers) plus
//! the deduplicated set — independent of file length. `--chunk-mb N`
//! sets the chunk size (default 4 MiB); `--chunk-mb 0` selects the
//! serial one-line-at-a-time oracle the engine is verified against.
//! Ingest throughput goes to stderr so stdout stays byte-stable.
//!
//! All failures flow through [`EipError`] and a single exit point:
//! usage errors exit 2, runtime errors (I/O, parse, empty input)
//! exit 1.

use std::fs::File;
use std::io::BufReader;
use std::process::exit;

use entropy_ip::{
    profile, store, Browser, Config, EipError, Generator, IngestOptions, IpModel, Pipeline,
};

fn main() {
    exit(match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, EipError::Usage(_)) {
                eprintln!("run `eip help` for usage");
            }
            e.exit_code()
        }
    });
}

fn run() -> Result<(), EipError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return Err(EipError::Usage("missing command".into()));
    };
    match cmd.as_str() {
        "analyze" => analyze(&parse(&args[1..])?),
        "generate" => generate(&parse(&args[1..])?),
        "export" => export(&parse(&args[1..])?),
        "dot" => dot(&parse(&args[1..])?),
        "serve" => serve(&parse(&args[1..])?),
        "query" => query(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        "--version" | "-V" | "version" => {
            println!("eip {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        other => {
            usage();
            Err(EipError::Usage(format!("unknown command {other}")))
        }
    }
}

/// Shared option bag for all subcommands.
struct Cli {
    input: Option<String>,
    profile: Option<String>,
    model_in: Option<String>,
    model_out: Option<String>,
    top64: bool,
    chunk_mb: usize,
    n: usize,
    seed: u64,
    min_prob: f64,
    jobs: usize,
    port: u16,
    capacity: usize,
    max_line_mb: usize,
    max_conns: usize,
    max_gen: usize,
    timeout_secs: u64,
}

fn parse(args: &[String]) -> Result<Cli, EipError> {
    let mut cli = Cli {
        input: None,
        profile: None,
        model_in: None,
        model_out: None,
        top64: false,
        chunk_mb: 4,
        n: 1000,
        seed: 1,
        min_prob: 0.005,
        jobs: 1,
        port: 0,
        capacity: 16,
        max_line_mb: eip_addr::chunk::DEFAULT_MAX_LINE_BYTES >> 20,
        max_conns: eip_serve::Limits::default().max_conns,
        max_gen: eip_serve::Limits::default().max_gen,
        timeout_secs: 30,
    };
    let mut i = 0;
    let operand = |args: &[String], i: usize, flag: &str| -> Result<String, EipError> {
        args.get(i)
            .cloned()
            .ok_or_else(|| EipError::Usage(format!("{flag} needs an operand")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--top64" => cli.top64 = true,
            "--chunk-mb" => {
                i += 1;
                cli.chunk_mb = operand(args, i, "--chunk-mb")?
                    .parse()
                    .map_err(|_| EipError::Usage("--chunk-mb needs a number of MiB".into()))?;
            }
            "--profile" => {
                i += 1;
                cli.profile = Some(operand(args, i, "--profile")?);
            }
            "--model-in" => {
                i += 1;
                cli.model_in = Some(operand(args, i, "--model-in")?);
            }
            "--model-out" => {
                i += 1;
                cli.model_out = Some(operand(args, i, "--model-out")?);
            }
            "--port" => {
                i += 1;
                cli.port = operand(args, i, "--port")?
                    .parse()
                    .map_err(|_| EipError::Usage("--port needs a port number".into()))?;
            }
            "--capacity" => {
                i += 1;
                cli.capacity = operand(args, i, "--capacity")?
                    .parse()
                    .map_err(|_| EipError::Usage("--capacity needs a number".into()))?;
            }
            "--max-line-mb" => {
                i += 1;
                cli.max_line_mb = operand(args, i, "--max-line-mb")?
                    .parse()
                    .map_err(|_| EipError::Usage("--max-line-mb needs a number of MiB".into()))?;
            }
            "--max-conns" => {
                i += 1;
                cli.max_conns = operand(args, i, "--max-conns")?
                    .parse()
                    .map_err(|_| EipError::Usage("--max-conns needs a number".into()))?;
            }
            "--max-gen" => {
                i += 1;
                cli.max_gen = operand(args, i, "--max-gen")?
                    .parse()
                    .map_err(|_| EipError::Usage("--max-gen needs a number".into()))?;
            }
            "--timeout-secs" => {
                i += 1;
                cli.timeout_secs = operand(args, i, "--timeout-secs")?.parse().map_err(|_| {
                    EipError::Usage("--timeout-secs needs a number of seconds (0 = none)".into())
                })?;
            }
            "-n" | "--count" => {
                i += 1;
                cli.n = operand(args, i, "-n")?
                    .parse()
                    .map_err(|_| EipError::Usage("-n needs a number".into()))?;
            }
            "--seed" => {
                i += 1;
                cli.seed = operand(args, i, "--seed")?
                    .parse()
                    .map_err(|_| EipError::Usage("--seed needs a number".into()))?;
            }
            "--min-prob" => {
                i += 1;
                cli.min_prob = operand(args, i, "--min-prob")?
                    .parse()
                    .map_err(|_| EipError::Usage("--min-prob needs a float".into()))?;
            }
            "--jobs" => {
                i += 1;
                cli.jobs = operand(args, i, "--jobs")?
                    .parse()
                    .map_err(|_| EipError::Usage("--jobs needs a number".into()))?;
            }
            flag if flag.starts_with('-') => {
                return Err(EipError::Usage(format!("unknown flag {flag}")));
            }
            path => {
                if cli.input.replace(path.to_string()).is_some() {
                    return Err(EipError::Usage("multiple input files".into()));
                }
            }
        }
        i += 1;
    }
    Ok(cli)
}

/// The pipeline a command-line configuration implies.
fn pipeline(cli: &Cli) -> Pipeline {
    let cfg = if cli.top64 {
        Config::top64()
    } else {
        Config::default()
    };
    Pipeline::new(cfg.with_parallelism(cli.jobs))
}

/// Loads a model — from a binary `.eipm` container (`--model-in`),
/// from a saved text profile (`--profile`), or by training on the
/// input file via the streaming ingestion engine (or the serial
/// oracle with `--chunk-mb 0`). Returns the model plus its
/// provenance fingerprint (for `--model-out`).
fn load_model(cli: &Cli) -> Result<(IpModel, u64), EipError> {
    if let Some(path) = &cli.model_in {
        return store::load_file(path);
    }
    if let Some(path) = &cli.profile {
        let text = std::fs::read_to_string(path).map_err(|e| EipError::io(path, e))?;
        let model = profile::import(&text)?;
        let fp = store::fingerprint(&format!("profile={path}"));
        return Ok((model, fp));
    }
    let path = cli
        .input
        .as_ref()
        .ok_or_else(|| EipError::Usage("need an address file, --profile, or --model-in".into()))?;
    let profiled = if cli.chunk_mb == 0 {
        let file = File::open(path).map_err(|e| EipError::io(path, e))?;
        pipeline(cli).profile_lines(BufReader::new(file))?
    } else {
        let opts = IngestOptions::chunk_mib(cli.chunk_mb).with_max_line_mib(cli.max_line_mb);
        let (profiled, report) = pipeline(cli).profile_path_with(path, &opts)?;
        eprintln!("{}", report.summary());
        profiled
    };
    let model = profiled.segment().mine().train()?.into_model();
    let fp = store::fingerprint(&format!(
        "input={path} top64={} n_addresses={}",
        cli.top64,
        model.analysis().num_addresses
    ));
    Ok((model, fp))
}

/// Persists the model as a binary container if `--model-out` was
/// given.
fn maybe_save(cli: &Cli, model: &IpModel, fingerprint: u64) -> Result<(), EipError> {
    if let Some(path) = &cli.model_out {
        store::save_file(path, model, fingerprint)?;
        eprintln!("model written to {path}");
    }
    Ok(())
}

fn analyze(cli: &Cli) -> Result<(), EipError> {
    let (model, fp) = load_model(cli)?;
    maybe_save(cli, &model, fp)?;
    println!("{}", eip_viz::render_entropy_ascii(model.analysis(), 12));
    let browser = Browser::new(&model);
    println!(
        "{}",
        eip_viz::render_browser(&browser.distributions(), cli.min_prob)
    );
    let edges: Vec<String> = model
        .bn()
        .edges()
        .iter()
        .map(|&(p, c)| format!("{}->{}", model.bn().node(p).name, model.bn().node(c).name))
        .collect();
    println!(
        "BN dependencies: {}",
        if edges.is_empty() {
            "none".into()
        } else {
            edges.join(", ")
        }
    );
    Ok(())
}

fn generate(cli: &Cli) -> Result<(), EipError> {
    let (model, fp) = load_model(cli)?;
    maybe_save(cli, &model, fp)?;
    let report = Generator::new(&model)
        .parallelism(cli.jobs)
        .run_seeded(cli.n, cli.seed);
    for ip in &report.candidates {
        println!("{ip}");
    }
    Ok(())
}

fn export(cli: &Cli) -> Result<(), EipError> {
    let (model, fp) = load_model(cli)?;
    maybe_save(cli, &model, fp)?;
    print!("{}", profile::export(&model));
    Ok(())
}

fn dot(cli: &Cli) -> Result<(), EipError> {
    let (model, fp) = load_model(cli)?;
    maybe_save(cli, &model, fp)?;
    print!("{}", eip_viz::bn_to_dot(model.bn(), None));
    Ok(())
}

/// `eip serve <models-dir>`: the model-service daemon. Binds
/// loopback, announces the bound address on stdout (port 0 gives an
/// ephemeral port, so scripts parse the line), then serves until
/// killed.
fn serve(cli: &Cli) -> Result<(), EipError> {
    use std::io::Write;
    let dir = cli
        .input
        .as_ref()
        .ok_or_else(|| EipError::Usage("serve needs a models directory".into()))?;
    let store = eip_serve::ModelStore::open(dir)?;
    let networks = store.list()?;
    let timeout = std::time::Duration::from_secs(cli.timeout_secs);
    let limits = eip_serve::Limits {
        max_conns: cli.max_conns,
        max_gen: cli.max_gen,
        read_timeout: timeout,
        write_timeout: timeout,
        ..eip_serve::Limits::default()
    };
    let service = std::sync::Arc::new(eip_serve::Service::with_limits(
        eip_serve::Registry::new(store, cli.capacity),
        cli.seed,
        limits,
    ));
    let server = eip_serve::spawn(service, ("127.0.0.1", cli.port))?;
    println!("listening on {}", server.local_addr());
    println!(
        "serving {} model(s): {}",
        networks.len(),
        if networks.is_empty() {
            "-".to_string()
        } else {
            networks.join(", ")
        }
    );
    std::io::stdout().flush().ok();
    server.wait();
    Ok(())
}

/// `eip query <host:port> <request words…>`: one protocol request,
/// response lines on stdout (the `.` terminator stripped).
fn query(args: &[String]) -> Result<(), EipError> {
    let addr = args
        .first()
        .ok_or_else(|| EipError::Usage("query needs <host:port>".into()))?;
    let request = args[1..].join(" ");
    if request.trim().is_empty() {
        return Err(EipError::Usage(
            "query needs a request, e.g. eip query 127.0.0.1:3164 STATS".into(),
        ));
    }
    let mut client =
        eip_serve::Client::connect(addr.as_str()).map_err(|e| EipError::io(addr, e))?;
    for line in client
        .request(&request)
        .map_err(|e| EipError::io(addr, e))?
    {
        println!("{line}");
    }
    Ok(())
}

fn usage() {
    println!(
        "eip — Entropy/IP: discover structure in IPv6 address sets (IMC 2016)\n\n\
         usage: eip <command> [file] [flags]\n\n\
         commands:\n\
           analyze <file>     entropy/ACR plot, dictionaries, browser, BN\n\
           generate <file>    print candidate scan targets\n\
           export <file>      train and print a model profile\n\
           dot <file>         print the BN as Graphviz DOT\n\
           serve <dir>        model-service daemon over a directory of .eipm files\n\
           query <addr> <req> send one protocol request (BROWSE/GEN/PREDICT64/STATS)\n\
           version            print the version\n\n\
         flags:\n\
           --top64            analyze only the top 64 bits (prefix mode)\n\
           --chunk-mb <N>     streaming ingest chunk size in MiB (default 4;\n\
                              0 = serial one-line-at-a-time ingestion)\n\
           --profile <path>   load a saved profile instead of training\n\
           --model-in <path>  load a binary .eipm model instead of training\n\
           --model-out <path> persist the model as a binary .eipm container\n\
           -n, --count <N>    number of candidates to generate (default 1000)\n\
           --seed <N>         RNG seed / serve base seed (default 1)\n\
           --min-prob <F>     hide dictionary rows below this probability\n\
           --jobs <N>         worker threads for mining/generation (default 1)\n\
           --max-line-mb <N>  ingest: abort on input lines over N MiB (default 64)\n\
           --port <N>         serve: TCP port on loopback (default 0 = ephemeral)\n\
           --capacity <N>     serve: LRU capacity in decoded models (default 16)\n\
           --max-conns <N>    serve: shed connections past N with ERR busy (default 256)\n\
           --max-gen <N>      serve: reject GEN counts over N with ERR limit (default 100000)\n\
           --timeout-secs <N> serve: per-connection read/write deadline (default 30; 0 = none)\n\n\
         exit codes: 0 ok, 1 runtime error, 2 usage error"
    );
}
