//! Deterministic synthetic address corpora for exercising the
//! streaming ingestion engine at scale.
//!
//! [`CorpusReader`] is a [`Read`] that *synthesizes* an address file
//! on the fly — no multi-hundred-megabyte corpus ever touches disk or
//! memory at once. The stream is a pure function of `(population,
//! lines, seed)`, so the ingest stage of `repro --full` and the
//! `--corpus-out` smoke corpus are reproducible byte for byte:
//!
//! * every population address appears at least once (the first
//!   `population.len()` payload slots walk a full permutation), so
//!   deduplicated ingestion must reproduce the population exactly;
//! * the remaining slots are keyed-random **duplicates**, which is
//!   what the sorted-run merge machinery has to collapse;
//! * presentation alternates between the colon form and the paper's
//!   fixed-width 32-hex form, with a sprinkle of `#` comments and
//!   blank lines — everything the line classifier must skip.

use std::io::{self, Read};

use eip_addr::{AddressSet, Ip6};
use eip_exec::rng;

/// One comment-or-blank line is injected before every `COMMENT_EVERY`
/// payload lines (~2% overhead).
const COMMENT_EVERY: u64 = 50;

/// How many payload lines each buffer refill renders.
const BATCH_LINES: u64 = 512;

/// A deterministic pseudo-file of IPv6 address lines drawn from a
/// population set. See the module docs for the line mix.
pub struct CorpusReader {
    pop: Vec<Ip6>,
    lines: u64,
    /// Fresh-address cadence: payload slot `j` is a first occurrence
    /// when `j % fresh_every == 0` (and the permutation has not been
    /// exhausted), a keyed-random duplicate otherwise.
    fresh_every: u64,
    /// Multiplicative permutation over the population: slot `i` maps
    /// to `pop[(i * stride + offset) % len]`, with `stride` coprime to
    /// `len` so all addresses are covered exactly once.
    stride: u64,
    offset: u64,
    seed: u64,
    next: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl CorpusReader {
    /// A corpus of `lines` address lines over `pop`, deterministic in
    /// `seed`. With `lines >= pop.len()` every population address is
    /// guaranteed to appear; extra lines are duplicates.
    pub fn new(pop: &AddressSet, lines: u64, seed: u64) -> Self {
        let n = pop.len() as u64;
        let lines = if n == 0 { 0 } else { lines };
        let fresh_every = lines.checked_div(n).unwrap_or(1).max(1);
        let stride = if n <= 1 {
            1
        } else {
            let mut s = rng::mix(seed, 0x57, 0) % n;
            s = s.max(1);
            while gcd(s, n) != 1 {
                s = s % n + 1;
            }
            s
        };
        let offset = if n == 0 {
            0
        } else {
            rng::mix(seed, 0x0f, 0) % n
        };
        CorpusReader {
            pop: pop.as_slice().to_vec(),
            lines,
            fresh_every,
            stride,
            offset,
            seed,
            next: 0,
            buf: Vec::with_capacity(64 * BATCH_LINES as usize),
            pos: 0,
        }
    }

    /// The address occupying payload slot `j`.
    fn addr_for(&self, j: u64) -> Ip6 {
        let n = self.pop.len() as u64;
        let perm_idx = j / self.fresh_every;
        if j.is_multiple_of(self.fresh_every) && perm_idx < n {
            self.pop[((perm_idx * self.stride + self.offset) % n) as usize]
        } else {
            self.pop[(rng::mix(self.seed, 0xd0b, j) % n) as usize]
        }
    }

    /// Renders the next batch of payload lines into `buf`.
    fn refill(&mut self) {
        use std::fmt::Write;
        self.buf.clear();
        self.pos = 0;
        let mut text = String::new();
        let end = (self.next + BATCH_LINES).min(self.lines);
        for j in self.next..end {
            if j % COMMENT_EVERY == 0 {
                if j % (2 * COMMENT_EVERY) == 0 {
                    let _ = writeln!(text, "# synthetic corpus slot {j}");
                } else {
                    text.push('\n');
                }
            }
            let ip = self.addr_for(j);
            if rng::mix(self.seed, 0xf0f, j) & 1 == 0 {
                let _ = writeln!(text, "{ip}");
            } else {
                let _ = writeln!(text, "{}", ip.to_hex32());
            }
        }
        self.next = end;
        self.buf.extend_from_slice(text.as_bytes());
    }
}

impl Read for CorpusReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.buf.len() {
            if self.next == self.lines {
                return Ok(0);
            }
            self.refill();
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Writes the corpus to a file (the `repro --corpus-out` smoke-corpus
/// path). Returns the bytes written.
pub fn write_corpus(path: &str, pop: &AddressSet, lines: u64, seed: u64) -> io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    let mut reader = CorpusReader::new(pop, lines, seed);
    io::copy(&mut reader, &mut writer)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use eip_addr::AddressSet;

    fn pop(n: u128) -> AddressSet {
        (0..n)
            .map(|i| Ip6((0x2001_0db8_0001_0000u128 << 64) | (i * 7 + 3)))
            .collect()
    }

    /// Deduplicated ingestion of the corpus must reproduce the source
    /// population exactly — full coverage plus only-duplicates beyond.
    #[test]
    fn corpus_round_trips_to_population() {
        let pop = pop(97);
        for lines in [97u64, 100, 485, 500] {
            let mut text = String::new();
            CorpusReader::new(&pop, lines, 42)
                .read_to_string(&mut text)
                .unwrap();
            let parsed = AddressSet::parse_lines(&text).unwrap();
            assert_eq!(parsed.as_slice(), pop.as_slice(), "lines={lines}");
            let payload = text
                .lines()
                .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
                .count() as u64;
            assert_eq!(payload, lines, "payload line count");
        }
    }

    /// The stream is byte-identical across read granularities and
    /// reruns with the same seed, and differs across seeds.
    #[test]
    fn corpus_is_deterministic() {
        let pop = pop(31);
        let mut a = String::new();
        CorpusReader::new(&pop, 200, 7)
            .read_to_string(&mut a)
            .unwrap();
        let mut b = Vec::new();
        let mut r = CorpusReader::new(&pop, 200, 7);
        let mut byte = [0u8; 3];
        loop {
            let n = r.read(&mut byte).unwrap();
            if n == 0 {
                break;
            }
            b.extend_from_slice(&byte[..n]);
        }
        assert_eq!(a.as_bytes(), &b[..]);
        let mut c = String::new();
        CorpusReader::new(&pop, 200, 8)
            .read_to_string(&mut c)
            .unwrap();
        assert_ne!(a, c);
    }

    /// Both presentation forms and comments appear in the mix.
    #[test]
    fn corpus_mixes_formats_and_comments() {
        let pop = pop(64);
        let mut text = String::new();
        CorpusReader::new(&pop, 320, 3)
            .read_to_string(&mut text)
            .unwrap();
        assert!(text.lines().any(|l| l.contains(':')), "colon form present");
        assert!(
            text.lines().any(|l| l.len() == 32 && !l.contains(':')),
            "hex32 form present"
        );
        assert!(text.lines().any(|l| l.starts_with('#')), "comments present");
        assert!(text.lines().any(|l| l.is_empty()), "blank lines present");
    }

    #[test]
    fn empty_population_yields_empty_corpus() {
        let mut text = String::new();
        CorpusReader::new(&AddressSet::new(), 100, 1)
            .read_to_string(&mut text)
            .unwrap();
        assert!(text.is_empty());
    }
}
