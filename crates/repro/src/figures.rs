//! Figure regeneration (Figs. 1–10 of the paper).

use eip_addr::Ip6;
use eip_stats::WindowGrid;
use eip_viz::{bn_to_dot, render_browser, render_entropy_ascii, render_window_ascii};
use entropy_ip::Browser;

use crate::common::{quick_model, RunConfig};

/// Fig. 1: entropy plot + conditional probability browser for a
/// Japanese-telco-style client network (we use the C1 mobile plan:
/// same phenomenology — structured top bits, dependent IID pattern).
pub fn figure1(cfg: &RunConfig) {
    println!("=== Figure 1: Entropy/IP user interface (client network, 24K IPs) ===\n");
    let (_, model) = quick_model("C1", 24_000, cfg.seed);
    println!("{}", render_entropy_ascii(model.analysis(), 12));

    let mut browser = Browser::new(&model);
    println!("--- (b) prior distributions ---");
    println!("{}", render_browser(&browser.distributions(), 0.001));

    // Click the most popular zero-run code of the first IID segment
    // (the paper clicks J = 00000…).
    let iid_seg = model
        .analysis()
        .segment_at(17)
        .expect("segment after bit 64")
        .label
        .clone();
    let zero_code = model.mined()[model.segment_index(&iid_seg).unwrap()]
        .values
        .iter()
        .find(|v| v.kind.matches(0))
        .map(|v| v.code.clone());
    match zero_code {
        Some(code) => {
            println!("--- (c) after selecting {iid_seg} = {code} (mouse click) ---");
            browser.select(&iid_seg, &code);
            println!("{}", render_browser(&browser.distributions(), 0.001));
        }
        None => println!("(no zero-run code in segment {iid_seg}; see fig10 for the F=01 case)"),
    }
}

/// Fig. 2: the BN dependency graph with the IID segment highlighted.
pub fn figure2(cfg: &RunConfig) {
    println!("=== Figure 2: segment dependency graph (DOT) ===\n");
    let (_, model) = quick_model("C1", 24_000, cfg.seed);
    let focus = model
        .bn()
        .nodes()
        .iter()
        .rev()
        .find(|n| !n.parents.is_empty())
        .map(|n| n.name.clone());
    println!("{}", bn_to_dot(model.bn(), focus.as_deref()));
    if let Some(f) = focus {
        println!("(red edges: direct probabilistic influence on segment {f})");
    }
}

/// Fig. 3: sample IPv6 addresses in fixed-width format.
pub fn figure3() {
    println!("=== Figure 3: sample IPv6 addresses, fixed-width, sans colons ===\n");
    let samples = [
        "20010db840011111000000000000111c",
        "20010db840011111000000000000111f",
        "20010db840031c13000000000000200c",
        "20010db8400a2f2a000000000000200f",
        "20010db840011111000000000000111f",
    ];
    println!("0        1         2         3");
    println!("12345678901234567890123456789012");
    for s in samples {
        let ip = Ip6::from_hex32(s).unwrap();
        println!("{}", ip.to_hex32());
    }
}

/// Fig. 4: histogram of one mined segment of S1 with its discovered
/// codes, the scatter-plot view.
pub fn figure4(cfg: &RunConfig) {
    println!("=== Figure 4: segment-C histogram with mined codes (S1) ===\n");
    let (observed, model) = quick_model("S1", 20_000, cfg.seed);
    // Segment C is the first segment after the /40 selector: find the
    // segment starting at nybble 11 (bits 40-48); fall back to the
    // third segment.
    let seg_idx = model
        .analysis()
        .segments
        .iter()
        .position(|s| s.start == 11)
        .unwrap_or(2.min(model.mined().len() - 1));
    let mined = &model.mined()[seg_idx];
    let seg = &mined.segment;
    println!(
        "segment {} (bits {}-{}), {} observations",
        seg.label,
        seg.bit_range().0,
        seg.bit_range().1,
        mined.total
    );

    // ASCII scatter: x = value bucket, y = log count.
    let values: Vec<u128> = observed
        .iter()
        .map(|ip| ip.nybbles().segment_value(seg.start, seg.end))
        .collect();
    let hist = eip_stats::Histogram::from_values(&values);
    let max_count = hist.entries().iter().map(|&(_, c)| c).max().unwrap_or(1);
    println!("\nvalue     count  bar (log scale)");
    for &(v, c) in hist.entries().iter().take(40) {
        let bar = ((c as f64).ln() / (max_count as f64).ln() * 40.0) as usize;
        let code = mined
            .encode(v)
            .map(|i| mined.values[i].code.clone())
            .unwrap_or_default();
        println!("{v:>8x} {c:>6}  {} {code}", "#".repeat(bar.max(1)));
    }
    if hist.distinct() > 40 {
        println!("… ({} more distinct values)", hist.distinct() - 40);
    }
    println!("\ndiscovered codes:");
    for sv in &mined.values {
        println!(
            "  {:<5} {:?}  freq {:.2}%",
            sv.code,
            sv.kind,
            sv.freq * 100.0
        );
    }
}

/// Fig. 5: the windowing-entropy heat map for S1.
pub fn figure5(cfg: &RunConfig) {
    println!("=== Figure 5: windowing analysis of entropy (S1) ===\n");
    let (observed, _) = quick_model("S1", 4_000, cfg.seed);
    let addrs: Vec<Ip6> = observed.iter().collect();
    let grid = WindowGrid::compute(&addrs);
    println!("{}", render_window_ascii(&grid));
}

/// Fig. 6: entropy of the aggregate datasets (AS, AR, AC, AT) with
/// stratified 1K-per-/32 sampling, as §5.1. Only the profile and
/// segmentation stages run — no mining or BN training, which is
/// exactly what the staged pipeline is for.
pub fn figure6(cfg: &RunConfig) {
    println!("=== Figure 6: entropy of aggregate datasets ===\n");
    for id in ["AS", "AR", "AC", "AT"] {
        let spec = eip_netsim::dataset(id).unwrap();
        let population = spec.population(cfg.seed);
        let mut rng = eip_addr::set::SplitMix64::new(cfg.seed);
        let sampled = population.stratified_sample(1_000, &mut rng);
        let segmented = cfg
            .pipeline()
            .profile(sampled.iter())
            .expect("non-empty sample")
            .segment();
        println!(
            "--- {id}: {} ({} IPs sampled) ---",
            spec.description,
            sampled.len()
        );
        println!("{}", render_entropy_ascii(segmented.analysis(), 8));
    }
    println!("Expected shape (paper §5.1): AC/AT near 1.0 in the low 64 bits with a dip");
    println!("at bits 68-72 (u-bit); AR dips at bits 88-104 (EUI-64 fffe); AS lowest");
    println!("overall, rising toward bit 128.");
}

/// Figs. 7/9/10: per-network panels — entropy vs ACR plot, then the
/// BN browser conditioned as in the paper.
pub fn network_panel(id: &str, cfg: &RunConfig) {
    let (_, model) = quick_model(id, 20_000, cfg.seed);
    println!("=== {id}: entropy vs ACR ===\n");
    println!("{}", render_entropy_ascii(model.analysis(), 12));
    println!("segments:");
    for m in model.mined() {
        let (lo, hi) = m.segment.bit_range();
        println!(
            "  {} (bits {lo}-{hi}): {} values, top {}",
            m.segment.label,
            m.values.len(),
            m.values
                .first()
                .map(|v| format!("{} at {:.1}%", v.code, v.freq * 100.0))
                .unwrap_or_default()
        );
    }
    println!("\nBN edges: {:?}", bn_edges(&model));
    println!();
}

fn bn_edges(model: &entropy_ip::IpModel) -> Vec<String> {
    model
        .bn()
        .edges()
        .iter()
        .map(|&(p, c)| format!("{}->{}", model.bn().node(p).name, model.bn().node(c).name))
        .collect()
}

/// Fig. 7(b): S1's browser conditioned on B ∈ {08, 09}. Multi-value
/// evidence is a prior-weighted mixture of single-value posteriors.
pub fn figure7(cfg: &RunConfig) {
    network_panel("S1", cfg);
    let (_, model) = quick_model("S1", 20_000, cfg.seed);
    let b_idx = match model.segment_index("B") {
        Some(i) => i,
        None => {
            println!("(no segment B found)");
            return;
        }
    };
    let mined = &model.mined()[b_idx];
    let targets: Vec<usize> = mined
        .values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind.matches(0x08) || v.kind.matches(0x09))
        .map(|(i, _)| i)
        .collect();
    if targets.is_empty() {
        println!("(B has no 08/09 codes in this sample)");
        return;
    }
    println!("--- conditioned on B in {{08, 09}} (prior-weighted mixture) ---\n");
    let prior = model.posterior(&vec![]);
    let weights: Vec<f64> = targets.iter().map(|&t| prior[b_idx][t]).collect();
    let wsum: f64 = weights.iter().sum();
    let mut mixed: Vec<Vec<f64>> = prior.iter().map(|d| vec![0.0; d.len()]).collect();
    for (&t, &w) in targets.iter().zip(&weights) {
        let post = model.posterior(&vec![(b_idx, t)]);
        for (acc, p) in mixed.iter_mut().zip(&post) {
            for (a, &x) in acc.iter_mut().zip(p) {
                *a += x * w / wsum;
            }
        }
    }
    for (i, m) in model.mined().iter().enumerate() {
        println!("segment {}:", m.segment.label);
        for (sv, &p) in m.values.iter().zip(&mixed[i]) {
            if p >= 0.001 {
                println!("   {:<6} {:>6.1}%  {:?}", sv.code, p * 100.0, sv.kind);
            }
        }
    }
    println!("\nPaper's reading: constraining B to 08/09 collapses the variability of");
    println!("bits 56-116 — the majority of addresses in this variant are non-random.");
}

/// Fig. 9: router dataset R1.
pub fn figure9(cfg: &RunConfig) {
    network_panel("R1", cfg);
    let (_, model) = quick_model("R1", 20_000, cfg.seed);
    let browser = Browser::new(&model);
    println!("{}", render_browser(&browser.distributions(), 0.001));
    println!("Paper's reading: bits 28-64 discriminate prefixes; the IID is a string of");
    println!("zeros ending in 1 or 2 (point-to-point links).");
}

/// Fig. 10: client dataset C1 conditioned on the trailing-01 code.
pub fn figure10(cfg: &RunConfig) {
    network_panel("C1", cfg);
    let (_, model) = quick_model("C1", 24_000, cfg.seed);
    // Find the last segment and its 01 code.
    let mut browser = Browser::new(&model);
    let mut clicked = None;
    for m in model.mined().iter().rev() {
        if let Some(sv) = m.values.iter().find(|v| v.kind.matches(0x01)) {
            browser.select(&m.segment.label, &sv.code);
            clicked = Some((m.segment.label.clone(), sv.code.clone()));
            break;
        }
    }
    match clicked {
        Some((seg, code)) => {
            println!("--- conditioned on {seg} = {code} (the 47% Android pattern) ---\n");
            println!("{}", render_browser(&browser.distributions(), 0.001));
            println!("Paper's reading: conditioning on the trailing 01 makes the D segment a");
            println!("string of zeros — the vendor-specific IID pattern.");
        }
        None => println!("(no 01 code found)"),
    }
}

/// Fig. 8: brief entropy/ACR panels for S2-S5, R2-R5, C2-C5.
pub fn figure8(cfg: &RunConfig) {
    println!("=== Figure 8: brief entropy vs ACR panels ===\n");
    for id in [
        "S2", "S3", "S4", "S5", "R2", "R3", "R4", "R5", "C2", "C3", "C4", "C5",
    ] {
        let (_, model) = quick_model(id, 8_000, cfg.seed);
        println!("--- {id} (H_S = {:.1}) ---", model.analysis().total_entropy);
        println!("{}", render_entropy_ascii(model.analysis(), 6));
    }
}
