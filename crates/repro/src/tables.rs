//! Table regeneration (Tables 1–6 of the paper).

use eip_addr::set::SplitMix64;
use eip_bayes::sample_row;
use eip_netsim::{dataset, evaluate_scan, TemporalPool};
use entropy_ip::baseline::{encoded_dataset, generate_with, IndependentModel, MarkovModel};
use entropy_ip::ValueKind;

use crate::common::{generate_candidates, human, prefix_model, quick_model, workbench, RunConfig};

/// Table 1: the dataset census.
pub fn table1(cfg: &RunConfig) {
    println!("=== Table 1: datasets (paper population vs simulated) ===\n");
    println!(
        "{:<4} {:<8} {:>10} {:>12}  description",
        "ID", "category", "paper", "simulated"
    );
    for id in eip_netsim::ALL_DATASETS
        .iter()
        .chain(["AS", "AR", "AC"].iter())
    {
        let spec = dataset(id).unwrap();
        let pop = spec.population_sized(spec.default_population.min(20_000), cfg.seed);
        println!(
            "{:<4} {:<8} {:>10} {:>12}  {}",
            spec.id,
            format!("{:?}", spec.category),
            spec.paper_population,
            human(pop.len().max(spec.default_population.min(20_000))),
            spec.description
        );
    }
    println!("\n(simulated populations are scaled ~1:1000; see DESIGN.md)");
}

/// Table 2: P(zero-run segment | two upstream segments) — the
/// conditional dependency matrix behind Fig. 2.
pub fn table2(cfg: &RunConfig) {
    println!("=== Table 2: conditional probability of a dependent segment code ===\n");
    let (_, model) = quick_model("C1", 24_000, cfg.seed);
    // Target: the most-conditioned segment (paper probes J = 00000…,
    // which depends on C and H). Probe its most popular code.
    let Some(t_seg) = (0..model.bn().num_vars())
        .filter(|&i| !model.bn().node(i).parents.is_empty())
        .max_by_key(|&i| model.bn().node(i).parents.len())
    else {
        println!("(model learned no dependencies in this sample)");
        return;
    };
    let t_val = model.mined()[t_seg]
        .values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.freq.total_cmp(&b.1.freq))
        .map(|(i, _)| i)
        .unwrap();
    let t_label = model.mined()[t_seg].segment.label.clone();
    println!(
        "target: segment {t_label} = {} ({:?})\n",
        model.mined()[t_seg].values[t_val].code,
        model.mined()[t_seg].values[t_val].kind
    );
    // Conditions: the BN parents, topped up with preceding segments
    // (of cardinality > 1) to two.
    let mut conds: Vec<usize> = model.bn().node(t_seg).parents.clone();
    for i in (0..t_seg).rev() {
        if conds.len() >= 2 {
            break;
        }
        if !conds.contains(&i) && model.mined()[i].cardinality() > 1 {
            conds.push(i);
        }
    }
    if conds.is_empty() {
        println!("(segment {t_label} has no upstream segments)");
        return;
    }
    let c0 = conds[0];
    let c1 = conds.get(1).copied();
    let name = |i: usize| model.bn().node(i).name.clone();
    match c1 {
        Some(c1) => {
            println!(
                "P({t_label} | {} , {}):  rows = {}, cols = {}\n",
                name(c1),
                name(c0),
                name(c1),
                name(c0)
            );
            print!("{:>8} |", "");
            for j in 0..model.mined()[c0].cardinality() {
                print!(" {:>8}", model.mined()[c0].values[j].code);
            }
            println!();
            for i in 0..model.mined()[c1].cardinality() {
                print!("{:>8} |", model.mined()[c1].values[i].code);
                for j in 0..model.mined()[c0].cardinality() {
                    let p = eip_bayes::infer::conditional_probability(
                        model.bn(),
                        (t_seg, t_val),
                        &vec![(c1, i), (c0, j)],
                    );
                    match p {
                        Some(p) => print!(" {:>7.2}%", p * 100.0),
                        None => print!(" {:>8}", "-"),
                    }
                }
                println!();
            }
        }
        None => {
            println!("P({t_label} | {}):\n", name(c0));
            for j in 0..model.mined()[c0].cardinality() {
                let p = eip_bayes::infer::conditional_probability(
                    model.bn(),
                    (t_seg, t_val),
                    &vec![(c0, j)],
                )
                .unwrap_or(0.0);
                println!(
                    "  {} = {:>7.2}%",
                    model.mined()[c0].values[j].code,
                    p * 100.0
                );
            }
        }
    }
}

/// Table 3: the full mining dictionary for S1.
pub fn table3(cfg: &RunConfig) {
    println!("=== Table 3: segment mining results for dataset S1 ===\n");
    let (_, model) = quick_model("S1", 40_000, cfg.seed);
    println!(
        "{:<6} {:<30} {:>8}   segment (bits)",
        "Code", "Value", "Freq"
    );
    for m in model.mined() {
        let (lo, hi) = m.segment.bit_range();
        for sv in &m.values {
            let val = match sv.kind {
                ValueKind::Exact(v) => format!("{v:x}"),
                ValueKind::Range { lo, hi } => format!("{lo:x}-{hi:x}"),
            };
            let val = if val.len() > 30 {
                format!("{}…", &val[..29])
            } else {
                val
            };
            println!(
                "{:<6} {:<30} {:>7.2}%   {} ({lo}-{hi})",
                sv.code,
                val,
                sv.freq * 100.0,
                m.segment.label
            );
        }
    }
}

/// One row of Table 4.
pub struct Table4Row {
    /// Dataset id.
    pub id: String,
    /// Hits against the held-out test set.
    pub test: usize,
    /// Ping responses.
    pub ping: usize,
    /// Reverse-DNS hits.
    pub rdns: usize,
    /// Any-test hits.
    pub overall: usize,
    /// Success rate.
    pub rate: f64,
    /// New /64s discovered.
    pub new64: usize,
}

/// Runs the Table 4 protocol for one dataset id.
pub fn scan_one(id: &str, cfg: &RunConfig) -> Table4Row {
    let wb = workbench(id, cfg);
    let candidates = generate_candidates(
        &wb.model,
        &wb.train,
        cfg.candidates,
        cfg.seed ^ 0xf00d,
        cfg.jobs,
    );
    let outcome = evaluate_scan(&candidates, &wb.train, &wb.test, &wb.responder);
    Table4Row {
        id: id.to_string(),
        test: outcome.test_hits,
        ping: outcome.ping_hits,
        rdns: outcome.rdns_hits,
        overall: outcome.overall,
        rate: outcome.success_rate(),
        new64: outcome.new_slash64,
    }
}

/// Table 4: scanning results for S1-S5, R1-R5.
pub fn table4(cfg: &RunConfig) {
    println!(
        "=== Table 4: IPv6 scanning results (train {} / generate {}) ===\n",
        cfg.train, cfg.candidates
    );
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "Set", "Test set", "Ping", "rDNS", "Overall", "Rate", "New /64s"
    );
    let mut tot = (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut server_rates: Vec<(String, f64)> = Vec::new();
    for id in ["S1", "S2", "S3", "S4", "S5", "R1", "R2", "R3", "R4", "R5"] {
        let r = scan_one(id, cfg);
        if id.starts_with('S') {
            server_rates.push((r.id.clone(), r.rate));
        }
        println!(
            "{:<4} {:>9} {:>9} {:>9} {:>9} {:>7.2}% {:>9}",
            r.id,
            human(r.test),
            human(r.ping),
            human(r.rdns),
            human(r.overall),
            r.rate * 100.0,
            human(r.new64)
        );
        tot = (
            tot.0 + r.test,
            tot.1 + r.ping,
            tot.2 + r.rdns,
            tot.3 + r.overall,
            tot.4 + r.new64,
        );
    }
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "sum",
        human(tot.0),
        human(tot.1),
        human(tot.2),
        human(tot.3),
        "",
        human(tot.4)
    );
    // Report the shape this run actually produced, not a fixed claim.
    let rate = |id: &str| {
        server_rates
            .iter()
            .find(|(i, _)| i == id)
            .map(|&(_, r)| r)
            .unwrap_or(0.0)
    };
    let s3_best = server_rates.iter().all(|&(_, r)| r <= rate("S3"));
    if s3_best && rate("S1") < 0.01 {
        println!("\nShape matches the paper: S1 ~0% (pseudo-random IIDs); S3 the best server");
        println!("rate (one /96 worldwide, 43% in the paper); routers ~1-5%; most sets");
        println!("discover new /64s.");
    } else {
        println!("\nNOTE: this run deviates from the paper's shape (expected: S1 ~0% from");
        println!("pseudo-random IIDs, S3 the best server rate at 43%) — small training");
        println!("samples, probe loss, or non-default knobs can do that.");
    }
}

/// Table 5: success rate vs training-set size for S5, R1, C5.
pub fn table5(cfg: &RunConfig) {
    println!("=== Table 5: success rate vs training sample size ===\n");
    let sizes = [100usize, 1_000, 10_000, 100_000];
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>9}",
        "Set", "100", "1 K", "10 K", "100 K"
    );
    for id in ["S5", "R1", "C5"] {
        print!("{id:<4}");
        for &train in &sizes {
            let spec = dataset(id).unwrap();
            if train * 2 > spec.default_population {
                print!(" {:>9}", "-");
                continue;
            }
            let mut c = cfg.clone();
            c.train = train;
            // C5 is evaluated on prefixes (clients; §5.6), others on
            // full addresses.
            let rate = if id.starts_with('C') {
                predict_prefixes_rate(id, &c)
            } else {
                scan_one(id, &c).rate
            };
            print!(" {:>8.1}%", rate * 100.0);
        }
        println!();
    }
    println!("\nExpected shape (paper): larger training sets often do NOT help and can");
    println!("hurt — the model adheres to seen data instead of generalizing.");
}

/// §5.6 prefix prediction for one client dataset; returns the 7-day
/// success rate.
pub fn predict_prefixes_rate(id: &str, cfg: &RunConfig) -> f64 {
    let (day0_rate, _week) = predict_prefixes(id, cfg);
    day0_rate.1
}

/// Returns ((day-0 hits, 7-day rate), week hits) — see [`table6`].
pub fn predict_prefixes(id: &str, cfg: &RunConfig) -> ((usize, f64), usize) {
    let spec = dataset(id).unwrap();
    let pool = TemporalPool::new(spec.plan(), spec.default_population / 4, 0.7, cfg.seed ^ 7);
    let day0 = pool.day(0);
    let week = pool.window(0, 7);
    let mut rng = SplitMix64::new(cfg.seed);
    let (train, _) = day0.split_sample(cfg.train, &mut rng);
    let model = prefix_model(&train, cfg).expect("non-empty prefix training set");
    let candidates =
        generate_candidates(&model, &train, cfg.candidates, cfg.seed ^ 0xabc, cfg.jobs);
    let day0_hits = candidates.iter().filter(|&&p| day0.contains(p)).count();
    let week_hits = candidates.iter().filter(|&&p| week.contains(p)).count();
    let rate7 = if candidates.is_empty() {
        0.0
    } else {
        week_hits as f64 / candidates.len() as f64
    };
    ((day0_hits, rate7), week_hits)
}

/// Table 6: client /64-prefix prediction, day 0 vs the week.
pub fn table6(cfg: &RunConfig) {
    println!(
        "=== Table 6: /64 prefix prediction for clients (train {} prefixes) ===\n",
        cfg.train
    );
    println!(
        "{:<4} {:>10} {:>10} {:>10}",
        "Set", "day 0", "7 days", "rate(7d)"
    );
    let mut t0 = 0usize;
    let mut t7 = 0usize;
    for id in ["C1", "C2", "C3", "C4", "C5"] {
        let ((d0, rate7), week) = predict_prefixes(id, cfg);
        println!(
            "{:<4} {:>10} {:>10} {:>9.2}%",
            id,
            human(d0),
            human(week),
            rate7 * 100.0
        );
        t0 += d0;
        t7 += week;
    }
    println!("{:<4} {:>10} {:>10}", "sum", human(t0), human(t7));
    println!("\nExpected shape (paper): thousands of predicted /64s per network, rates");
    println!("~1-20%; the 7-day window catches at least as many as day 0.");
}

/// Ablation: BN vs independent vs Markov generation hit-rate.
pub fn ablation(cfg: &RunConfig) {
    println!("=== Ablation: model class (BN vs first-order Markov vs independent) ===\n");
    println!("{:<4} {:>9} {:>9} {:>9}", "Set", "BN", "Markov", "Indep");
    for id in ["S1", "S5", "R1", "R3"] {
        let wb = workbench(id, cfg);
        let data = encoded_dataset(&wb.model, &wb.train);
        let ind = IndependentModel::fit(&data);
        let mm = MarkovModel::fit(&data).expect("non-empty training data");
        let n = cfg.candidates.min(20_000);
        let budget = n * 8;
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(cfg.seed ^ 0x111);
        let bn_c = generate_with(
            &wb.model,
            |r| sample_row(wb.model.bn(), r),
            n,
            budget,
            &mut rng,
        );
        let mm_c = generate_with(&wb.model, |r| mm.sample_row(r), n, budget, &mut rng);
        let in_c = generate_with(&wb.model, |r| ind.sample_row(r), n, budget, &mut rng);
        let rate = |cands: &[eip_addr::Ip6]| {
            let o = evaluate_scan(cands, &wb.train, &wb.test, &wb.responder);
            o.success_rate() * 100.0
        };
        println!(
            "{:<4} {:>8.2}% {:>8.2}% {:>8.2}%",
            id,
            rate(&bn_c),
            rate(&mm_c),
            rate(&in_c)
        );
    }
    println!("\nExpected: BN ≥ Markov ≥ independent wherever non-adjacent dependencies");
    println!("exist (§4.5's argument for BNs over MMs and PTs).");
}
