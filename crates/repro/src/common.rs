//! Shared plumbing for the experiment harness, built on the staged
//! [`Pipeline`] API.

use eip_addr::set::SplitMix64;
use eip_addr::{AddressSet, Ip6};
use eip_netsim::{dataset, FaultConfig, Responder};
use entropy_ip::{Config, EipError, Generator, IpModel, Pipeline};

/// Harness-wide knobs, set from the command line.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Training sample size (paper: 1 000).
    pub train: usize,
    /// Candidates generated per network (paper: 1 000 000; default
    /// scaled down for quick runs).
    pub candidates: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Probe-loss fraction injected into the responder.
    pub probe_loss: f64,
    /// Worker threads for the scheduler-backed hot paths (synthesis,
    /// profiling, mining, generation, evaluation). Every path draws
    /// keyed per-index randomness ([`eip_exec::rng`]), so all output
    /// is byte-identical at **any** `jobs` value — only wall-clock
    /// changes.
    pub jobs: usize,
    /// Streaming-ingest chunk size in MiB for the `--full` ingest
    /// stage and `--corpus-out` sizing (clamped to at least 1).
    pub chunk_mb: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            train: 1_000,
            candidates: 100_000,
            seed: 20160317,
            probe_loss: 0.0,
            jobs: 1,
            chunk_mb: 4,
        }
    }
}

impl RunConfig {
    /// The pipeline configuration these knobs imply (full-width).
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(Config::default().with_parallelism(self.jobs))
    }

    /// The top-64-bit (prefix) pipeline.
    pub fn prefix_pipeline(&self) -> Pipeline {
        Pipeline::new(Config::top64().with_parallelism(self.jobs))
    }
}

/// Generates the evaluation candidates for one experiment: the keyed
/// batched generator ([`Generator::run_seeded`]), whose candidate
/// stream is a pure function of `(model, n, seed)` — byte-identical
/// at **every** `--jobs` value, including 1. The old two-regime split
/// (serial `StdRng` stream at `jobs == 1`, chunked batching above) is
/// gone: keyed per-attempt draws made the worker count invisible, so
/// all tables print identically at any `--jobs` (asserted by the
/// tier-1 determinism suite).
pub fn generate_candidates(
    model: &IpModel,
    exclude: &AddressSet,
    n: usize,
    seed: u64,
    jobs: usize,
) -> Vec<Ip6> {
    Generator::new(model)
        .excluding(exclude)
        .attempts_per_candidate(8)
        .parallelism(jobs)
        .run_seeded(n, seed)
        .candidates
}

/// Everything one scanning experiment needs for a dataset family.
pub struct Workbench {
    /// Training sample.
    pub train: AddressSet,
    /// Held-out remainder.
    pub test: AddressSet,
    /// The measurement oracle (knows observed + unobserved actives).
    pub responder: Responder,
    /// The trained model.
    pub model: IpModel,
}

/// Builds the full workbench for one dataset id.
///
/// The responder's ground truth is the observed population plus a
/// same-plan *unobserved* population half its size — scanning can
/// legitimately discover hosts nobody had in their dataset, which is
/// how the paper finds more "Ping" hits than "Test set" hits for some
/// networks.
pub fn workbench(id: &str, cfg: &RunConfig) -> Workbench {
    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    let observed = spec.population(cfg.seed);
    let mut split_rng = SplitMix64::new(cfg.seed ^ 0xbeef);
    let (train, test) = observed.split_sample(cfg.train, &mut split_rng);

    let unobserved = spec
        .plan()
        .generate_keyed(spec.default_population / 2, 0, cfg.seed ^ 0x5eed);
    let active = observed.union(&unobserved);
    let responder =
        Responder::new(active, spec.rdns_fraction, cfg.seed ^ 0xd15).with_faults(FaultConfig {
            probe_loss: cfg.probe_loss,
            echo_prefixes: vec![],
            seed: cfg.seed,
        });

    let model = cfg
        .pipeline()
        .run(train.iter())
        .expect("non-empty training set");
    Workbench {
        train,
        test,
        responder,
        model,
    }
}

/// Builds only observed population + trained model (for figures).
pub fn quick_model(id: &str, n: usize, seed: u64) -> (AddressSet, IpModel) {
    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    let observed = spec.population_sized(n, seed);
    let model = Pipeline::new(Config::default())
        .run(observed.iter())
        .expect("non-empty set");
    (observed, model)
}

/// Trains a top-64-bit (prefix) model.
pub fn prefix_model(prefixes: &AddressSet, cfg: &RunConfig) -> Result<IpModel, EipError> {
    cfg.prefix_pipeline().run(prefixes.iter())
}

/// Human formatting: 12345 → "12.3 K", matching the paper's table
/// style.
pub fn human(n: usize) -> String {
    let n = n as f64;
    if n >= 1e9 {
        format!("{:.1} G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1} M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1} K", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}
