//! Shared plumbing for the experiment harness, built on the staged
//! [`Pipeline`] API.

use eip_addr::set::SplitMix64;
use eip_addr::{AddressSet, Ip6};
use eip_netsim::{dataset, FaultConfig, Responder};
use entropy_ip::{Config, EipError, Generator, IpModel, Pipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Harness-wide knobs, set from the command line.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Training sample size (paper: 1 000).
    pub train: usize,
    /// Candidates generated per network (paper: 1 000 000; default
    /// scaled down for quick runs).
    pub candidates: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Probe-loss fraction injected into the responder.
    pub probe_loss: f64,
    /// Worker threads for the scheduler-backed hot paths (profiling,
    /// mining, and — at `jobs > 1` — batched generation). Results
    /// are identical at any `jobs > 1` setting; see
    /// [`generate_candidates`] for the one-time stream switch between
    /// the serial sampler and the batched scheduler.
    pub jobs: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            train: 1_000,
            candidates: 100_000,
            seed: 20160317,
            probe_loss: 0.0,
            jobs: 1,
        }
    }
}

impl RunConfig {
    /// The pipeline configuration these knobs imply (full-width).
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(Config::default().with_parallelism(self.jobs))
    }

    /// The top-64-bit (prefix) pipeline.
    pub fn prefix_pipeline(&self) -> Pipeline {
        Pipeline::new(Config::top64().with_parallelism(self.jobs))
    }
}

/// Generates the evaluation candidates for one experiment.
///
/// At `jobs == 1` this is the legacy serial sampler (one `StdRng`
/// stream), which keeps the default `repro` table output byte-stable
/// across PRs. At `jobs > 1` generation runs the deterministic
/// batched scheduler ([`Generator::run_seeded`]), whose output is a
/// *different* (but equally valid) candidate stream that is identical
/// for every `jobs > 1` setting — so `--jobs 2` and `--jobs 8` print
/// byte-identical tables (asserted by the binary smoke test).
pub fn generate_candidates(
    model: &IpModel,
    exclude: &AddressSet,
    n: usize,
    seed: u64,
    jobs: usize,
) -> Vec<Ip6> {
    let generator = Generator::new(model)
        .excluding(exclude)
        .attempts_per_candidate(8);
    if jobs > 1 {
        generator.parallelism(jobs).run_seeded(n, seed).candidates
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        generator.run(n, &mut rng).candidates
    }
}

/// Everything one scanning experiment needs for a dataset family.
pub struct Workbench {
    /// Training sample.
    pub train: AddressSet,
    /// Held-out remainder.
    pub test: AddressSet,
    /// The measurement oracle (knows observed + unobserved actives).
    pub responder: Responder,
    /// The trained model.
    pub model: IpModel,
}

/// Builds the full workbench for one dataset id.
///
/// The responder's ground truth is the observed population plus a
/// same-plan *unobserved* population half its size — scanning can
/// legitimately discover hosts nobody had in their dataset, which is
/// how the paper finds more "Ping" hits than "Test set" hits for some
/// networks.
pub fn workbench(id: &str, cfg: &RunConfig) -> Workbench {
    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    let observed = spec.population(cfg.seed);
    let mut split_rng = SplitMix64::new(cfg.seed ^ 0xbeef);
    let (train, test) = observed.split_sample(cfg.train, &mut split_rng);

    let mut extra_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
    let unobserved = spec
        .plan()
        .generate(spec.default_population / 2, &mut extra_rng);
    let active = observed.union(&unobserved);
    let responder =
        Responder::new(active, spec.rdns_fraction, cfg.seed ^ 0xd15).with_faults(FaultConfig {
            probe_loss: cfg.probe_loss,
            echo_prefixes: vec![],
            seed: cfg.seed,
        });

    let model = cfg
        .pipeline()
        .run(train.iter())
        .expect("non-empty training set");
    Workbench {
        train,
        test,
        responder,
        model,
    }
}

/// Builds only observed population + trained model (for figures).
pub fn quick_model(id: &str, n: usize, seed: u64) -> (AddressSet, IpModel) {
    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    let observed = spec.population_sized(n, seed);
    let model = Pipeline::new(Config::default())
        .run(observed.iter())
        .expect("non-empty set");
    (observed, model)
}

/// Trains a top-64-bit (prefix) model.
pub fn prefix_model(prefixes: &AddressSet, cfg: &RunConfig) -> Result<IpModel, EipError> {
    cfg.prefix_pipeline().run(prefixes.iter())
}

/// Human formatting: 12345 → "12.3 K", matching the paper's table
/// style.
pub fn human(n: usize) -> String {
    let n = n as f64;
    if n >= 1e9 {
        format!("{:.1} G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1} M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1} K", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}
