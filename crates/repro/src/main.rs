//! `repro` — regenerates every table and figure of *Entropy/IP:
//! Uncovering Structure in IPv6 Addresses* (IMC 2016) from the
//! simulated substrate.
//!
//! ```text
//! repro --all                 # everything (takes a few minutes)
//! repro --table 4             # one table (1..=6)
//! repro --figure 7            # one figure (1..=10)
//! repro --ablation            # BN vs Markov vs independent
//! repro --table 4 --full      # paper-scale 1M candidates
//! repro --full                # timed paper-scale run (1M in / 1M out),
//!                             # stage timings -> crates/bench/BENCH_full.json
//! repro --full --jobs 8 --bench-out /tmp/full.json
//! repro --fleet               # all 16 Table-1 networks concurrently on one
//!                             # shared work-stealing pool, models persisted
//!                             # into a ModelStore dir, timings ->
//!                             # crates/bench/BENCH_fleet.json
//! repro --fleet --pool 8 --store-out /tmp/models --bench-out /tmp/fleet.json
//! repro --candidates 50000    # custom candidate count
//! repro --train 1000          # custom training size
//! repro --seed 42             # reproducibility
//! repro --all --jobs 8        # sharded profiling/mining/generation (same output
//!                             # at any jobs > 1)
//! repro --corpus-out /tmp/corpus.txt --candidates 5000000
//!                             # write a duplicate-heavy synthetic address
//!                             # corpus for the ingestion smoke test
//! ```

mod common;
mod corpus;
mod figures;
mod fleet;
mod fullrun;
mod tables;

use common::RunConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }
    let mut cfg = RunConfig::default();
    let mut table: Option<u32> = None;
    let mut figure: Option<u32> = None;
    let mut all = false;
    let mut ablation = false;
    let mut full = false;
    let mut fleet = false;
    let mut bench_out: Option<String> = None;
    let mut corpus_out: Option<String> = None;
    let mut candidates: Option<usize> = None;
    let mut store_out: Option<String> = None;
    let mut pool_size: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--ablation" => ablation = true,
            "--full" => full = true,
            "--fleet" => fleet = true,
            "--store-out" => {
                i += 1;
                store_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--store-out needs a path")),
                );
            }
            "--pool" => {
                i += 1;
                pool_size = Some((parse_num(&args, i, "--pool") as usize).max(1));
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--bench-out needs a path")),
                );
            }
            "--corpus-out" => {
                i += 1;
                corpus_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--corpus-out needs a path")),
                );
            }
            "--chunk-mb" => {
                i += 1;
                cfg.chunk_mb = (parse_num(&args, i, "--chunk-mb") as usize).max(1);
            }
            "--table" => {
                i += 1;
                table = Some(parse_num(&args, i, "--table"));
            }
            "--figure" => {
                i += 1;
                figure = Some(parse_num(&args, i, "--figure"));
            }
            "--candidates" => {
                i += 1;
                candidates = Some(parse_num(&args, i, "--candidates") as usize);
            }
            "--train" => {
                i += 1;
                cfg.train = parse_num(&args, i, "--train") as usize;
            }
            "--jobs" => {
                i += 1;
                cfg.jobs = (parse_num(&args, i, "--jobs") as usize).max(1);
            }
            "--seed" => {
                i += 1;
                cfg.seed = u64::from(parse_num(&args, i, "--seed"));
            }
            "--probe-loss" => {
                i += 1;
                cfg.probe_loss = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| die("--probe-loss needs a float"));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    // `--full` means paper scale unless an explicit `--candidates`
    // overrides it — in either flag order.
    // `--full` and `--fleet` mean paper scale unless an explicit
    // `--candidates` overrides it — in either flag order.
    if let Some(n) = candidates {
        cfg.candidates = n;
    } else if full || fleet {
        cfg.candidates = 1_000_000;
    }
    // `--bench-out` only makes sense for the timed runs (`--full`,
    // `--fleet`); reject it elsewhere instead of silently writing
    // nothing. Likewise the fleet-only flags.
    let timed_run = full && !all && table.is_none() && figure.is_none() && !ablation;
    if bench_out.is_some() && !timed_run && !fleet {
        die("--bench-out only applies to the --full timed run or --fleet");
    }
    if (store_out.is_some() || pool_size.is_some()) && !fleet {
        die("--store-out/--pool only apply to --fleet");
    }

    // `--fleet` is its own mode: the whole Table-1 network fleet,
    // concurrently, on one shared work-stealing pool.
    if fleet {
        if full || all || table.is_some() || figure.is_some() || ablation {
            die("--fleet runs alone (it already covers every network)");
        }
        fleet::fleet_run(
            &cfg,
            &fleet::FleetOptions {
                store_out,
                bench_out,
                pool_size,
            },
        );
        return;
    }

    // `--corpus-out` is its own mode: synthesize a duplicate-heavy
    // address corpus (lines = --candidates, ~5 lines per distinct
    // address) for the ingestion smoke test, then exit.
    if let Some(path) = corpus_out {
        write_corpus(&path, &cfg);
        return;
    }

    if all {
        for t in 1..=6 {
            run_table(t, &cfg);
            println!();
        }
        for f in 1..=10 {
            run_figure(f, &cfg);
            println!();
        }
        tables::ablation(&cfg);
        return;
    }
    if let Some(t) = table {
        run_table(t, &cfg);
    }
    if let Some(f) = figure {
        run_figure(f, &cfg);
    }
    if ablation {
        tables::ablation(&cfg);
    }
    if timed_run {
        // Bare `--full`: the timed paper-scale workload.
        fullrun::full_run(&cfg, bench_out.as_deref());
    } else if table.is_none() && figure.is_none() && !ablation {
        usage();
    }
}

fn run_table(t: u32, cfg: &RunConfig) {
    match t {
        1 => tables::table1(cfg),
        2 => tables::table2(cfg),
        3 => tables::table3(cfg),
        4 => tables::table4(cfg),
        5 => tables::table5(cfg),
        6 => tables::table6(cfg),
        _ => die("tables are 1..=6"),
    }
}

fn run_figure(f: u32, cfg: &RunConfig) {
    match f {
        1 => figures::figure1(cfg),
        2 => figures::figure2(cfg),
        3 => figures::figure3(),
        4 => figures::figure4(cfg),
        5 => figures::figure5(cfg),
        6 => figures::figure6(cfg),
        7 => figures::figure7(cfg),
        8 => figures::figure8(cfg),
        9 => figures::figure9(cfg),
        10 => figures::figure10(cfg),
        _ => die("figures are 1..=10"),
    }
}

/// `--corpus-out`: writes `cfg.candidates` address lines over an S1
/// population of `candidates / 5` distinct addresses — every distinct
/// address appears, the rest are keyed-random duplicates, ~2%
/// comment/blank lines mixed in. Deterministic in `--seed`.
fn write_corpus(path: &str, cfg: &RunConfig) {
    let lines = cfg.candidates.max(1) as u64;
    let distinct = (cfg.candidates / 5).max(1);
    let spec = eip_netsim::dataset("S1").expect("S1 in catalog");
    let pop = spec.population_sized(distinct, cfg.seed);
    match corpus::write_corpus(path, &pop, lines, cfg.seed ^ 0xc0de) {
        Ok(bytes) => println!(
            "corpus written to {path}: {lines} address lines, {} distinct, {bytes} bytes",
            pop.len()
        ),
        Err(e) => die(&format!("could not write {path}: {e}")),
    }
}

fn parse_num(args: &[String], i: usize, flag: &str) -> u32 {
    args.get(i)
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn usage() {
    println!(
        "repro — regenerate the tables and figures of Entropy/IP (IMC 2016)\n\n\
         usage: repro [--all] [--table N] [--figure N] [--ablation]\n\
                      [--full] [--fleet] [--candidates N] [--train N] [--seed N]\n\
                      [--probe-loss F] [--jobs N] [--pool N] [--chunk-mb N]\n\
                      [--bench-out PATH] [--store-out PATH] [--corpus-out PATH]\n\n\
         tables:  1 datasets   2 conditional probs   3 S1 mining\n\
                  4 scanning   5 training-size sweep 6 prefix prediction\n\
         figures: 1 UI        2 BN graph   3 addresses  4 histogram  5 windowing\n\
                  6 aggregates 7 S1 panel  8 small multiples  9 R1 panel  10 C1 panel\n\n\
         bare --full runs the timed paper-scale workload (1M addresses in,\n\
         1M candidates out) and records per-stage wall-clock to\n\
         crates/bench/BENCH_full.json (override with --bench-out); its ingest\n\
         stage streams a synthetic corpus in --chunk-mb MiB chunks\n\n\
         --fleet runs all 16 Table-1 networks end-to-end concurrently on one\n\
         shared work-stealing pool (--pool workers, default: all cores; --jobs\n\
         still fixes the deterministic shard geometry), persists every model\n\
         into --store-out (default target/fleet_models) for `eip serve`, checks\n\
         each network byte-identical to a solo serial run, and records wall-clock\n\
         vs the sequential sum in crates/bench/BENCH_fleet.json\n\n\
         --corpus-out PATH writes a duplicate-heavy synthetic address corpus\n\
         (--candidates lines, ~1/5 distinct) for the ingestion smoke test"
    );
}
