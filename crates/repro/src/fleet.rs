//! Fleet-scale concurrent sweeps: `repro --fleet`.
//!
//! The paper's Table 1 evaluates sixteen network datasets; §5.5 runs
//! each at one million addresses in and one million candidates out.
//! This module runs that entire fleet under one command: all sixteen
//! networks execute their full staged pipeline — synthesis, streaming
//! ingest, profiling, segmentation, mining, BN training, generation,
//! evaluation — **concurrently**, as sixteen jobs submitting shard
//! tasks to one shared work-stealing pool
//! ([`eip_exec::pool::StealPool`]), and every trained model is
//! persisted into a single [`ModelStore`] directory that `eip serve`
//! can serve as-is.
//!
//! Determinism is the headline invariant: the shared pool is an
//! execution venue, not an output parameter. Shard geometry is keyed
//! by `--jobs` and every hot path draws counter-based per-index
//! randomness, so each network's model and candidate stream are
//! byte-identical to a solo serial run. The fleet does not take this
//! on faith — after the concurrent phase it re-runs every network
//! solo (no pool, same `--jobs`) as a sequential baseline and asserts
//! the model export and a candidate-stream digest match byte for
//! byte. The baseline doubles as the honest timing reference: the
//! summary and `crates/bench/BENCH_fleet.json` record concurrent
//! fleet wall-clock against the sum of the sixteen solo runs
//! (guarded in CI by `tools/bench_guard.sh` under
//! `BENCH_FLEET_MARGIN`).

use std::sync::Arc;
use std::time::Instant;

use eip_exec::pool::StealPool;
use eip_netsim::{dataset, population_adherence, Adherence, ALL_DATASETS};
use eip_serve::ModelStore;
use entropy_ip::{store, Config, Generator, IngestOptions, IpModel, Pipeline};

use crate::common::{human, RunConfig};
use crate::corpus::CorpusReader;
use crate::fullrun::StageTimer;

/// Fleet-mode knobs, set from the command line.
pub struct FleetOptions {
    /// Model-store directory (default: `target/fleet_models` under
    /// the workspace root).
    pub store_out: Option<String>,
    /// Timings JSON path (default: `crates/bench/BENCH_fleet.json`).
    pub bench_out: Option<String>,
    /// Shared-pool worker count, which also bounds how many fleet
    /// jobs run at once (default: the machine's available
    /// parallelism). Speed-only: any value yields identical models.
    pub pool_size: Option<usize>,
}

/// One network's completed run: timings plus the two byte-level
/// identity witnesses (model export, candidate digest).
struct NetworkRun {
    id: &'static str,
    stages: Vec<(&'static str, f64)>,
    total: f64,
    model: Arc<IpModel>,
    export: String,
    digest: u64,
    adherence: Adherence,
    candidates: usize,
}

/// Runs the whole Table-1 fleet concurrently on a shared pool,
/// persists all sixteen models, re-runs the fleet solo-serial as the
/// timing + determinism baseline, and writes `BENCH_fleet.json`.
pub fn fleet_run(cfg: &RunConfig, opts: &FleetOptions) {
    let n = cfg.candidates;
    let pool_size = opts.pool_size.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    let store_dir = opts.store_out.clone().unwrap_or_else(default_store_out);
    std::fs::create_dir_all(&store_dir)
        .unwrap_or_else(|e| panic!("cannot create model store dir {store_dir}: {e}"));
    let fleet_store =
        ModelStore::open(&store_dir).unwrap_or_else(|e| panic!("cannot open {store_dir}: {e}"));

    println!(
        "=== Fleet run: {} networks × {} addresses in / {} candidates out, \
         jobs {} (shard geometry), pool {} (workers) ===\n",
        ALL_DATASETS.len(),
        human(n),
        human(n),
        cfg.jobs,
        pool_size
    );

    // Phase 1: the concurrent fleet. One job thread per network, all
    // submitting shard tasks to the one shared pool; each job
    // persists its model into the shared store as it finishes.
    //
    // Admission control: at most `pool_size` jobs execute at once.
    // The jobs are CPU-bound, so running more of them than the pool
    // has workers buys no throughput — it only evicts each other's
    // cache-hot working sets on every context switch (measured ~1.6×
    // the sequential sum on a single-CPU host with all 16 unleashed).
    // All sixteen jobs are still in flight under the one command and
    // share the one pool; the gate only bounds how many are *running*.
    let pool = Arc::new(StealPool::new(pool_size));
    let gate = Arc::new((std::sync::Mutex::new(0usize), std::sync::Condvar::new()));
    let fleet_start = Instant::now();
    let concurrent: Vec<NetworkRun> = std::thread::scope(|s| {
        let handles: Vec<_> = ALL_DATASETS
            .iter()
            .map(|id| {
                let pool = Arc::clone(&pool);
                let store = fleet_store.clone();
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    let (active, turnstile) = &*gate;
                    {
                        let mut running = active.lock().expect("fleet gate");
                        while *running >= pool_size {
                            running = turnstile.wait(running).expect("fleet gate");
                        }
                        *running += 1;
                    }
                    let run = run_network(id, cfg, n, Some(pool));
                    let fp = store::fingerprint(&format!(
                        "fleet dataset={id} n={} seed={} jobs={}",
                        cfg.candidates, cfg.seed, cfg.jobs
                    ));
                    store
                        .save(id, &run.model, fp)
                        .unwrap_or_else(|e| panic!("persist {id}: {e}"));
                    *active.lock().expect("fleet gate") -= 1;
                    turnstile.notify_one();
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet job panicked"))
            .collect()
    });
    let fleet_wall = fleet_start.elapsed().as_secs_f64();
    let stats = pool.stats();
    drop(pool);

    let listed = fleet_store.list().expect("list model store");
    assert_eq!(
        listed.len(),
        ALL_DATASETS.len(),
        "model store should hold one model per network, found {listed:?}"
    );
    println!(
        "concurrent fleet: {fleet_wall:.3} s wall — {} models in {store_dir} \
         (pool: {} shard tasks, {} stolen, {} caller-ran)\n",
        listed.len(),
        stats.executed + stats.caller_ran,
        stats.stolen,
        stats.caller_ran
    );

    // Phase 2: the solo-serial baseline. Every network again, no
    // pool, one at a time — the honest sequential-sum reference and
    // the paper-scale determinism oracle in one pass.
    let mut serial: Vec<NetworkRun> = Vec::with_capacity(ALL_DATASETS.len());
    let serial_start = Instant::now();
    for id in ALL_DATASETS {
        serial.push(run_network(id, cfg, n, None));
    }
    let serial_sum = serial_start.elapsed().as_secs_f64();

    println!(
        "{:<4} {:>12} {:>12}   identity",
        "net", "fleet (s)", "solo (s)"
    );
    for (c, s) in concurrent.iter().zip(&serial) {
        assert_eq!(c.id, s.id);
        assert!(
            c.export == s.export && c.digest == s.digest,
            "{}: concurrent fleet output diverged from the solo serial run",
            c.id
        );
        println!(
            "{:<4} {:>12.3} {:>12.3}   model+candidates byte-identical",
            c.id, c.total, s.total
        );
    }
    let speedup = serial_sum / fleet_wall.max(1e-9);
    println!(
        "\nfleet wall {fleet_wall:.3} s   sequential sum {serial_sum:.3} s   speedup {speedup:.2}x"
    );
    if pool_size == 1 {
        println!(
            "(single-worker pool: the admission gate pipelines the fleet one job at \
             a time — the guard checks bounded overhead, not speedup)"
        );
    }

    let json = render_fleet_json(
        cfg,
        pool_size,
        &concurrent,
        &serial,
        fleet_wall,
        serial_sum,
        &stats,
        &store_dir,
    );
    let path = opts.bench_out.clone().unwrap_or_else(default_bench_out);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nfleet timings written to {path}"),
        Err(e) => eprintln!("\nwarning: could not write {path}: {e}"),
    }
}

/// One network, end to end. `pool: Some` → fleet mode (shared
/// scheduler, shard tasks on the pool); `None` → the solo serial
/// oracle. Both use the same `--jobs` shard geometry, so the outputs
/// must be byte-identical — the caller asserts it.
fn run_network(
    id: &'static str,
    cfg: &RunConfig,
    n: usize,
    pool: Option<Arc<StealPool>>,
) -> NetworkRun {
    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    let mut config = Config::default().with_parallelism(cfg.jobs);
    if let Some(pool) = &pool {
        config = config.with_pool(Arc::clone(pool));
    }
    let exec = config.scheduler();
    let pipeline = Pipeline::new(config);
    let mut timer = StageTimer::quiet();
    let seed = cfg.seed ^ store::fingerprint(id);

    let population = timer.stage("synthesize", || spec.population_sized_exec(n, seed, &exec));
    // Streaming ingest of a duplicate-heavy synthetic corpus, checked
    // bit-for-bit against the in-memory profile — same re-verification
    // the `--full` run does, now per network under fleet concurrency.
    let corpus_lines = n as u64 + n as u64 / 4;
    let ingested = timer.stage("ingest", || {
        let reader = CorpusReader::new(&population, corpus_lines, seed ^ 0xc0de);
        pipeline
            .profile_reader_streaming(reader, &IngestOptions::chunk_mib(cfg.chunk_mb.max(1)))
            .unwrap_or_else(|e| panic!("{id}: corpus ingest: {e}"))
            .0
    });
    let profiled = timer.stage("profile", || {
        pipeline
            .profile(population.iter())
            .unwrap_or_else(|e| panic!("{id}: profile: {e}"))
    });
    assert!(
        ingested.addresses() == profiled.addresses()
            && ingested.entropy() == profiled.entropy()
            && ingested.acr() == profiled.acr(),
        "{id}: streaming ingest diverged from the in-memory profile"
    );
    let segmented = timer.stage("segment", || profiled.segment());
    let mined = timer.stage("mine", || segmented.mine());
    let model = timer.stage("train", || {
        Arc::new(
            mined
                .train()
                .unwrap_or_else(|e| panic!("{id}: train: {e}"))
                .into_model(),
        )
    });
    let report = timer.stage("generate", || {
        Generator::shared(Arc::clone(&model))
            .with_scheduler(exec.clone())
            .attempts_per_candidate(8)
            .run_seeded(n, seed ^ 0xf001)
    });
    let adherence = timer.stage("evaluate", || {
        population_adherence(&report.candidates, &population, &exec)
    });
    // Concentrated plans (R4 and friends) can exhaust the 8× attempt
    // budget on duplicates before filling a 1M batch — the paper's
    // generator has the same property — so the batch may come up
    // short, but never empty.
    assert!(
        !report.candidates.is_empty(),
        "{id}: generator produced no candidates"
    );
    // Tracked quality assertion at paper scale only: diverse
    // aggregate plans (AT) can legitimately score zero /64 hits on
    // toy-sized smoke batches, but at 100K+ a trained model that hits
    // nothing means generation or evaluation regressed.
    assert!(
        n < 100_000 || adherence.hits > 0 || adherence.slash64_hits > 0,
        "{id}: model aims at no population address or /64"
    );

    let export = entropy_ip::profile::export(&model);
    let mut digest = eip_exec::rng::mix(seed, 0x0066_6c65_6574, 0); // "fleet"
    for ip in &report.candidates {
        digest = eip_exec::rng::mix(digest, (ip.0 >> 64) as u64, ip.0 as u64);
    }
    NetworkRun {
        id,
        total: timer.total(),
        stages: timer.stages().to_vec(),
        model,
        export,
        digest,
        adherence,
        candidates: report.candidates.len(),
    }
}

/// Default model-store directory: `target/fleet_models` under the
/// workspace root (artifacts, not sources — kept out of the tree).
fn default_store_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/fleet_models").to_string()
}

/// Default timings path: the bench crate's `BENCH_fleet.json`.
fn default_bench_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../bench/BENCH_fleet.json").to_string()
}

#[allow(clippy::too_many_arguments)]
fn render_fleet_json(
    cfg: &RunConfig,
    pool_size: usize,
    concurrent: &[NetworkRun],
    serial: &[NetworkRun],
    fleet_wall: f64,
    serial_sum: f64,
    stats: &eip_exec::pool::PoolStats,
    store_dir: &str,
) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"Fleet-scale concurrent sweep (`repro --fleet`): all 16 \
         Table-1 networks end-to-end on one shared work-stealing pool, vs the sum \
         of 16 solo serial runs. Models and candidate streams are asserted \
         byte-identical between the two phases; only the timings vary.\",\n",
    );
    out.push_str(&format!("  \"unix_time\": {unix_time},\n"));
    out.push_str("  \"unit\": \"seconds\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"networks\": {}, \"addresses\": {}, \"candidates\": {}, \"seed\": {}, \"jobs\": {}, \"pool_workers\": {}, \"hardware_threads\": {} }},\n",
        concurrent.len(),
        cfg.candidates,
        cfg.candidates,
        cfg.seed,
        cfg.jobs,
        pool_size,
        hardware
    ));
    out.push_str(&format!("  \"store_dir\": \"{store_dir}\",\n"));
    out.push_str("  \"networks\": {\n");
    let last = concurrent.len().saturating_sub(1);
    for (i, (c, s)) in concurrent.iter().zip(serial).enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"fleet\": {:.6}, \"solo\": {:.6}, \"candidates\": {}, \"slash64_hits\": {}, \"stages\": {{",
            c.id, c.total, s.total, c.candidates, c.adherence.slash64_hits
        ));
        let slast = c.stages.len().saturating_sub(1);
        for (j, (name, secs)) in c.stages.iter().enumerate() {
            out.push_str(&format!(
                " \"{name}\": {secs:.6}{}",
                if j == slast { " " } else { "," }
            ));
        }
        out.push_str(&format!("}} }}{}\n", if i == last { "" } else { "," }));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"pool\": {{ \"jobs\": {}, \"executed\": {}, \"stolen\": {}, \"caller_ran\": {} }},\n",
        stats.jobs, stats.executed, stats.stolen, stats.caller_ran
    ));
    out.push_str(&format!("  \"fleet_wall\": {fleet_wall:.6},\n"));
    out.push_str(&format!("  \"sequential_sum\": {serial_sum:.6},\n"));
    out.push_str(&format!(
        "  \"speedup\": {:.4},\n",
        serial_sum / fleet_wall.max(1e-9)
    ));
    out.push_str(
        "  \"determinism\": \"all networks byte-identical between fleet and solo phases\"\n",
    );
    out.push_str("}\n");
    out
}
