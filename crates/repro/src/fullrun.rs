//! The timed paper-scale run: `repro --full` with no table/figure
//! selector.
//!
//! Entropy/IP's native workload is millions of addresses in and one
//! million candidates out per network (§5.5); the regular tables run
//! at ~1:1000 of that so they finish in seconds. This module makes
//! the native scale a first-class, *timed* workload: it drives every
//! pipeline stage — synthesis, sharded profiling, segmentation, the
//! sharded mining engine, BN training on the full encoding, batched
//! generation, and evaluation — over an S1 population of
//! [`RunConfig::candidates`] addresses (1 000 000 under `--full`),
//! prints the per-stage wall-clock as it goes, and records the
//! timings as JSON (default `crates/bench/BENCH_full.json`, override
//! with `--bench-out`).
//!
//! The run is deterministic: the population, the model, and the
//! candidate stream are pure functions of the seed (the batched
//! generator is worker-count independent), so only the timings differ
//! between machines or `--jobs` settings.

use std::time::Instant;

use eip_exec::Scheduler;
use eip_netsim::{dataset, population_adherence};
use entropy_ip::{Generator, IngestOptions, IngestReport};

use crate::common::{human, RunConfig};
use crate::corpus::CorpusReader;

/// Wall-clock stage accounting: named stages, timed as they run,
/// printed live and serialized to JSON at the end.
pub struct StageTimer {
    stages: Vec<(&'static str, f64)>,
    verbose: bool,
}

impl StageTimer {
    /// An empty timer that prints each stage as it completes.
    pub fn new() -> Self {
        StageTimer {
            stages: Vec::new(),
            verbose: true,
        }
    }

    /// An empty timer that only records — used by the fleet driver,
    /// where 16 concurrent jobs printing per-stage lines would
    /// interleave into noise; the summary prints once at the end.
    pub fn quiet() -> Self {
        StageTimer {
            stages: Vec::new(),
            verbose: false,
        }
    }

    /// Times one stage, printing its wall-clock when it completes
    /// (unless built with [`StageTimer::quiet`]).
    pub fn stage<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let secs = start.elapsed().as_secs_f64();
        if self.verbose {
            println!("  {name:<12} {secs:>9.3} s");
        }
        self.stages.push((name, secs));
        out
    }

    /// Total wall-clock across all recorded stages.
    pub fn total(&self) -> f64 {
        self.stages.iter().map(|&(_, s)| s).sum()
    }

    /// The recorded `(stage, seconds)` pairs, in execution order.
    pub fn stages(&self) -> &[(&'static str, f64)] {
        &self.stages
    }
}

impl Default for StageTimer {
    fn default() -> Self {
        StageTimer::new()
    }
}

/// Runs the timed paper-scale workload and writes the stage timings
/// to `bench_out` (or the in-repo `crates/bench/BENCH_full.json`).
pub fn full_run(cfg: &RunConfig, bench_out: Option<&str>) {
    let n = cfg.candidates;
    println!(
        "=== Paper-scale timed run: S1, {} addresses in, {} candidates out, jobs {} ===\n",
        human(n),
        human(n),
        cfg.jobs
    );
    let spec = dataset("S1").expect("S1 in catalog");
    let mut timer = StageTimer::new();

    let population = timer.stage("synthesize", || {
        spec.population_sized_jobs(n, cfg.seed, cfg.jobs)
    });
    let pipeline = cfg.pipeline();
    // Ingest: stream a synthetic on-the-fly corpus (25% duplicate
    // lines, mixed colon/hex32 presentation, comments) through the
    // bounded-memory chunked engine. The resulting profile must match
    // the in-memory one bit for bit — asserted below — so this both
    // times stage 1 at paper scale and re-verifies the engine on
    // every full run.
    let corpus_lines = n as u64 + n as u64 / 4;
    let (ingested, ingest) = timer.stage("ingest", || {
        let reader = CorpusReader::new(&population, corpus_lines, cfg.seed ^ 0xc0de);
        pipeline
            .profile_reader_streaming(reader, &IngestOptions::chunk_mib(cfg.chunk_mb.max(1)))
            .expect("corpus ingest")
    });
    let profiled = timer.stage("profile", || {
        pipeline
            .profile(population.iter())
            .expect("non-empty population")
    });
    assert!(
        ingested.addresses() == profiled.addresses()
            && ingested.entropy() == profiled.entropy()
            && ingested.acr() == profiled.acr(),
        "streaming ingest diverged from the in-memory profile"
    );
    println!("    ({})", ingest.summary());
    let segmented = timer.stage("segment", || profiled.segment());
    let mined = timer.stage("mine", || segmented.mine());
    let model = timer.stage("train", || {
        mined.train().expect("encodable population").into_model()
    });
    let report = timer.stage("generate", || {
        Generator::new(&model)
            .parallelism(cfg.jobs)
            .attempts_per_candidate(8)
            .run_seeded(n, cfg.seed ^ 0xf001)
    });
    // In-sample adherence: the model was trained on the whole
    // population, so the share of candidates that land back inside it
    // measures how sharply the learned structure concentrates on the
    // real addressing plan; the rest are structure-consistent *new*
    // targets, counted as fresh /64s like the paper's "New /64s".
    // Sorted-key merge-join, sharded on the scheduler — same numbers
    // at any --jobs.
    let adherence = timer.stage("evaluate", || {
        population_adherence(&report.candidates, &population, &Scheduler::new(cfg.jobs))
    });
    let (hits, hits64, new64) = (
        adherence.hits,
        adherence.slash64_hits,
        adherence.new_slash64,
    );

    println!("  {:<12} {:>9.3} s", "total", timer.total());
    println!(
        "\ndistinct addresses {}   candidates {}   population hits {} ({:.2}%)   /64 hits {}   new /64s {}",
        human(population.len()),
        human(report.candidates.len()),
        human(hits),
        if report.candidates.is_empty() {
            0.0
        } else {
            hits as f64 / report.candidates.len() as f64 * 100.0
        },
        human(hits64),
        human(new64)
    );

    if hits == 0 {
        println!(
            "(paper-faithful for S1: pseudo-random IIDs make in-population collisions\n\
             vanishingly rare — Table 4 reports ~0% for S1 too; the /64-hit counter\n\
             above shows the candidates aiming at the population's real subnets)"
        );
    }

    // Tracked assertion: exact hits may legitimately be zero for S1
    // (64-bit pseudo-random IIDs, collision odds ~2⁻⁶⁴ per draw), but
    // a model that learned *anything* must land candidates inside the
    // population's /64s. Both zero means the generate or evaluate
    // stage regressed — fail the run loudly instead of letting
    // `population_hits: 0` read as a footnote.
    assert!(
        hits > 0 || hits64 > 0,
        "model aims at no population address or /64 — generation or \
         evaluation has regressed"
    );

    let json = render_json(
        cfg,
        &timer,
        population.len(),
        report.candidates.len(),
        &adherence,
        &ingest,
    );
    let path = bench_out
        .map(String::from)
        .unwrap_or_else(default_bench_out);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nstage timings written to {path}"),
        Err(e) => eprintln!("\nwarning: could not write {path}: {e}"),
    }
}

/// Default output path: the bench crate's `BENCH_full.json`, resolved
/// relative to this crate's manifest so `cargo run -p repro` from the
/// workspace root lands in-repo.
fn default_bench_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../bench/BENCH_full.json").to_string()
}

fn render_json(
    cfg: &RunConfig,
    timer: &StageTimer,
    distinct: usize,
    candidates: usize,
    adherence: &eip_netsim::Adherence,
    ingest: &IngestReport,
) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"comment\": \"Per-stage wall-clock of the paper-scale run \
         (`repro --full`): S1 population in, same-size candidate batch out. \
         Deterministic output at any --jobs; only the timings vary.\",\n",
    );
    out.push_str(&format!("  \"unix_time\": {unix_time},\n"));
    out.push_str("  \"unit\": \"seconds\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"dataset\": \"S1\", \"addresses\": {}, \"candidates\": {}, \"seed\": {}, \"jobs\": {} }},\n",
        cfg.candidates, cfg.candidates, cfg.seed, cfg.jobs
    ));
    out.push_str("  \"stages\": {\n");
    let last = timer.stages().len().saturating_sub(1);
    for (i, (name, secs)) in timer.stages().iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {secs:.6}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("  },\n");
    // The corpus shape (lines/bytes/distinct) is deterministic in the
    // seed; the throughput fields vary by machine, like the timings.
    out.push_str(&format!(
        "  \"ingest\": {{ \"lines\": {}, \"addresses\": {}, \"distinct\": {}, \"bytes\": {}, \"chunk_bytes\": {}, \"lines_per_sec\": {:.0}, \"mb_per_sec\": {:.2}, \"peak_bytes\": {} }},\n",
        ingest.lines,
        ingest.addresses,
        ingest.distinct,
        ingest.bytes,
        ingest.chunk_bytes,
        ingest.lines_per_sec(),
        ingest.mb_per_sec(),
        ingest.peak_bytes,
    ));
    out.push_str(&format!("  \"total\": {:.6},\n", timer.total()));
    out.push_str(&format!(
        "  \"outcome\": {{ \"distinct_addresses\": {distinct}, \"candidates\": {candidates}, \"population_hits\": {}, \"slash64_hits\": {}, \"new_slash64\": {} }}\n",
        adherence.hits, adherence.slash64_hits, adherence.new_slash64,
    ));
    out.push_str("}\n");
    out
}
