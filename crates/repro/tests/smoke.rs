//! Binary smoke tests: the `repro` harness regenerates paper artifacts
//! at toy scale (small `--train` / `--candidates`, i.e. a small
//! `RunConfig`) without panicking, and the `eip` CLI prints usage.

use std::process::Command;

fn run_repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro {args:?} exited with {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table4_toy_scale() {
    let stdout = run_repro(&[
        "--table",
        "4",
        "--train",
        "300",
        "--candidates",
        "3000",
        "--seed",
        "7",
    ]);
    assert!(stdout.contains("Table 4"), "missing header:\n{stdout}");
    for family in ["S1", "S3", "R1", "R5"] {
        assert!(stdout.contains(family), "missing row {family}:\n{stdout}");
    }
}

#[test]
fn table1_lists_all_dataset_families() {
    let stdout = run_repro(&["--table", "1", "--train", "300", "--candidates", "1000"]);
    assert!(stdout.contains("Table 1"), "missing header:\n{stdout}");
    for family in ["S1", "S5", "R1", "R5", "C1", "C5"] {
        assert!(
            stdout.contains(family),
            "missing family {family}:\n{stdout}"
        );
    }
}

#[test]
fn figure2_emits_dot_graph() {
    let stdout = run_repro(&["--figure", "2", "--train", "300", "--candidates", "1000"]);
    assert!(
        stdout.contains("digraph"),
        "figure 2 should embed DOT:\n{stdout}"
    );
}

#[test]
fn parallel_jobs_do_not_change_table_output() {
    // Mining, profiling, AND generation all ride the scheduler when
    // --jobs > 1; the printed table must be byte-identical at every
    // parallel worker count.
    fn args(jobs: &str) -> [&str; 10] {
        [
            "--table",
            "4",
            "--train",
            "300",
            "--candidates",
            "3000",
            "--seed",
            "7",
            "--jobs",
            jobs,
        ]
    }
    let two = run_repro(&args("2"));
    let four = run_repro(&args("4"));
    assert_eq!(two, four, "--jobs 2 vs --jobs 4 output diverged");
    assert!(two.contains("Table 4"));
}

#[test]
fn full_run_records_stage_timings() {
    // Dress rehearsal of the paper-scale timed run at toy size: every
    // stage must execute and the JSON must land at --bench-out.
    let out_path = std::env::temp_dir().join(format!("eip_bench_full_{}.json", std::process::id()));
    let out_str = out_path.to_str().unwrap().to_string();
    let stdout = run_repro(&[
        "--full",
        "--candidates",
        "4000",
        "--jobs",
        "2",
        "--seed",
        "7",
        "--bench-out",
        &out_str,
    ]);
    assert!(
        stdout.contains("Paper-scale timed run"),
        "missing header:\n{stdout}"
    );
    let json = std::fs::read_to_string(&out_path).expect("BENCH_full.json written");
    std::fs::remove_file(&out_path).ok();
    for stage in [
        "synthesize",
        "profile",
        "segment",
        "mine",
        "train",
        "generate",
        "evaluate",
    ] {
        assert!(
            json.contains(&format!("\"{stage}\"")),
            "missing {stage}:\n{json}"
        );
    }
    assert!(json.contains("\"total\""), "{json}");
    assert!(json.contains("\"candidates\": 4000"), "{json}");
    // Regression guard for the `population_hits: 0` investigation:
    // exact hits are legitimately ~0 on S1, but the tracked
    // slash64_hits counter must show the model aiming at the
    // population's real subnets (the binary also hard-asserts this).
    let hits64: usize = json
        .split("\"slash64_hits\": ")
        .nth(1)
        .and_then(|rest| rest.split([',', ' ', '}']).next())
        .and_then(|num| num.parse().ok())
        .unwrap_or_else(|| panic!("slash64_hits missing from JSON:\n{json}"));
    assert!(hits64 > 0, "slash64_hits is zero:\n{json}");
}

#[test]
fn fleet_run_persists_all_networks_and_records_timings() {
    // The concurrent 16-network sweep at toy scale: every Table-1
    // model must land in the store, the run must self-verify against
    // its solo serial baseline, and the fleet JSON must record both
    // phases' wall-clock.
    let tmp = std::env::temp_dir().join(format!("eip_fleet_smoke_{}", std::process::id()));
    let store = tmp.join("models");
    let json_path = tmp.join("fleet.json");
    std::fs::create_dir_all(&tmp).unwrap();
    let stdout = run_repro(&[
        "--fleet",
        "--candidates",
        "1500",
        "--jobs",
        "2",
        "--pool",
        "3",
        "--store-out",
        store.to_str().unwrap(),
        "--bench-out",
        json_path.to_str().unwrap(),
    ]);
    assert!(stdout.contains("Fleet run"), "missing header:\n{stdout}");
    assert!(
        stdout.matches("byte-identical").count() >= 16,
        "every network must verify against its solo baseline:\n{stdout}"
    );
    let models = std::fs::read_dir(&store)
        .expect("store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "eipm"))
        .count();
    assert_eq!(models, 16, "expected one .eipm per Table-1 network");
    let json = std::fs::read_to_string(&json_path).expect("BENCH_fleet.json written");
    std::fs::remove_dir_all(&tmp).ok();
    for field in [
        "\"networks\"",
        "\"fleet_wall\"",
        "\"sequential_sum\"",
        "\"speedup\"",
        "\"pool\"",
        "\"S1\"",
        "\"AT\"",
    ] {
        assert!(json.contains(field), "missing {field}:\n{json}");
    }
}

#[test]
fn eip_cli_prints_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_eip"))
        .arg("help")
        .output()
        .expect("spawn eip");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("analyze"),
        "usage should list subcommands:\n{stdout}"
    );
}
