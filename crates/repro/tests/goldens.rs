//! Golden-file snapshots of the paper artifacts: every table (1–6)
//! and figure (1–10) at a small fixed scale, compared byte-for-byte
//! against committed fixtures under `tests/goldens/`.
//!
//! The repro output is a pure function of `(train, candidates, seed)`
//! — keyed per-index randomness makes even `--jobs` invisible — so
//! any diff here is a real behavior change. When a change is
//! intentional (new column, reseeded stream, fixed bug), refresh the
//! fixtures and review the diff like code:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p repro --test goldens
//! git diff crates/repro/tests/goldens/
//! ```

use std::path::PathBuf;
use std::process::Command;

/// Shared toy scale: big enough that every table row and figure
/// series is populated, small enough that the whole suite stays in
/// tier-1 time.
const SCALE: [&str; 6] = ["--train", "300", "--candidates", "3000", "--seed", "7"];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn check_golden(name: &str, selector: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(selector)
        .args(SCALE)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro {selector:?} exited with {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &stdout).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             UPDATE_GOLDENS=1 cargo test -p repro --test goldens",
            path.display()
        )
    });
    assert_eq!(
        stdout, expected,
        "{name} drifted from its golden; if intentional, refresh with \
         UPDATE_GOLDENS=1 cargo test -p repro --test goldens and review \
         the fixture diff"
    );
}

macro_rules! golden_tests {
    ($($test:ident => ($file:expr, $flag:expr, $num:expr);)*) => {
        $(
            #[test]
            fn $test() {
                check_golden($file, &[$flag, $num]);
            }
        )*
    };
}

golden_tests! {
    table1 => ("table1.txt", "--table", "1");
    table2 => ("table2.txt", "--table", "2");
    table3 => ("table3.txt", "--table", "3");
    table4 => ("table4.txt", "--table", "4");
    table5 => ("table5.txt", "--table", "5");
    table6 => ("table6.txt", "--table", "6");
    figure1 => ("figure1.txt", "--figure", "1");
    figure2 => ("figure2.txt", "--figure", "2");
    figure3 => ("figure3.txt", "--figure", "3");
    figure4 => ("figure4.txt", "--figure", "4");
    figure5 => ("figure5.txt", "--figure", "5");
    figure6 => ("figure6.txt", "--figure", "6");
    figure7 => ("figure7.txt", "--figure", "7");
    figure8 => ("figure8.txt", "--figure", "8");
    figure9 => ("figure9.txt", "--figure", "9");
    figure10 => ("figure10.txt", "--figure", "10");
}
