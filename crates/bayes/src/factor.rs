//! Factors: multivariate non-negative tables used by variable
//! elimination.
//!
//! A factor maps assignments of a sorted scope of variables to
//! non-negative reals. CPTs become factors, evidence restricts them,
//! products join scopes, and marginalization sums variables out —
//! the standard toolkit of Koller & Friedman (the paper's reference 20).

/// A factor over a sorted scope of variable indices.
#[derive(Clone, Debug, PartialEq)]
pub struct Factor {
    /// Variable ids in strictly increasing order.
    scope: Vec<usize>,
    /// Cardinality of each scope variable, parallel to `scope`.
    cards: Vec<usize>,
    /// Row-major values: the *last* scope variable varies fastest.
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor, validating the value-table size.
    ///
    /// # Panics
    /// Panics if the scope is not strictly increasing or the value
    /// length does not equal the product of cardinalities.
    pub fn new(scope: Vec<usize>, cards: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(scope.len(), cards.len(), "scope/cards length mismatch");
        assert!(
            scope.windows(2).all(|w| w[0] < w[1]),
            "scope must be sorted"
        );
        let size: usize = cards.iter().product::<usize>().max(1);
        assert_eq!(values.len(), size, "value table size mismatch");
        Factor {
            scope,
            cards,
            values,
        }
    }

    /// The constant factor 1 (empty scope).
    pub fn unit() -> Self {
        Factor {
            scope: vec![],
            cards: vec![],
            values: vec![1.0],
        }
    }

    /// Scope variable ids.
    #[inline]
    pub fn scope(&self) -> &[usize] {
        &self.scope
    }

    /// Raw table values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value at a full assignment over the scope (parallel to
    /// `scope`).
    pub fn at(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.scope.len(), "assignment width");
        let mut idx = 0usize;
        for (&v, &k) in assignment.iter().zip(&self.cards) {
            assert!(v < k, "assignment out of range");
            idx = idx * k + v;
        }
        self.values[idx]
    }

    /// Builds a factor from a CPT: scope = sorted {parents ∪ child}.
    ///
    /// `child` is the child variable id, `parents` the parent ids in
    /// CPT order, `parent_cards`/`child_card` their cardinalities.
    pub fn from_cpt(
        child: usize,
        child_card: usize,
        parents: &[usize],
        parent_cards: &[usize],
        flat: &[f64],
    ) -> Self {
        // Scope variables and cards, sorted by id.
        let mut vars: Vec<(usize, usize)> = parents
            .iter()
            .copied()
            .zip(parent_cards.iter().copied())
            .collect();
        vars.push((child, child_card));
        vars.sort_unstable();
        let scope: Vec<usize> = vars.iter().map(|&(v, _)| v).collect();
        let cards: Vec<usize> = vars.iter().map(|&(_, k)| k).collect();
        let size: usize = cards.iter().product();
        let mut values = vec![0.0; size];

        // Enumerate all assignments of (parents..., child) in CPT
        // order and scatter into the sorted-scope table.
        let mut pv = vec![0usize; parents.len()];
        loop {
            let cfg: usize = pv
                .iter()
                .zip(parent_cards)
                .fold(0usize, |acc, (&v, &k)| acc * k + v);
            for x in 0..child_card {
                // Position of each scope var's value.
                let mut idx = 0usize;
                for (&sv, &sk) in scope.iter().zip(&cards) {
                    let val = if sv == child {
                        x
                    } else {
                        let slot = parents.iter().position(|&p| p == sv).unwrap();
                        pv[slot]
                    };
                    idx = idx * sk + val;
                }
                values[idx] = flat[cfg * child_card + x];
            }
            // Odometer increment over parent values.
            let mut carry = true;
            for slot in (0..pv.len()).rev() {
                if !carry {
                    break;
                }
                pv[slot] += 1;
                if pv[slot] == parent_cards[slot] {
                    pv[slot] = 0;
                } else {
                    carry = false;
                }
            }
            if carry {
                break;
            }
        }
        Factor {
            scope,
            cards,
            values,
        }
    }

    /// Restricts the factor to `var = value`, removing `var` from the
    /// scope. No-op (returns a clone) if `var` is not in scope.
    pub fn restrict(&self, var: usize, value: usize) -> Factor {
        let Some(pos) = self.scope.iter().position(|&v| v == var) else {
            return self.clone();
        };
        assert!(value < self.cards[pos], "evidence value out of range");
        let new_scope: Vec<usize> = self.scope.iter().copied().filter(|&v| v != var).collect();
        let new_cards: Vec<usize> = self
            .scope
            .iter()
            .zip(&self.cards)
            .filter(|&(&v, _)| v != var)
            .map(|(_, &k)| k)
            .collect();
        let size: usize = new_cards.iter().product::<usize>().max(1);
        let mut values = vec![0.0; size];
        let mut assign = vec![0usize; new_scope.len()];
        for (slot, v) in values.iter_mut().enumerate() {
            // Decode slot into new-scope assignment.
            let mut rem = slot;
            for i in (0..new_scope.len()).rev() {
                assign[i] = rem % new_cards[i];
                rem /= new_cards[i];
            }
            // Encode into old-scope index with var = value.
            let mut idx = 0usize;
            let mut j = 0usize;
            for (i, &k) in self.cards.iter().enumerate() {
                let val = if i == pos {
                    value
                } else {
                    let a = assign[j];
                    j += 1;
                    a
                };
                idx = idx * k + val;
            }
            *v = self.values[idx];
        }
        Factor {
            scope: new_scope,
            cards: new_cards,
            values,
        }
    }

    /// Factor product: joins scopes, multiplying matching entries.
    pub fn product(&self, other: &Factor) -> Factor {
        // Merged sorted scope.
        let mut vars: Vec<(usize, usize)> = Vec::new();
        for (&v, &k) in self.scope.iter().zip(&self.cards) {
            vars.push((v, k));
        }
        for (&v, &k) in other.scope.iter().zip(&other.cards) {
            if let Some(&(_, k0)) = vars.iter().find(|&&(x, _)| x == v) {
                assert_eq!(k0, k, "cardinality clash for var {v}");
            } else {
                vars.push((v, k));
            }
        }
        vars.sort_unstable();
        let scope: Vec<usize> = vars.iter().map(|&(v, _)| v).collect();
        let cards: Vec<usize> = vars.iter().map(|&(_, k)| k).collect();
        let size: usize = cards.iter().product::<usize>().max(1);

        // For each operand, precompute the stride of every merged var.
        let strides = |f: &Factor| -> Vec<usize> {
            // stride of f's scope var j in f's row-major layout
            let mut s = vec![0usize; f.scope.len()];
            let mut acc = 1usize;
            for j in (0..f.scope.len()).rev() {
                s[j] = acc;
                acc *= f.cards[j];
            }
            s
        };
        let sa = strides(self);
        let sb = strides(other);
        let map_a: Vec<Option<usize>> = scope
            .iter()
            .map(|v| self.scope.iter().position(|x| x == v))
            .collect();
        let map_b: Vec<Option<usize>> = scope
            .iter()
            .map(|v| other.scope.iter().position(|x| x == v))
            .collect();

        let mut values = vec![0.0; size];
        let mut assign = vec![0usize; scope.len()];
        for (slot, out) in values.iter_mut().enumerate() {
            let mut rem = slot;
            for i in (0..scope.len()).rev() {
                assign[i] = rem % cards[i];
                rem /= cards[i];
            }
            let mut ia = 0usize;
            let mut ib = 0usize;
            for (i, &a) in assign.iter().enumerate() {
                if let Some(j) = map_a[i] {
                    ia += a * sa[j];
                }
                if let Some(j) = map_b[i] {
                    ib += a * sb[j];
                }
            }
            *out = self.values[ia] * other.values[ib];
        }
        Factor {
            scope,
            cards,
            values,
        }
    }

    /// Sums a variable out of the factor. No-op (clone) if the
    /// variable is not in scope.
    pub fn marginalize(&self, var: usize) -> Factor {
        let Some(pos) = self.scope.iter().position(|&v| v == var) else {
            return self.clone();
        };
        let new_scope: Vec<usize> = self.scope.iter().copied().filter(|&v| v != var).collect();
        let new_cards: Vec<usize> = self
            .scope
            .iter()
            .zip(&self.cards)
            .filter(|&(&v, _)| v != var)
            .map(|(_, &k)| k)
            .collect();
        let size: usize = new_cards.iter().product::<usize>().max(1);
        let mut values = vec![0.0; size];
        let mut assign = vec![0usize; self.scope.len()];
        for (slot, &v) in self.values.iter().enumerate() {
            let mut rem = slot;
            for i in (0..self.scope.len()).rev() {
                assign[i] = rem % self.cards[i];
                rem /= self.cards[i];
            }
            let mut idx = 0usize;
            for (i, &a) in assign.iter().enumerate() {
                if i != pos {
                    idx = idx * self.cards[i] + a;
                }
            }
            values[idx] += v;
        }
        Factor {
            scope: new_scope,
            cards: new_cards,
            values,
        }
    }

    /// Normalizes the table to sum to 1 (no-op on an all-zero table).
    pub fn normalized(&self) -> Factor {
        let total: f64 = self.values.iter().sum();
        if total <= 0.0 {
            return self.clone();
        }
        let values = self.values.iter().map(|v| v / total).collect();
        Factor {
            scope: self.scope.clone(),
            cards: self.cards.clone(),
            values,
        }
    }

    /// Total mass of the table.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cpt_scatter() {
        // Child var 2 (card 2) with parent var 0 (card 2):
        // P(X2|X0): [0.9,0.1 | 0.2,0.8].
        let f = Factor::from_cpt(2, 2, &[0], &[2], &[0.9, 0.1, 0.2, 0.8]);
        assert_eq!(f.scope(), &[0, 2]);
        assert!((f.at(&[0, 0]) - 0.9).abs() < 1e-12);
        assert!((f.at(&[0, 1]) - 0.1).abs() < 1e-12);
        assert!((f.at(&[1, 0]) - 0.2).abs() < 1e-12);
        assert!((f.at(&[1, 1]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn from_cpt_parent_order_respected() {
        // Child 0 with parents (2, 1) in CPT order: scope is sorted
        // [0,1,2] but the CPT config index uses (v2, v1).
        let flat = vec![
            // cfg (v2=0,v1=0): P(x0=0)=0.1, P(x0=1)=0.9
            0.1, 0.9, // cfg (0,1)
            0.2, 0.8, // cfg (1,0)
            0.3, 0.7, // cfg (1,1)
            0.4, 0.6,
        ];
        let f = Factor::from_cpt(0, 2, &[2, 1], &[2, 2], &flat);
        assert_eq!(f.scope(), &[0, 1, 2]);
        // assignment (x0, x1, x2) = (0, 1, 0) -> cfg (v2=0, v1=1) -> 0.2
        assert!((f.at(&[0, 1, 0]) - 0.2).abs() < 1e-12);
        // (1, 0, 1) -> cfg (1, 0) -> 0.7
        assert!((f.at(&[1, 0, 1]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn restrict_drops_var() {
        let f = Factor::new(vec![0, 1], vec![2, 3], (0..6).map(|x| x as f64).collect());
        let r = f.restrict(0, 1);
        assert_eq!(r.scope(), &[1]);
        assert_eq!(r.values(), &[3.0, 4.0, 5.0]);
        let r2 = f.restrict(1, 2);
        assert_eq!(r2.scope(), &[0]);
        assert_eq!(r2.values(), &[2.0, 5.0]);
        // Restricting an absent var is a no-op.
        assert_eq!(f.restrict(9, 0), f);
    }

    #[test]
    fn product_matches_manual() {
        let f = Factor::new(vec![0], vec![2], vec![0.6, 0.4]);
        let g = Factor::new(vec![0, 1], vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        let p = f.product(&g);
        assert_eq!(p.scope(), &[0, 1]);
        assert!((p.at(&[0, 0]) - 0.54).abs() < 1e-12);
        assert!((p.at(&[1, 1]) - 0.32).abs() < 1e-12);
        assert!((p.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_with_unit() {
        let f = Factor::new(vec![3], vec![2], vec![0.25, 0.75]);
        let p = Factor::unit().product(&f);
        assert_eq!(p, f);
    }

    #[test]
    fn marginalize_sums_out() {
        let f = Factor::new(vec![0, 1], vec![2, 2], vec![0.54, 0.06, 0.08, 0.32]);
        let m = f.marginalize(0);
        assert_eq!(m.scope(), &[1]);
        assert!((m.values()[0] - 0.62).abs() < 1e-12);
        assert!((m.values()[1] - 0.38).abs() < 1e-12);
        // Marginalizing everything leaves the scalar total.
        let s = m.marginalize(1);
        assert!(s.scope().is_empty());
        assert!((s.values()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_sums_to_one() {
        let f = Factor::new(vec![0], vec![4], vec![1.0, 3.0, 0.0, 4.0]);
        let n = f.normalized();
        assert!((n.sum() - 1.0).abs() < 1e-12);
        assert!((n.values()[1] - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scope must be sorted")]
    fn unsorted_scope_rejected() {
        Factor::new(vec![1, 0], vec![2, 2], vec![0.0; 4]);
    }
}
