//! Dense contingency tables: the count-reuse engine behind sharded
//! structure learning.
//!
//! The serial reference scorer ([`crate::learn::family_score`])
//! re-scans all N observations through a `HashMap` for every candidate
//! parent set, and the reference CPT fitter scans them again — at
//! paper scale (1M addresses, ~30 candidates per child) that is ~100
//! full-data passes with hashing on the innermost loop. This module
//! replaces the rescans with *one* counting pass per child:
//!
//! 1. enumerate the **superset families** — every parent set of the
//!    maximum size the search may reach — and count each family's
//!    dense `(parents × child)` joint in a single pass over the
//!    columns ([`count_families`]);
//! 2. the pass shards on an [`eip_exec::Scheduler`]: each shard
//!    accumulates its own dense `u64` count arrays, and shard arrays
//!    merge by elementwise addition — an exact integer reduction, so
//!    the tables are identical at any worker count;
//! 3. every *smaller* candidate's table (and the empty set's child
//!    marginal) is derived from a superset table by
//!    [`FamilyTable::marginalize_to`] — no further data passes;
//! 4. the winning candidate's table feeds
//!    [`Cpt::from_counts`](crate::Cpt::from_counts) directly (the
//!    layout matches), so CPT fitting is free.
//!
//! Scores computed from a [`FamilyTable`] sum cells in a fixed dense
//! order, making them bit-identical at every shard count. They agree
//! with the `HashMap` reference up to floating-point summation order
//! (~1e-12 relative), far inside the tie margin the search uses — see
//! the equivalence proptests in `tests/proptests.rs`.

use crate::data::Dataset;
use eip_exec::Scheduler;

/// A dense joint count table for one family: a child variable plus an
/// ordered set of parent variables.
///
/// Layout matches [`crate::Cpt`]: `counts[cfg * child_card + x]`
/// where `cfg` is the mixed-radix parent configuration with the
/// *first* parent as the most significant digit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyTable {
    parents: Vec<usize>,
    parent_cards: Vec<usize>,
    child_card: usize,
    counts: Vec<u64>,
}

impl FamilyTable {
    /// The parent variable indices, in configuration-digit order.
    #[inline]
    pub fn parents(&self) -> &[usize] {
        &self.parents
    }

    /// The parent cardinalities, in parent order.
    #[inline]
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// The child cardinality.
    #[inline]
    pub fn child_card(&self) -> usize {
        self.child_card
    }

    /// The dense counts, `Cpt`-layout (see the type docs).
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of parent configurations.
    #[inline]
    pub fn num_configs(&self) -> usize {
        self.parent_cards.iter().product::<usize>().max(1)
    }

    /// The BIC/MDL family score computed from this table (same
    /// formula as [`crate::learn::family_score`], summed in fixed
    /// dense-index order). `n` is the total number of observations.
    pub fn score(&self, n: usize) -> f64 {
        let mut loglik = 0.0;
        for cfg in 0..self.num_configs() {
            let row = &self.counts[cfg * self.child_card..(cfg + 1) * self.child_card];
            let total: u64 = row.iter().sum();
            if total == 0 {
                continue;
            }
            let tf = total as f64;
            for &c in row {
                if c > 0 {
                    loglik += c as f64 * (c as f64 / tf).ln();
                }
            }
        }
        let num_configs: f64 = self.parent_cards.iter().map(|&k| k as f64).product();
        let params = num_configs * (self.child_card as f64 - 1.0);
        loglik - 0.5 * (n as f64).ln() * params
    }

    /// Sums out every parent not in `keep`, returning the table of
    /// the sub-family. `keep` must be a subset of this table's
    /// parents (in the same order). Counts are exact integers, so a
    /// marginalized table equals the table counted directly.
    pub fn marginalize_to(&self, keep: &[usize]) -> FamilyTable {
        debug_assert!(
            keep.iter().all(|p| self.parents.contains(p)),
            "keep must be a subset of the family's parents"
        );
        if keep.len() == self.parents.len() {
            return self.clone();
        }
        let kept: Vec<usize> = (0..self.parents.len())
            .filter(|&i| keep.contains(&self.parents[i]))
            .collect();
        let new_cards: Vec<usize> = kept.iter().map(|&i| self.parent_cards[i]).collect();
        let new_configs: usize = new_cards.iter().product::<usize>().max(1);
        let mut out = vec![0u64; new_configs * self.child_card];
        let mut digits = vec![0usize; self.parent_cards.len()];
        for cfg in 0..self.num_configs() {
            let mut rem = cfg;
            for i in (0..self.parent_cards.len()).rev() {
                digits[i] = rem % self.parent_cards[i];
                rem /= self.parent_cards[i];
            }
            let mut new_cfg = 0usize;
            for &i in &kept {
                new_cfg = new_cfg * self.parent_cards[i] + digits[i];
            }
            let src = &self.counts[cfg * self.child_card..(cfg + 1) * self.child_card];
            let dst = &mut out[new_cfg * self.child_card..(new_cfg + 1) * self.child_card];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        FamilyTable {
            parents: kept.iter().map(|&i| self.parents[i]).collect(),
            parent_cards: new_cards,
            child_card: self.child_card,
            counts: out,
        }
    }
}

/// Per-shard cell budget for one counting pass (2²² `u64` cells =
/// 32 MiB per shard). Entropy/IP's mined cardinalities (≤ ~40 values
/// over ≤ ~12 segments) fit every pair family in a single pass;
/// pathological configurations (many near-256-card variables) fall
/// back to multiple passes instead of unbounded allocation.
const MAX_BATCH_CELLS: usize = 1 << 22;

/// Counts the dense joint tables of `child` with each parent set in
/// `families`, sharded on `exec` — one pass over the data when the
/// tables fit the per-shard cell budget (`MAX_BATCH_CELLS`), and as
/// few budget-bounded passes as needed otherwise, so memory stays
/// bounded regardless of how many families the search enumerates.
///
/// Each shard walks its contiguous row range once per batch,
/// incrementing every family's dense array; shard arrays merge by
/// elementwise addition in shard order. The result is a pure function
/// of the data — byte identical at any worker count or batch split.
pub fn count_families(
    data: &Dataset,
    child: usize,
    families: &[Vec<usize>],
    exec: &Scheduler,
) -> Vec<FamilyTable> {
    count_families_with_budget(data, child, families, exec, MAX_BATCH_CELLS)
}

/// [`count_families`] with an explicit cell budget (split out so the
/// multi-batch path is testable without a pathological dataset).
fn count_families_with_budget(
    data: &Dataset,
    child: usize,
    families: &[Vec<usize>],
    exec: &Scheduler,
    budget: usize,
) -> Vec<FamilyTable> {
    let child_card = data.cardinality(child);
    let cells = |f: &Vec<usize>| -> usize {
        f.iter()
            .map(|&p| data.cardinality(p))
            .product::<usize>()
            .max(1)
            * child_card
    };
    let mut out = Vec::with_capacity(families.len());
    let mut start = 0;
    while start < families.len() {
        let mut end = start + 1;
        let mut batch_cells = cells(&families[start]);
        while end < families.len() && batch_cells + cells(&families[end]) <= budget {
            batch_cells += cells(&families[end]);
            end += 1;
        }
        out.extend(count_family_batch(data, child, &families[start..end], exec));
        start = end;
    }
    out
}

/// One budget-sized batch of [`count_families`]: a single sharded
/// pass counting every family in `families`.
fn count_family_batch(
    data: &Dataset,
    child: usize,
    families: &[Vec<usize>],
    exec: &Scheduler,
) -> Vec<FamilyTable> {
    let child_card = data.cardinality(child);
    let child_col = data.column(child);
    struct Spec<'a> {
        cols: Vec<&'a [u8]>,
        cards: Vec<usize>,
        cells: usize,
    }
    let specs: Vec<Spec> = families
        .iter()
        .map(|f| {
            let cards: Vec<usize> = f.iter().map(|&p| data.cardinality(p)).collect();
            Spec {
                cols: f.iter().map(|&p| data.column(p)).collect(),
                cells: cards.iter().product::<usize>().max(1) * child_card,
                cards,
            }
        })
        .collect();
    let counted: Vec<Vec<u64>> = exec
        .par_map_reduce(
            data.len(),
            |range| {
                let mut tables: Vec<Vec<u64>> = specs.iter().map(|s| vec![0u64; s.cells]).collect();
                for r in range {
                    let x = child_col[r] as usize;
                    for (table, spec) in tables.iter_mut().zip(&specs) {
                        let mut cfg = 0usize;
                        for (col, &card) in spec.cols.iter().zip(&spec.cards) {
                            cfg = cfg * card + col[r] as usize;
                        }
                        table[cfg * child_card + x] += 1;
                    }
                }
                tables
            },
            |acc, part| {
                for (a, p) in acc.iter_mut().zip(part) {
                    for (x, y) in a.iter_mut().zip(p) {
                        *x += y;
                    }
                }
            },
        )
        .unwrap_or_else(|| specs.iter().map(|s| vec![0u64; s.cells]).collect());
    families
        .iter()
        .zip(specs)
        .zip(counted)
        .map(|((f, spec), counts)| FamilyTable {
            parents: f.clone(),
            parent_cards: spec.cards,
            child_card,
            counts,
        })
        .collect()
}

/// The BIC family score of `child` with the given parents, computed
/// through the dense engine (one sharded counting pass, fixed-order
/// summation). Mathematically equal to
/// [`crate::learn::family_score`]; numerically equal up to summation
/// order.
pub fn family_score_dense(
    data: &Dataset,
    child: usize,
    parents: &[usize],
    exec: &Scheduler,
) -> f64 {
    count_families(data, child, &[parents.to_vec()], exec)
        .pop()
        .expect("one family requested")
        .score(data.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 3 vars, cards [2, 3, 2]; 6 rows with a visible joint.
        Dataset::new(
            vec![2, 3, 2],
            vec![
                vec![0, 0, 0],
                vec![0, 1, 0],
                vec![1, 2, 1],
                vec![1, 2, 1],
                vec![0, 0, 1],
                vec![1, 1, 0],
            ],
        )
    }

    #[test]
    fn counting_matches_hand_tally() {
        let d = toy();
        let t = &count_families(&d, 2, &[vec![0]], &Scheduler::new(1))[0];
        // cfg = value of var 0; child = var 2.
        // var0=0 rows: child 0,0,1 → counts [2,1]; var0=1: child 1,1,0 → [1,2].
        assert_eq!(t.counts(), &[2, 1, 1, 2]);
        assert_eq!(t.num_configs(), 2);
        assert_eq!(t.child_card(), 2);
    }

    #[test]
    fn sharded_counts_are_exact_at_any_worker_count() {
        let d = toy();
        let serial = count_families(&d, 2, &[vec![0, 1], vec![1]], &Scheduler::new(1));
        for workers in 2..=8 {
            let sharded = count_families(&d, 2, &[vec![0, 1], vec![1]], &Scheduler::new(workers));
            assert_eq!(sharded, serial, "{workers} workers");
        }
    }

    #[test]
    fn marginalized_table_equals_directly_counted() {
        let d = toy();
        let exec = Scheduler::new(1);
        let full = &count_families(&d, 2, &[vec![0, 1]], &exec)[0];
        for keep in [vec![0], vec![1], vec![]] {
            let direct = &count_families(&d, 2, std::slice::from_ref(&keep), &exec)[0];
            assert_eq!(&full.marginalize_to(&keep), direct, "keep {keep:?}");
        }
        assert_eq!(&full.marginalize_to(&[0, 1]), full);
    }

    #[test]
    fn empty_family_is_child_marginal() {
        let d = toy();
        let t = &count_families(&d, 1, &[vec![]], &Scheduler::new(1))[0];
        assert_eq!(t.counts(), &[2, 2, 2]);
        assert_eq!(t.num_configs(), 1);
    }

    #[test]
    fn score_is_shard_count_invariant_bitwise() {
        let d = toy();
        let serial = family_score_dense(&d, 2, &[0, 1], &Scheduler::new(1));
        for workers in 2..=8 {
            let s = family_score_dense(&d, 2, &[0, 1], &Scheduler::new(workers));
            assert_eq!(s.to_bits(), serial.to_bits(), "{workers} workers");
        }
    }

    #[test]
    fn batched_counting_matches_single_pass() {
        // A budget of 1 cell forces one family per batch; the tables
        // must be identical to the single-pass result.
        let d = toy();
        let exec = Scheduler::new(3);
        let families = vec![vec![0, 1], vec![0], vec![1], vec![]];
        let single = count_families(&d, 2, &families, &exec);
        let batched = count_families_with_budget(&d, 2, &families, &exec, 1);
        assert_eq!(batched, single);
    }

    #[test]
    fn empty_dataset_counts_to_zero_tables() {
        let d = Dataset::new(vec![2, 2], vec![]);
        let t = &count_families(&d, 1, &[vec![0]], &Scheduler::new(4))[0];
        assert_eq!(t.counts(), &[0, 0, 0, 0]);
    }
}
