//! Compiling a trained network into a flat, immutable sampling plan.
//!
//! [`sample_row`](crate::sample::sample_row) is the reference
//! ancestral sampler — correct, but it allocates two `Vec<usize>` per
//! drawn row and walks CPT weights linearly per node. At the paper's
//! native scale (a million candidate rows per run) that allocation
//! and scanning dominates the generate stage. [`SamplingPlan`]
//! compiles a [`BayesNet`] once into flat arrays designed for the hot
//! loop:
//!
//! * per node, the *cumulative* weight table of every parent
//!   configuration, laid out contiguously (`cum_start + cfg *
//!   child_card`), so drawing a value is one uniform draw plus one
//!   binary search — no CPT lookups, no weight rescans;
//! * parent indices with precomputed mixed-radix strides, so the
//!   configuration index is a fused multiply-add walk instead of
//!   [`Cpt::config_index`](crate::cpt::Cpt::config_index)'s checked
//!   fold;
//! * the topological order baked in as array order (the Entropy/IP
//!   ordering constraint already guarantees parents precede
//!   children), sampled into a caller-owned reusable `&mut [u8]` row
//!   buffer — zero allocation per row, or per node.
//!
//! **Oracle relationship.** The plan keeps the
//! one-uniform-per-node inverse-CDF semantics of
//! [`sample_index`](crate::sample::sample_index): each node consumes
//! one `gen_range(0.0..total)` draw where `total` is the same
//! sequential weight sum the oracle computes (so RNG consumption is
//! always in lockstep), and the binary search selects the first
//! index whose cumulative weight exceeds the draw — in exact
//! arithmetic, the same index the oracle's subtracting scan selects.
//! In floating point the two comparison chains round differently, so
//! a draw landing within an ulp of a table boundary could in
//! principle pick a neighbouring index; for the normalized CPT rows
//! this crate produces that window is vanishingly small, and rows
//! are byte-identical to [`sample_row`](crate::sample::sample_row)
//! on the same RNG stream in practice — asserted in lockstep by the
//! equivalence proptests in `tests/proptests.rs` and verified
//! end-to-end at paper scale. `sample_row` remains the reference
//! implementation, mirroring the workspace's serial-oracle /
//! compiled-engine pattern.
//!
//! ```
//! use eip_bayes::{BayesNet, Cpt, Node};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let bn = BayesNet::new(vec![
//!     Node {
//!         name: "A".into(),
//!         cardinality: 2,
//!         parents: vec![],
//!         cpt: Cpt::from_probs(2, vec![], vec![0.6, 0.4]),
//!     },
//!     Node {
//!         name: "B".into(),
//!         cardinality: 2,
//!         parents: vec![0],
//!         cpt: Cpt::from_probs(2, vec![2], vec![0.9, 0.1, 0.2, 0.8]),
//!     },
//! ]);
//! let plan = bn.compile();
//! let mut row = [0u8; 2];
//! let mut rng = StdRng::seed_from_u64(1);
//! plan.sample_into(&mut row, &mut rng);
//! assert!(row[0] < 2 && row[1] < 2);
//! ```

use rand::Rng;

use crate::network::BayesNet;

/// Per-node metadata of a [`SamplingPlan`]: offsets into the shared
/// flat arrays.
#[derive(Clone, Copy, Debug)]
struct PlanNode {
    /// Cardinality of this variable (≤ 256, so values fit a `u8`).
    child_card: u32,
    /// First slot of this node's parents/strides in the shared
    /// arrays.
    parents_start: u32,
    /// Number of parents.
    parents_len: u32,
    /// First slot of this node's cumulative-weight tables.
    cum_start: u32,
}

/// A [`BayesNet`] compiled for zero-allocation ancestral sampling.
/// Build one with [`BayesNet::compile`]; see the [module
/// docs](self) for the layout and the oracle relationship.
#[derive(Clone, Debug)]
pub struct SamplingPlan {
    nodes: Vec<PlanNode>,
    /// Concatenated parent variable indices, in node order.
    parents: Vec<u32>,
    /// Mixed-radix stride of each parent slot (first parent most
    /// significant, matching `Cpt::config_index`).
    strides: Vec<u32>,
    /// Concatenated cumulative weight tables:
    /// `cum[cum_start + cfg * child_card + x]` = P(X ≤ x | cfg).
    cum: Vec<f64>,
}

impl SamplingPlan {
    /// Compiles a network. Equivalent to [`BayesNet::compile`].
    ///
    /// # Panics
    /// Panics if any cardinality exceeds 256 (rows are `u8` codes) or
    /// the flat tables would overflow `u32` indexing — neither can
    /// happen for networks learned from the byte-columnar
    /// [`Dataset`](crate::data::Dataset).
    pub fn compile(bn: &BayesNet) -> Self {
        let mut nodes = Vec::with_capacity(bn.num_vars());
        let mut parents = Vec::new();
        let mut strides = Vec::new();
        let mut cum = Vec::new();
        for node in bn.nodes() {
            assert!(
                node.cardinality <= 256,
                "node {} cardinality {} exceeds the u8 row format",
                node.name,
                node.cardinality
            );
            let parents_start = parents.len();
            // stride[j] = product of the cardinalities of parents
            // after slot j (first parent most significant).
            let cards = node.cpt.parent_cards();
            for (slot, &p) in node.parents.iter().enumerate() {
                let stride: usize = cards[slot + 1..].iter().product();
                parents.push(u32::try_from(p).expect("parent index fits u32"));
                strides.push(u32::try_from(stride).expect("stride fits u32"));
            }
            let cum_start = cum.len();
            let cc = node.cardinality;
            let flat = node.cpt.flat();
            for cfg in 0..node.cpt.num_configs() {
                // The running sum must add in the same order as the
                // oracle's `weights.iter().sum()` so the final total
                // — and hence the uniform draw — is bit-identical.
                let mut running = 0.0f64;
                for &w in &flat[cfg * cc..(cfg + 1) * cc] {
                    running += w;
                    cum.push(running);
                }
            }
            nodes.push(PlanNode {
                child_card: u32::try_from(cc).expect("cardinality fits u32"),
                parents_start: u32::try_from(parents_start).expect("parent table fits u32"),
                parents_len: u32::try_from(node.parents.len()).expect("parent count fits u32"),
                cum_start: u32::try_from(cum_start).expect("weight table fits u32"),
            });
        }
        SamplingPlan {
            nodes,
            parents,
            strides,
            cum,
        }
    }

    /// Number of variables (the required row-buffer length).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Draws one full row by ancestral sampling into a reusable
    /// buffer: per node, one uniform draw and one binary search into
    /// the cumulative table of the parents' configuration. No
    /// allocation. Byte-identical to
    /// [`sample_row`](crate::sample::sample_row) on the same RNG
    /// stream.
    ///
    /// # Panics
    /// Panics if `row.len() != self.num_vars()`.
    pub fn sample_into<R: Rng + ?Sized>(&self, row: &mut [u8], rng: &mut R) {
        assert_eq!(row.len(), self.nodes.len(), "row width mismatch");
        for i in 0..self.nodes.len() {
            let node = self.nodes[i];
            let ps = node.parents_start as usize;
            let mut cfg = 0usize;
            for j in ps..ps + node.parents_len as usize {
                cfg += row[self.parents[j] as usize] as usize * self.strides[j] as usize;
            }
            let cc = node.child_card as usize;
            let start = node.cum_start as usize + cfg * cc;
            let cum = &self.cum[start..start + cc];
            let total = cum[cc - 1];
            debug_assert!(total > 0.0, "weights must have positive mass");
            let u = rng.gen_range(0.0..total);
            // First index whose cumulative weight exceeds the draw —
            // the inverse CDF, clamped like the oracle's numerical
            // fallback.
            let x = cum.partition_point(|&c| c <= u);
            row[i] = x.min(cc - 1) as u8;
        }
    }

    /// Convenience: draws one row into a fresh `Vec<u8>` (tests and
    /// one-off callers; hot loops should reuse a buffer with
    /// [`SamplingPlan::sample_into`]).
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let mut row = vec![0u8; self.num_vars()];
        self.sample_into(&mut row, rng);
        row
    }

    /// Draws row `index` of the keyed stream `(seed, stream)` into
    /// `row`: [`SamplingPlan::sample_into`] fed by a fresh
    /// [`KeyedRng`](eip_exec::rng::KeyedRng) for that coordinate, so
    /// the row is a pure function of `(plan, seed, stream, index)` —
    /// any worker can draw any row, in any order, and sharded
    /// consumers are byte-identical to a straight-line serial loop by
    /// construction (see [`eip_exec::rng`]).
    ///
    /// # Panics
    /// Panics if `row.len() != self.num_vars()`.
    pub fn sample_keyed_into(&self, row: &mut [u8], seed: u64, stream: u64, index: u64) {
        self.sample_into(row, &mut eip_exec::rng::KeyedRng::new(seed, stream, index));
    }
}

impl BayesNet {
    /// Compiles this network into a flat [`SamplingPlan`] for
    /// zero-allocation ancestral sampling (see [`crate::compile`]).
    pub fn compile(&self) -> SamplingPlan {
        SamplingPlan::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpt::Cpt;
    use crate::network::Node;
    use crate::sample::sample_row;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 4-node network exercising no-parent, one-parent and
    /// two-parent CPTs with mixed cardinalities.
    fn diamond() -> BayesNet {
        let n0 = Node {
            name: "A".into(),
            cardinality: 3,
            parents: vec![],
            cpt: Cpt::from_counts(3, vec![], &[5, 3, 2], 0.5),
        };
        let n1 = Node {
            name: "B".into(),
            cardinality: 2,
            parents: vec![0],
            cpt: Cpt::from_counts(2, vec![3], &[4, 1, 2, 2, 0, 3], 0.5),
        };
        let n2 = Node {
            name: "C".into(),
            cardinality: 2,
            parents: vec![0],
            cpt: Cpt::from_counts(2, vec![3], &[1, 4, 3, 1, 2, 2], 0.5),
        };
        let n3 = Node {
            name: "D".into(),
            cardinality: 4,
            parents: vec![1, 2],
            cpt: Cpt::from_counts(
                4,
                vec![2, 2],
                &[3, 1, 1, 0, 0, 2, 1, 1, 1, 1, 1, 1, 2, 0, 0, 2],
                0.5,
            ),
        };
        BayesNet::new(vec![n0, n1, n2, n3])
    }

    #[test]
    fn compiled_rows_match_oracle_stream() {
        let bn = diamond();
        let plan = bn.compile();
        assert_eq!(plan.num_vars(), 4);
        // Same seed, same stream: every row must be byte-identical to
        // the reference sampler, in lockstep.
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut row = vec![0u8; plan.num_vars()];
        for _ in 0..5_000 {
            let oracle = sample_row(&bn, &mut a);
            plan.sample_into(&mut row, &mut b);
            let got: Vec<usize> = row.iter().map(|&x| x as usize).collect();
            assert_eq!(got, oracle);
        }
    }

    #[test]
    fn compiled_sampling_matches_joint() {
        let bn = diamond();
        let plan = bn.compile();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000;
        let mut count_a0 = 0u32;
        let mut row = vec![0u8; plan.num_vars()];
        for _ in 0..n {
            plan.sample_into(&mut row, &mut rng);
            if row[0] == 0 {
                count_a0 += 1;
            }
        }
        let freq = count_a0 as f64 / n as f64;
        let expect = (5.0 + 0.5) / (10.0 + 1.5); // counts 5/10, alpha 0.5
        assert!((freq - expect).abs() < 0.01, "{freq} vs {expect}");
    }

    #[test]
    fn sample_row_convenience_matches_sample_into() {
        let plan = diamond().compile();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut buf = vec![0u8; plan.num_vars()];
        plan.sample_into(&mut buf, &mut a);
        assert_eq!(plan.sample_row(&mut b), buf);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_row_width() {
        let plan = diamond().compile();
        let mut rng = StdRng::seed_from_u64(1);
        plan.sample_into(&mut [0u8; 2], &mut rng);
    }
}
