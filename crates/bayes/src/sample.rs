//! Sampling from the network.
//!
//! Unconstrained candidate generation (§5.5's 1M scan targets) uses
//! plain ancestral sampling: because parents always precede children,
//! sampling left to right in index order is already topological.
//!
//! Constrained generation ("optionally constrained to certain segment
//! values", §4.4) uses *exact* conditional sampling: variables are
//! sampled in order, each from its exact posterior given the evidence
//! *and* the values sampled so far. This is forward-filtering with
//! variable elimination at each step — exact, at the price of one VE
//! run per free variable per sample, which is fine at Entropy/IP's
//! model sizes (≤ a dozen variables, ≤ ~25 states each).

use rand::Rng;

use crate::infer::{posterior_marginals, Evidence};
use crate::network::BayesNet;

/// Draws an index from a discrete distribution given as
/// (possibly unnormalized) non-negative weights.
///
/// # Panics
/// Panics if the weights sum to zero or contain a negative value.
pub fn sample_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1 // numerical fallback
}

/// Draws one full row by ancestral sampling.
pub fn sample_row<R: Rng + ?Sized>(bn: &BayesNet, rng: &mut R) -> Vec<usize> {
    let mut row = Vec::with_capacity(bn.num_vars());
    for node in bn.nodes() {
        let pv: Vec<usize> = node.parents.iter().map(|&p| row[p]).collect();
        let dist = node.cpt.row(&pv);
        row.push(sample_index(dist, rng));
    }
    row
}

/// Draws one full row from the exact posterior given evidence.
/// Evidence variables take their observed values verbatim.
///
/// # Panics
/// Panics if the evidence has zero probability under the model.
pub fn sample_conditional<R: Rng + ?Sized>(
    bn: &BayesNet,
    evidence: &Evidence,
    rng: &mut R,
) -> Vec<usize> {
    let mut fixed: Evidence = evidence.clone();
    let mut row = vec![usize::MAX; bn.num_vars()];
    for &(v, val) in evidence {
        row[v] = val;
    }
    for i in 0..bn.num_vars() {
        if row[i] != usize::MAX {
            continue;
        }
        let marginals = posterior_marginals(bn, &fixed);
        let x = sample_index(&marginals[i], rng);
        row[i] = x;
        fixed.push((i, x));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpt::Cpt;
    use crate::network::Node;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain2() -> BayesNet {
        let n0 = Node {
            name: "A".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(2, vec![], vec![0.6, 0.4]),
        };
        let n1 = Node {
            name: "B".into(),
            cardinality: 2,
            parents: vec![0],
            cpt: Cpt::from_probs(2, vec![2], vec![0.9, 0.1, 0.2, 0.8]),
        };
        BayesNet::new(vec![n0, n1])
    }

    #[test]
    fn sample_index_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[sample_index(&[0.5, 0.3, 0.2], &mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.5).abs() < 0.02);
        assert!((counts[1] as f64 / 30_000.0 - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.2).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn sample_index_rejects_zero_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_index(&[0.0, 0.0], &mut rng);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn ancestral_sampling_matches_joint() {
        let bn = chain2();
        let mut rng = StdRng::seed_from_u64(7);
        let mut joint = [[0u32; 2]; 2];
        let n = 50_000;
        for _ in 0..n {
            let row = sample_row(&bn, &mut rng);
            joint[row[0]][row[1]] += 1;
        }
        for a in 0..2 {
            for b in 0..2 {
                let freq = joint[a][b] as f64 / n as f64;
                let expect = bn.probability_row(&[a, b]);
                assert!(
                    (freq - expect).abs() < 0.01,
                    "({a},{b}): {freq} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn conditional_sampling_respects_evidence() {
        let bn = chain2();
        let mut rng = StdRng::seed_from_u64(3);
        // Condition on the *child*; check the parent's sampled
        // distribution matches the exact posterior (evidence flowing
        // backwards).
        let evidence = vec![(1usize, 1usize)];
        let exact = posterior_marginals(&bn, &evidence)[0].clone();
        let n = 20_000;
        let mut count0 = 0u32;
        for _ in 0..n {
            let row = sample_conditional(&bn, &evidence, &mut rng);
            assert_eq!(row[1], 1, "evidence must be respected");
            if row[0] == 0 {
                count0 += 1;
            }
        }
        let freq = count0 as f64 / n as f64;
        assert!((freq - exact[0]).abs() < 0.02, "{freq} vs {}", exact[0]);
    }

    #[test]
    fn conditional_with_no_evidence_equals_ancestral() {
        let bn = chain2();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut count = 0u32;
        for _ in 0..n {
            let row = sample_conditional(&bn, &vec![], &mut rng);
            if row == [0, 0] {
                count += 1;
            }
        }
        let freq = count as f64 / n as f64;
        assert!((freq - 0.54).abs() < 0.02);
    }
}
