//! The Bayesian network structure: nodes, parents, CPTs.

use crate::cpt::Cpt;

/// One variable of the network.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Human-readable name (Entropy/IP uses segment letters "A".."K").
    pub name: String,
    /// Cardinality of this variable.
    pub cardinality: usize,
    /// Parent variable indices. The Entropy/IP ordering constraint
    /// guarantees all parents have smaller indices.
    pub parents: Vec<usize>,
    /// `P(X | parents)`.
    pub cpt: Cpt,
}

/// A discrete Bayesian network whose node order is a topological
/// order (parents always precede children), as guaranteed by the
/// Entropy/IP learning constraint (§4.4).
#[derive(Clone, Debug, PartialEq)]
pub struct BayesNet {
    nodes: Vec<Node>,
}

impl BayesNet {
    /// Assembles a network, validating the ordering constraint and
    /// CPT shapes.
    ///
    /// # Panics
    /// Panics if a parent index is not strictly smaller than its
    /// child's index, or a CPT's shape disagrees with the declared
    /// parents/cardinalities.
    pub fn new(nodes: Vec<Node>) -> Self {
        Self::try_new(nodes).expect("invalid network")
    }

    /// Fallible twin of [`BayesNet::new`] for deserialization paths,
    /// which must report an inconsistent network (ordering violation,
    /// CPT shape disagreement) as an error, not a panic.
    pub fn try_new(nodes: Vec<Node>) -> Result<Self, String> {
        for (i, node) in nodes.iter().enumerate() {
            if node.cardinality == 0 {
                return Err(format!("node {i} has zero cardinality"));
            }
            if node.cpt.child_card() != node.cardinality {
                return Err(format!("node {i}: CPT child cardinality mismatch"));
            }
            if node.cpt.parent_cards().len() != node.parents.len() {
                return Err(format!("node {i}: CPT parent count mismatch"));
            }
            for (slot, &p) in node.parents.iter().enumerate() {
                if p >= i {
                    return Err(format!("node {i}: parent {p} violates ordering constraint"));
                }
                if node.cpt.parent_cards()[slot] != nodes[p].cardinality {
                    return Err(format!("node {i}: parent {p} cardinality mismatch"));
                }
            }
        }
        Ok(BayesNet { nodes })
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Borrow all nodes.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed edges `(parent, child)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in &node.parents {
                out.push((p, i));
            }
        }
        out
    }

    /// Log-likelihood of one fully observed row under the network.
    ///
    /// # Panics
    /// Panics if the row width or any value is out of range.
    pub fn log_likelihood_row(&self, row: &[usize]) -> f64 {
        assert_eq!(row.len(), self.nodes.len(), "row width mismatch");
        let mut ll = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            let pv: Vec<usize> = node.parents.iter().map(|&p| row[p]).collect();
            ll += node.cpt.prob(row[i], &pv).ln();
        }
        ll
    }

    /// The joint probability of one fully observed row.
    pub fn probability_row(&self, row: &[usize]) -> f64 {
        self.log_likelihood_row(row).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny rain/sprinkler/wet-grass style chain X0 -> X1.
    pub(crate) fn chain2() -> BayesNet {
        let n0 = Node {
            name: "X0".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(2, vec![], vec![0.6, 0.4]),
        };
        let n1 = Node {
            name: "X1".into(),
            cardinality: 2,
            parents: vec![0],
            cpt: Cpt::from_probs(2, vec![2], vec![0.9, 0.1, 0.2, 0.8]),
        };
        BayesNet::new(vec![n0, n1])
    }

    #[test]
    fn joint_probability_factorizes() {
        let bn = chain2();
        assert!((bn.probability_row(&[0, 0]) - 0.6 * 0.9).abs() < 1e-12);
        assert!((bn.probability_row(&[1, 1]) - 0.4 * 0.8).abs() < 1e-12);
        // All four joint entries sum to 1.
        let total: f64 = (0..2)
            .flat_map(|a| (0..2).map(move |b| (a, b)))
            .map(|(a, b)| bn.probability_row(&[a, b]))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_enumerated() {
        let bn = chain2();
        assert_eq!(bn.edges(), vec![(0, 1)]);
        assert_eq!(bn.num_vars(), 2);
    }

    #[test]
    #[should_panic(expected = "ordering constraint")]
    fn rejects_forward_parents() {
        let n0 = Node {
            name: "X0".into(),
            cardinality: 2,
            parents: vec![0], // self/forward reference
            cpt: Cpt::from_probs(2, vec![2], vec![0.5, 0.5, 0.5, 0.5]),
        };
        BayesNet::new(vec![n0]);
    }

    #[test]
    #[should_panic(expected = "cardinality mismatch")]
    fn rejects_bad_cpt_shape() {
        let n0 = Node {
            name: "X0".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(3, vec![], vec![0.2, 0.3, 0.5]),
        };
        BayesNet::new(vec![n0]);
    }
}
