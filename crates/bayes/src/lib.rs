//! Discrete Bayesian networks for Entropy/IP (§4.4), hand-rolled.
//!
//! The paper models segment-coded IPv6 addresses with a Bayesian
//! network learned by the BNFinder tool (Wilczyński & Dojer 2009),
//! constrained so that "given segment k can only depend on previous
//! segments < k". No mature Rust BN crate exists (the calibration
//! notes say as much), so this crate implements the full stack from
//! scratch:
//!
//! * [`data`] — categorical datasets (rows of small integer codes).
//! * [`cpt`] — conditional probability tables with Laplace smoothing.
//! * [`learn`] — score-based structure learning: per-node exhaustive
//!   search over admissible parent sets (subsets of *earlier*
//!   variables, bounded in-degree) under the BIC/MDL score, with the
//!   Dojer-style admissible bound that lets the search stop early —
//!   the same idea that makes BNFinder exact yet fast.
//! * [`factor`] / [`infer`] — factors and exact inference by variable
//!   elimination, powering the paper's "conditional probability
//!   browser" (evidential reasoning flows backwards, e.g. clicking
//!   segment J's value updates segment C in its Fig. 1(c)).
//! * [`sample`] — ancestral sampling, plus exact conditional sampling
//!   used for constrained candidate generation (§4.4: "generate
//!   candidate addresses that match the model, optionally constrained
//!   to certain segment values").
//!
//! The ordering constraint means every network is already in
//! topological order, which keeps sampling and learning simple and
//! makes the structure search exact rather than heuristic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpt;
pub mod data;
pub mod factor;
pub mod infer;
pub mod learn;
pub mod network;
pub mod sample;

pub use cpt::Cpt;
pub use data::Dataset;
pub use factor::Factor;
pub use infer::{joint_probability, posterior_marginals, Evidence};
pub use learn::{learn_structure, LearnOptions};
pub use network::{BayesNet, Node};
pub use sample::{sample_conditional, sample_row};
