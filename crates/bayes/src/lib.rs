//! Discrete Bayesian networks for Entropy/IP (§4.4), hand-rolled.
//!
//! The paper models segment-coded IPv6 addresses with a Bayesian
//! network learned by the BNFinder tool (Wilczyński & Dojer 2009),
//! constrained so that "given segment k can only depend on previous
//! segments < k". No mature Rust BN crate exists (the calibration
//! notes say as much), so this crate implements the full stack from
//! scratch:
//!
//! * [`data`] — categorical datasets, stored as per-variable byte
//!   columns (the counting engines walk columns, not rows).
//! * [`cpt`] — conditional probability tables with Laplace smoothing.
//! * [`learn`] — score-based structure learning: per-node exhaustive
//!   search over admissible parent sets (subsets of *earlier*
//!   variables, bounded in-degree) under the BIC/MDL score, with the
//!   Dojer-style admissible bound that lets the search stop early —
//!   the same idea that makes BNFinder exact yet fast.
//! * [`counts`] — the dense contingency engine behind sharded
//!   learning: per child, one pass over the columns (sharded on an
//!   [`eip_exec::Scheduler`], shard arrays merged by exact integer
//!   addition) counts the joint of every maximum-size candidate
//!   family; smaller candidates are scored by marginalizing a
//!   superset table, and the winner's table feeds the CPT directly.
//! * [`factor`] / [`infer`] — factors and exact inference by variable
//!   elimination, powering the paper's "conditional probability
//!   browser" (evidential reasoning flows backwards, e.g. clicking
//!   segment J's value updates segment C in its Fig. 1(c)).
//! * [`sample`] — ancestral sampling, plus exact conditional sampling
//!   used for constrained candidate generation (§4.4: "generate
//!   candidate addresses that match the model, optionally constrained
//!   to certain segment values").
//! * [`compile`] — the compile-then-sample fast path: a trained
//!   network compiles once into a flat [`SamplingPlan`] (per-node
//!   cumulative-weight tables for every parent configuration,
//!   precomputed mixed-radix strides, topological order baked in), so
//!   drawing a row is one uniform draw plus one binary search per
//!   node into a reusable `&mut [u8]` buffer — no allocation and no
//!   CPT lookups on the hot loop.
//! * [`serial`] — the endian-stable binary wire layer (little-endian
//!   primitives, length-prefixed strings, CPT probabilities as raw
//!   f64 bits) behind model persistence: `entropy_ip::store` frames
//!   these bytes into the versioned `.eipm` model file the
//!   `eip serve` daemon loads.
//!
//! The ordering constraint means every network is already in
//! topological order, which keeps sampling and learning simple and
//! makes the structure search exact rather than heuristic.
//!
//! ## Fast engine + oracle pattern
//!
//! Both hot paths ship two implementations behind one result,
//! mirroring the workspace's mining refactor:
//!
//! * **Structure learning** ([`learn_structure`], switched by
//!   [`LearnOptions::parallelism`]): the serial oracle re-scans the
//!   data per candidate through a `HashMap` and stays the reference
//!   implementation, while the sharded count-reuse engine counts each
//!   child's maximum-size candidate families in one sharded column
//!   pass and derives every smaller candidate (and the final CPT)
//!   from those dense tables by marginalization.
//! * **Sampling** (compile-then-sample): [`sample_row`] is the
//!   allocating reference sampler; [`BayesNet::compile`] bakes the
//!   same inverse-CDF semantics into a flat [`SamplingPlan`] whose
//!   rows are byte-identical to the oracle's on the same RNG stream.
//!
//! Both engine pairs share their decision semantics exactly, so fast
//! and oracle paths produce identical output — asserted by the
//! equivalence proptests in `tests/proptests.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod counts;
pub mod cpt;
pub mod data;
pub mod factor;
pub mod infer;
pub mod learn;
pub mod network;
pub mod sample;
pub mod serial;

pub use compile::SamplingPlan;
pub use counts::{count_families, family_score_dense, FamilyTable};
pub use cpt::Cpt;
pub use data::Dataset;
pub use factor::Factor;
pub use infer::{joint_probability, posterior_marginals, Evidence};
pub use learn::{learn_structure, learn_structure_sharded, LearnOptions};
pub use network::{BayesNet, Node};
pub use sample::{sample_conditional, sample_row};
