//! Categorical datasets: rows of small integer codes.
//!
//! After segment mining, Entropy/IP re-writes each address as a
//! vector of categorical codes, one per segment (§4.3: "we represent
//! IPs as instances of random vectors, where each dimension
//! corresponds to segment k and takes categorical values that
//! reference V_k"). [`Dataset`] is that table.

/// A table of categorical observations.
///
/// Row-major storage: `rows[r][v]` is the code (in
/// `0..cardinalities[v]`) of variable `v` in observation `r`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    cardinalities: Vec<usize>,
    rows: Vec<Vec<usize>>,
}

impl Dataset {
    /// Creates a dataset, validating every code against its
    /// variable's cardinality.
    ///
    /// # Panics
    /// Panics if any cardinality is zero, any row has the wrong
    /// width, or any code is out of range.
    pub fn new(cardinalities: Vec<usize>, rows: Vec<Vec<usize>>) -> Self {
        assert!(cardinalities.iter().all(|&k| k > 0), "zero cardinality");
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cardinalities.len(), "row {r} has wrong width");
            for (v, (&code, &k)) in row.iter().zip(&cardinalities).enumerate() {
                assert!(code < k, "row {r}, var {v}: code {code} >= cardinality {k}");
            }
        }
        Dataset {
            cardinalities,
            rows,
        }
    }

    /// Number of variables (columns).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.cardinalities.len()
    }

    /// Number of observations (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cardinality of variable `v`.
    #[inline]
    pub fn cardinality(&self, v: usize) -> usize {
        self.cardinalities[v]
    }

    /// All cardinalities.
    #[inline]
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Borrow the observations.
    #[inline]
    pub fn rows(&self) -> &[Vec<usize>] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_codes() {
        let d = Dataset::new(vec![2, 3], vec![vec![0, 2], vec![1, 0]]);
        assert_eq!(d.num_vars(), 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.cardinality(1), 3);
    }

    #[test]
    #[should_panic(expected = "code 3 >= cardinality 3")]
    fn rejects_out_of_range_codes() {
        Dataset::new(vec![2, 3], vec![vec![0, 3]]);
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn rejects_ragged_rows() {
        Dataset::new(vec![2, 3], vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "zero cardinality")]
    fn rejects_zero_cardinality() {
        Dataset::new(vec![2, 0], vec![]);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let d = Dataset::new(vec![4], vec![]);
        assert!(d.is_empty());
    }
}
