//! Categorical datasets: columns of small integer codes.
//!
//! After segment mining, Entropy/IP re-writes each address as a
//! vector of categorical codes, one per segment (§4.3: "we represent
//! IPs as instances of random vectors, where each dimension
//! corresponds to segment k and takes categorical values that
//! reference V_k"). [`Dataset`] is that table.
//!
//! Storage is **columnar**: one `Vec<u8>` per variable. Every scoring
//! and counting pass in [`crate::learn`] and [`crate::counts`] walks
//! a handful of columns in lockstep, so columns keep the inner loops
//! on contiguous bytes (a row-major `Vec<Vec<usize>>` layout pays a
//! pointer chase plus a 8× memory blow-up per access). Codes are
//! bytes, which bounds variable cardinality at 256 — far above the
//! mined dictionary sizes (≤ ~40) this crate models.

/// A table of categorical observations, stored column-major.
///
/// `column(v)[r]` is the code (in `0..cardinality(v)`) of variable
/// `v` in observation `r`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    cardinalities: Vec<usize>,
    columns: Vec<Vec<u8>>,
    len: usize,
}

impl Dataset {
    /// Creates a dataset from row-major data, validating every code
    /// against its variable's cardinality.
    ///
    /// # Panics
    /// Panics if any cardinality is zero or exceeds 256, any row has
    /// the wrong width, or any code is out of range.
    pub fn new(cardinalities: Vec<usize>, rows: Vec<Vec<usize>>) -> Self {
        Self::check_cards(&cardinalities);
        let mut columns: Vec<Vec<u8>> = cardinalities
            .iter()
            .map(|_| Vec::with_capacity(rows.len()))
            .collect();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cardinalities.len(), "row {r} has wrong width");
            for (v, (&code, &k)) in row.iter().zip(&cardinalities).enumerate() {
                assert!(code < k, "row {r}, var {v}: code {code} >= cardinality {k}");
                columns[v].push(code as u8);
            }
        }
        Dataset {
            cardinalities,
            columns,
            len: rows.len(),
        }
    }

    /// Creates a dataset directly from per-variable columns (the
    /// sharded encode path builds these without ever materializing
    /// rows).
    ///
    /// # Panics
    /// Panics if any cardinality is zero or exceeds 256, the column
    /// count or lengths disagree, or any code is out of range.
    pub fn from_columns(cardinalities: Vec<usize>, columns: Vec<Vec<u8>>) -> Self {
        Self::check_cards(&cardinalities);
        assert_eq!(
            columns.len(),
            cardinalities.len(),
            "column count mismatches cardinalities"
        );
        let len = columns.first().map_or(0, Vec::len);
        for (v, (col, &k)) in columns.iter().zip(&cardinalities).enumerate() {
            assert_eq!(col.len(), len, "column {v} has wrong length");
            if let Some(r) = col.iter().position(|&code| code as usize >= k) {
                panic!(
                    "row {r}, var {v}: code {} >= cardinality {k}",
                    col[r] as usize
                );
            }
        }
        Dataset {
            cardinalities,
            columns,
            len,
        }
    }

    fn check_cards(cardinalities: &[usize]) {
        assert!(cardinalities.iter().all(|&k| k > 0), "zero cardinality");
        assert!(
            cardinalities.iter().all(|&k| k <= 256),
            "cardinality above 256 unsupported (codes are bytes)"
        );
    }

    /// Number of variables (columns).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.cardinalities.len()
    }

    /// Number of observations (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cardinality of variable `v`.
    #[inline]
    pub fn cardinality(&self, v: usize) -> usize {
        self.cardinalities[v]
    }

    /// All cardinalities.
    #[inline]
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Variable `v`'s observations, one byte code per row.
    #[inline]
    pub fn column(&self, v: usize) -> &[u8] {
        &self.columns[v]
    }

    /// One observation as a code row (allocates; the hot paths read
    /// [`Dataset::column`] directly instead).
    pub fn row(&self, r: usize) -> Vec<usize> {
        self.columns.iter().map(|col| col[r] as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_codes() {
        let d = Dataset::new(vec![2, 3], vec![vec![0, 2], vec![1, 0]]);
        assert_eq!(d.num_vars(), 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.cardinality(1), 3);
        assert_eq!(d.column(0), &[0, 1]);
        assert_eq!(d.column(1), &[2, 0]);
        assert_eq!(d.row(1), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "code 3 >= cardinality 3")]
    fn rejects_out_of_range_codes() {
        Dataset::new(vec![2, 3], vec![vec![0, 3]]);
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn rejects_ragged_rows() {
        Dataset::new(vec![2, 3], vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "zero cardinality")]
    fn rejects_zero_cardinality() {
        Dataset::new(vec![2, 0], vec![]);
    }

    #[test]
    #[should_panic(expected = "cardinality above 256")]
    fn rejects_oversized_cardinality() {
        Dataset::new(vec![2, 300], vec![]);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let d = Dataset::new(vec![4], vec![]);
        assert!(d.is_empty());
    }

    #[test]
    fn from_columns_matches_row_construction() {
        let by_rows = Dataset::new(vec![2, 3], vec![vec![0, 2], vec![1, 0], vec![1, 1]]);
        let by_cols = Dataset::from_columns(vec![2, 3], vec![vec![0, 1, 1], vec![2, 0, 1]]);
        assert_eq!(by_rows, by_cols);
        assert_eq!(by_cols.len(), 3);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_columns_rejects_ragged_columns() {
        Dataset::from_columns(vec![2, 2], vec![vec![0, 1], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "row 1, var 0: code 2 >= cardinality 2")]
    fn from_columns_rejects_out_of_range_codes() {
        Dataset::from_columns(vec![2], vec![vec![0, 2]]);
    }

    #[test]
    fn from_columns_with_no_variables_is_empty() {
        let d = Dataset::from_columns(vec![], vec![]);
        assert_eq!(d.num_vars(), 0);
        assert!(d.is_empty());
    }
}
