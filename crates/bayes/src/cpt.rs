//! Conditional probability tables (CPTs).
//!
//! Each BN node holds `P(X | parents)` as a dense table: one
//! probability row per joint parent configuration. Rows are estimated
//! from data by maximum likelihood with Laplace (add-α) smoothing so
//! that generation never dead-ends on an unseen configuration.

/// A conditional probability table for one variable.
///
/// Parent configurations are indexed in mixed radix with the *first
/// listed parent as the most significant digit*; see
/// [`Cpt::config_index`].
#[derive(Clone, Debug, PartialEq)]
pub struct Cpt {
    /// Cardinality of the child variable.
    child_card: usize,
    /// Cardinalities of the parents, in parent order.
    parent_cards: Vec<usize>,
    /// `probs[cfg * child_card + x] = P(X = x | parents = cfg)`.
    probs: Vec<f64>,
}

impl Cpt {
    /// Builds a CPT from counts with Laplace smoothing `alpha`
    /// (`alpha = 0` gives plain maximum likelihood; unseen
    /// configurations then fall back to uniform).
    ///
    /// `counts[cfg * child_card + x]` = number of observations with
    /// parents in configuration `cfg` and child value `x`.
    ///
    /// # Panics
    /// Panics if `counts.len() != child_card * num_configs` or
    /// `child_card == 0`.
    pub fn from_counts(
        child_card: usize,
        parent_cards: Vec<usize>,
        counts: &[u64],
        alpha: f64,
    ) -> Self {
        assert!(child_card > 0, "child cardinality must be positive");
        let num_configs: usize = parent_cards.iter().product::<usize>().max(1);
        assert_eq!(
            counts.len(),
            child_card * num_configs,
            "counts length mismatch"
        );
        let mut probs = vec![0.0; counts.len()];
        for cfg in 0..num_configs {
            let row = &counts[cfg * child_card..(cfg + 1) * child_card];
            let total: u64 = row.iter().sum();
            let denom = total as f64 + alpha * child_card as f64;
            for (x, &c) in row.iter().enumerate() {
                probs[cfg * child_card + x] = if denom > 0.0 {
                    (c as f64 + alpha) / denom
                } else {
                    1.0 / child_card as f64
                };
            }
        }
        Cpt {
            child_card,
            parent_cards,
            probs,
        }
    }

    /// Builds a CPT directly from probabilities (for tests and
    /// hand-written models). Each configuration row must sum to ~1.
    ///
    /// # Panics
    /// Panics on shape mismatch or a row that does not sum to 1
    /// within 1e-6.
    pub fn from_probs(child_card: usize, parent_cards: Vec<usize>, probs: Vec<f64>) -> Self {
        Self::try_from_probs(child_card, parent_cards, probs).expect("invalid CPT")
    }

    /// Fallible twin of [`Cpt::from_probs`] for deserialization
    /// paths, which must report bad input (shape mismatch, a row not
    /// summing to 1 within 1e-6, NaN probabilities) as an error, not
    /// a panic.
    pub fn try_from_probs(
        child_card: usize,
        parent_cards: Vec<usize>,
        probs: Vec<f64>,
    ) -> Result<Self, String> {
        if child_card == 0 {
            return Err("child cardinality must be positive".into());
        }
        let num_configs: usize = parent_cards.iter().product::<usize>().max(1);
        if probs.len() != child_card * num_configs {
            return Err(format!(
                "probs length {} does not match {child_card} child values × {num_configs} configs",
                probs.len()
            ));
        }
        for cfg in 0..num_configs {
            let s: f64 = probs[cfg * child_card..(cfg + 1) * child_card].iter().sum();
            let dev = (s - 1.0).abs();
            // The explicit NaN arm keeps poisoned probabilities from
            // sneaking past the tolerance comparison.
            if dev.is_nan() || dev >= 1e-6 {
                return Err(format!("config {cfg} sums to {s}"));
            }
        }
        Ok(Cpt {
            child_card,
            parent_cards,
            probs,
        })
    }

    /// Child cardinality.
    #[inline]
    pub fn child_card(&self) -> usize {
        self.child_card
    }

    /// Parent cardinalities.
    #[inline]
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// Number of parent configurations.
    #[inline]
    pub fn num_configs(&self) -> usize {
        self.parent_cards.iter().product::<usize>().max(1)
    }

    /// Mixed-radix index of a parent value assignment (first parent
    /// most significant).
    ///
    /// # Panics
    /// Panics if the assignment length or any value is out of range.
    pub fn config_index(&self, parent_values: &[usize]) -> usize {
        assert_eq!(
            parent_values.len(),
            self.parent_cards.len(),
            "wrong parent count"
        );
        let mut idx = 0usize;
        for (&v, &k) in parent_values.iter().zip(&self.parent_cards) {
            assert!(v < k, "parent value {v} out of range {k}");
            idx = idx * k + v;
        }
        idx
    }

    /// `P(X = x | parents = parent_values)`.
    pub fn prob(&self, x: usize, parent_values: &[usize]) -> f64 {
        assert!(x < self.child_card, "child value out of range");
        let cfg = self.config_index(parent_values);
        self.probs[cfg * self.child_card + x]
    }

    /// The distribution row for one parent configuration.
    pub fn row(&self, parent_values: &[usize]) -> &[f64] {
        let cfg = self.config_index(parent_values);
        &self.probs[cfg * self.child_card..(cfg + 1) * self.child_card]
    }

    /// Flat access for factor construction:
    /// `flat()[cfg * child_card + x]`.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_mle() {
        // No parents; counts 3:1 -> probs 0.75/0.25.
        let cpt = Cpt::from_counts(2, vec![], &[3, 1], 0.0);
        assert!((cpt.prob(0, &[]) - 0.75).abs() < 1e-12);
        assert!((cpt.prob(1, &[]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn laplace_smoothing_lifts_zeros() {
        let cpt = Cpt::from_counts(2, vec![], &[4, 0], 1.0);
        assert!((cpt.prob(0, &[]) - 5.0 / 6.0).abs() < 1e-12);
        assert!((cpt.prob(1, &[]) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_configuration_is_uniform_without_smoothing() {
        // Parent config 1 never observed.
        let cpt = Cpt::from_counts(2, vec![2], &[3, 1, 0, 0], 0.0);
        assert!((cpt.prob(0, &[1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_index_mixed_radix() {
        let cpt = Cpt::from_counts(2, vec![3, 2], &[1; 12], 0.0);
        assert_eq!(cpt.num_configs(), 6);
        assert_eq!(cpt.config_index(&[0, 0]), 0);
        assert_eq!(cpt.config_index(&[0, 1]), 1);
        assert_eq!(cpt.config_index(&[1, 0]), 2);
        assert_eq!(cpt.config_index(&[2, 1]), 5);
    }

    #[test]
    fn rows_sum_to_one() {
        let cpt = Cpt::from_counts(3, vec![2], &[5, 2, 1, 0, 7, 3], 0.5);
        for cfg in [&[0usize][..], &[1]] {
            let s: f64 = cpt.row(cfg).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn conditional_rows_reflect_counts() {
        let cpt = Cpt::from_counts(2, vec![2], &[9, 1, 2, 8], 0.0);
        assert!((cpt.prob(0, &[0]) - 0.9).abs() < 1e-12);
        assert!((cpt.prob(1, &[1]) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "counts length mismatch")]
    fn shape_checked() {
        Cpt::from_counts(2, vec![2], &[1, 2, 3], 0.0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn from_probs_checks_normalization() {
        Cpt::from_probs(2, vec![], vec![0.9, 0.2]);
    }
}
