//! Endian-stable binary serialization for Bayesian networks.
//!
//! The model service (`entropy_ip::store` and the `eip_serve`
//! daemon) persists trained models to disk so that training happens
//! once per network and queries are served millions of times. The
//! build environment is offline (no serde), so this module hand-rolls
//! the wire layer: a tiny set of little-endian primitives plus
//! [`write_net`]/[`read_net`] for a whole [`BayesNet`]. Floats travel
//! as their IEEE-754 bit patterns ([`f64::to_bits`]), so a round trip
//! reproduces every CPT entry *bit for bit* — the property the
//! serialization proptests pin (identical CPT bits, identical
//! compiled [`SamplingPlan`](crate::SamplingPlan) rows).
//!
//! The encoding is deliberately boring and versionless at this layer:
//! framing, magic numbers, format versions, and fingerprints belong
//! to the container format (`entropy_ip::store`), which owns the
//! compatibility story. Everything here is length-prefixed, so a
//! reader always knows how far to walk, and every read is
//! bounds-checked — a truncated or corrupt buffer yields an error
//! `String` naming the field that failed, never a panic.

use crate::cpt::Cpt;
use crate::network::{BayesNet, Node};

/// Bounds-checked cursor over a serialized byte buffer.
///
/// All integers are little-endian; strings are u32-length-prefixed
/// UTF-8. Errors are human-readable `String`s naming the field being
/// read (the container wraps them into its own error type).
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated at byte {}: need {n} more bytes for {what}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian u128.
    pub fn u128(&mut self, what: &str) -> Result<u128, String> {
        Ok(u128::from_le_bytes(
            self.take(16, what)?.try_into().unwrap(),
        ))
    }

    /// Reads an f64 stored as its bit pattern (exact round trip).
    pub fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a u32 that must fit in `usize` and stay under `limit`
    /// (a sanity bound against corrupt length prefixes allocating
    /// gigabytes).
    pub fn len(&mut self, limit: usize, what: &str) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        if n > limit {
            return Err(format!("{what} length {n} exceeds sanity bound {limit}"));
        }
        Ok(n)
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.len(1 << 20, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not valid UTF-8"))
    }
}

/// Appends a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u128.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an f64 as its bit pattern (exact round trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a u32-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Serializes a network: node count, then per node its name,
/// cardinality, parent indices, and raw CPT probability bits. Parent
/// cardinalities are not stored — they are recomputed from the parent
/// nodes on read, and [`BayesNet::try_new`] re-validates the ordering
/// constraint and CPT shapes, so a corrupt buffer cannot smuggle in
/// an inconsistent network.
pub fn write_net(bn: &BayesNet, out: &mut Vec<u8>) {
    put_u32(out, bn.num_vars() as u32);
    for node in bn.nodes() {
        put_str(out, &node.name);
        put_u32(out, node.cardinality as u32);
        put_u32(out, node.parents.len() as u32);
        for &p in &node.parents {
            put_u32(out, p as u32);
        }
        // CPT length is implied by cardinality × parent configs; the
        // reader recomputes it, so only the probability bits travel.
        for &p in node.cpt.flat() {
            put_f64(out, p);
        }
    }
}

/// Reads a network written by [`write_net`]. CPT probabilities are
/// reconstructed bit-exactly; shape validation happens in
/// [`BayesNet::try_new`] via [`Cpt::try_from_probs`] (which re-checks
/// row normalization, catching bit flips in the probability payload)
/// — both fallible, so even a structurally valid buffer carrying
/// non-normalized rows is an `Err`, never a panic.
pub fn read_net(r: &mut Reader<'_>) -> Result<BayesNet, String> {
    let nvars = r.len(1 << 16, "bn node count")?;
    let mut nodes: Vec<Node> = Vec::with_capacity(nvars);
    for i in 0..nvars {
        let name = r.str("node name")?;
        let cardinality = r.len(1 << 16, "node cardinality")?;
        if cardinality == 0 {
            return Err(format!("node {i}: zero cardinality"));
        }
        let nparents = r.len(64, "parent count")?;
        let mut parents = Vec::with_capacity(nparents);
        for _ in 0..nparents {
            let p = r.len(1 << 16, "parent index")?;
            if p >= i {
                return Err(format!("node {i}: parent {p} violates ordering"));
            }
            parents.push(p);
        }
        let parent_cards: Vec<usize> = parents.iter().map(|&p| nodes[p].cardinality).collect();
        let nprobs = parent_cards
            .iter()
            .try_fold(cardinality, |acc, &k| acc.checked_mul(k))
            .filter(|&n| n <= (1 << 28))
            .ok_or_else(|| format!("node {i}: CPT size overflows sanity bound"))?;
        let mut probs = Vec::with_capacity(nprobs);
        for _ in 0..nprobs {
            probs.push(r.f64("cpt probability")?);
        }
        let cpt = Cpt::try_from_probs(cardinality, parent_cards, probs)
            .map_err(|e| format!("node {i}: {e}"))?;
        nodes.push(Node {
            name,
            cardinality,
            parents,
            cpt,
        });
    }
    BayesNet::try_new(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> BayesNet {
        let n0 = Node {
            name: "A".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(2, vec![], vec![0.6, 0.4]),
        };
        let n1 = Node {
            name: "B".into(),
            cardinality: 3,
            parents: vec![0],
            cpt: Cpt::from_probs(3, vec![2], vec![0.5, 0.3, 0.2, 0.1, 0.2, 0.7]),
        };
        let n2 = Node {
            name: "C".into(),
            cardinality: 2,
            parents: vec![0, 1],
            cpt: Cpt::from_probs(
                2,
                vec![2, 3],
                vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4, 0.5, 0.5, 0.4, 0.6],
            ),
        };
        BayesNet::new(vec![n0, n1, n2])
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let bn = chain3();
        let mut buf = Vec::new();
        write_net(&bn, &mut buf);
        let back = read_net(&mut Reader::new(&buf)).expect("read");
        assert_eq!(back, bn);
        // CPT bits, not just approximate values.
        for (a, b) in bn.nodes().iter().zip(back.nodes()) {
            let abits: Vec<u64> = a.cpt.flat().iter().map(|p| p.to_bits()).collect();
            let bbits: Vec<u64> = b.cpt.flat().iter().map(|p| p.to_bits()).collect();
            assert_eq!(abits, bbits);
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bn = chain3();
        let mut buf = Vec::new();
        write_net(&bn, &mut buf);
        for cut in [0, 1, 4, buf.len() / 2, buf.len() - 1] {
            let err = read_net(&mut Reader::new(&buf[..cut]));
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn non_normalized_row_is_an_error_not_a_panic() {
        let bn = chain3();
        let mut buf = Vec::new();
        write_net(&bn, &mut buf);
        // Node 0's first CPT probability lives right after the node
        // count, name, cardinality, and parent count; overwrite its
        // bits so the row no longer sums to 1 (and again with NaN).
        let mut r = Reader::new(&buf);
        r.u32("n").unwrap();
        r.str("name").unwrap();
        r.u32("card").unwrap();
        r.u32("nparents").unwrap();
        let pos = r.position();
        for poison in [2.5f64, f64::NAN] {
            let mut bad = buf.clone();
            bad[pos..pos + 8].copy_from_slice(&poison.to_bits().to_le_bytes());
            let err = read_net(&mut Reader::new(&bad)).unwrap_err();
            assert!(err.contains("sums to"), "poison {poison}: {err}");
        }
    }

    #[test]
    fn corrupt_parent_index_rejected() {
        let bn = chain3();
        let mut buf = Vec::new();
        write_net(&bn, &mut buf);
        // Node 1's parent index lives right after its name ("B") and
        // cardinality; flipping it to a forward reference must fail
        // cleanly. Locate it by re-reading the prefix.
        let mut r = Reader::new(&buf);
        r.u32("n").unwrap();
        r.str("name").unwrap();
        r.u32("card").unwrap();
        r.u32("nparents").unwrap();
        for _ in 0..2 {
            r.f64("p").unwrap();
        }
        r.str("name").unwrap();
        r.u32("card").unwrap();
        r.u32("nparents").unwrap();
        let pos = r.position();
        let mut bad = buf.clone();
        bad[pos..pos + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(read_net(&mut Reader::new(&bad)).is_err());
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_u128(&mut buf, u128::MAX / 3);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "Ĥ_S");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.u128("c").unwrap(), u128::MAX / 3);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str("e").unwrap(), "Ĥ_S");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8("past end").is_err());
    }
}
