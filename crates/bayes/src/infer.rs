//! Exact inference by variable elimination.
//!
//! This powers the paper's conditional probability browser: given
//! evidence on some segments (mouse clicks in its Fig. 1), compute
//! the posterior distribution of every other segment. Influence flows
//! both ways — conditioning on segment J updates upstream segment C
//! "through evidential reasoning" — which falls out of exact
//! inference for free.

use crate::factor::Factor;
use crate::network::BayesNet;

/// Evidence: `(variable index, observed value)` pairs. At most one
/// entry per variable.
pub type Evidence = Vec<(usize, usize)>;

/// Builds the evidence-restricted factor list of the network.
fn restricted_factors(bn: &BayesNet, evidence: &Evidence) -> Vec<Factor> {
    let mut factors: Vec<Factor> = bn
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let parent_cards: Vec<usize> = node
                .parents
                .iter()
                .map(|&p| bn.node(p).cardinality)
                .collect();
            Factor::from_cpt(
                i,
                node.cardinality,
                &node.parents,
                &parent_cards,
                node.cpt.flat(),
            )
        })
        .collect();
    for &(var, val) in evidence {
        factors = factors.into_iter().map(|f| f.restrict(var, val)).collect();
    }
    factors
}

/// Eliminates all variables except `keep` from the factor list and
/// returns the single remaining (unnormalized) factor over `keep`.
fn eliminate_all_but(
    bn: &BayesNet,
    mut factors: Vec<Factor>,
    keep: &[usize],
    evidence: &Evidence,
) -> Factor {
    let observed: Vec<usize> = evidence.iter().map(|&(v, _)| v).collect();
    for var in 0..bn.num_vars() {
        if keep.contains(&var) || observed.contains(&var) {
            continue;
        }
        // Multiply every factor mentioning `var`, sum it out.
        let (mentioning, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.scope().contains(&var));
        let mut prod = Factor::unit();
        for f in mentioning {
            prod = prod.product(&f);
        }
        let summed = prod.marginalize(var);
        factors = rest;
        factors.push(summed);
    }
    let mut result = Factor::unit();
    for f in factors {
        result = result.product(&f);
    }
    result
}

/// Posterior marginal distributions `P(X_i | evidence)` for every
/// variable, as one `Vec<f64>` per variable (observed variables get a
/// deterministic distribution).
///
/// # Panics
/// Panics if evidence refers to an out-of-range variable or value,
/// or if the evidence has probability zero under the model.
pub fn posterior_marginals(bn: &BayesNet, evidence: &Evidence) -> Vec<Vec<f64>> {
    for &(var, val) in evidence {
        assert!(var < bn.num_vars(), "evidence variable out of range");
        assert!(
            val < bn.node(var).cardinality,
            "evidence value out of range"
        );
    }
    let mut out = Vec::with_capacity(bn.num_vars());
    for i in 0..bn.num_vars() {
        if let Some(&(_, val)) = evidence.iter().find(|&&(v, _)| v == i) {
            let mut dist = vec![0.0; bn.node(i).cardinality];
            dist[val] = 1.0;
            out.push(dist);
            continue;
        }
        let factors = restricted_factors(bn, evidence);
        let f = eliminate_all_but(bn, factors, &[i], evidence);
        assert!(f.sum() > 0.0, "evidence has zero probability");
        let n = f.normalized();
        out.push(n.values().to_vec());
    }
    out
}

/// The probability of a joint assignment of a subset of variables:
/// `P(assignment)` with all other variables marginalized out.
///
/// This is what the paper's Table 2 tabulates (P of segment J's value
/// conditional on H and C is a ratio of two such joints).
pub fn joint_probability(bn: &BayesNet, assignment: &Evidence) -> f64 {
    if assignment.is_empty() {
        return 1.0;
    }
    let factors = restricted_factors(bn, assignment);
    let f = eliminate_all_but(bn, factors, &[], assignment);
    f.sum()
}

/// Conditional probability `P(target = value | evidence)` computed
/// as a ratio of joints. Returns `None` when the evidence itself has
/// zero probability.
pub fn conditional_probability(
    bn: &BayesNet,
    target: (usize, usize),
    evidence: &Evidence,
) -> Option<f64> {
    let pe = joint_probability(bn, evidence);
    if pe <= 0.0 {
        return None;
    }
    let mut joint = evidence.clone();
    joint.push(target);
    Some(joint_probability(bn, &joint) / pe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpt::Cpt;
    use crate::network::Node;

    /// X0 -> X1 -> X2 chain with known tables.
    fn chain3() -> BayesNet {
        let n0 = Node {
            name: "A".into(),
            cardinality: 2,
            parents: vec![],
            cpt: Cpt::from_probs(2, vec![], vec![0.7, 0.3]),
        };
        let n1 = Node {
            name: "B".into(),
            cardinality: 2,
            parents: vec![0],
            cpt: Cpt::from_probs(2, vec![2], vec![0.8, 0.2, 0.1, 0.9]),
        };
        let n2 = Node {
            name: "C".into(),
            cardinality: 2,
            parents: vec![1],
            cpt: Cpt::from_probs(2, vec![2], vec![0.6, 0.4, 0.25, 0.75]),
        };
        BayesNet::new(vec![n0, n1, n2])
    }

    /// Brute-force joint enumeration for cross-checking.
    fn brute_marginal(bn: &BayesNet, var: usize, evidence: &Evidence) -> Vec<f64> {
        let card = bn.node(var).cardinality;
        let mut dist = vec![0.0; card];
        let n = bn.num_vars();
        let cards: Vec<usize> = (0..n).map(|i| bn.node(i).cardinality).collect();
        let total: usize = cards.iter().product();
        let mut row = vec![0usize; n];
        for mut idx in 0..total {
            for i in (0..n).rev() {
                row[i] = idx % cards[i];
                idx /= cards[i];
            }
            if evidence.iter().all(|&(v, val)| row[v] == val) {
                dist[row[var]] += bn.probability_row(&row);
            }
        }
        let s: f64 = dist.iter().sum();
        dist.iter().map(|d| d / s).collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn prior_marginals_match_brute_force() {
        let bn = chain3();
        let post = posterior_marginals(&bn, &vec![]);
        for var in 0..3 {
            let brute = brute_marginal(&bn, var, &vec![]);
            for (a, b) in post[var].iter().zip(&brute) {
                assert!((a - b).abs() < 1e-10, "var {var}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn evidence_flows_backwards() {
        // Conditioning on X2 must change the posterior of X0
        // (evidential reasoning through the chain).
        let bn = chain3();
        let prior = posterior_marginals(&bn, &vec![]);
        let post = posterior_marginals(&bn, &vec![(2, 1)]);
        assert!((prior[0][0] - post[0][0]).abs() > 1e-3);
        let brute = brute_marginal(&bn, 0, &vec![(2, 1)]);
        for (a, b) in post[0].iter().zip(&brute) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn observed_variable_is_deterministic() {
        let bn = chain3();
        let post = posterior_marginals(&bn, &vec![(1, 0)]);
        assert_eq!(post[1], vec![1.0, 0.0]);
    }

    #[test]
    fn joint_probability_matches_enumeration() {
        let bn = chain3();
        // P(X0=0, X2=1) by hand: sum over X1.
        // = 0.7 * (0.8*0.4 + 0.2*0.75) = 0.7 * 0.47 = 0.329
        let p = joint_probability(&bn, &vec![(0, 0), (2, 1)]);
        assert!((p - 0.329).abs() < 1e-12, "got {p}");
        assert!((joint_probability(&bn, &vec![]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_probability_ratio() {
        let bn = chain3();
        let p = conditional_probability(&bn, (0, 0), &vec![(2, 1)]).unwrap();
        let brute = brute_marginal(&bn, 0, &vec![(2, 1)]);
        assert!((p - brute[0]).abs() < 1e-10);
    }

    #[test]
    fn multiple_evidence_vars() {
        let bn = chain3();
        let post = posterior_marginals(&bn, &vec![(0, 1), (2, 0)]);
        let brute = brute_marginal(&bn, 1, &vec![(0, 1), (2, 0)]);
        for (a, b) in post[1].iter().zip(&brute) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn marginals_sum_to_one() {
        let bn = chain3();
        for post in posterior_marginals(&bn, &vec![(2, 0)]) {
            let s: f64 = post.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
