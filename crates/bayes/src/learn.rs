//! Score-based structure learning under the Entropy/IP ordering
//! constraint.
//!
//! §4.4: "Since learning BNs from data is generally NP-hard, we
//! constrain the network so that given segment k can only depend on
//! previous segments < k." Under this constraint the global optimum
//! decomposes: each node independently picks the parent set (among
//! its predecessors) that maximizes the family score, which is the
//! insight behind BNFinder (Dojer 2006; Wilczyński & Dojer 2009).
//!
//! We use the BIC/MDL score
//!
//! ```text
//! score(X, Pa) = loglik(X | Pa) − (ln N / 2) · |Pa-configs| · (|X| − 1)
//! ```
//!
//! and search parent sets in order of increasing size with the
//! Dojer-style admissible bound: the log-likelihood term is at most 0
//! (it is a negative entropy times N), so once the *penalty alone* of
//! every candidate of size s exceeds the best total score found so
//! far, no larger set can win and the search stops. This keeps the
//! search exact without enumerating all 2^k subsets in typical cases.

use crate::cpt::Cpt;
use crate::data::Dataset;
use crate::network::{BayesNet, Node};
use std::collections::HashMap;

/// Options for [`learn_structure`].
#[derive(Clone, Debug)]
pub struct LearnOptions {
    /// Maximum number of parents per node. The paper's segment counts
    /// (6–12 variables) make 2 a good default — matching BNFinder's
    /// usual limits — but the search is exact for any bound.
    pub max_parents: usize,
    /// Laplace smoothing added when fitting the final CPTs (not used
    /// in scoring, which is pure MLE as in MDL).
    pub alpha: f64,
    /// Variable names (defaults to "X0", "X1", … when empty).
    pub names: Vec<String>,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            max_parents: 2,
            alpha: 0.5,
            names: Vec::new(),
        }
    }
}

/// Learns a Bayesian network from categorical data under the
/// ordering constraint (variable i may only have parents < i).
///
/// Returns the network with fitted (smoothed) CPTs.
///
/// # Panics
/// Panics if the dataset is empty.
pub fn learn_structure(data: &Dataset, opts: &LearnOptions) -> BayesNet {
    assert!(!data.is_empty(), "cannot learn from an empty dataset");
    let n_vars = data.num_vars();
    let mut nodes = Vec::with_capacity(n_vars);
    for i in 0..n_vars {
        let parents = best_parents(data, i, opts.max_parents);
        let cpt = fit_cpt(data, i, &parents, opts.alpha);
        let name = opts
            .names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("X{i}"));
        nodes.push(Node {
            name,
            cardinality: data.cardinality(i),
            parents,
            cpt,
        });
    }
    BayesNet::new(nodes)
}

/// The BIC family score of `child` with the given parents.
pub fn family_score(data: &Dataset, child: usize, parents: &[usize]) -> f64 {
    let counts = family_counts(data, child, parents);
    let child_card = data.cardinality(child);
    let n = data.len() as f64;
    let mut loglik = 0.0;
    let mut config_totals: HashMap<u64, u64> = HashMap::new();
    for (&key, &c) in &counts {
        let cfg = key / child_card as u64;
        *config_totals.entry(cfg).or_insert(0) += c;
    }
    for (&key, &c) in &counts {
        let cfg = key / child_card as u64;
        let total = config_totals[&cfg] as f64;
        loglik += c as f64 * ((c as f64 / total).ln());
    }
    let num_configs: f64 = parents
        .iter()
        .map(|&p| data.cardinality(p) as f64)
        .product();
    let params = num_configs * (child_card as f64 - 1.0);
    loglik - 0.5 * n.ln() * params
}

/// Exhaustive (bounded, pruned) search for the best parent set of
/// `child` among `0..child`.
fn best_parents(data: &Dataset, child: usize, max_parents: usize) -> Vec<usize> {
    let predecessors: Vec<usize> = (0..child).collect();
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_score = family_score(data, child, &[]);
    let n = data.len() as f64;
    let child_card = data.cardinality(child) as f64;

    for size in 1..=max_parents.min(predecessors.len()) {
        // Admissible bound (Dojer): the max achievable score of ANY
        // set of this size is 0 (loglik) minus the MINIMUM penalty,
        // which comes from picking the lowest-cardinality parents.
        let mut cards: Vec<f64> = predecessors
            .iter()
            .map(|&p| data.cardinality(p) as f64)
            .collect();
        cards.sort_by(f64::total_cmp);
        let min_configs: f64 = cards.iter().take(size).product();
        let min_penalty = 0.5 * n.ln() * min_configs * (child_card - 1.0);
        if -min_penalty <= best_score {
            // No set of this size (or larger: penalties grow) can
            // beat the incumbent.
            break;
        }
        for combo in combinations(&predecessors, size) {
            let s = family_score(data, child, &combo);
            // The margin must exceed floating-point accumulation
            // noise (log-likelihoods are O(N·ln k), so ties between
            // equivalent parent sets differ by ~1e-11 in practice);
            // otherwise degenerate parents (e.g. cardinality-1
            // variables) sneak in on summation-order noise.
            if s > best_score + 1e-6 * (1.0 + best_score.abs().sqrt()) {
                best_score = s;
                best_set = combo;
            }
        }
    }
    best_set
}

/// All size-`k` combinations of `items`, preserving order.
fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    if k > items.len() {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination odometer.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Sparse family counts: key = cfg * child_card + child_value.
fn family_counts(data: &Dataset, child: usize, parents: &[usize]) -> HashMap<u64, u64> {
    let child_card = data.cardinality(child) as u64;
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for row in data.rows() {
        let mut cfg: u64 = 0;
        for &p in parents {
            cfg = cfg * data.cardinality(p) as u64 + row[p] as u64;
        }
        *counts
            .entry(cfg * child_card + row[child] as u64)
            .or_insert(0) += 1;
    }
    counts
}

/// Fits a dense smoothed CPT for `child` given `parents`.
pub fn fit_cpt(data: &Dataset, child: usize, parents: &[usize], alpha: f64) -> Cpt {
    let child_card = data.cardinality(child);
    let parent_cards: Vec<usize> = parents.iter().map(|&p| data.cardinality(p)).collect();
    let num_configs: usize = parent_cards.iter().product::<usize>().max(1);
    let mut counts = vec![0u64; num_configs * child_card];
    for row in data.rows() {
        let mut cfg = 0usize;
        for &p in parents {
            cfg = cfg * data.cardinality(p) + row[p];
        }
        counts[cfg * child_card + row[child]] += 1;
    }
    Cpt::from_counts(child_card, parent_cards, &counts, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG for reproducible synthetic data.
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    /// X1 is a noisy copy of X0; X2 is independent noise.
    fn dependent_dataset(n: usize) -> Dataset {
        let mut seed = 42u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = (lcg(&mut seed) % 2) as usize;
            let x1 = if lcg(&mut seed) % 10 < 9 { x0 } else { 1 - x0 };
            let x2 = (lcg(&mut seed) % 3) as usize;
            rows.push(vec![x0, x1, x2]);
        }
        Dataset::new(vec![2, 2, 3], rows)
    }

    #[test]
    fn finds_real_dependency_and_skips_noise() {
        let data = dependent_dataset(2000);
        let bn = learn_structure(&data, &LearnOptions::default());
        assert_eq!(bn.node(0).parents, Vec::<usize>::new());
        assert_eq!(bn.node(1).parents, vec![0], "X1 should depend on X0");
        assert!(bn.node(2).parents.is_empty(), "X2 is independent noise");
    }

    #[test]
    fn fitted_cpt_matches_generating_process() {
        let data = dependent_dataset(5000);
        let bn = learn_structure(
            &data,
            &LearnOptions {
                alpha: 0.0,
                ..Default::default()
            },
        );
        // P(X1 = x0 | X0 = x0) ~ 0.9.
        let p = bn.node(1).cpt.prob(0, &[0]);
        assert!((p - 0.9).abs() < 0.05, "got {p}");
    }

    #[test]
    fn two_parent_interaction_detected() {
        // X2 = X0 XOR X1 (needs both parents; neither alone helps).
        let mut seed = 7u64;
        let mut rows = Vec::new();
        for _ in 0..3000 {
            let a = (lcg(&mut seed) % 2) as usize;
            let b = (lcg(&mut seed) % 2) as usize;
            rows.push(vec![a, b, a ^ b]);
        }
        let data = Dataset::new(vec![2, 2, 2], rows);
        let bn = learn_structure(&data, &LearnOptions::default());
        assert_eq!(bn.node(2).parents, vec![0, 1]);
    }

    #[test]
    fn max_parents_zero_yields_independent_model() {
        let data = dependent_dataset(500);
        let bn = learn_structure(
            &data,
            &LearnOptions {
                max_parents: 0,
                ..Default::default()
            },
        );
        for node in bn.nodes() {
            assert!(node.parents.is_empty());
        }
    }

    #[test]
    fn small_dataset_prefers_simplicity() {
        // With very few observations the BIC penalty should reject
        // spurious parents between independent variables.
        let mut seed = 3u64;
        let mut rows = Vec::new();
        for _ in 0..30 {
            rows.push(vec![
                (lcg(&mut seed) % 4) as usize,
                (lcg(&mut seed) % 4) as usize,
            ]);
        }
        let data = Dataset::new(vec![4, 4], rows);
        let bn = learn_structure(&data, &LearnOptions::default());
        assert!(bn.node(1).parents.is_empty());
    }

    #[test]
    fn family_score_improves_with_true_parent() {
        let data = dependent_dataset(1000);
        let with = family_score(&data, 1, &[0]);
        let without = family_score(&data, 1, &[]);
        assert!(with > without);
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let c = combinations(&[0, 1, 2, 3], 2);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![0, 3]));
        assert_eq!(combinations(&[0, 1], 3), Vec::<Vec<usize>>::new());
        assert_eq!(combinations(&[5], 1), vec![vec![5]]);
    }

    #[test]
    fn names_are_applied() {
        let data = dependent_dataset(100);
        let opts = LearnOptions {
            names: vec!["A".into(), "B".into(), "C".into()],
            ..Default::default()
        };
        let bn = learn_structure(&data, &opts);
        assert_eq!(bn.node(0).name, "A");
        assert_eq!(bn.node(2).name, "C");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(vec![2], vec![]);
        learn_structure(&data, &LearnOptions::default());
    }
}
