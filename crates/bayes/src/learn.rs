//! Score-based structure learning under the Entropy/IP ordering
//! constraint.
//!
//! §4.4: "Since learning BNs from data is generally NP-hard, we
//! constrain the network so that given segment k can only depend on
//! previous segments < k." Under this constraint the global optimum
//! decomposes: each node independently picks the parent set (among
//! its predecessors) that maximizes the family score, which is the
//! insight behind BNFinder (Dojer 2006; Wilczyński & Dojer 2009).
//!
//! We use the BIC/MDL score
//!
//! ```text
//! score(X, Pa) = loglik(X | Pa) − (ln N / 2) · |Pa-configs| · (|X| − 1)
//! ```
//!
//! and search parent sets in order of increasing size with the
//! Dojer-style admissible bound: the log-likelihood term is at most 0
//! (it is a negative entropy times N), so once the *penalty alone* of
//! every candidate of size s exceeds the best total score found so
//! far, no larger set can win and the search stops. This keeps the
//! search exact without enumerating all 2^k subsets in typical cases.
//!
//! ## Two engines, one result
//!
//! * **Serial oracle** ([`LearnOptions::parallelism`] ≤ 1): the
//!   reference implementation — one full-data pass per candidate
//!   parent set through a `HashMap` ([`family_score`]) and another
//!   per fitted CPT ([`fit_cpt`]). Simple, and the ground truth the
//!   sharded engine is verified against.
//! * **Sharded count-reuse engine** (`parallelism` > 1): per child,
//!   one sharded pass over the columns counts the dense joint of
//!   every maximum-size candidate family
//!   ([`crate::counts::count_families`]); every smaller candidate's
//!   score falls out of a superset table by marginalization, and the
//!   winner's table is fitted into the CPT directly — no further data
//!   passes. The search order, tie margin, and admissible bound are
//!   identical to the oracle's, so the learned network (structure and
//!   CPT bytes) matches at any worker count — see the equivalence
//!   proptests in `tests/proptests.rs`.

use crate::counts::{count_families, FamilyTable};
use crate::cpt::Cpt;
use crate::data::Dataset;
use crate::network::{BayesNet, Node};
use eip_exec::Scheduler;
use std::collections::HashMap;

/// Options for [`learn_structure`].
#[derive(Clone, Debug)]
pub struct LearnOptions {
    /// Maximum number of parents per node. The paper's segment counts
    /// (6–12 variables) make 2 a good default — matching BNFinder's
    /// usual limits — but the search is exact for any bound.
    pub max_parents: usize,
    /// Laplace smoothing added when fitting the final CPTs (not used
    /// in scoring, which is pure MLE as in MDL).
    pub alpha: f64,
    /// Variable names (defaults to "X0", "X1", … when empty).
    pub names: Vec<String>,
    /// Worker threads for the counting passes (clamped to ≥ 1). At 1
    /// the serial oracle runs; above 1 the sharded count-reuse engine
    /// runs on an [`eip_exec::Scheduler`]. The learned network is
    /// identical either way; only wall-clock changes.
    pub parallelism: usize,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            max_parents: 2,
            alpha: 0.5,
            names: Vec::new(),
            parallelism: 1,
        }
    }
}

/// Learns a Bayesian network from categorical data under the
/// ordering constraint (variable i may only have parents < i).
///
/// Returns the network with fitted (smoothed) CPTs. With
/// [`LearnOptions::parallelism`] > 1 the sharded count-reuse engine
/// runs (see the [module docs](self)); the result is identical to the
/// serial oracle at any worker count.
///
/// # Panics
/// Panics if the dataset is empty.
pub fn learn_structure(data: &Dataset, opts: &LearnOptions) -> BayesNet {
    if opts.parallelism > 1 {
        return learn_structure_sharded(data, opts, &Scheduler::new(opts.parallelism));
    }
    assert!(!data.is_empty(), "cannot learn from an empty dataset");
    let n_vars = data.num_vars();
    let mut nodes = Vec::with_capacity(n_vars);
    for i in 0..n_vars {
        let parents = best_parents(data, i, opts.max_parents);
        let cpt = fit_cpt(data, i, &parents, opts.alpha);
        nodes.push(Node {
            name: node_name(opts, i),
            cardinality: data.cardinality(i),
            parents,
            cpt,
        });
    }
    BayesNet::new(nodes)
}

/// Learns the network on the sharded count-reuse engine with an
/// explicit scheduler (the engine [`learn_structure`] dispatches to
/// when `parallelism` > 1, exposed for the equivalence tests).
///
/// Per child: one sharded pass counts every maximum-size family's
/// dense joint table, subset candidates are scored by marginalizing a
/// superset table, and the winning table is fitted into the CPT
/// without touching the data again. Candidate enumeration order, tie
/// margin, and the admissible bound mirror the serial oracle exactly.
///
/// # Panics
/// Panics if the dataset is empty.
pub fn learn_structure_sharded(data: &Dataset, opts: &LearnOptions, exec: &Scheduler) -> BayesNet {
    assert!(!data.is_empty(), "cannot learn from an empty dataset");
    let n_vars = data.num_vars();
    let mut nodes = Vec::with_capacity(n_vars);
    for i in 0..n_vars {
        let (parents, table) = best_family_dense(data, i, opts.max_parents, exec);
        let cpt = Cpt::from_counts(
            table.child_card(),
            table.parent_cards().to_vec(),
            table.counts(),
            opts.alpha,
        );
        nodes.push(Node {
            name: node_name(opts, i),
            cardinality: data.cardinality(i),
            parents,
            cpt,
        });
    }
    BayesNet::new(nodes)
}

fn node_name(opts: &LearnOptions, i: usize) -> String {
    opts.names
        .get(i)
        .cloned()
        .unwrap_or_else(|| format!("X{i}"))
}

/// The tie margin: an improvement must exceed floating-point
/// accumulation noise (log-likelihoods are O(N·ln k), so ties between
/// equivalent parent sets differ by ~1e-11 in practice); otherwise
/// degenerate parents (e.g. cardinality-1 variables) sneak in on
/// summation-order noise. Shared by both engines so they break ties
/// identically.
#[inline]
fn improves(score: f64, best: f64) -> bool {
    score > best + 1e-6 * (1.0 + best.abs().sqrt())
}

/// The BIC family score of `child` with the given parents.
pub fn family_score(data: &Dataset, child: usize, parents: &[usize]) -> f64 {
    let counts = family_counts(data, child, parents);
    let child_card = data.cardinality(child);
    let n = data.len() as f64;
    let mut loglik = 0.0;
    let mut config_totals: HashMap<u64, u64> = HashMap::new();
    for (&key, &c) in &counts {
        let cfg = key / child_card as u64;
        *config_totals.entry(cfg).or_insert(0) += c;
    }
    for (&key, &c) in &counts {
        let cfg = key / child_card as u64;
        let total = config_totals[&cfg] as f64;
        loglik += c as f64 * ((c as f64 / total).ln());
    }
    let num_configs: f64 = parents
        .iter()
        .map(|&p| data.cardinality(p) as f64)
        .product();
    let params = num_configs * (child_card as f64 - 1.0);
    loglik - 0.5 * n.ln() * params
}

/// Exhaustive (bounded, pruned) search for the best parent set of
/// `child` among `0..child` — the serial oracle.
fn best_parents(data: &Dataset, child: usize, max_parents: usize) -> Vec<usize> {
    let predecessors: Vec<usize> = (0..child).collect();
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_score = family_score(data, child, &[]);
    let n = data.len() as f64;
    let child_card = data.cardinality(child) as f64;

    // Sorted predecessor cardinalities, computed once: the admissible
    // bound below only ever needs the `size` smallest.
    let mut cards: Vec<f64> = predecessors
        .iter()
        .map(|&p| data.cardinality(p) as f64)
        .collect();
    cards.sort_by(f64::total_cmp);

    for size in 1..=max_parents.min(predecessors.len()) {
        // Admissible bound (Dojer): the max achievable score of ANY
        // set of this size is 0 (loglik) minus the MINIMUM penalty,
        // which comes from picking the lowest-cardinality parents.
        let min_configs: f64 = cards.iter().take(size).product();
        let min_penalty = 0.5 * n.ln() * min_configs * (child_card - 1.0);
        if -min_penalty <= best_score {
            // No set of this size (or larger: penalties grow) can
            // beat the incumbent.
            break;
        }
        for combo in combinations(&predecessors, size) {
            let s = family_score(data, child, &combo);
            if improves(s, best_score) {
                best_score = s;
                best_set = combo;
            }
        }
    }
    best_set
}

/// Count-reuse search for the best parent set of `child`: counts the
/// maximum-size families once (sharded), scores every candidate from
/// the dense tables, and returns the winner together with its table
/// (ready for CPT fitting). Enumeration order and pruning mirror
/// [`best_parents`].
fn best_family_dense(
    data: &Dataset,
    child: usize,
    max_parents: usize,
    exec: &Scheduler,
) -> (Vec<usize>, FamilyTable) {
    let predecessors: Vec<usize> = (0..child).collect();
    let m = max_parents.min(predecessors.len());
    if m == 0 {
        let table = count_families(data, child, &[Vec::new()], exec)
            .pop()
            .expect("one family requested");
        return (Vec::new(), table);
    }

    // One sharded pass: the dense joint of every size-m family.
    let families: Vec<Vec<usize>> = combinations(&predecessors, m).collect();
    let tables = count_families(data, child, &families, exec);
    let index: HashMap<&[usize], usize> = families
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_slice(), i))
        .collect();
    // The table of any candidate subset, marginalized out of its
    // lexicographically-first size-m superset (counts are exact, so
    // the choice of superset is immaterial).
    let subset_table = |set: &[usize]| -> FamilyTable {
        if let Some(&i) = index.get(set) {
            return tables[i].clone();
        }
        let mut family: Vec<usize> = set.to_vec();
        for &p in &predecessors {
            if family.len() == m {
                break;
            }
            if !set.contains(&p) {
                family.push(p);
            }
        }
        family.sort_unstable();
        tables[index[family.as_slice()]].marginalize_to(set)
    };
    // Size-m candidates are scored straight off their counted table;
    // cloning is reserved for the single winner at the end.
    let subset_score = |set: &[usize], n: usize| -> f64 {
        match index.get(set) {
            Some(&i) => tables[i].score(n),
            None => subset_table(set).score(n),
        }
    };

    let n = data.len();
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_score = subset_score(&[], n);
    let nf = n as f64;
    let child_card = data.cardinality(child) as f64;
    let mut cards: Vec<f64> = predecessors
        .iter()
        .map(|&p| data.cardinality(p) as f64)
        .collect();
    cards.sort_by(f64::total_cmp);

    for size in 1..=m {
        let min_configs: f64 = cards.iter().take(size).product();
        let min_penalty = 0.5 * nf.ln() * min_configs * (child_card - 1.0);
        if -min_penalty <= best_score {
            break;
        }
        for combo in combinations(&predecessors, size) {
            let s = subset_score(&combo, n);
            if improves(s, best_score) {
                best_score = s;
                best_set = combo;
            }
        }
    }
    let table = subset_table(&best_set);
    (best_set, table)
}

/// Lazy iterator over all size-`k` combinations of `items`, in
/// lexicographic position order. Yields nothing when `k >
/// items.len()`, and the single empty combination when `k == 0`.
pub struct Combinations<'a> {
    items: &'a [usize],
    idx: Vec<usize>,
    done: bool,
}

/// All size-`k` combinations of `items`, lazily and in lexicographic
/// order (no up-front materialization).
pub fn combinations(items: &[usize], k: usize) -> Combinations<'_> {
    Combinations {
        items,
        idx: (0..k).collect(),
        done: k > items.len(),
    }
}

impl Iterator for Combinations<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out: Vec<usize> = self.idx.iter().map(|&i| self.items[i]).collect();
        // Advance the combination odometer; mark done when it rolls
        // over.
        let k = self.idx.len();
        let n = self.items.len();
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return Some(out);
            }
            i -= 1;
            if self.idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                self.done = true;
                return Some(out);
            }
        }
        self.idx[i] += 1;
        for j in i + 1..k {
            self.idx[j] = self.idx[j - 1] + 1;
        }
        Some(out)
    }
}

/// Sparse family counts: key = cfg * child_card + child_value.
fn family_counts(data: &Dataset, child: usize, parents: &[usize]) -> HashMap<u64, u64> {
    let child_card = data.cardinality(child) as u64;
    let child_col = data.column(child);
    let parent_cols: Vec<(&[u8], u64)> = parents
        .iter()
        .map(|&p| (data.column(p), data.cardinality(p) as u64))
        .collect();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in 0..data.len() {
        let mut cfg: u64 = 0;
        for &(col, card) in &parent_cols {
            cfg = cfg * card + col[r] as u64;
        }
        *counts
            .entry(cfg * child_card + child_col[r] as u64)
            .or_insert(0) += 1;
    }
    counts
}

/// Fits a dense smoothed CPT for `child` given `parents` by scanning
/// the data (the serial oracle path; the sharded engine reuses its
/// contingency tables instead).
pub fn fit_cpt(data: &Dataset, child: usize, parents: &[usize], alpha: f64) -> Cpt {
    let child_card = data.cardinality(child);
    let child_col = data.column(child);
    let parent_cards: Vec<usize> = parents.iter().map(|&p| data.cardinality(p)).collect();
    let parent_cols: Vec<&[u8]> = parents.iter().map(|&p| data.column(p)).collect();
    let num_configs: usize = parent_cards.iter().product::<usize>().max(1);
    let mut counts = vec![0u64; num_configs * child_card];
    for r in 0..data.len() {
        let mut cfg = 0usize;
        for (col, &card) in parent_cols.iter().zip(&parent_cards) {
            cfg = cfg * card + col[r] as usize;
        }
        counts[cfg * child_card + child_col[r] as usize] += 1;
    }
    Cpt::from_counts(child_card, parent_cards, &counts, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG for reproducible synthetic data.
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    /// X1 is a noisy copy of X0; X2 is independent noise.
    fn dependent_dataset(n: usize) -> Dataset {
        let mut seed = 42u64;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = (lcg(&mut seed) % 2) as usize;
            let x1 = if lcg(&mut seed) % 10 < 9 { x0 } else { 1 - x0 };
            let x2 = (lcg(&mut seed) % 3) as usize;
            rows.push(vec![x0, x1, x2]);
        }
        Dataset::new(vec![2, 2, 3], rows)
    }

    #[test]
    fn finds_real_dependency_and_skips_noise() {
        let data = dependent_dataset(2000);
        let bn = learn_structure(&data, &LearnOptions::default());
        assert_eq!(bn.node(0).parents, Vec::<usize>::new());
        assert_eq!(bn.node(1).parents, vec![0], "X1 should depend on X0");
        assert!(bn.node(2).parents.is_empty(), "X2 is independent noise");
    }

    #[test]
    fn fitted_cpt_matches_generating_process() {
        let data = dependent_dataset(5000);
        let bn = learn_structure(
            &data,
            &LearnOptions {
                alpha: 0.0,
                ..Default::default()
            },
        );
        // P(X1 = x0 | X0 = x0) ~ 0.9.
        let p = bn.node(1).cpt.prob(0, &[0]);
        assert!((p - 0.9).abs() < 0.05, "got {p}");
    }

    #[test]
    fn two_parent_interaction_detected() {
        // X2 = X0 XOR X1 (needs both parents; neither alone helps).
        let mut seed = 7u64;
        let mut rows = Vec::new();
        for _ in 0..3000 {
            let a = (lcg(&mut seed) % 2) as usize;
            let b = (lcg(&mut seed) % 2) as usize;
            rows.push(vec![a, b, a ^ b]);
        }
        let data = Dataset::new(vec![2, 2, 2], rows);
        let bn = learn_structure(&data, &LearnOptions::default());
        assert_eq!(bn.node(2).parents, vec![0, 1]);
    }

    #[test]
    fn max_parents_zero_yields_independent_model() {
        let data = dependent_dataset(500);
        let bn = learn_structure(
            &data,
            &LearnOptions {
                max_parents: 0,
                ..Default::default()
            },
        );
        for node in bn.nodes() {
            assert!(node.parents.is_empty());
        }
    }

    #[test]
    fn small_dataset_prefers_simplicity() {
        // With very few observations the BIC penalty should reject
        // spurious parents between independent variables.
        let mut seed = 3u64;
        let mut rows = Vec::new();
        for _ in 0..30 {
            rows.push(vec![
                (lcg(&mut seed) % 4) as usize,
                (lcg(&mut seed) % 4) as usize,
            ]);
        }
        let data = Dataset::new(vec![4, 4], rows);
        let bn = learn_structure(&data, &LearnOptions::default());
        assert!(bn.node(1).parents.is_empty());
    }

    #[test]
    fn family_score_improves_with_true_parent() {
        let data = dependent_dataset(1000);
        let with = family_score(&data, 1, &[0]);
        let without = family_score(&data, 1, &[]);
        assert!(with > without);
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let c: Vec<Vec<usize>> = combinations(&[0, 1, 2, 3], 2).collect();
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![0, 3]));
        assert_eq!(
            combinations(&[0, 1], 3).collect::<Vec<_>>(),
            Vec::<Vec<usize>>::new()
        );
        assert_eq!(combinations(&[5], 1).collect::<Vec<_>>(), vec![vec![5]]);
    }

    #[test]
    fn combinations_are_lazy_and_lexicographic() {
        let mut it = combinations(&[0, 1, 2], 2);
        assert_eq!(it.next(), Some(vec![0, 1]));
        assert_eq!(it.next(), Some(vec![0, 2]));
        assert_eq!(it.next(), Some(vec![1, 2]));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None, "fused after exhaustion");
        // k == 0 yields exactly the empty combination.
        assert_eq!(
            combinations(&[7, 8], 0).collect::<Vec<_>>(),
            vec![Vec::<usize>::new()]
        );
    }

    #[test]
    fn sharded_engine_learns_identical_network() {
        let data = dependent_dataset(2000);
        let serial = learn_structure(&data, &LearnOptions::default());
        for workers in [2usize, 3, 8] {
            let sharded = learn_structure(
                &data,
                &LearnOptions {
                    parallelism: workers,
                    ..Default::default()
                },
            );
            for i in 0..data.num_vars() {
                assert_eq!(sharded.node(i).parents, serial.node(i).parents, "node {i}");
                assert_eq!(
                    sharded.node(i).cpt.flat(),
                    serial.node(i).cpt.flat(),
                    "node {i} CPT"
                );
            }
        }
    }

    #[test]
    fn sharded_engine_detects_two_parent_interaction() {
        let mut seed = 7u64;
        let mut rows = Vec::new();
        for _ in 0..3000 {
            let a = (lcg(&mut seed) % 2) as usize;
            let b = (lcg(&mut seed) % 2) as usize;
            rows.push(vec![a, b, a ^ b]);
        }
        let data = Dataset::new(vec![2, 2, 2], rows);
        let bn = learn_structure_sharded(&data, &LearnOptions::default(), &Scheduler::new(4));
        assert_eq!(bn.node(2).parents, vec![0, 1]);
    }

    #[test]
    fn names_are_applied() {
        let data = dependent_dataset(100);
        let opts = LearnOptions {
            names: vec!["A".into(), "B".into(), "C".into()],
            ..Default::default()
        };
        let bn = learn_structure(&data, &opts);
        assert_eq!(bn.node(0).name, "A");
        assert_eq!(bn.node(2).name, "C");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(vec![2], vec![]);
        learn_structure(&data, &LearnOptions::default());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics_sharded() {
        let data = Dataset::new(vec![2], vec![]);
        learn_structure_sharded(&data, &LearnOptions::default(), &Scheduler::new(4));
    }
}
