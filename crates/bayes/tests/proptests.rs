//! Property-based tests: exact inference vs brute-force enumeration
//! on random small networks, sampling consistency, and the sharded
//! count-reuse learning engine vs the serial oracle.

use eip_bayes::learn::{combinations, family_score};
use eip_bayes::{
    family_score_dense, joint_probability, learn_structure, learn_structure_sharded,
    posterior_marginals, sample_row, BayesNet, Cpt, Dataset, LearnOptions, Node,
};
use eip_exec::Scheduler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random categorical dataset — 2-5 variables with
/// cardinalities 2-4 and 30-200 rows of seeded codes (biased so real
/// dependencies appear: later variables sometimes copy earlier ones).
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..=5, 30usize..=200, any::<u64>()).prop_map(|(n_vars, n_rows, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let cards: Vec<usize> = (0..n_vars).map(|_| 2 + (next() % 3) as usize).collect();
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(n_vars);
            for v in 0..n_vars {
                // A third of the time, echo an earlier variable
                // (clamped to this cardinality) so structure exists.
                let code = if v > 0 && next() % 3 == 0 {
                    row[(next() % v as u64) as usize] % cards[v]
                } else {
                    (next() % cards[v] as u64) as usize
                };
                row.push(code);
            }
            rows.push(row);
        }
        Dataset::new(cards, rows)
    })
}

/// Strategy: a random 3-4 node network with cardinalities 2-3 and
/// random (ordering-respecting) parents and CPTs.
fn arb_bn() -> impl Strategy<Value = BayesNet> {
    (2usize..=4, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut nodes = Vec::new();
        let mut cards = Vec::new();
        for i in 0..n {
            let card = 2 + (next() % 2) as usize;
            // Random subset of predecessors, at most 2.
            let mut parents = Vec::new();
            for p in 0..i {
                if parents.len() < 2 && next() % 3 == 0 {
                    parents.push(p);
                }
            }
            let parent_cards: Vec<usize> = parents.iter().map(|&p| cards[p]).collect();
            let ncfg: usize = parent_cards.iter().product::<usize>().max(1);
            let mut probs = Vec::with_capacity(ncfg * card);
            for _ in 0..ncfg {
                let mut row: Vec<f64> = (0..card).map(|_| 1.0 + (next() % 100) as f64).collect();
                let t: f64 = row.iter().sum();
                row.iter_mut().for_each(|x| *x /= t);
                // Renormalize exactly to avoid from_probs tolerance
                // issues after f64 division.
                let t2: f64 = row.iter().sum();
                row.iter_mut().for_each(|x| *x /= t2);
                probs.extend(row);
            }
            let cpt = Cpt::from_probs(card, parent_cards, probs);
            nodes.push(Node {
                name: format!("X{i}"),
                cardinality: card,
                parents,
                cpt,
            });
            cards.push(card);
        }
        BayesNet::new(nodes)
    })
}

/// Enumerates all joint rows with their probabilities.
fn enumerate(bn: &BayesNet) -> Vec<(Vec<usize>, f64)> {
    let n = bn.num_vars();
    let cards: Vec<usize> = (0..n).map(|i| bn.node(i).cardinality).collect();
    let total: usize = cards.iter().product();
    let mut out = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut row = vec![0usize; n];
        for i in (0..n).rev() {
            row[i] = idx % cards[i];
            idx /= cards[i];
        }
        let p = bn.probability_row(&row);
        out.push((row, p));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The joint distribution always sums to 1.
    #[test]
    fn joint_sums_to_one(bn in arb_bn()) {
        let total: f64 = enumerate(&bn).iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// VE posterior marginals equal brute-force conditionals for
    /// random evidence.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn ve_matches_brute_force(bn in arb_bn(), ev_var_raw in 0usize..4, ev_val_raw in 0usize..3) {
        let ev_var = ev_var_raw % bn.num_vars();
        let ev_val = ev_val_raw % bn.node(ev_var).cardinality;
        let evidence = vec![(ev_var, ev_val)];
        let rows = enumerate(&bn);
        let pe: f64 = rows.iter().filter(|(r, _)| r[ev_var] == ev_val).map(|&(_, p)| p).sum();
        prop_assume!(pe > 1e-9);
        let post = posterior_marginals(&bn, &evidence);
        for var in 0..bn.num_vars() {
            for val in 0..bn.node(var).cardinality {
                let brute: f64 = rows
                    .iter()
                    .filter(|(r, _)| r[ev_var] == ev_val && r[var] == val)
                    .map(|&(_, p)| p)
                    .sum::<f64>() / pe;
                prop_assert!((post[var][val] - brute).abs() < 1e-8,
                    "var {} val {}: {} vs {}", var, val, post[var][val], brute);
            }
        }
    }

    /// joint_probability equals brute-force summation.
    #[test]
    fn joint_probability_matches(bn in arb_bn(), a in 0usize..3, b in 0usize..3) {
        let v0 = 0usize;
        let v1 = bn.num_vars() - 1;
        let a = a % bn.node(v0).cardinality;
        let b = b % bn.node(v1).cardinality;
        let mut assignment = vec![(v0, a)];
        if v1 != v0 {
            assignment.push((v1, b));
        }
        let p = joint_probability(&bn, &assignment);
        let brute: f64 = enumerate(&bn)
            .iter()
            .filter(|(r, _)| assignment.iter().all(|&(v, x)| r[v] == x))
            .map(|&(_, p)| p)
            .sum();
        prop_assert!((p - brute).abs() < 1e-9, "{} vs {}", p, brute);
    }

    /// Sampling then re-learning recovers a model whose marginals are
    /// close to the original (round-trip sanity).
    #[test]
    fn learn_recovers_marginals(bn in arb_bn(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<usize>> = (0..2000).map(|_| sample_row(&bn, &mut rng)).collect();
        let cards: Vec<usize> = (0..bn.num_vars()).map(|i| bn.node(i).cardinality).collect();
        let data = Dataset::new(cards, rows);
        let learned = learn_structure(&data, &LearnOptions::default());
        let orig = posterior_marginals(&bn, &vec![]);
        let rec = posterior_marginals(&learned, &vec![]);
        for var in 0..bn.num_vars() {
            for val in 0..bn.node(var).cardinality {
                prop_assert!((orig[var][val] - rec[var][val]).abs() < 0.08,
                    "var {} val {}: {} vs {}", var, val, orig[var][val], rec[var][val]);
            }
        }
    }

    /// Sharded training ≡ the serial oracle: for any random dataset
    /// and every shard count 1..=8, the count-reuse engine learns the
    /// exact same structure (parents) and the exact same CPT rows
    /// (bit-for-bit — both fit from identical integer counts).
    #[test]
    fn sharded_training_matches_serial_oracle(data in arb_dataset()) {
        let oracle = learn_structure(&data, &LearnOptions::default());
        for shards in 1usize..=8 {
            let sharded = learn_structure_sharded(
                &data,
                &LearnOptions::default(),
                &Scheduler::new(shards),
            );
            for i in 0..data.num_vars() {
                prop_assert_eq!(
                    &sharded.node(i).parents,
                    &oracle.node(i).parents,
                    "node {} parents at {} shards", i, shards
                );
                prop_assert_eq!(
                    sharded.node(i).cpt.flat(),
                    oracle.node(i).cpt.flat(),
                    "node {} CPT rows at {} shards", i, shards
                );
            }
        }
    }

    /// The compiled sampling plan ≡ the `sample_row` oracle: on the
    /// same RNG stream, every drawn row is byte-identical, in
    /// lockstep, for random networks and seeds (the plan consumes
    /// exactly one uniform per node, like the oracle).
    #[test]
    fn compiled_plan_matches_oracle_rows(bn in arb_bn(), seed in any::<u64>()) {
        let plan = bn.compile();
        prop_assert_eq!(plan.num_vars(), bn.num_vars());
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let mut row = vec![0u8; plan.num_vars()];
        for draw in 0..300 {
            let oracle = sample_row(&bn, &mut a);
            plan.sample_into(&mut row, &mut b);
            let got: Vec<usize> = row.iter().map(|&x| x as usize).collect();
            prop_assert_eq!(got, oracle, "draw {}", draw);
        }
    }

    /// Keyed row draws ≡ a straight-line serial loop on random
    /// networks: `sample_keyed_into(row, seed, stream, i)` must equal
    /// driving the `sample_row` oracle with a fresh per-index
    /// `KeyedRng` — the same rows out of order, sharded (emulated by
    /// interleaved index walks), or repeated.
    #[test]
    fn keyed_rows_match_straight_line_loop(
        bn in arb_bn(),
        seed in any::<u64>(),
        stream in 0u64..8,
    ) {
        let plan = bn.compile();
        // The straight-line reference: index order 0..N, fresh keyed
        // generator per index, oracle sampler.
        let reference: Vec<Vec<usize>> = (0..100u64)
            .map(|i| sample_row(&bn, &mut eip_exec::rng::KeyedRng::new(seed, stream, i)))
            .collect();
        let mut row = vec![0u8; plan.num_vars()];
        // Reversed walk through the compiled plan: per-index purity
        // means order cannot matter.
        for i in (0..100u64).rev() {
            plan.sample_keyed_into(&mut row, seed, stream, i);
            let got: Vec<usize> = row.iter().map(|&x| x as usize).collect();
            prop_assert_eq!(&got, &reference[i as usize], "row {}", i);
        }
    }

    /// Dense-contingency family scores ≡ the HashMap reference scores
    /// for every candidate parent set the default search would visit,
    /// up to floating-point summation order.
    #[test]
    fn dense_family_scores_match_hashmap(data in arb_dataset(), shards in 1usize..=8) {
        let exec = Scheduler::new(shards);
        for child in 0..data.num_vars() {
            let preds: Vec<usize> = (0..child).collect();
            for size in 0..=2usize.min(preds.len()) {
                for combo in combinations(&preds, size) {
                    let reference = family_score(&data, child, &combo);
                    let dense = family_score_dense(&data, child, &combo, &exec);
                    let tol = 1e-9 * (1.0 + reference.abs());
                    prop_assert!(
                        (dense - reference).abs() <= tol,
                        "child {} parents {:?}: dense {} vs hashmap {}",
                        child, combo, dense, reference
                    );
                }
            }
        }
    }
}
