//! Criterion benchmark crate (see benches/).
#![forbid(unsafe_code)]
