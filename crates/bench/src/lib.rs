//! Criterion benchmark targets for the Entropy/IP workspace.
//!
//! This crate has no library API — it exists to host the four bench
//! targets under `benches/` (run them with `cargo bench -p eip_bench`):
//!
//! | target | measures |
//! |---|---|
//! | `stages` | each typed `Pipeline` stage at its real boundary: profile (serial + sharded), segmentation, mining (serial reference vs the sharded engine — guarded by `tools/bench_guard.sh`), BN training, plus windowing grid and BN inference |
//! | `pipeline` | end-to-end paths: the figure panel, a browser click, candidate generation |
//! | `scanning` | the Table 4/6 evaluation rows and raw responder probing |
//! | `ablations` | model ablations: BN vs Markov vs independent sampling, structure-learning in-degree, segmentation rules |
//!
//! The `criterion` dependency resolves to the offline shim in
//! `shims/criterion` (see `shims/README.md`), which runs a quick
//! fixed-budget timing loop, so `cargo bench` completes in seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
