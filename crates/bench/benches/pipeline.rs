//! End-to-end figure/table benchmarks: what it costs to regenerate
//! each paper artifact (entropy panels, browser refresh, candidate
//! generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eip_netsim::dataset;
use entropy_ip::{Browser, EntropyIp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig. 7/8/9/10-style panel: full analysis of one network sample.
fn bench_panel(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_panel");
    g.sample_size(10);
    for id in ["S1", "R1", "C1"] {
        let set = dataset(id).unwrap().population_sized(4_000, 1);
        g.bench_with_input(BenchmarkId::from_parameter(id), &set, |b, s| {
            b.iter(|| {
                let model = EntropyIp::new().analyze(s).unwrap();
                eip_viz::render_entropy_ascii(model.analysis(), 12)
            });
        });
    }
    g.finish();
}

/// Fig. 1(b->c): one browser click (condition + re-render).
fn bench_browser_click(c: &mut Criterion) {
    let set = dataset("C1").unwrap().population_sized(4_000, 1);
    let model = EntropyIp::new().analyze(&set).unwrap();
    let code = model.mined()[0].values[0].code.clone();
    let label = model.mined()[0].segment.label.clone();
    c.bench_function("browser_click", |b| {
        b.iter(|| {
            let mut browser = Browser::new(&model);
            browser.select(&label, &code);
            eip_viz::render_browser(&browser.distributions(), 0.001)
        });
    });
}

/// Table 4 inner loop: candidate generation throughput.
fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate_candidates");
    g.sample_size(10);
    for id in ["S1", "R1"] {
        let set = dataset(id).unwrap().population_sized(2_000, 1);
        let model = EntropyIp::new().analyze(&set).unwrap();
        g.bench_with_input(BenchmarkId::new("10k", id), &model, |b, m| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| m.generate(10_000, 80_000, &mut rng));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_panel, bench_browser_click, bench_generation);
criterion_main!(benches);
