//! Stage-1 ingestion benchmark: the serial one-line-at-a-time oracle
//! ([`Pipeline::profile_lines`] — reused line buffer feeding an
//! `AddressSetBuilder`) vs the bounded-memory chunked engine
//! ([`Pipeline::profile_reader_streaming`] — newline-aligned chunks
//! fanned out on the scheduler, per-chunk sorted runs merged into the
//! working set). Both paths end in the same sharded entropy/ACR
//! profile, so the numbers measure the ingestion machinery itself.
//!
//! The corpus is a multi-million-line in-memory address file with 5×
//! duplication and mixed colon/hex32 presentation — the shape
//! `repro --corpus-out` writes. The two paths produce byte-identical
//! `Profiled` artifacts (pinned by the chunk-boundary torture suite);
//! `tools/bench_guard.sh` fails CI if the chunked engine loses its
//! speed edge (`BENCH_INGEST_MARGIN`), results in `BENCH_ingest.json`.

use std::fmt::Write;

use criterion::{criterion_group, criterion_main, Criterion};
use eip_netsim::dataset;
use entropy_ip::{Config, IngestOptions, Pipeline};

const LINES: usize = 2_000_000;
const DISTINCT: usize = 400_000;

/// Renders the benchmark corpus: every distinct address once (in a
/// scrambled order), the rest keyed duplicates, ~2% comments, mixed
/// presentation — deterministic, so serial and parallel read the
/// exact same bytes.
fn corpus() -> String {
    let pop = dataset("S1").unwrap().population_sized(DISTINCT, 1);
    let addrs = pop.as_slice();
    let n = addrs.len();
    let mut text = String::with_capacity(LINES * 40);
    for j in 0..LINES {
        if j % 50 == 0 {
            text.push_str("# corpus\n");
        }
        let fresh = j / 5;
        let ip = if j % 5 == 0 && fresh < n {
            addrs[(fresh * 7 + 13) % n]
        } else {
            addrs[(j.wrapping_mul(0x9e37_79b9) >> 7) % n]
        };
        if j & 1 == 0 {
            let _ = writeln!(text, "{ip}");
        } else {
            let _ = writeln!(text, "{}", ip.to_hex32());
        }
    }
    text
}

fn bench_ingest_stage(c: &mut Criterion) {
    let text = corpus();
    let mut g = c.benchmark_group("stage_ingest");
    g.sample_size(10);
    let serial = Pipeline::new(Config::default());
    g.bench_function("serial_2000000", |b| {
        b.iter(|| serial.profile_lines(text.as_bytes()).unwrap());
    });
    let parallel = Pipeline::new(Config::default().with_parallelism(4));
    let opts = IngestOptions::default();
    g.bench_function("parallel4_2000000", |b| {
        b.iter(|| {
            parallel
                .profile_reader_streaming(text.as_bytes(), &opts)
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ingest_stage);
criterion_main!(benches);
