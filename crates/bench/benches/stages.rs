//! Per-stage benchmarks of the Entropy/IP pipeline: entropy profile,
//! ACR, segmentation, mining, BN structure learning, inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eip_addr::{AddressSet, Ip6};
use eip_netsim::dataset;
use eip_stats::{acr4, nybble_entropy, WindowGrid};
use entropy_ip::{segment_entropy_profile, EntropyIp, SegmentationOptions};

fn population(n: usize) -> AddressSet {
    dataset("S1").unwrap().population_sized(n, 1)
}

fn bench_entropy(c: &mut Criterion) {
    let mut g = c.benchmark_group("entropy_profile");
    for n in [1_000usize, 10_000] {
        let addrs: Vec<Ip6> = population(n).iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &addrs, |b, a| {
            b.iter(|| nybble_entropy(a));
        });
    }
    g.finish();
}

fn bench_acr(c: &mut Criterion) {
    let mut g = c.benchmark_group("acr4");
    for n in [1_000usize, 10_000] {
        let set = population(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| acr4(s));
        });
    }
    g.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let addrs: Vec<Ip6> = population(10_000).iter().collect();
    let profile = nybble_entropy(&addrs);
    let opts = SegmentationOptions::default();
    c.bench_function("segmentation", |b| {
        b.iter(|| segment_entropy_profile(&profile, &opts));
    });
}

fn bench_window_grid(c: &mut Criterion) {
    let addrs: Vec<Ip6> = population(1_000).iter().collect();
    c.bench_function("window_grid_1k", |b| {
        b.iter(|| WindowGrid::compute(&addrs));
    });
}

fn bench_full_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_model");
    g.sample_size(10);
    for n in [1_000usize, 5_000] {
        let set = population(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| EntropyIp::new().analyze(s).unwrap());
        });
    }
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let model = EntropyIp::new().analyze(&population(2_000)).unwrap();
    c.bench_function("posterior_marginals", |b| {
        b.iter(|| model.posterior(&vec![(0, 0)]));
    });
}

criterion_group!(
    benches,
    bench_entropy,
    bench_acr,
    bench_segmentation,
    bench_window_grid,
    bench_full_model,
    bench_inference
);
criterion_main!(benches);
