//! Per-stage benchmarks of the Entropy/IP pipeline, timed at the real
//! stage boundaries of the typed [`Pipeline`] API: profile (streaming
//! ingestion + entropy/ACR), segmentation, mining (serial and
//! parallel), BN training, candidate generation (the `sample_row`
//! oracle vs the compiled sampling plan on the batched scheduler) and
//! candidate evaluation (the tree/hash bookkeeping reference vs the
//! sharded sort-merge-join) — plus the windowing grid and posterior
//! inference that sit beside the pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eip_addr::{AddressSet, Ip6};
use eip_exec::Scheduler;
use eip_netsim::{dataset, population_adherence};
use eip_stats::WindowGrid;
use entropy_ip::{Config, Generator, Mined, Pipeline, Profiled, Segmented};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn population(n: usize) -> AddressSet {
    dataset("S1").unwrap().population_sized(n, 1)
}

fn profiled(n: usize) -> Profiled {
    Pipeline::new(Config::default())
        .profile(population(n).iter())
        .unwrap()
}

fn segmented(n: usize) -> Segmented {
    profiled(n).segment()
}

fn mined(n: usize) -> Mined {
    segmented(n).mine()
}

/// Stage 0: population synthesis — the straight-line keyed serial
/// oracle ([`AddressPlan::generate_keyed`]: the naive per-draw
/// sampler, one `HashSet` insert per draw, unsorted `from_iter` at
/// the end) vs the keyed sharded engine
/// ([`AddressPlan::generate_keyed_sharded`]: per-index draws through
/// the compiled plan, screened against a `DedupSet` on the scheduler,
/// one sharded sort, a pre-sorted `from_iter`). Keyed draws make
/// sampling itself shardable — address `k` is a pure function of
/// `(seed, k)` — so the two produce byte-identical sets at any worker
/// count. Benched near the `--full` stage's real scale (500k): that is
/// where the engine's cache behavior (compiled sampling + multiply-
/// shift dedup + presorted set construction) separates from the
/// oracle's large-table hashing even without cores to fan out over;
/// `tools/bench_guard.sh` fails CI if the engine loses that edge.
fn bench_synthesize_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_synthesize");
    g.sample_size(10);
    let plan = dataset("S1").unwrap().plan();
    g.bench_function("serial_500000", |b| {
        b.iter(|| plan.generate_keyed(500_000, 0, 1));
    });
    let exec = Scheduler::new(4);
    g.bench_function("parallel4_500000", |b| {
        b.iter(|| plan.generate_keyed_sharded(500_000, 0, 1, &exec));
    });
    g.finish();
}

/// Stage 1: streaming ingestion + entropy/ACR profile, serial and
/// sharded (merge-based per-shard `NybbleCounts`).
fn bench_profile_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_profile");
    for n in [1_000usize, 10_000] {
        let set = population(n);
        let pipeline = Pipeline::new(Config::default());
        g.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| pipeline.profile(s.iter()).unwrap());
        });
    }
    let set = population(10_000);
    let sharded = Pipeline::new(Config::default().with_parallelism(4));
    g.bench_with_input(
        BenchmarkId::from_parameter("parallel4_10000"),
        &set,
        |b, s| {
            b.iter(|| sharded.profile(s.iter()).unwrap());
        },
    );
    g.finish();
}

/// Stage 2: segmentation of an existing profile.
fn bench_segment_stage(c: &mut Criterion) {
    let p = profiled(10_000);
    c.bench_function("stage_segment", |b| {
        b.iter(|| p.segment());
    });
}

/// Stage 3: mining an existing segmentation — the serial per-segment
/// reference vs the sharded engine (per-shard histograms for every
/// segment in one pass, merged, then thresholded). The two produce
/// identical dictionaries; `tools/bench_guard.sh` fails CI if the
/// sharded path loses its speed edge. Benched at 50k addresses: the
/// SWAR segment extraction cut the per-address cost of both paths, so
/// at smaller scales the engine's fixed per-shard histogram and merge
/// overhead hides its one-pass advantage.
fn bench_mine_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_mine");
    g.sample_size(10);
    let serial = segmented(50_000);
    g.bench_function("serial_50000", |b| {
        b.iter(|| serial.mine());
    });
    let parallel = Pipeline::new(Config::default().with_parallelism(4))
        .profile(population(50_000).iter())
        .unwrap()
        .segment();
    g.bench_function("parallel4_50000", |b| {
        b.iter(|| parallel.mine());
    });
    g.finish();
}

/// Stage 4: BN training on existing dictionaries — the serial
/// per-candidate rescan oracle vs the sharded count-reuse engine
/// (columnar encode + one dense contingency pass per child, CPTs
/// fitted from the same tables). The two learn identical networks;
/// `tools/bench_guard.sh` fails CI if the count-reuse engine stops
/// beating the serial reference.
fn bench_train_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_train");
    g.sample_size(10);
    for n in [1_000usize, 5_000] {
        let m = mined(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| m.train().unwrap());
        });
    }
    let serial = mined(10_000);
    g.bench_function("serial_10000", |b| {
        b.iter(|| serial.train().unwrap());
    });
    let parallel = Pipeline::new(Config::default().with_parallelism(4))
        .profile(population(10_000).iter())
        .unwrap()
        .segment()
        .mine();
    g.bench_function("parallel4_10000", |b| {
        b.iter(|| parallel.train().unwrap());
    });
    g.finish();
}

/// Stage 5: batch candidate generation from a trained model — the
/// serial `sample_row` + per-draw allocation oracle
/// ([`Generator::run`]) vs the compiled sampling plan on the batched
/// scheduler ([`Generator::run_seeded`], parallelism 4). The two
/// produce byte-identical candidate streams; `tools/bench_guard.sh`
/// fails CI if the compiled path loses its speed edge.
fn bench_generate_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_generate");
    g.sample_size(10);
    let model = mined(10_000).train().unwrap().into_model();
    g.bench_function("serial_10000", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            Generator::new(&model)
                .attempts_per_candidate(8)
                .run(10_000, &mut rng)
        });
    });
    g.bench_function("parallel4_10000", |b| {
        b.iter(|| {
            Generator::new(&model)
                .attempts_per_candidate(8)
                .parallelism(4)
                .run_seeded(10_000, 7)
        });
    });
    g.finish();
}

/// Stage 6: candidate-batch evaluation against the population — the
/// `repro --full` evaluate stage. The tree/hash bookkeeping the stage
/// used before PR 5 (binary-search hits + `BTreeSet` /64 dedup) vs
/// the sharded sort-merge-join ([`eip_netsim::population_adherence`]:
/// one sharded candidate sort, then streaming two-pointer joins).
/// Identical counts; `tools/bench_guard.sh` guards the edge.
fn bench_evaluate_stage(c: &mut Criterion) {
    use std::collections::BTreeSet;
    let mut g = c.benchmark_group("stage_evaluate");
    g.sample_size(10);
    let population = population(10_000);
    let model = Pipeline::new(Config::default())
        .run(population.iter())
        .unwrap();
    let candidates = Generator::new(&model)
        .attempts_per_candidate(8)
        .run_seeded(10_000, 13)
        .candidates;
    g.bench_function("serial_10000", |b| {
        b.iter(|| {
            let hits = candidates
                .iter()
                .filter(|&&ip| population.contains(ip))
                .count();
            let known64: BTreeSet<_> = population.slash64s().into_iter().collect();
            let new64 = candidates
                .iter()
                .map(|ip| ip.slash64())
                .filter(|p| !known64.contains(p))
                .collect::<BTreeSet<_>>()
                .len();
            (hits, new64)
        });
    });
    let exec = Scheduler::new(4);
    g.bench_function("parallel4_10000", |b| {
        b.iter(|| population_adherence(&candidates, &population, &exec));
    });
    g.finish();
}

/// The windowing analysis (§4.5), beside the pipeline proper.
fn bench_window_grid(c: &mut Criterion) {
    let addrs: Vec<Ip6> = population(1_000).iter().collect();
    c.bench_function("window_grid_1k", |b| {
        b.iter(|| WindowGrid::compute(&addrs));
    });
}

/// Posterior inference on the trained model (one browser refresh).
fn bench_inference(c: &mut Criterion) {
    let model = mined(2_000).train().unwrap().into_model();
    c.bench_function("posterior_marginals", |b| {
        b.iter(|| model.posterior(&vec![(0, 0)]));
    });
}

criterion_group!(
    benches,
    bench_synthesize_stage,
    bench_profile_stage,
    bench_segment_stage,
    bench_mine_stage,
    bench_train_stage,
    bench_generate_stage,
    bench_evaluate_stage,
    bench_window_grid,
    bench_inference
);
criterion_main!(benches);
