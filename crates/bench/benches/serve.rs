//! Model-service benchmarks (`stage_serve`): registry fetch latency
//! (cold container decode + plan recompile vs LRU hit) and full
//! round-trip request rates over a real loopback TCP connection
//! (`GEN` 100 candidates, `PREDICT64`). The LRU edge — a hit must
//! beat a cold load by a wide margin, or the cache is pointless — is
//! enforced by `tools/bench_guard.sh`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use eip_netsim::dataset;
use eip_serve::{Client, ModelStore, Registry, Service};
use entropy_ip::{store, EntropyIp};

/// Trains the benchmark fleet (two networks, S1 shape) into a scratch
/// models directory and returns the store.
fn fleet() -> ModelStore {
    let dir = std::env::temp_dir().join(format!("eip_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_dir = ModelStore::open(&dir).unwrap();
    for (net, seed) in [("A", 1u64), ("B", 2)] {
        let set = dataset("S1").unwrap().population_sized(5_000, seed);
        let model = EntropyIp::new().analyze(&set).unwrap();
        let fp = store::fingerprint(&format!("bench fleet {net}"));
        store_dir.save(net, &model, fp).unwrap();
    }
    store_dir
}

/// Registry fetch: a cold load decodes the container and recompiles
/// the sampling plan from disk every time (capacity 1 with two
/// alternating networks forces an eviction per fetch); an LRU hit is
/// a lock-and-clone. The ratio is the cache's reason to exist.
fn bench_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_serve");
    g.sample_size(10);

    let cold = Registry::new(fleet(), 1);
    let mut flip = false;
    g.bench_function("fetch_cold", |b| {
        b.iter(|| {
            flip = !flip;
            cold.get(if flip { "A" } else { "B" }).unwrap()
        });
    });

    let warm = Registry::new(fleet(), 4);
    warm.get("A").unwrap();
    g.bench_function("fetch_lru_hit", |b| {
        b.iter(|| warm.get("A").unwrap());
    });
    g.finish();
}

/// Full protocol round trips over loopback TCP: one persistent
/// connection, one request per iteration (ns/iter is the inverse of
/// req/sec).
fn bench_loopback(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_serve");
    g.sample_size(10);

    let service = Arc::new(Service::new(Registry::new(fleet(), 4), 0));
    let server = eip_serve::spawn(service, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    g.bench_function("gen100_loopback", |b| {
        b.iter(|| client.request("GEN A 100 seed=7").unwrap());
    });
    g.bench_function("predict64_loopback", |b| {
        b.iter(|| client.request("PREDICT64 A 2001:db8::1").unwrap());
    });
    g.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_fetch, bench_loopback);
criterion_main!(benches);
